//! Cross-crate integration tests through the `redcr` facade: the full
//! stack (application + replication + coordinated C/R + fault injection)
//! and the model/simulator agreement that constitutes the paper's central
//! validation claim.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use redcr::apps::cg::{CgConfig, CgSolver, CgState};
use redcr::apps::jacobi::{JacobiConfig, JacobiSolver, JacobiState};
use redcr::ckpt::coordinator::CheckpointCoordinator;
use redcr::ckpt::restart;
use redcr::ckpt::storage::{DiskStorage, MemoryStorage, StableStorage};
use redcr::ckpt::CountingComm;
use redcr::cluster::combined::simulate_combined;
use redcr::cluster::job::FailureExposure;
use redcr::core::{ExecutorConfig, ResilientApp, ResilientExecutor};
use redcr::model::combined::CombinedConfig;
use redcr::model::units;
use redcr::mpi::{Communicator, CostModel, MpiError, Tag};
use redcr::red::{ReplicatedWorld, VoteCost};

/// A process-unique, test-unique scratch directory that cleans itself up
/// even when the test panics.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(prefix: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("{prefix}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct CgApp {
    solver: CgSolver,
    iterations: u64,
    pad: f64,
}

impl ResilientApp for CgApp {
    type State = CgState;

    fn init<C: Communicator>(&self, comm: &C) -> redcr::mpi::Result<CgState> {
        self.solver.init_state(comm)
    }

    fn step<C: Communicator>(&self, comm: &C, state: &mut CgState) -> redcr::mpi::Result<()> {
        comm.compute(self.pad)?;
        self.solver.step(comm, state)?;
        Ok(())
    }

    fn is_done(&self, state: &CgState) -> bool {
        state.iteration >= self.iterations
    }
}

struct JacobiApp {
    solver: JacobiSolver,
    iterations: u64,
    pad: f64,
}

impl ResilientApp for JacobiApp {
    type State = JacobiState;

    fn init<C: Communicator>(&self, _comm: &C) -> redcr::mpi::Result<JacobiState> {
        Ok(self.solver.init_state())
    }

    fn step<C: Communicator>(&self, comm: &C, state: &mut JacobiState) -> redcr::mpi::Result<()> {
        comm.compute(self.pad)?;
        self.solver.step(comm, state)?;
        Ok(())
    }

    fn is_done(&self, state: &JacobiState) -> bool {
        state.iteration >= self.iterations
    }
}

#[test]
fn cg_survives_failures_under_partial_redundancy() {
    // 1.5x partial redundancy: even virtual ranks replicated, odd ranks
    // singletons — the paper's Figure 1(b) topology, under real failures.
    let app = CgApp { solver: CgSolver::new(CgConfig::small(48)), iterations: 30, pad: 1.0 };
    let cfg = ExecutorConfig::new(6, 1.5)
        .node_mtbf(120.0)
        .checkpoint_interval(6.0)
        .checkpoint_cost(0.2)
        .restart_cost(1.0)
        .seed(99);
    let report = ResilientExecutor::new(cfg).run(&app).unwrap();
    assert_eq!(report.n_physical, 9, "6 virtual at 1.5x = 9 physical");
    for state in &report.final_states {
        assert_eq!(state.iteration, 30);
    }
    // The numerical answer matches a failure-free, unreplicated run.
    let clean = ResilientExecutor::new(ExecutorConfig::new(6, 1.0))
        .run(&CgApp { solver: CgSolver::new(CgConfig::small(48)), iterations: 30, pad: 0.0 })
        .unwrap();
    for (a, b) in report.final_states.iter().zip(&clean.final_states) {
        for (x, y) in a.x.iter().zip(&b.x) {
            assert_eq!(x.to_bits(), y.to_bits(), "bitwise identical trajectories");
        }
    }
}

#[test]
fn jacobi_app_recovers_through_checkpoints() {
    let app =
        JacobiApp { solver: JacobiSolver::new(JacobiConfig::small(8)), iterations: 50, pad: 1.0 };
    let cfg = ExecutorConfig::new(4, 2.0)
        .node_mtbf(60.0)
        .checkpoint_interval(8.0)
        .checkpoint_cost(0.3)
        .restart_cost(1.5)
        .seed(5);
    let report = ResilientExecutor::new(cfg).run(&app).unwrap();
    for state in &report.final_states {
        assert_eq!(state.iteration, 50);
    }
    assert!(report.total_virtual_time >= 50.0);
}

#[test]
fn checkpoints_survive_on_disk_storage() {
    let dir = TempDir::new("redcr-int");
    let storage = Arc::new(DiskStorage::open(&dir.0).unwrap());
    let app = CgApp { solver: CgSolver::new(CgConfig::small(32)), iterations: 25, pad: 1.0 };
    let cfg = ExecutorConfig::new(4, 2.0)
        .node_mtbf(50.0)
        .checkpoint_interval(5.0)
        .checkpoint_cost(0.2)
        .restart_cost(1.0)
        .seed(17);
    let report = ResilientExecutor::with_storage(cfg, storage.clone()).run(&app).unwrap();
    assert!(report.checkpoints_committed > 0, "expected on-disk checkpoints");
    // Image files really exist on disk.
    let files = std::fs::read_dir(&dir.0).unwrap().count();
    assert!(files > 0);
}

#[test]
fn live_replica_failures_masked_without_restart() {
    // The live-injection acceptance case: at 2x the very failure schedule
    // that forces repeated restarts at 1x is fully masked — the run
    // completes in ONE attempt with every death absorbed by a surviving
    // replica, and the numerics stay bitwise identical to a failure-free
    // run.
    let app = || CgApp { solver: CgSolver::new(CgConfig::small(32)), iterations: 20, pad: 1.0 };
    let cfg = |degree: f64| {
        ExecutorConfig::new(4, degree)
            .node_mtbf(60.0)
            .checkpoint_interval(6.0)
            .checkpoint_cost(0.2)
            .restart_cost(1.0)
            .seed(21)
    };

    let masked = ResilientExecutor::new(cfg(2.0)).run(&app()).unwrap();
    assert_eq!(masked.attempts, 1, "replica deaths must be masked, not restarted");
    assert_eq!(masked.failures, 0);
    assert!(masked.masked_failures > 0, "a replica really died mid-run");
    assert!(masked.degraded_sphere_seconds > 0.0, "some sphere ran degraded");
    assert!(!masked.failure_trace.is_empty(), "the deaths are on record");

    // The identical schedule without redundancy restarts over and over.
    let plain = ResilientExecutor::new(cfg(1.0)).run(&app()).unwrap();
    assert!(plain.failures > 0, "the same seed at 1x must hit restarts");
    assert!(plain.attempts > 1);

    // Failure-free reference: masking must not perturb the solution.
    let clean = ResilientExecutor::new(ExecutorConfig::new(4, 1.0)).run(&app()).unwrap();
    assert_eq!(clean.masked_failures, 0);
    for (a, b) in masked.final_states.iter().zip(&clean.final_states) {
        assert_eq!(a.iteration, b.iteration);
        for (x, y) in a.x.iter().zip(&b.x) {
            assert_eq!(x.to_bits(), y.to_bits(), "bitwise identical despite masked deaths");
        }
    }
}

#[test]
fn checkpoint_commits_while_sphere_degraded() {
    // A replica dies mid-run, then a coordinated checkpoint is taken: the
    // bookmark quiesce and commit barrier must complete over the degraded
    // sphere and leave a restorable checkpoint on stable storage.
    let storage: Arc<dyn StableStorage> = Arc::new(MemoryStorage::new());
    let coord = CheckpointCoordinator::new(Arc::clone(&storage));
    let mut deaths = vec![f64::INFINITY; 4];
    deaths[2] = 1.5; // v0's shadow replica dies during step 1
    let report = ReplicatedWorld::builder(2, 2.0)
        .unwrap()
        .cost_model(CostModel::zero())
        .vote_cost(VoteCost::zero())
        .death_times(deaths)
        .run(move |comm| {
            let counting = CountingComm::new(comm);
            let mut state = vec![comm.rank().index() as f64];
            for step in 0..4u64 {
                counting.compute(1.0)?;
                let next = comm.rank().offset(1, comm.size());
                let prev = comm.rank().offset(-1, comm.size());
                counting.send_f64s(next, Tag::new(step), &state)?;
                let (vals, _) = counting.recv_f64s(prev.into(), Tag::new(step).into())?;
                state[0] += vals[0];
            }
            // By now (t = 4) virtual rank 0 runs on a single replica; the
            // collective checkpoint protocol must still go through.
            coord.checkpoint(&counting, 0, &state).map_err(MpiError::from)?;
            Ok(state[0])
        })
        .unwrap();
    assert!(!report.aborted, "degraded sphere must not abort the job");
    assert_eq!(report.dead_ranks, vec![2]);
    // Survivors agree on the state that was checkpointed.
    let survivors: Vec<f64> =
        report.results.iter().filter_map(|r| r.as_ref().ok().copied()).collect();
    assert_eq!(survivors.len(), 3);
    assert!(survivors.iter().all(|&v| v == survivors[0]));
    // Both virtual ranks committed an image: the checkpoint is complete
    // and restartable.
    assert_eq!(restart::latest_complete(storage.as_ref(), 2).unwrap(), Some(0));
}

#[test]
fn model_and_monte_carlo_agree_across_degrees() {
    // The paper's validation claim, exercised end to end: the closed-form
    // Eq. 14 prediction and the event simulation agree at every degree.
    let cfg = CombinedConfig::builder()
        .virtual_processes(96)
        .base_time_hours(8.0)
        .node_mtbf_hours(400.0)
        .comm_fraction(0.2)
        .checkpoint_cost_hours(units::hours_from_secs(120.0))
        .restart_cost_hours(units::hours_from_secs(500.0))
        .build()
        .unwrap();
    for degree in [1.5, 2.0, 2.5, 3.0] {
        let c = cfg.with_degree(degree);
        let model = c.evaluate().unwrap().total_time;
        let n = 24;
        let mean = (0..n)
            .map(|seed| simulate_combined(&c, FailureExposure::AllTime, seed).unwrap().total_time)
            .sum::<f64>()
            / n as f64;
        let rel = (mean - model).abs() / model;
        assert!(rel < 0.2, "degree {degree}: model {model} vs MC {mean} (rel {rel:.3})");
    }
}

#[test]
fn facade_reexports_cover_the_stack() {
    // Compile-time check that the five-layer story is reachable from the
    // single `redcr` entry point.
    let _ = redcr::model::units::hours_from_years(1.0);
    let _ = redcr::mpi::CostModel::zero();
    let _ = redcr::red::VotingMode::AllToAll;
    let _ = redcr::ckpt::storage::StorageCostModel::zero();
    let _ = redcr::fault::ReplicaGroups::uniform(2, 2);
    let _ = redcr::cluster::job::FailureExposure::AllTime;
    let _ = redcr::core::ExecutorConfig::new(2, 1.0);
    let _ = redcr::apps::cg::CgConfig::small(8);
}
