//! Metrics-plane acceptance tests through the `redcr` facade:
//!
//! * toggling [`ExecutorConfig::metrics`] must leave every
//!   `ExecutionReport` total **bit-identical** — the metrics plane reads
//!   virtual clocks, it never advances one (since abort finality landed,
//!   this includes the physical traffic counters: the abort edge is a
//!   pure function of virtual time);
//! * the virtual-time scraper's counter series must be monotone
//!   non-decreasing with its final sample equal to the drained totals;
//! * a traced storm run must export valid Perfetto JSON (one track per
//!   physical rank, at least one matched send/recv flow pair);
//! * the validation sidecar's per-rank α must match the trace analyzer's
//!   derivation exactly (same bits).

use redcr::apps::cg::{CgConfig, CgSolver, CgState};
use redcr::core::{ExecutorConfig, ModelValidation, ResilientApp, ResilientExecutor};
use redcr::metrics::{CounterKey, HistKey};
use redcr::mpi::Communicator;
use redcr::trace::{perfetto, Analysis};

struct CgApp {
    solver: CgSolver,
    iterations: u64,
    pad: f64,
}

impl ResilientApp for CgApp {
    type State = CgState;

    fn init<C: Communicator>(&self, comm: &C) -> redcr::mpi::Result<CgState> {
        self.solver.init_state(comm)
    }

    fn step<C: Communicator>(&self, comm: &C, state: &mut CgState) -> redcr::mpi::Result<()> {
        comm.compute(self.pad)?;
        self.solver.step(comm, state)?;
        Ok(())
    }

    fn is_done(&self, state: &CgState) -> bool {
        state.iteration >= self.iterations
    }
}

fn cg_app(n: usize, iterations: u64, pad: f64) -> CgApp {
    CgApp { solver: CgSolver::new(CgConfig::small(n)), iterations, pad }
}

/// The trace_analyzer storm: 2x redundancy under a harsh MTBF — restarts,
/// masked deaths, checkpoints, the lot.
fn storm_config() -> ExecutorConfig {
    ExecutorConfig::new(4, 2.0)
        .node_mtbf(25.0)
        .checkpoint_interval(4.0)
        .checkpoint_cost(0.1)
        .restart_cost(0.5)
        .seed(8)
}

#[test]
fn metrics_toggle_leaves_report_totals_bit_identical() {
    let app = cg_app(32, 30, 1.0);
    let off = ResilientExecutor::new(storm_config()).run(&app).unwrap();
    let on = ResilientExecutor::new(storm_config().metrics(true)).run(&app).unwrap();

    assert!(off.metrics.is_none());
    assert!(on.metrics.is_some());
    assert!(on.failures > 0, "storm run must see failures");

    assert_eq!(on.total_virtual_time.to_bits(), off.total_virtual_time.to_bits());
    assert_eq!(on.degraded_sphere_seconds.to_bits(), off.degraded_sphere_seconds.to_bits());
    assert_eq!(on.node_seconds.to_bits(), off.node_seconds.to_bits());
    assert_eq!(on.attempts, off.attempts);
    assert_eq!(on.failures, off.failures);
    assert_eq!(on.masked_failures, off.masked_failures);
    assert_eq!(on.checkpoints_committed, off.checkpoints_committed);
    assert_eq!(on.replication.votes, off.replication.votes);

    // The physical traffic counters used to get a restart-scaled slack
    // here: the abort edge was physically timed (running ranks polled the
    // abort flag in wall-clock time), so each surviving rank completed a
    // few more or fewer sends before stopping. Abort finality (see
    // `mailbox::Quiesce` in `redcr-mpi`) made the abort edge a pure
    // function of virtual time, so these are exact now too.
    assert_eq!(on.physical_messages, off.physical_messages);
    assert_eq!(on.physical_bytes, off.physical_bytes);
}

#[test]
fn metrics_totals_agree_with_report_counters() {
    let report =
        ResilientExecutor::new(storm_config().metrics(true)).run(&cg_app(32, 30, 1.0)).unwrap();
    let m = report.metrics.as_ref().unwrap();
    let t = &m.totals;
    assert_eq!(t.counter(CounterKey::Sends), report.physical_messages);
    assert_eq!(t.counter(CounterKey::BytesSent), report.physical_bytes);
    // Replication stats drop the snapshots of ranks that died mid-attempt;
    // the metrics shard is drained at teardown regardless, so it sees at
    // least as many votes.
    assert!(t.counter(CounterKey::Votes) >= report.replication.votes);
    assert_eq!(t.counter(CounterKey::Attempts), report.attempts);
    assert_eq!(t.counter(CounterKey::Restarts), report.failures);
    assert_eq!(t.counter(CounterKey::MaskedFailures), report.masked_failures);
    assert!(t.counter(CounterKey::CheckpointCommits) > 0);
    assert_eq!(
        t.histogram(HistKey::MessageLatency).count(),
        t.counter(CounterKey::Recvs),
        "every receive observes one latency"
    );
    // Per-rank counters decompose the totals.
    let per_rank_sends: u64 = m.per_rank_counter(CounterKey::Sends).iter().map(|&(_, v)| v).sum();
    assert_eq!(per_rank_sends, report.physical_messages);
}

#[test]
fn scraped_series_is_monotone_and_lands_on_totals() {
    let report =
        ResilientExecutor::new(storm_config().metrics(true)).run(&cg_app(32, 30, 1.0)).unwrap();
    let m = report.metrics.as_ref().unwrap();
    assert!(m.series.len() > 2, "a multi-second run scrapes several samples");

    for key in CounterKey::ALL {
        let mut prev_t = f64::NEG_INFINITY;
        let mut prev_v = 0u64;
        for p in &m.series {
            assert!(p.time >= prev_t, "scrape grid must not go backwards");
            let v = p.counter(key);
            assert!(v >= prev_v, "{}: {} < {} at t={}", key.name(), v, prev_v, p.time);
            prev_t = p.time;
            prev_v = v;
        }
        assert_eq!(
            m.series.last().unwrap().counter(key),
            m.totals.counter(key),
            "{}: final sample must equal the drained total",
            key.name()
        );
    }
}

/// A 3x self-healing run: the storm MTBF with OnDegrade respawns.
fn heal_config() -> ExecutorConfig {
    ExecutorConfig::new(4, 3.0)
        .node_mtbf(60.0)
        .checkpoint_interval(6.0)
        .checkpoint_cost(0.2)
        .restart_cost(1.0)
        .seed(0)
        .heal_policy(redcr::red::HealPolicy::OnDegrade)
        .heartbeat_period(0.5)
        .suspicion_timeout(0.5)
        .respawn_cost(0.5)
        .transfer_cost_per_byte(1e-4)
}

#[test]
fn heal_counters_agree_with_report_and_toggle_is_bit_identical() {
    let app = cg_app(32, 20, 1.0);
    let off = ResilientExecutor::new(heal_config()).run(&app).unwrap();
    let on = ResilientExecutor::new(heal_config().metrics(true)).run(&app).unwrap();
    assert!(on.respawns > 0, "the heal scenario must actually respawn");

    // The metrics plane observes healing without perturbing it.
    assert_eq!(on.total_virtual_time.to_bits(), off.total_virtual_time.to_bits());
    assert_eq!(on.degraded_sphere_seconds.to_bits(), off.degraded_sphere_seconds.to_bits());
    assert_eq!(on.heal_latency_seconds.to_bits(), off.heal_latency_seconds.to_bits());
    assert_eq!(on.recovered_voting_seconds.to_bits(), off.recovered_voting_seconds.to_bits());
    assert_eq!(on.respawns, off.respawns);
    assert_eq!(on.masked_failures, off.masked_failures);

    // The heal counters mirror the report, and every respawn observed one
    // latency sample whose sum is the report's total.
    let t = &on.metrics.as_ref().unwrap().totals;
    assert_eq!(t.counter(CounterKey::Respawns), on.respawns);
    assert_eq!(t.counter(CounterKey::Suspicions), on.respawns, "one suspicion per heal here");
    let h = t.histogram(HistKey::HealLatency);
    assert_eq!(h.count(), on.respawns);
    assert!((h.sum() - on.heal_latency_seconds).abs() < 1e-9);
}

#[test]
fn storm_trace_exports_valid_perfetto_json() {
    let cfg = storm_config().tracing(true);
    let n_physical = (cfg.n_virtual as f64 * cfg.degree).ceil() as usize;
    let report = ResilientExecutor::new(cfg).run(&cg_app(32, 30, 1.0)).unwrap();
    let trace = report.trace.as_ref().unwrap();

    let json = perfetto::export(trace).unwrap();
    let summary = perfetto::validate(&json).expect("export must pass its own validator");
    assert_eq!(summary.rank_tracks, n_physical, "one track per physical rank");
    assert!(summary.flow_pairs >= 1, "at least one matched send/recv flow: {summary}");
    assert!(summary.slices > 0 && summary.instants > 0, "{summary}");
}

#[test]
fn validation_sidecar_alphas_match_analyzer_exactly() {
    let cfg = storm_config().tracing(true).metrics(true);
    let report = ResilientExecutor::new(cfg.clone()).run(&cg_app(32, 30, 1.0)).unwrap();
    let trace = report.trace.as_ref().unwrap();
    let analysis = Analysis::analyze(trace).unwrap();

    let v = ModelValidation::from_run(&cfg, &report).unwrap();
    let expected = &analysis.attempts.last().unwrap().alphas;
    assert_eq!(v.ranks.len(), expected.len());
    for (m, &(rank, alpha)) in v.ranks.iter().zip(expected) {
        assert_eq!(m.rank, rank);
        assert_eq!(m.alpha.to_bits(), alpha.to_bits(), "rank {rank} α must be verbatim");
    }
    assert_eq!(v.failures, report.failures);
    assert_eq!(v.masked_failures, report.masked_failures);
    assert!(v.predicted_total.is_finite() && v.predicted_total > 0.0);
    assert!(v.to_json().contains("\"schema\": \"redcr-model-validation/1\""));
}
