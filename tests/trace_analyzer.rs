//! Flight-recorder integration tests through the `redcr` facade: a seeded
//! storm run's trace, replayed by the analyzer, must reproduce the
//! `ExecutionReport` counters **exactly** — including the floating-point
//! degraded-sphere total — and survive a JSONL round trip unchanged.

use redcr::apps::cg::{CgConfig, CgSolver, CgState};
use redcr::core::{ExecutorConfig, ResilientApp, ResilientExecutor};
use redcr::mpi::Communicator;
use redcr::trace::{Analysis, EventKind, Trace};

struct CgApp {
    solver: CgSolver,
    iterations: u64,
    pad: f64,
}

impl ResilientApp for CgApp {
    type State = CgState;

    fn init<C: Communicator>(&self, comm: &C) -> redcr::mpi::Result<CgState> {
        self.solver.init_state(comm)
    }

    fn step<C: Communicator>(&self, comm: &C, state: &mut CgState) -> redcr::mpi::Result<()> {
        comm.compute(self.pad)?;
        self.solver.step(comm, state)?;
        Ok(())
    }

    fn is_done(&self, state: &CgState) -> bool {
        state.iteration >= self.iterations
    }
}

fn cg_app(n: usize, iterations: u64, pad: f64) -> CgApp {
    CgApp { solver: CgSolver::new(CgConfig::small(n)), iterations, pad }
}

/// A 2x run under harsh MTBF: several restarts, several masked deaths.
fn storm_config() -> ExecutorConfig {
    ExecutorConfig::new(4, 2.0)
        .node_mtbf(25.0)
        .checkpoint_interval(4.0)
        .checkpoint_cost(0.1)
        .restart_cost(0.5)
        .seed(8)
        .tracing(true)
}

#[test]
fn analyzer_totals_match_execution_report_exactly() {
    let report = ResilientExecutor::new(storm_config()).run(&cg_app(32, 30, 1.0)).unwrap();
    assert!(report.failures > 0, "storm run must see failures: {report}");
    assert!(report.masked_failures > 0, "storm run must mask deaths: {report}");
    let trace = report.trace.as_ref().expect("tracing was enabled");
    assert!(!trace.is_empty());

    let analysis = Analysis::analyze(trace).unwrap();
    let totals = analysis.totals();
    // Exact equality, not approximate: the analyzer replays the executor's
    // own accounting from the recorded relative times, in the same order.
    assert_eq!(totals.attempts, report.attempts);
    assert_eq!(totals.failures, report.failures);
    assert_eq!(totals.masked_failures, report.masked_failures);
    assert_eq!(totals.checkpoints_committed, report.checkpoints_committed);
    assert_eq!(
        totals.degraded_sphere_seconds.to_bits(),
        report.degraded_sphere_seconds.to_bits(),
        "degraded time must match bit-for-bit: trace {} vs report {}",
        totals.degraded_sphere_seconds,
        report.degraded_sphere_seconds
    );

    // Send events are recorded at the same site as the physical counters.
    let sends: Vec<&redcr::trace::Event> =
        trace.events.iter().filter(|e| matches!(e.kind, EventKind::Send { .. })).collect();
    assert_eq!(sends.len() as u64, report.physical_messages);
    let bytes: u64 = sends
        .iter()
        .map(|e| match e.kind {
            EventKind::Send { bytes, .. } => bytes,
            _ => unreachable!(),
        })
        .sum();
    assert_eq!(bytes, report.physical_bytes);

    // Votes are recorded alongside the replication statistics, but a rank
    // that fail-stops loses its stats snapshot (the closure returns `Err`)
    // while its recorder is still drained at teardown — so the trace sees
    // at least as many votes as the surviving ranks' aggregate.
    let votes: u64 = analysis.attempts.iter().map(|a| a.votes).sum();
    assert!(
        votes >= report.replication.votes,
        "trace votes {votes} < stats votes {}",
        report.replication.votes
    );

    // Structural sanity of the per-attempt summaries.
    assert_eq!(analysis.spheres.len(), 4);
    assert!(analysis.spheres.iter().all(|s| s.len() == 2), "2x: two replicas per sphere");
    let last = analysis.attempts.last().unwrap();
    assert!(last.completed, "the final attempt completed");
    for a in &analysis.attempts {
        for &(_, alpha) in &a.alphas {
            assert!((0.0..=1.0).contains(&alpha), "alpha out of range: {alpha}");
        }
        for &l in &a.commit_latencies {
            assert!(l >= 0.0, "negative commit latency: {l}");
        }
        assert!(a.end >= a.start);
    }
    // Some failed attempt must have restored from a checkpoint or lost
    // work from scratch; either way lost_work is positive for failures.
    for a in analysis.attempts.iter().filter(|a| !a.completed) {
        assert!(a.lost_work > 0.0, "a failed attempt loses work");
    }
}

#[test]
fn failure_free_trace_matches_stats_exactly() {
    // Without deaths every rank's stats snapshot survives, so the trace's
    // vote count equals the replication aggregate exactly.
    let cfg = ExecutorConfig::new(4, 2.0).tracing(true);
    let report = ResilientExecutor::new(cfg).run(&cg_app(32, 10, 0.0)).unwrap();
    let trace = report.trace.as_ref().unwrap();
    let analysis = Analysis::analyze(trace).unwrap();
    assert_eq!(analysis.attempts.len(), 1);
    let votes: u64 = analysis.attempts.iter().map(|a| a.votes).sum();
    assert_eq!(votes, report.replication.votes);
    let totals = analysis.totals();
    assert_eq!(totals.attempts, 1);
    assert_eq!(totals.failures, 0);
    assert_eq!(totals.masked_failures, 0);
    assert_eq!(totals.degraded_sphere_seconds, 0.0);
}

#[test]
fn jsonl_round_trip_preserves_trace_and_totals() {
    let report = ResilientExecutor::new(storm_config()).run(&cg_app(32, 30, 1.0)).unwrap();
    let trace = report.trace.expect("tracing was enabled");

    let jsonl = trace.to_jsonl();
    assert!(jsonl.lines().count() == trace.events.len());
    let parsed = Trace::from_jsonl(&jsonl).unwrap();
    assert_eq!(parsed, trace, "JSONL round trip must be lossless");

    let a = Analysis::analyze(&parsed).unwrap();
    let totals = a.totals();
    assert_eq!(totals.attempts, report.attempts);
    assert_eq!(totals.masked_failures, report.masked_failures);
    assert_eq!(totals.degraded_sphere_seconds.to_bits(), report.degraded_sphere_seconds.to_bits());
}

#[test]
fn tracing_disabled_leaves_no_trace_and_costs_nothing() {
    let cfg = ExecutorConfig::new(4, 2.0)
        .node_mtbf(25.0)
        .checkpoint_interval(4.0)
        .checkpoint_cost(0.1)
        .restart_cost(0.5)
        .seed(8);
    let plain = ResilientExecutor::new(cfg).run(&cg_app(32, 30, 1.0)).unwrap();
    assert!(plain.trace.is_none());

    // Recording must not perturb the virtual-time simulation.
    let traced = ResilientExecutor::new(storm_config()).run(&cg_app(32, 30, 1.0)).unwrap();
    assert_eq!(plain.total_virtual_time.to_bits(), traced.total_virtual_time.to_bits());
    assert_eq!(plain.attempts, traced.attempts);
    assert_eq!(plain.masked_failures, traced.masked_failures);
    assert_eq!(plain.checkpoints_committed, traced.checkpoints_committed);
}
