//! Tier-1 gate: the workspace must pass its own determinism lints.
//!
//! Runs the full `redcr-lint` pass in-process (no subprocess, no
//! `cargo run`) over the repository root and fails the build if any
//! unsuppressed violation, malformed suppression (missing `reason`), or
//! stale suppression exists. A second test seeds a synthetic violation
//! through [`redcr_lint::lint_source`] to prove the analyzer actually
//! fires — a lint pass that silently matched nothing would otherwise
//! look identical to a clean tree.

use redcr_lint::{lint_source, lint_workspace, Config, Domain};

fn repo_root() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR of a workspace-root integration test is the
    // workspace root itself.
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_is_detlint_clean() {
    let report = lint_workspace(&repo_root()).expect("lint pass runs");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}): exclude list or walk is broken",
        report.files_scanned
    );
    let unsuppressed: Vec<_> = report.unsuppressed().collect();
    assert!(
        unsuppressed.is_empty(),
        "detlint found {} unsuppressed violation(s):\n{}",
        unsuppressed.len(),
        unsuppressed
            .iter()
            .map(|v| format!("  {}:{}: {} — {}", v.file, v.line, v.rule, v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.bad_suppressions.is_empty(),
        "malformed or stale detlint suppressions:\n{}",
        report
            .bad_suppressions
            .iter()
            .map(|b| format!("  {}:{}: {}", b.file, b.line, b.rule))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Every suppression that is in use must carry a reason; the lexer
    // treats reason-less allows as malformed, so reaching here with a
    // non-empty suppression list means they all had one. Sanity-check the
    // invariant anyway.
    for v in &report.violations {
        if let Some(reason) = &v.suppressed {
            assert!(!reason.trim().is_empty(), "{}:{}: empty suppression reason", v.file, v.line);
        }
    }
}

#[test]
fn seeded_wallclock_violation_is_caught() {
    // A virtual-time crate sneaking in a wall-clock read must trip R1
    // with the right rule id and line number.
    let src = "use std::time::Instant;\n\
               \n\
               pub fn now_ms() -> u128 {\n\
                   let t = Instant::now();\n\
                   t.elapsed().as_millis()\n\
               }\n";
    let report = lint_source("crates/simmpi/src/seeded.rs", Domain::Hot, src);
    let r1: Vec<_> = report.unsuppressed().filter(|v| v.rule == "R1").collect();
    assert!(!r1.is_empty(), "seeded Instant usage not caught: {report:?}");
    assert!(
        r1.iter().any(|v| v.line == 1),
        "the `use std::time::Instant` import on line 1 should be flagged: {r1:?}"
    );
    assert!(
        r1.iter().any(|v| v.line == 4),
        "the `Instant::now()` call on line 4 should be flagged: {r1:?}"
    );
    assert!(!report.is_clean(), "report with unsuppressed violations must not be clean");
}

#[test]
fn prof_is_wallclock_but_everything_else_stays_strict() {
    // The profiler crate is the sanctioned home of `Instant` reads; the
    // shipped detlint.toml must map it to the wallclock domain — and that
    // exemption must not widen. A wall-clock read in any virtual-time
    // crate still fires R1 under the *loaded* config, not a hardcoded
    // domain, so a botched detlint.toml edit fails this test.
    let cfg = Config::load(&repo_root().join("detlint.toml")).expect("detlint.toml parses");
    assert_eq!(cfg.domain_for(std::path::Path::new("crates/prof/src/shard.rs")), Domain::Wallclock);
    assert_eq!(
        cfg.domain_for(std::path::Path::new("crates/bench/src/runtime.rs")),
        Domain::Wallclock
    );
    for strict in
        ["simmpi", "sched", "redundancy", "checkpoint", "core", "trace", "metrics", "sweep"]
    {
        let rel = format!("crates/{strict}/src/lib.rs");
        let domain = cfg.domain_for(std::path::Path::new(&rel));
        assert_ne!(domain, Domain::Wallclock, "{strict} must not be wallclock");
        let report = lint_source(&rel, domain, "fn t() { let _ = std::time::Instant::now(); }\n");
        assert!(
            report.unsuppressed().any(|v| v.rule == "R1"),
            "Instant read in {rel} ({}) did not fire R1",
            domain.name()
        );
    }
}

#[test]
fn sched_is_hot_and_every_rule_fires_inside_it() {
    // The M:N scheduler crate joins simmpi/redundancy in the `hot`
    // domain: it runs on the rank hot path (every mailbox park crosses
    // it), so the full rule set must demonstrably fire on its paths —
    // a domain mapping that silently fell back to `virtual` would let
    // hot-only rules (R4) rot.
    let cfg = Config::load(&repo_root().join("detlint.toml")).expect("detlint.toml parses");
    let path = "crates/sched/src/seeded.rs";
    let domain = cfg.domain_for(std::path::Path::new(path));
    assert_eq!(domain, Domain::Hot, "crates/sched must map to the hot domain");

    // R1: wall-clock reads.
    let r = lint_source(
        path,
        domain,
        "fn t() -> u128 { std::time::Instant::now().elapsed().as_millis() }\n",
    );
    assert!(r.unsuppressed().any(|v| v.rule == "R1"), "R1 silent in sched: {r:?}");

    // R2: randomized-iteration-order containers.
    let r = lint_source(
        path,
        domain,
        "use std::collections::HashMap;\nfn t(m: &HashMap<u32, u32>) -> u32 { m.values().sum() }\n",
    );
    assert!(r.unsuppressed().any(|v| v.rule == "R2"), "R2 silent in sched: {r:?}");

    // R3: unseeded entropy (a randomized steal order would desync runs).
    let r =
        lint_source(path, domain, "fn victim(w: usize) -> usize { rand::random::<usize>() % w }\n");
    assert!(r.unsuppressed().any(|v| v.rule == "R3"), "R3 silent in sched: {r:?}");

    // R4 (hot-only): panics and unwraps on the rank path.
    let r = lint_source(path, domain, "fn pop(q: &mut Vec<usize>) -> usize { q.pop().unwrap() }\n");
    assert!(r.unsuppressed().any(|v| v.rule == "R4"), "R4 silent in sched: {r:?}");

    // R5: a lock-order cycle between two scheduler-shaped lock classes.
    let r = lint_source(
        path,
        domain,
        "fn push(&self) { let q = self.queue.lock(); let i = self.injector.lock(); }\n\
         fn drain(&self) { let i = self.injector.lock(); let q = self.queue.lock(); }\n",
    );
    assert!(r.unsuppressed().any(|v| v.rule == "R5"), "R5 silent in sched: {r:?}");
    assert!(
        r.lock_classes.iter().any(|c| c.contains("queue")),
        "lock classes should name the fixture's queue: {:?}",
        r.lock_classes
    );

    // R6: Relaxed atomics (the wake protocol's ordering is load-bearing).
    let r = lint_source(
        path,
        domain,
        "use std::sync::atomic::{AtomicU8, Ordering};\n\
         fn peek(s: &AtomicU8) -> u8 { s.load(Ordering::Relaxed) }\n",
    );
    assert!(r.unsuppressed().any(|v| v.rule == "R6"), "R6 silent in sched: {r:?}");
}

#[test]
fn seeded_violation_in_wallclock_domain_is_fine() {
    // The same source is legal in the bench (wallclock) domain.
    let src = "use std::time::Instant;\npub fn t() -> Instant { Instant::now() }\n";
    let report = lint_source("crates/bench/src/seeded.rs", Domain::Wallclock, src);
    assert!(report.is_clean(), "wallclock domain must allow Instant: {report:?}");
}

#[test]
fn interprocedural_rules_fire_through_lint_source() {
    // Minimal seeded programs proving each interprocedural rule actually
    // analyzes: a lint pass whose parser or resolver regressed to seeing
    // nothing would pass the clean-workspace gate by accident.
    let path = "crates/sched/src/seeded.rs";

    // R7: a resolved park behind one call, under a live guard.
    let r = lint_source(
        path,
        Domain::Hot,
        "fn park_current() {}\n\
         fn wait() { park_current(); }\n\
         struct S { q: Mutex<u32> }\n\
         impl S { fn bad(&self) { let g = self.q.lock(); wait(); drop(g); } }\n",
    );
    assert!(r.unsuppressed().any(|v| v.rule == "R7"), "R7 silent: {r:?}");

    // R8: blocking I/O two calls below a coroutine root.
    let r = lint_source(
        path,
        Domain::Hot,
        "fn persist() { std::fs::write(\"x\", b\"y\").ok(); }\n\
         fn snapshot() { persist(); }\n\
         fn spawn(pool: &Pool) { pool.run_batch(|| { snapshot(); }); }\n",
    );
    assert!(r.unsuppressed().any(|v| v.rule == "R8"), "R8 silent: {r:?}");

    // R9: a root whose chain exceeds the default 128 KiB budget.
    let r = lint_source(
        path,
        Domain::Hot,
        "fn deep() { let b: [u8; 300_000] = [0u8; 300_000]; let _ = b[0]; }\n\
         fn spawn(pool: &Pool) { pool.run_batch(|| { deep(); }); }\n",
    );
    assert!(r.unsuppressed().any(|v| v.rule == "R9" && !v.advisory), "R9 silent: {r:?}");

    // R10: a spin loop on the coroutine path.
    let r = lint_source(
        path,
        Domain::Hot,
        "fn spawn(pool: &Pool) { pool.run_batch(|| { let mut n = 0u64; loop { n += 1; } }); }\n",
    );
    assert!(r.unsuppressed().any(|v| v.rule == "R10"), "R10 silent: {r:?}");
}

#[test]
fn workspace_callgraph_artifact_is_sound() {
    // The interprocedural pass must produce a non-trivial artifact for
    // the real workspace: the coroutine roots are the world/executor rank
    // closures, every root gets a finite stack bound, and that bound
    // stays under the configured budget (this is the static justification
    // for the 128 KiB REDCR_STACK_KB default).
    let root = repo_root();
    let cfg = Config::load(&root.join("detlint.toml")).expect("detlint.toml parses");
    let report = lint_workspace(&root).expect("lint pass runs");
    let cg = &report.callgraph;
    assert!(cg.functions > 500, "suspiciously small parse: {} functions", cg.functions);
    assert!(cg.edges.len() > 500, "suspiciously sparse resolution: {} edges", cg.edges.len());
    assert!(
        cg.roots.len() >= 3,
        "the world rank closures and the executor segment closure must be roots: {:#?}",
        cg.roots
    );
    for r in &cg.roots {
        assert!(!r.recursive, "coroutine root {} is recursion-poisoned", r.root);
        assert!(r.bound_bytes > 0 && r.frames > 0, "degenerate bound for {}: {r:#?}", r.root);
        assert!(
            r.bound_bytes <= cfg.stack_budget_kb * 1024,
            "root {} bound {} exceeds the {} KiB budget the runtime default is built on",
            r.root,
            r.bound_bytes,
            cfg.stack_budget_kb
        );
    }
    assert!(cg.max_bound_bytes() > 0);
    // The JSONL artifact serializes with one summary line.
    let jsonl = cg.to_jsonl();
    assert!(jsonl.lines().any(|l| l.contains("\"kind\":\"summary\"")), "no summary line");
    assert_eq!(
        jsonl.lines().filter(|l| l.contains("\"kind\":\"root\"")).count(),
        cg.roots.len(),
        "artifact root lines must match the report"
    );
}

#[test]
fn unknown_rule_in_allow_fails_the_run() {
    // Satellite guard for the rule registry: an allow naming a rule id
    // that does not exist (typo, or a retired rule) must fail the run
    // rather than rot silently.
    let src = "// detlint::allow(R99, reason = \"typo'd rule id\")\n\
               fn fine() {}\n";
    let report = lint_source("crates/sched/src/seeded.rs", Domain::Hot, src);
    assert!(!report.is_clean(), "unknown rule id must fail: {report:?}");
    assert!(
        report.bad_suppressions.iter().any(|b| b.unknown_rule),
        "unknown-rule flag not set: {:#?}",
        report.bad_suppressions
    );
}
