//! Worker-count independence gate for the M:N rank scheduler.
//!
//! The scheduler (DESIGN.md §4j) multiplexes rank coroutines onto a
//! work-stealing pool; the pool's width is a host-side throughput knob
//! and **must not** be able to change a single virtual quantity. This
//! gate reruns the determinism-gate scenario with the worker count
//! pinned to 1 (pure event loop, no stealing possible), 2 (the smallest
//! pool where cross-worker wakes and steals exist), and 8 (one worker
//! per virtual rank — maximally oversubscribed relative to this host),
//! and asserts the same pre-swap pinned constants bit-for-bit — report
//! totals AND the full trace FNV.
//!
//! A second test is a seeded steal storm: an oversubscribed CG run at a
//! worker count far above the host's cores, where tasks yield and park
//! constantly, compared bit-for-bit against the single-worker run of
//! the same scenario. No pinned constants there — the property is
//! pool-width invariance itself, on a scenario shaped to maximize
//! scheduler interleaving churn.

use redcr_apps::cg::{CgConfig, CgState};
use redcr_core::apps::CgApp;
use redcr_core::{ExecutorConfig, ResilientExecutor};

/// FNV-1a over the JSONL bytes — matches `tests/determinism_gate.rs`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The determinism-gate scenario with the scheduler pinned to `workers`.
fn gate_run_at(workers: usize) -> redcr_core::ExecutionReport<CgState> {
    let cfg = ExecutorConfig::new(8, 2.0)
        .node_mtbf(150.0)
        .checkpoint_interval(10.0)
        .checkpoint_cost(0.5)
        .restart_cost(2.0)
        .seed(7)
        .tracing(true)
        .workers(workers);
    let app = CgApp::new(CgConfig::small(256), 40).with_step_pad(1.0);
    ResilientExecutor::new(cfg).run(&app).expect("gate run")
}

// Identical constants to tests/determinism_gate.rs — captured on the
// pre-swap thread-per-rank executor, before the scheduler existed.
const PRE_SWAP_TOTAL_BITS: u64 = 0x4044c01fa3bce69a;
const PRE_SWAP_DEGRADED_BITS: u64 = 0x405276e3bd7a12a0;
const PRE_SWAP_TRACE_LINES: usize = 20263;
const PRE_SWAP_TRACE_FNV: u64 = 0xade83d686de079ae;

fn assert_pinned(report: &redcr_core::ExecutionReport<CgState>, workers: usize) {
    assert_eq!(report.total_virtual_time.to_bits(), PRE_SWAP_TOTAL_BITS, "workers={workers}");
    assert_eq!(
        report.degraded_sphere_seconds.to_bits(),
        PRE_SWAP_DEGRADED_BITS,
        "workers={workers}"
    );
    assert_eq!(report.attempts, 1, "workers={workers}");
    assert_eq!(report.failures, 0, "workers={workers}");
    assert_eq!(report.masked_failures, 3, "workers={workers}");
    assert_eq!(report.checkpoints_committed, 3, "workers={workers}");
    assert_eq!(report.physical_messages, 7911, "workers={workers}");
    assert_eq!(report.physical_bytes, 2_353_184, "workers={workers}");
    let trace = report.trace.as_ref().expect("tracing was on");
    let jsonl = trace.to_jsonl();
    assert_eq!(jsonl.lines().count(), PRE_SWAP_TRACE_LINES, "workers={workers}");
    assert_eq!(
        fnv1a(jsonl.as_bytes()),
        PRE_SWAP_TRACE_FNV,
        "workers={workers}: pool width leaked into the trace bytes"
    );
}

#[test]
fn gate_is_bit_identical_at_one_two_and_eight_workers() {
    for workers in [1usize, 2, 8] {
        let report = gate_run_at(workers);
        assert_pinned(&report, workers);
    }
}

#[test]
fn steal_storm_matches_single_worker_bit_for_bit() {
    // 16 virtual ranks at r = 2 → 32 rank tasks on a 16-worker pool:
    // every worker juggles parked tasks, steals fire on every idle scan,
    // and cross-worker wakes dominate. Seeded failures keep the failover
    // and re-vote paths in play while the pool is churning.
    let run = |workers: usize| {
        let cfg = ExecutorConfig::new(16, 2.0)
            .node_mtbf(200.0)
            .checkpoint_interval(15.0)
            .checkpoint_cost(0.5)
            .restart_cost(2.0)
            .seed(2012)
            .tracing(true)
            .workers(workers);
        let app = CgApp::new(CgConfig::small(128), 24).with_step_pad(1.0);
        ResilientExecutor::new(cfg).run(&app).expect("steal-storm run")
    };
    let narrow = run(1);
    let wide = run(16);
    assert_eq!(narrow.total_virtual_time.to_bits(), wide.total_virtual_time.to_bits());
    assert_eq!(narrow.degraded_sphere_seconds.to_bits(), wide.degraded_sphere_seconds.to_bits());
    assert_eq!(narrow.attempts, wide.attempts);
    assert_eq!(narrow.masked_failures, wide.masked_failures);
    assert_eq!(narrow.checkpoints_committed, wide.checkpoints_committed);
    assert_eq!(narrow.physical_messages, wide.physical_messages);
    assert_eq!(narrow.physical_bytes, wide.physical_bytes);
    let (nt, wt) = (narrow.trace.expect("traced"), wide.trace.expect("traced"));
    let (nj, wj) = (nt.to_jsonl(), wt.to_jsonl());
    assert_eq!(
        fnv1a(nj.as_bytes()),
        fnv1a(wj.as_bytes()),
        "a 16-worker steal storm produced different trace bytes than one worker"
    );
}
