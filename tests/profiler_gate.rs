//! Tier-1 gate for the dual-clock profiler.
//!
//! The wall-clock profiling plane must be *virtually invisible*: enabling
//! it may only add host-clock bookkeeping, never perturb a single virtual
//! quantity. This gate reruns the determinism-gate scenario (see
//! `tests/determinism_gate.rs`) with `profiling(true)` and asserts the
//! same pre-swap pinned constants bit-for-bit — report totals AND the
//! full trace FNV. Since the pins were captured with the profiler absent,
//! holding them with the profiler on proves both directions at once:
//! off is bit-identical to the seed, and on is bit-identical to off.
//!
//! The same file hosts the virtual-time side's acceptance checks: the
//! critical-path analyzer's total must replay the executor's
//! `total_virtual_time` bit-exactly from the trace alone, and the
//! profiler's wall-clock overhead must stay bounded.

// The bounded-overhead test times real runs with the host clock; this
// integration test is in the detlint `test` domain and opts out of the
// workspace-wide clippy wall-clock ban the same way crates/prof does.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use redcr_apps::cg::{CgConfig, CgState};
use redcr_core::apps::CgApp;
use redcr_core::{ExecutorConfig, ResilientExecutor};
use redcr_mpi::prof::{CounterKey, SpanKey};
use redcr_trace::{Analysis, CriticalPath};

/// FNV-1a over the JSONL bytes — matches `tests/determinism_gate.rs`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The determinism-gate scenario with the profiler switched ON.
fn profiled_gate_run() -> redcr_core::ExecutionReport<CgState> {
    let cfg = ExecutorConfig::new(8, 2.0)
        .node_mtbf(150.0)
        .checkpoint_interval(10.0)
        .checkpoint_cost(0.5)
        .restart_cost(2.0)
        .seed(7)
        .tracing(true)
        .profiling(true);
    let app = CgApp::new(CgConfig::small(256), 40).with_step_pad(1.0);
    ResilientExecutor::new(cfg).run(&app).expect("profiled gate run")
}

// Identical constants to tests/determinism_gate.rs — captured on the
// pre-swap mailbox, long before the profiler existed.
const PRE_SWAP_TOTAL_BITS: u64 = 0x4044c01fa3bce69a;
const PRE_SWAP_DEGRADED_BITS: u64 = 0x405276e3bd7a12a0;
const PRE_SWAP_TRACE_LINES: usize = 20263;
const PRE_SWAP_TRACE_FNV: u64 = 0xade83d686de079ae;

#[test]
fn profiler_on_keeps_every_pinned_virtual_quantity_bit_for_bit() {
    let report = profiled_gate_run();
    assert_eq!(report.total_virtual_time.to_bits(), PRE_SWAP_TOTAL_BITS);
    assert_eq!(report.degraded_sphere_seconds.to_bits(), PRE_SWAP_DEGRADED_BITS);
    assert_eq!(report.attempts, 1);
    assert_eq!(report.failures, 0);
    assert_eq!(report.masked_failures, 3);
    assert_eq!(report.checkpoints_committed, 3);
    assert_eq!(report.physical_messages, 7911);
    assert_eq!(report.physical_bytes, 2_353_184);

    let trace = report.trace.as_ref().expect("tracing was on");
    let jsonl = trace.to_jsonl();
    assert_eq!(jsonl.lines().count(), PRE_SWAP_TRACE_LINES);
    assert_eq!(
        fnv1a(jsonl.as_bytes()),
        PRE_SWAP_TRACE_FNV,
        "profiler-on run changed the trace bytes — the wall-clock plane leaked into virtual time"
    );

    // And the profiler actually measured something: it must not pass the
    // bit-identity gate by virtue of being disconnected.
    let prof = report.profile.as_ref().expect("profiling was on");
    let sends = prof.total_span(SpanKey::MailboxSend);
    let waits = prof.total_span(SpanKey::MailboxRecvWait);
    assert!(sends.count > 0, "no mailbox sends recorded: {sends:?}");
    assert!(waits.count > 0, "no recv waits recorded: {waits:?}");
    assert_eq!(prof.total_counter(CounterKey::Sends), sends.count);
    assert!(prof.total_span(SpanKey::ExecutorSegment).count > 0);
    assert!(prof.scope("driver").is_some(), "driver scope missing");
    assert!(prof.scope("rank0").is_some(), "rank shards not absorbed");
}

#[test]
fn profiler_off_report_carries_no_profile() {
    // The default config must not even allocate the profiling plane.
    let cfg = ExecutorConfig::new(4, 1.0).node_mtbf(1e12).seed(3);
    let app = CgApp::new(CgConfig::small(64), 5);
    let report = ResilientExecutor::new(cfg).run(&app).expect("plain run");
    assert!(report.profile.is_none(), "profile present without profiling(true)");
}

#[test]
fn critical_path_replays_report_total_bit_for_bit() {
    let report = profiled_gate_run();
    let analysis =
        Analysis::analyze(report.trace.as_ref().expect("tracing on")).expect("trace replays");
    let path = CriticalPath::analyze(&analysis);

    // Acceptance criterion: the analyzer's total is the executor's total,
    // bit-for-bit, reconstructed from trace events alone.
    assert_eq!(
        path.total_virtual_time.to_bits(),
        report.total_virtual_time.to_bits(),
        "critical-path total diverged from ExecutionReport::total_virtual_time"
    );

    // The path telescopes: contiguous steps from attempt start to end, so
    // the blame categories partition the attempt's whole makespan.
    let attempt = path.attempts.last().expect("one attempt");
    assert!(attempt.completed);
    let steps = &attempt.steps;
    assert!(!steps.is_empty());
    for pair in steps.windows(2) {
        assert_eq!(
            pair[0].to_time.to_bits(),
            pair[1].from_time.to_bits(),
            "critical path has a gap: {pair:?}"
        );
    }
    let span = steps.last().unwrap().to_time - steps[0].from_time;
    let blame_sum: f64 = attempt.path_blame().iter().sum();
    assert!(
        (blame_sum - span).abs() <= 1e-9 * span.max(1.0),
        "blame categories ({blame_sum}) do not partition the path span ({span})"
    );
    assert!(
        (span - attempt.rel_end).abs() <= 1e-9 * attempt.rel_end.max(1.0),
        "path span ({span}) != executor rel_end ({})",
        attempt.rel_end
    );

    // The derived α is a proper fraction and agrees with the per-rank
    // partition it is defined over.
    let alpha = path.blame_alpha().expect("completed attempt has α");
    assert!((0.0..=1.0).contains(&alpha), "α out of range: {alpha}");
    assert!(alpha > 0.0, "CG with live failures cannot have zero blocked time");
}

#[test]
fn profiler_overhead_is_bounded() {
    use std::time::Instant;

    // A profiled run may not cost more than a small multiple of the same
    // unprofiled run. The bound is deliberately loose (shared CI boxes)
    // while still catching pathological regressions — e.g. a lock on the
    // span hot path — which show up as 10–100x, not 3x.
    let run = |profiling: bool| {
        let cfg = ExecutorConfig::new(8, 1.0)
            .node_mtbf(1e12)
            .checkpoint_interval(50.0)
            .seed(11)
            .profiling(profiling);
        let app = CgApp::new(CgConfig::small(128), 30);
        let t0 = Instant::now();
        let report = ResilientExecutor::new(cfg).run(&app).expect("overhead run");
        (t0.elapsed(), report.total_virtual_time.to_bits())
    };
    // Warm-up evens out first-run allocator/pagecache effects.
    let _ = run(false);
    let (plain, plain_bits) = run(false);
    let (profiled, profiled_bits) = run(true);
    assert_eq!(plain_bits, profiled_bits, "overhead scenario not bit-identical");
    let limit = plain * 3 + std::time::Duration::from_secs(2);
    assert!(profiled <= limit, "profiled run took {profiled:?}, limit {limit:?} (plain {plain:?})");
}
