//! End-to-end self-healing acceptance: a 3× replicated CG run loses
//! replicas (3→2), the heartbeat detector flags them, the executor
//! respawns each from a surviving donor's checkpoint image and replays the
//! virtual map (2→3), and the run finishes bit-deterministically with the
//! trace analyzer reproducing every heal total exactly.

use redcr::red::HealPolicy;
use redcr_apps::cg::CgConfig;
use redcr_core::apps::CgApp;
use redcr_core::validation::ModelValidation;
use redcr_core::{ExecutionReport, ExecutorConfig, ResilientExecutor};
use redcr_trace::{Analysis, EventKind};

/// FNV-1a over the JSONL bytes — tiny, dependency-free, and stable.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn heal_cfg(policy: HealPolicy) -> ExecutorConfig {
    ExecutorConfig::new(4, 3.0)
        .node_mtbf(60.0)
        .checkpoint_interval(6.0)
        .checkpoint_cost(0.2)
        .restart_cost(1.0)
        .seed(0)
        .tracing(true)
        .heal_policy(policy)
        .heartbeat_period(0.5)
        .suspicion_timeout(0.5)
        .respawn_cost(0.5)
        .transfer_cost_per_byte(1e-4)
}

fn heal_run(policy: HealPolicy) -> ExecutionReport<redcr_apps::cg::CgState> {
    let app = CgApp::new(CgConfig::small(32), 20).with_step_pad(1.0);
    ResilientExecutor::new(heal_cfg(policy)).run(&app).expect("heal run")
}

#[test]
fn heals_3_to_2_to_3_and_returns_to_full_voting() {
    let report = heal_run(HealPolicy::OnDegrade);

    // The run really healed: replicas died, were respawned, and the job
    // completed without a single restart.
    assert_eq!(report.attempts, 1, "healing must avoid restarts here");
    assert_eq!(report.failures, 0);
    assert!(report.respawns >= 1, "a replica must have been respawned");
    assert!(report.heal_latency_seconds > 0.0);
    assert!(report.recovered_voting_seconds > 0.0);
    assert!(report.masked_failures >= report.respawns, "every healed death was masked");
    for state in &report.final_states {
        assert_eq!(state.iteration, 20);
    }

    // The trace narrates the full 3→2→3 cycle: a heartbeat miss, a respawn
    // begin/commit pair, and a rejoin that restores r = 3 voting.
    let trace = report.trace.as_ref().expect("tracing was on");
    let mut misses = 0u64;
    let mut begins = 0u64;
    let mut commits = 0u64;
    let mut rejoins = 0u64;
    for e in &trace.events {
        match &e.kind {
            EventKind::HeartbeatMiss { .. } => misses += 1,
            EventKind::RespawnBegin { .. } => begins += 1,
            EventKind::RespawnCommit { rel, latency, .. } => {
                assert!(*rel > 0.0 && *latency > 0.0);
                commits += 1;
            }
            EventKind::RejoinVote { copies, .. } => {
                assert_eq!(*copies, 3, "rejoin must restore full 3x voting");
                rejoins += 1;
            }
            _ => {}
        }
    }
    assert_eq!(misses, report.respawns);
    assert_eq!(begins, report.respawns);
    assert_eq!(commits, report.respawns);
    assert_eq!(rejoins, report.respawns);

    // Healed execution is transparent to the numerics: bitwise identical
    // to a failure-free unreplicated run.
    let clean = ResilientExecutor::new(ExecutorConfig::new(4, 1.0))
        .run(&CgApp::new(CgConfig::small(32), 20))
        .expect("clean run");
    for (a, b) in report.final_states.iter().zip(&clean.final_states) {
        assert_eq!(a.iteration, b.iteration);
        for (x, y) in a.x.iter().zip(&b.x) {
            assert_eq!(x.to_bits(), y.to_bits(), "bitwise identical despite healing");
        }
    }
}

#[test]
fn analyzer_reproduces_heal_totals_bit_for_bit() {
    let report = heal_run(HealPolicy::OnDegrade);
    let analysis = Analysis::analyze(report.trace.as_ref().unwrap()).expect("replay");
    let totals = analysis.totals();
    assert_eq!(totals.attempts, report.attempts);
    assert_eq!(totals.failures, report.failures);
    assert_eq!(totals.masked_failures, report.masked_failures);
    assert_eq!(totals.checkpoints_committed, report.checkpoints_committed);
    assert_eq!(totals.respawns, report.respawns);
    assert_eq!(
        totals.degraded_sphere_seconds.to_bits(),
        report.degraded_sphere_seconds.to_bits(),
        "degraded accounting must replay exactly"
    );
    assert_eq!(
        totals.heal_latency_seconds.to_bits(),
        report.heal_latency_seconds.to_bits(),
        "heal latency must replay exactly"
    );
    assert_eq!(
        totals.recovered_voting_seconds.to_bits(),
        report.recovered_voting_seconds.to_bits(),
        "recovered voting time must replay exactly"
    );
    // The heal stall the validation layer charges is visible in the replay.
    let stall: f64 = analysis.attempts.iter().map(|a| a.heal_stall_seconds).sum();
    assert!(stall > 0.0, "respawn+transfer stall must be measured");
}

#[test]
fn healing_run_is_bit_deterministic() {
    let a = heal_run(HealPolicy::OnDegrade);
    let b = heal_run(HealPolicy::OnDegrade);
    assert_eq!(a.total_virtual_time.to_bits(), b.total_virtual_time.to_bits());
    assert_eq!(a.degraded_sphere_seconds.to_bits(), b.degraded_sphere_seconds.to_bits());
    assert_eq!(a.heal_latency_seconds.to_bits(), b.heal_latency_seconds.to_bits());
    assert_eq!(a.recovered_voting_seconds.to_bits(), b.recovered_voting_seconds.to_bits());
    assert_eq!(a.respawns, b.respawns);
    let ja = a.trace.as_ref().unwrap().to_jsonl();
    let jb = b.trace.as_ref().unwrap().to_jsonl();
    assert_eq!(fnv1a(ja.as_bytes()), fnv1a(jb.as_bytes()), "trace FNV must repeat");
    assert_eq!(ja, jb);
}

#[test]
fn healed_run_is_strictly_less_degraded_than_never() {
    // Satellite regression: `degraded_sphere_seconds` stops accruing at the
    // heal commit, so a healed run must be strictly less degraded than the
    // same seed left to limp along under `Never`.
    let healed = heal_run(HealPolicy::OnDegrade);
    let never = heal_run(HealPolicy::Never);
    assert_eq!(never.respawns, 0);
    assert_eq!(never.heal_latency_seconds, 0.0);
    assert_eq!(never.recovered_voting_seconds, 0.0);
    assert!(healed.respawns > 0);
    assert!(
        healed.degraded_sphere_seconds < never.degraded_sphere_seconds,
        "healed {} must be strictly below never {}",
        healed.degraded_sphere_seconds,
        never.degraded_sphere_seconds
    );
}

#[test]
fn at_checkpoint_policy_heals_at_quiesce_points() {
    let report = heal_run(HealPolicy::AtCheckpoint);
    assert_eq!(report.attempts, 1);
    assert!(report.respawns >= 1, "AtCheckpoint must still heal this schedule");
    for state in &report.final_states {
        assert_eq!(state.iteration, 20);
    }
    // Deterministic too.
    let again = heal_run(HealPolicy::AtCheckpoint);
    assert_eq!(report.total_virtual_time.to_bits(), again.total_virtual_time.to_bits());
}

#[test]
fn healing_run_validates_against_repair_extended_model() {
    // The repair-extended Eqs. 9–14 chain covers healing runs: μ is
    // measured from the run and the predicted total stays within the
    // existing 20% validation gate.
    let report = heal_run(HealPolicy::OnDegrade);
    let v = ModelValidation::from_run(&heal_cfg(HealPolicy::OnDegrade), &report).expect("validate");
    assert_eq!(v.respawns, report.respawns);
    assert!(v.repair_rate > 0.0, "measured repair rate must be positive");
    assert!(v.heal_stall_seconds > 0.0);
    assert!(
        v.relative_error.abs() < 0.2,
        "repair-extended model off by {:+.1}% (predicted {:.3} vs observed {:.3})",
        v.relative_error * 100.0,
        v.predicted_total,
        v.observed_total
    );
    // The sidecar carries the heal block.
    let json = v.to_json();
    assert!(json.contains("\"respawns\""));
    assert!(json.contains("\"repair_rate\""));
    assert!(json.contains("\"heal_stall_seconds\""));
}
