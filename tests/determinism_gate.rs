//! Determinism gate for the simmpi delivery-path overhaul.
//!
//! The channel-indexed mailbox (per-(source, wire-tag) FIFO queues with a
//! global arrival sequence number, targeted wakeups) must not change any
//! virtual-time result. This test pins, bit-for-bit, the `ExecutionReport`
//! totals and the JSONL flight-recorder trace of a CG run **with live
//! failures at r=2** as they were produced by the flat `Mutex<VecDeque>`
//! mailbox *before* the swap. The constants below were captured on that
//! baseline (30/30 identical runs) and must keep holding afterwards.
//!
//! Scenario notes: the run injects three node deaths, all masked by the
//! r=2 replicas (live failover, degraded spheres, three committed
//! checkpoints) in a single attempt. Runs whose failure *forces a
//! restart* are excluded on purpose: when these constants were captured,
//! the restart path had a wall-clock race (running ranks polled the
//! physically-timed abort flag, so the abort edge cut each attempt at a
//! host-timing-dependent point), and those traces were not byte-stable
//! even before the mailbox swap. That race has since been fixed by abort
//! finality (`mailbox::Quiesce`; `tests/abort_determinism.rs` pins the
//! restart path bit-exactly on both backends), but this gate keeps the
//! abort-free scenario so its constants stay comparable with the
//! original flat-mailbox baseline. What it proves is that the delivery
//! path is semantics-preserving where the old path was deterministic.

use redcr_apps::cg::{CgConfig, CgState};
use redcr_core::apps::CgApp;
use redcr_core::{ExecutorConfig, ResilientExecutor};
use redcr_trace::Trace;

/// FNV-1a over the JSONL bytes — tiny, dependency-free, and stable.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn gate_run() -> redcr_core::ExecutionReport<CgState> {
    let cfg = ExecutorConfig::new(8, 2.0)
        .node_mtbf(150.0)
        .checkpoint_interval(10.0)
        .checkpoint_cost(0.5)
        .restart_cost(2.0)
        .seed(7)
        .tracing(true);
    let app = CgApp::new(CgConfig::small(256), 40).with_step_pad(1.0);
    ResilientExecutor::new(cfg).run(&app).expect("gate run")
}

// Captured on the pre-swap mailbox (flat Mutex<VecDeque>, notify_all),
// 30/30 identical repetitions.
const PRE_SWAP_TOTAL_BITS: u64 = 0x4044c01fa3bce69a; // 41.500965564 s
const PRE_SWAP_DEGRADED_BITS: u64 = 0x405276e3bd7a12a0; // 73.857650155 s
const PRE_SWAP_TRACE_LINES: usize = 20263;
const PRE_SWAP_TRACE_FNV: u64 = 0xade83d686de079ae;

#[test]
fn report_totals_match_pre_swap_capture_bit_for_bit() {
    let report = gate_run();
    assert_eq!(report.total_virtual_time.to_bits(), PRE_SWAP_TOTAL_BITS);
    assert_eq!(report.degraded_sphere_seconds.to_bits(), PRE_SWAP_DEGRADED_BITS);
    assert_eq!(report.attempts, 1);
    assert_eq!(report.failures, 0);
    assert_eq!(report.masked_failures, 3);
    assert_eq!(report.checkpoints_committed, 3);
    assert_eq!(report.physical_messages, 7911);
    assert_eq!(report.physical_bytes, 2_353_184);
}

#[test]
fn trace_jsonl_matches_pre_swap_capture_and_round_trips() {
    let report = gate_run();
    let trace = report.trace.as_ref().expect("tracing was on");
    let jsonl = trace.to_jsonl();
    assert_eq!(jsonl.lines().count(), PRE_SWAP_TRACE_LINES);
    assert_eq!(
        fnv1a(jsonl.as_bytes()),
        PRE_SWAP_TRACE_FNV,
        "trace JSONL bytes differ from the pre-swap capture"
    );
    // redcr-trace round-trip: parsing the pinned bytes and re-rendering
    // them must reproduce the same bytes, so the hash pins the *trace*,
    // not an accident of the serializer.
    let reparsed = Trace::from_jsonl(&jsonl).expect("round-trip parse");
    assert_eq!(reparsed.to_jsonl(), jsonl);
}

#[test]
fn gate_scenario_is_run_to_run_deterministic() {
    // Two in-process runs (fresh executor each) must agree byte-for-byte —
    // guards against wall-clock scheduling leaking into virtual time
    // independently of the pinned constants above.
    let a = gate_run();
    let b = gate_run();
    assert_eq!(a.total_virtual_time.to_bits(), b.total_virtual_time.to_bits());
    assert_eq!(a.trace.as_ref().unwrap().to_jsonl(), b.trace.as_ref().unwrap().to_jsonl());
}
