//! Tier-1 gate: the restart (abort) path is bit-deterministic on *both*
//! execution backends.
//!
//! Historically the abort edge was physically timed: the world-abort flag
//! is raised at a wall-clock instant (whichever rank escalates
//! `SphereDead` first), and running ranks polled it in `check_abort`, so
//! each stopped after a host-timing-dependent number of sends — physical
//! message counts on `cg_resilient` varied run-to-run under
//! `REDCR_EXEC=threads`. The fix (see `mailbox::Quiesce` in `redcr-mpi`)
//! removes the poll from running ranks entirely and lets parked ranks
//! observe the abort only once it is *final* (no rank can ever push
//! again), making the final mailbox state — and therefore every physical
//! counter — a pure function of virtual time.
//!
//! This test pins exactly the `cg_resilient` example scenario (restarts
//! included) and requires bit-identical reports across repeated runs on
//! the coroutine backend, the threads backend, and *between* the two.

use redcr::apps::cg::CgConfig;
use redcr::core::apps::CgApp;
use redcr::core::{ExecutorConfig, ResilientExecutor};

/// A run's complete observable fingerprint. Everything is compared
/// bit-exactly (f64s via `to_bits`).
#[derive(Debug, PartialEq)]
struct Fingerprint {
    attempts: u64,
    failures: u64,
    physical_messages: u64,
    physical_bytes: u64,
    total_virtual_time_bits: u64,
    final_iteration: u64,
    final_residual_bits: u64,
}

fn run_cg_resilient() -> Fingerprint {
    // Must stay in lock-step with examples/cg_resilient.rs: the satellite
    // contract is that *that* scenario is bit-exact on both backends.
    let app = CgApp::new(CgConfig::small(512), 60).with_step_pad(1.0);
    let config = ExecutorConfig::new(8, 2.0)
        .node_mtbf(90.0)
        .checkpoint_interval(10.0)
        .checkpoint_cost(0.5)
        .restart_cost(2.0)
        .seed(2012)
        .metrics(true);
    let report = ResilientExecutor::new(config).run(&app).expect("cg_resilient scenario runs");
    let state = &report.final_states[0];
    Fingerprint {
        attempts: report.attempts,
        failures: report.failures,
        physical_messages: report.physical_messages,
        physical_bytes: report.physical_bytes,
        total_virtual_time_bits: report.total_virtual_time.to_bits(),
        final_iteration: state.iteration,
        final_residual_bits: state.residual_norm().to_bits(),
    }
}

#[test]
fn cg_resilient_is_bit_identical_on_both_backends() {
    // Single #[test] on purpose: REDCR_EXEC is process-global, so the
    // backend switch must not race a concurrently running test.
    let saved = std::env::var("REDCR_EXEC").ok();

    std::env::remove_var("REDCR_EXEC");
    let coroutine_a = run_cg_resilient();
    let coroutine_b = run_cg_resilient();
    assert_eq!(
        coroutine_a, coroutine_b,
        "coroutine backend: repeated runs of cg_resilient diverged"
    );
    assert!(
        coroutine_a.failures > 0 && coroutine_a.attempts > 1,
        "scenario must exercise the restart (abort) path to gate it: {coroutine_a:?}"
    );

    std::env::set_var("REDCR_EXEC", "threads");
    let threads_a = run_cg_resilient();
    let threads_b = run_cg_resilient();
    match saved {
        Some(v) => std::env::set_var("REDCR_EXEC", v),
        None => std::env::remove_var("REDCR_EXEC"),
    }
    assert_eq!(threads_a, threads_b, "threads backend: repeated runs of cg_resilient diverged");

    // The backends must agree with each other, not merely each be
    // self-consistent: the simulation result is a function of virtual
    // time alone, never of how tasks are multiplexed onto the host.
    assert_eq!(coroutine_a, threads_a, "coroutine and threads backends diverged");
}
