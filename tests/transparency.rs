//! Property-based cross-crate tests: replication transparency (any degree,
//! any kernel, same answer) and checkpoint round-trip fidelity under
//! arbitrary cut points.

use proptest::prelude::*;

use redcr::apps::cg::{CgConfig, CgSolver};
use redcr::apps::ep::{EpConfig, EpKernel};
use redcr::ckpt::{from_bytes, to_bytes};
use redcr::mpi::{Communicator, CostModel};
use redcr::red::{ReplicatedWorld, VoteCost};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The application-visible result of a CG solve is independent of the
    /// redundancy degree (RedMPI's transparency property), for arbitrary
    /// degrees and problem sizes.
    #[test]
    fn cg_answer_independent_of_degree(
        quarter in 0usize..9,
        n in 16usize..64,
        seed in 0u64..1000,
    ) {
        let degree = 1.0 + 0.25 * quarter as f64;
        let run = |deg: f64| {
            let mut cfg = CgConfig::small(n);
            cfg.seed = seed;
            let solver = CgSolver::new(cfg);
            let report = ReplicatedWorld::builder(4, deg)
                .unwrap()
                .cost_model(CostModel::zero())
                .vote_cost(VoteCost::zero())
                .run(move |comm| {
                    let mut state = solver.init_state(comm)?;
                    solver.run(comm, &mut state, 8)?;
                    Ok(state.rho.to_bits())
                })
                .unwrap();
            (0..4).map(|v| *report.primary_result(v).as_ref().unwrap()).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(1.0), run(degree));
    }

    /// Transparency survives live degradation: fail-stopping any single
    /// shadow replica at an arbitrary mid-run time leaves every survivor's
    /// CG answer bitwise identical to the unreplicated run.
    #[test]
    fn cg_answer_unchanged_when_a_shadow_dies(
        victim in 4usize..8,
        tenths in 5u64..75,
        n in 16usize..48,
        seed in 0u64..500,
    ) {
        let run = |deg: f64, death: Option<(usize, f64)>| {
            let mut cfg = CgConfig::small(n);
            cfg.seed = seed;
            let solver = CgSolver::new(cfg);
            let mut builder = ReplicatedWorld::builder(4, deg)
                .unwrap()
                .cost_model(CostModel::zero())
                .vote_cost(VoteCost::zero());
            if let Some((phys, t)) = death {
                let mut times = vec![f64::INFINITY; 8];
                times[phys] = t;
                builder = builder.death_times(times);
            }
            let report = builder
                .run(move |comm| {
                    let mut state = solver.init_state(comm)?;
                    for _ in 0..8 {
                        comm.compute(1.0)?;
                        solver.step(comm, &mut state)?;
                    }
                    Ok(state.rho.to_bits())
                })
                .unwrap();
            let survivors: Vec<u64> = (0..4)
                .map(|v| {
                    *report
                        .replica_results(v)
                        .iter()
                        .find_map(|r| r.as_ref().ok())
                        .expect("every sphere keeps a live replica")
                })
                .collect();
            (report.aborted, survivors)
        };
        // Physical ranks 4..8 are the shadow replicas of virtual 0..4.
        let (aborted, degraded) = run(2.0, Some((victim, tenths as f64 / 10.0)));
        prop_assert!(!aborted, "a single shadow death must be masked");
        let (_, plain) = run(1.0, None);
        prop_assert_eq!(degraded, plain);
    }

    /// EP (communication-free) kernels agree bitwise across replicas too.
    #[test]
    fn ep_replicas_agree(pairs in 100u64..5000, seed in 0u64..100) {
        let kernel = EpKernel::new(EpConfig {
            pairs_per_batch: pairs,
            seed,
            compute: redcr::apps::compute::ComputeModel::zero(),
        });
        let report = ReplicatedWorld::builder(3, 2.0)
            .unwrap()
            .cost_model(CostModel::zero())
            .vote_cost(VoteCost::zero())
            .run(move |comm| {
                let mut state = kernel.init_state();
                kernel.step(comm, &mut state)?;
                let pi = kernel.estimate(comm, &state)?;
                Ok(pi.to_bits())
            })
            .unwrap();
        for v in 0..3 {
            let replicas = report.replica_results(v);
            for r in &replicas[1..] {
                prop_assert_eq!(
                    *r.as_ref().unwrap(),
                    *replicas[0].as_ref().unwrap(),
                    "replica divergence at rank {}", v
                );
            }
        }
    }

    /// Arbitrary CG states survive the checkpoint codec bit-exactly.
    #[test]
    fn cg_state_codec_round_trip(
        iter in 0u64..10_000,
        xs in prop::collection::vec(-1e12f64..1e12, 1..200),
        rho in 0.0f64..1e30,
    ) {
        let state = redcr::apps::cg::CgState {
            iteration: iter,
            x: xs.clone(),
            r: xs.iter().map(|v| v * 0.5).collect(),
            p: xs.iter().map(|v| v - 1.0).collect(),
            rho,
        };
        let bytes = to_bytes(&state).unwrap();
        let back: redcr::apps::cg::CgState = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, state);
    }

    /// RLE compression is lossless for arbitrary byte strings.
    #[test]
    fn compression_lossless(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let packed = redcr::ckpt::compress::compress(&data);
        let unpacked = redcr::ckpt::compress::decompress(&packed).unwrap();
        prop_assert_eq!(unpacked, data);
    }

    /// Incremental chains reconstruct exactly for arbitrary mutation
    /// sequences.
    #[test]
    fn incremental_chain_exact(
        base in prop::collection::vec(any::<u8>(), 64..512),
        mutations in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 0..20),
    ) {
        let mut engine = redcr::ckpt::incremental::IncrementalEngine::with_page_size(32);
        let mut image = base;
        let mut chain = vec![engine.checkpoint(&image)];
        for (idx, value) in mutations {
            let at = idx.index(image.len());
            image[at] = value;
            chain.push(engine.checkpoint(&image));
        }
        let rebuilt = redcr::ckpt::incremental::reconstruct(&chain, 32).unwrap();
        prop_assert_eq!(rebuilt, image);
    }
}
