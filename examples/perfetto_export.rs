//! Perfetto export quick-start: run a stormy resilient execution with the
//! flight recorder and metrics plane on, export the trace in Chrome
//! `trace_event` JSON, and validate the emitted document — then open it at
//! <https://ui.perfetto.dev> (or `chrome://tracing`) to see one lane per
//! physical rank, attempt and checkpoint slices, and flow arrows for every
//! matched send/receive.
//!
//! ```text
//! cargo run --release --example perfetto_export
//! ```
//!
//! Writes `target/perfetto_trace.json`; exits non-zero if the export fails
//! structural validation (wrong track count, unbalanced flows, bad JSON).

use redcr::apps::cg::CgConfig;
use redcr::core::apps::CgApp;
use redcr::core::{ExecutorConfig, ResilientExecutor};
use redcr::mpi::CostModel;
use redcr::trace::perfetto;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The cg_resilient storm, with both observability planes on.
    let app = CgApp::new(CgConfig::small(512), 60).with_step_pad(1.0);
    let config = ExecutorConfig::new(8, 2.0)
        .node_mtbf(90.0)
        .checkpoint_interval(10.0)
        .checkpoint_cost(0.5)
        .restart_cost(2.0)
        .seed(2012)
        .comm_cost(CostModel::infiniband_qdr())
        .tracing(true)
        .metrics(true);
    let n_physical = (config.n_virtual as f64 * config.degree).ceil() as usize;

    let report = ResilientExecutor::new(config).run(&app)?;
    println!("{}", report.summarize());
    println!();

    let trace = report.trace.as_ref().ok_or("tracing was on but no trace came back")?;
    let json = perfetto::export(trace)?;
    let path = std::path::Path::new("target").join("perfetto_trace.json");
    std::fs::create_dir_all("target")?;
    std::fs::write(&path, &json)?;

    // Re-parse what we just wrote and check the structural invariants.
    let summary = perfetto::validate(&json)?;
    if summary.rank_tracks != n_physical {
        return Err(
            format!("expected {} rank tracks, found {}", n_physical, summary.rank_tracks).into()
        );
    }
    if summary.flow_pairs == 0 {
        return Err("no send/recv flow pairs in the export".into());
    }
    println!("wrote {} ({summary})", path.display());
    println!("open it at https://ui.perfetto.dev");
    Ok(())
}
