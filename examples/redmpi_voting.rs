//! RedMPI-style message voting: how triple redundancy detects and corrects
//! a silently corrupted message, and what the two wire modes cost.
//!
//! ```text
//! cargo run --example redmpi_voting
//! ```

use bytes::Bytes;
use redcr::mpi::collectives::ReduceOp;
use redcr::mpi::{Communicator, CostModel};
use redcr::red::voting::{vote_full, vote_hashed};
use redcr::red::{hash_payload, ReplicatedWorld, VoteCost, VotingMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The voting primitive itself: three copies, one corrupted in
    //    flight. The majority votes the corruption out.
    let good = Bytes::from_static(b"matrix block 0x7f3a");
    let mut corrupt = good.to_vec();
    corrupt[7] ^= 0x40; // a flipped bit
    let copies = vec![good.clone(), Bytes::from(corrupt), good.clone()];
    let outcome = vote_full(&copies);
    println!("all-to-all vote over 3 copies:");
    println!("  winner copy   : {}", outcome.winner);
    println!("  dissenters    : {:?}", outcome.dissenters);
    println!("  corrected     : {}", outcome.majority && !outcome.unanimous());

    // 2. The Msg-PlusHash variant: one full payload plus hashes.
    let h = hash_payload(&good);
    let outcome = vote_hashed(&good, 0, &[None, Some(h ^ 1), Some(h)]);
    println!("msg-plus-hash vote: dissenting hash copies = {:?}", outcome.dissenters);

    // 3. End to end: the same program at 3x redundancy in both modes; the
    //    hash mode moves far fewer bytes for the same protection.
    for mode in [VotingMode::AllToAll, VotingMode::MsgPlusHash] {
        let report = ReplicatedWorld::builder(4, 3.0)?
            .voting_mode(mode)
            .vote_cost(VoteCost::zero())
            .cost_model(CostModel::zero())
            .run(|comm| {
                let me = comm.rank().index() as f64;
                // 64 KiB of "simulation data" around the ring + a reduce.
                let next = comm.rank().offset(1, comm.size());
                let prev = comm.rank().offset(-1, comm.size());
                comm.send_f64s(next, redcr::mpi::Tag::new(1), &vec![me; 8192])?;
                comm.recv_f64s(prev.into(), redcr::mpi::Tag::new(1).into())?;
                comm.allreduce_f64(&[me], ReduceOp::Sum)?;
                Ok(())
            })?;
        println!(
            "{mode:?}: {} physical messages, {} bytes on the wire, \
             {} votes, {} mismatches",
            report.physical_messages,
            report.physical_bytes,
            report.stats.votes,
            report.stats.mismatches_detected,
        );
    }
    // 4. In-system corruption: one faulty replica flips bits in 20% of its
    //    copies. At 3x the application never notices.
    let report = ReplicatedWorld::builder(4, 3.0)?
        .vote_cost(VoteCost::zero())
        .cost_model(CostModel::zero())
        .corruption(redcr::red::CorruptionModel::new(0.2, 42).only_replica(1))
        .run(|comm| {
            let me = comm.rank().index() as f64;
            let mut acc = me;
            for round in 0..20u64 {
                let next = comm.rank().offset(1, comm.size());
                let prev = comm.rank().offset(-1, comm.size());
                comm.send_f64s(next, redcr::mpi::Tag::new(round), &[acc; 64])?;
                let (vals, _) = comm.recv_f64s(prev.into(), redcr::mpi::Tag::new(round).into())?;
                acc += vals[0] * 0.25;
            }
            Ok(acc)
        })?;
    println!();
    println!(
        "faulty-replica run: {} corrupted copies detected, {} corrected by \
         majority vote — application output unaffected",
        report.stats.mismatches_detected, report.stats.corrections
    );
    println!(
        "with honest replicas every vote is unanimous; the 9x message count at \
         3x redundancy is the paper's amplification cost, and Msg-PlusHash \
         trades most of the bytes for 8-byte hashes"
    );
    Ok(())
}
