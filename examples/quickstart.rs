//! Quickstart: ask the planner for the optimal redundancy degree and
//! checkpoint interval for a large job, the paper's "tuning knob".
//!
//! ```text
//! cargo run --example quickstart
//! ```

use redcr::apps::cg::CgConfig;
use redcr::core::apps::CgApp;
use redcr::core::planner::Planner;
use redcr::core::{ExecutorConfig, ResilientExecutor};
use redcr::model::optimizer::CostWeights;
use redcr::model::units;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 128-hour job on 100,000 processes, 5-year node MTBF — the scale of
    // the paper's Figure 14.
    let planner = Planner::new()
        .virtual_processes(100_000)
        .base_time_hours(128.0)
        .node_mtbf_hours(units::hours_from_years(5.0))
        .comm_fraction(0.2)
        .checkpoint_cost_hours(units::hours_from_mins(10.0))
        .restart_cost_hours(units::hours_from_mins(30.0));

    let plan = planner.recommend()?;
    println!("minimizing wallclock:");
    println!("  degree      : {}x", plan.degree);
    println!("  checkpoint δ: {:.2} h", plan.checkpoint_interval);
    println!("  expected T  : {:.1} h", plan.predicted.total_time);
    println!("  processes   : {}", plan.predicted.total_physical);
    println!("  node-hours  : {:.0}", plan.predicted.node_hours);
    println!("  exp failures: {:.1}", plan.predicted.expected_failures);
    println!();
    println!("full sweep (degree -> expected hours):");
    for (degree, time) in &plan.sweep {
        match time {
            Some(t) => println!("  {degree:>5}x  {t:8.1} h"),
            None => println!("  {degree:>5}x  diverges (job cannot finish)"),
        }
    }

    // The same job optimized for node-hours instead.
    let thrifty = planner.objective(CostWeights::resources_only()).recommend()?;
    println!();
    println!(
        "minimizing node-hours instead: {}x, {:.0} node-hours ({:.1} h wallclock)",
        thrifty.degree, thrifty.predicted.node_hours, thrifty.predicted.total_time
    );

    // Then actually *run* a pocket-sized job at the recommended shape on
    // the virtual-time executor, with the metrics plane on, and print the
    // human-readable summary.
    let app = CgApp::new(CgConfig::small(64), 10).with_step_pad(1.0);
    let config = ExecutorConfig::new(4, plan.degree)
        .node_mtbf(120.0)
        .checkpoint_interval(5.0)
        .checkpoint_cost(0.2)
        .restart_cost(1.0)
        .seed(7)
        .metrics(true);
    let report = ResilientExecutor::new(config).run(&app)?;
    println!();
    println!("a pocket-sized run at {}x on the simulator:", plan.degree);
    println!("{}", report.summarize());
    Ok(())
}
