//! Flight recorder quick-start: run a stormy resilient execution with
//! tracing enabled, export the trace as JSONL, parse it back and replay it
//! through the analyzer — asserting that the derived totals match the
//! executor's own report exactly.
//!
//! ```text
//! cargo run --release --example flight_recorder
//! ```
//!
//! Writes `target/flight_recorder.jsonl`; exits non-zero if the trace is
//! empty, fails to parse, or disagrees with the report.

use redcr::apps::cg::CgConfig;
use redcr::core::apps::CgApp;
use redcr::core::{ExecutorConfig, ResilientExecutor};
use redcr::mpi::CostModel;
use redcr::trace::{Analysis, Trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Same stack as the cg_resilient example, with the recorder switched
    // on: 8 virtual processes at 2x, harsh MTBF, regular checkpoints.
    let app = CgApp::new(CgConfig::small(512), 60).with_step_pad(1.0);
    let config = ExecutorConfig::new(8, 2.0)
        .node_mtbf(90.0)
        .checkpoint_interval(10.0)
        .checkpoint_cost(0.5)
        .restart_cost(2.0)
        .seed(2012)
        .comm_cost(CostModel::infiniband_qdr())
        .tracing(true);

    let report = ResilientExecutor::new(config).run(&app)?;
    let trace = report.trace.as_ref().ok_or("tracing was enabled but no trace came back")?;
    if trace.is_empty() {
        return Err("flight recorder produced an empty trace".into());
    }

    // Export, re-parse, replay. The round trip is lossless (shortest
    // round-trip float formatting), so the re-parsed trace derives the
    // same totals.
    let jsonl = trace.to_jsonl();
    let path = std::path::Path::new("target").join("flight_recorder.jsonl");
    std::fs::create_dir_all("target")?;
    std::fs::write(&path, &jsonl)?;
    let parsed = Trace::from_jsonl(&jsonl)?;
    if parsed.len() != trace.len() {
        return Err(format!("round trip lost events: {} -> {}", trace.len(), parsed.len()).into());
    }

    let analysis = Analysis::analyze(&parsed)?;
    let totals = analysis.totals();
    if totals.attempts != report.attempts
        || totals.failures != report.failures
        || totals.masked_failures != report.masked_failures
        || totals.checkpoints_committed != report.checkpoints_committed
        || totals.degraded_sphere_seconds.to_bits() != report.degraded_sphere_seconds.to_bits()
    {
        return Err(format!("trace totals diverge from the report: {totals:?} vs {report}").into());
    }

    println!("{report}");
    println!();
    println!("wrote {} events to {}", parsed.len(), path.display());
    println!("analyzer agrees with the report exactly: {totals:?}");
    println!();
    for a in &analysis.attempts {
        let alpha = if a.alphas.is_empty() {
            0.0
        } else {
            a.alphas.iter().map(|&(_, x)| x).sum::<f64>() / a.alphas.len() as f64
        };
        println!(
            "attempt {:>2}  [{:>8.2}, {:>8.2}]s  {}  ckpts {:?}  masked {}  \
             degraded {:>7.2}s  lost {:>6.2}s  mean alpha {:.2e}",
            a.attempt,
            a.start,
            a.end,
            if a.completed { "completed" } else { "restarted" },
            a.committed_seqs,
            a.masked,
            a.degraded_seconds,
            a.lost_work,
            alpha,
        );
    }
    Ok(())
}
