//! Full stack: run a distributed conjugate-gradient solve under transparent
//! dual redundancy, coordinated checkpointing and Poisson fault injection —
//! the paper's experimental setup, end to end.
//!
//! ```text
//! cargo run --release --example cg_resilient
//! ```

use redcr::apps::cg::CgConfig;
use redcr::core::apps::CgApp;
use redcr::core::{ExecutorConfig, ResilientExecutor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // CG wrapped as a checkpointable application: 60 iterations, each
    // padded to ~1 virtual second so the runtime is long enough to attract
    // failures and checkpoints (the paper's "modified to run longer").
    let app = CgApp::new(CgConfig::small(512), 60).with_step_pad(1.0);

    // 8 virtual processes at 2x redundancy; each physical process has a
    // 90-second MTBF over a ~60-second job, so individual replicas die
    // regularly — but the job only restarts when a whole sphere is gone.
    let config = ExecutorConfig::new(8, 2.0)
        .node_mtbf(90.0)
        .checkpoint_interval(10.0)
        .checkpoint_cost(0.5)
        .restart_cost(2.0)
        .seed(2012)
        .metrics(true);

    let executor = ResilientExecutor::new(config);
    let report = executor.run(&app)?;

    println!("{}", report.summarize());
    println!();
    println!("failure log:");
    for event in report.failure_trace.events() {
        println!(
            "  attempt {:>2}  t={:>8.2}s  process {:>3} died{}",
            event.attempt,
            event.time,
            event.process,
            if event.killed_job { "  -> sphere dead, job restarted" } else { "" }
        );
    }
    println!();
    let state = &report.final_states[0];
    println!(
        "solver finished {} iterations, residual {:.3e} — identical on every rank \
         and unaffected by {} restarts",
        state.iteration,
        state.residual_norm(),
        report.failures
    );
    Ok(())
}
