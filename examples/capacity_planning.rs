//! Capacity planning: the wallclock-vs-resources trade-off the paper's
//! conclusion describes, swept across scales — including the crossover
//! points where dual and triple redundancy start paying for themselves and
//! the "two jobs for the price of one" throughput landmark, then the same
//! question asked through the `redcr-sweep` batch planner: a deduped,
//! cached scenario sweep reduced to its Pareto frontier.
//!
//! ```text
//! cargo run --example capacity_planning
//! ```

use redcr::model::combined::CombinedConfig;
use redcr::model::optimizer::{crossover, throughput_break_even, time_at};
use redcr::model::units;
use redcr::sweep::{
    dedup, frontier, run_sweep, Backend, ResultCache, ScenarioSpec, SpecPolicy, Workload,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = CombinedConfig::builder()
        .virtual_processes(1_000)
        .base_time_hours(128.0)
        .node_mtbf_hours(units::hours_from_years(5.0))
        .comm_fraction(0.24)
        .checkpoint_cost_hours(units::hours_from_mins(10.0))
        .restart_cost_hours(units::hours_from_mins(30.0))
        .build()?;

    println!("128-hour job, 5-year node MTBF — expected wallclock [hours]:");
    println!("{:>10}  {:>8}  {:>8}  {:>8}", "processes", "1x", "2x", "3x");
    for n in [1_000u64, 4_000, 16_000, 64_000, 128_000, 200_000] {
        let fmt = |r: f64| match time_at(&cfg, n, r) {
            Some(t) => format!("{t:8.1}"),
            None => "     div".into(),
        };
        println!("{n:>10}  {}  {}  {}", fmt(1.0), fmt(2.0), fmt(3.0));
    }

    println!();
    let x12 = crossover(&cfg, 1.0, 2.0, 100, 10_000_000)?;
    let x13 = crossover(&cfg, 1.0, 3.0, 100, 10_000_000)?;
    let x23 = crossover(&cfg, 2.0, 3.0, 100, 10_000_000)?;
    let tbe = throughput_break_even(&cfg, 2.0, 2.0, 100, 2_000_000)?;
    println!("dual redundancy beats plain C/R from   {x12:>9} processes");
    println!("triple redundancy beats plain C/R from {x13:>9} processes");
    println!("two 2x jobs beat one 1x job from       {tbe:>9} processes");
    println!("triple beats dual from                 {x23:>9} processes");
    println!();
    println!(
        "(paper landmarks: 4,351 / 12,551 / 78,536 / 771,251 — \
         see EXPERIMENTS.md for the comparison)"
    );

    // The resource side of the knob: what does the speed cost in node-hours?
    println!();
    println!("at 100,000 processes:");
    for r in [1.0, 1.5, 2.0, 2.5, 3.0] {
        match cfg.with_virtual_processes(100_000).with_degree(r).evaluate() {
            Ok(o) => println!(
                "  {r:>4}x: {:>8.1} h wallclock, {:>12.0} node-hours ({} processes)",
                o.total_time, o.node_hours, o.total_physical
            ),
            Err(_) => println!("  {r:>4}x: diverges"),
        }
    }

    // The same question, batch-style: submit a scenario grid to the sweep
    // planner and read the non-dominated configurations off the Pareto
    // frontier. Duplicates are collapsed before evaluation, and against a
    // persistent `ResultCache::open(path)` a rerun would be all cache hits.
    let workload = Workload {
        base_time_hours: 128.0,
        alpha: 0.24,
        checkpoint_cost_hours: units::hours_from_mins(10.0),
        restart_cost_hours: units::hours_from_mins(30.0),
    };
    let mut specs: Vec<ScenarioSpec> = [1.0, 1.5, 2.0, 2.5, 3.0]
        .iter()
        .map(|&degree| ScenarioSpec {
            backend: Backend::Model,
            n_virtual: 100_000,
            degree,
            policy: SpecPolicy::Daly,
            node_mtbf_hours: units::hours_from_years(5.0),
            workload,
            seeds: 0,
        })
        .collect();
    specs.push(specs[0]); // a duplicate, to show dedup at work

    let d = dedup(&specs);
    let mut cache = ResultCache::in_memory();
    let report = run_sweep(&specs, 4, &mut cache)?;
    println!();
    println!(
        "sweep at 100,000 processes: {} submitted, {} unique ({} duplicate collapsed)",
        specs.len(),
        d.unique.len(),
        d.duplicates()
    );
    println!("Pareto frontier (wallclock vs node-hours vs completion):");
    for p in frontier(&report.entries) {
        let e = &report.entries[p.entry_index];
        println!(
            "  {:>4}x: {:>8.1} h wallclock, {:>12.0} node-hours",
            e.spec.degree, p.total_time_hours, p.node_hours
        );
    }
    Ok(())
}
