//! Per-rank thread-local metric shards.

use std::cell::{Cell, RefCell};

use crate::histogram::Histogram;
use crate::{CounterKey, GaugeKey, HistKey};

/// One timestamped counter increment (the unit the virtual-time scraper
/// replays).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Virtual time of the increment, seconds (the emitting rank's clock).
    pub time: f64,
    /// Which counter.
    pub key: CounterKey,
    /// Increment amount.
    pub delta: u64,
}

/// A rank thread's private metric shard: `Send` (created on the rank's own
/// thread) but not `Sync`, exactly like the flight recorder's `Recorder`.
/// Every operation is a `Cell` update plus, for counters, one `Vec` push —
/// no locks or atomics on the hot path.
#[derive(Debug)]
pub struct RankMetrics {
    rank: u32,
    counters: [Cell<u64>; CounterKey::COUNT],
    /// `(value, time)` per gauge; unset = `(NAN, NEG_INFINITY)`.
    gauges: [Cell<(f64, f64)>; GaugeKey::COUNT],
    hists: RefCell<[Histogram; HistKey::COUNT]>,
    samples: RefCell<Vec<Sample>>,
}

impl RankMetrics {
    /// An empty shard attributing everything to `rank`.
    pub fn new(rank: u32) -> Self {
        RankMetrics {
            rank,
            counters: std::array::from_fn(|_| Cell::new(0)),
            gauges: std::array::from_fn(|_| Cell::new((f64::NAN, f64::NEG_INFINITY))),
            hists: RefCell::new(std::array::from_fn(|_| Histogram::new())),
            samples: RefCell::new(Vec::new()),
        }
    }

    /// The owning rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Increments `key` by one at virtual time `time`.
    pub fn inc(&self, key: CounterKey, time: f64) {
        self.add(key, 1, time);
    }

    /// Increments `key` by `delta` at virtual time `time`. A zero delta is
    /// a no-op (it would only bloat the sample stream).
    pub fn add(&self, key: CounterKey, delta: u64, time: f64) {
        if delta == 0 {
            return;
        }
        let c = &self.counters[key.index()];
        c.set(c.get() + delta);
        self.samples.borrow_mut().push(Sample { time, key, delta });
    }

    /// Sets gauge `key` to `value` at virtual time `time`.
    pub fn set_gauge(&self, key: GaugeKey, value: f64, time: f64) {
        self.gauges[key.index()].set((value, time));
    }

    /// Records one histogram observation.
    pub fn observe(&self, key: HistKey, value: f64) {
        self.hists.borrow_mut()[key.index()].observe(value);
    }

    /// Current value of counter `key`.
    pub fn counter(&self, key: CounterKey) -> u64 {
        self.counters[key.index()].get()
    }

    /// Moves everything out of the shard (for
    /// [`MetricsRegistry::absorb`](crate::MetricsRegistry::absorb)),
    /// leaving it empty — a second drain contributes nothing.
    pub fn drain(&self) -> RankDrain {
        RankDrain {
            rank: self.rank,
            counters: std::array::from_fn(|i| self.counters[i].replace(0)),
            gauges: std::array::from_fn(|i| self.gauges[i].replace((f64::NAN, f64::NEG_INFINITY))),
            hists: std::mem::replace(
                &mut *self.hists.borrow_mut(),
                std::array::from_fn(|_| Histogram::new()),
            ),
            samples: std::mem::take(&mut *self.samples.borrow_mut()),
        }
    }
}

/// Everything one shard accumulated, detached for the trip into the
/// registry.
#[derive(Debug, Clone)]
pub struct RankDrain {
    /// The rank the shard belonged to.
    pub rank: u32,
    /// Counter totals, indexed like [`CounterKey::ALL`].
    pub counters: [u64; CounterKey::COUNT],
    /// `(value, time)` per gauge; unset = `(NAN, NEG_INFINITY)`.
    pub gauges: [(f64, f64); GaugeKey::COUNT],
    /// Histograms, indexed like [`HistKey::ALL`].
    pub hists: [Histogram; HistKey::COUNT],
    /// The timestamped increment stream.
    pub samples: Vec<Sample>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_stamp_samples() {
        let m = RankMetrics::new(3);
        m.inc(CounterKey::Sends, 1.0);
        m.add(CounterKey::BytesSent, 64, 1.0);
        m.add(CounterKey::BytesSent, 0, 2.0); // no-op
        m.inc(CounterKey::Sends, 2.0);
        assert_eq!(m.counter(CounterKey::Sends), 2);
        assert_eq!(m.counter(CounterKey::BytesSent), 64);
        let d = m.drain();
        assert_eq!(d.rank, 3);
        assert_eq!(d.samples.len(), 3, "zero deltas emit no sample");
        assert_eq!(d.counters[CounterKey::Sends.index()], 2);
        // Drained: a second drain is empty.
        let d2 = m.drain();
        assert_eq!(d2.counters[CounterKey::Sends.index()], 0);
        assert!(d2.samples.is_empty());
    }

    #[test]
    fn gauges_and_histograms_travel_in_the_drain() {
        let m = RankMetrics::new(0);
        m.set_gauge(GaugeKey::VirtualTime, 12.5, 12.5);
        m.observe(HistKey::PayloadSize, 64.0);
        m.observe(HistKey::PayloadSize, f64::NAN);
        let d = m.drain();
        assert_eq!(d.gauges[GaugeKey::VirtualTime.index()], (12.5, 12.5));
        let h = &d.hists[HistKey::PayloadSize.index()];
        assert_eq!(h.count(), 1);
        assert_eq!(h.quarantined(), 1);
    }
}
