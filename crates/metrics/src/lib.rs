//! # redcr-metrics — a virtual-time metrics plane for the redcr stack
//!
//! Monotonic counters, gauges and log2-bucketed histograms, collected the
//! same way the flight recorder and the replication statistics are: each
//! rank thread owns a lock-free [`RankMetrics`] shard (plain `Cell`s and a
//! `Vec` push on the hot path — no atomics, no locks), drained into a
//! shared [`MetricsRegistry`] exactly once at rank teardown. Layers above
//! the runtime reach the shard through
//! `Communicator::metrics()` (the same hook pattern as the recorder), so
//! when metrics are off the entire plane costs one `Option` check.
//!
//! Counter increments carry their **virtual-time** stamp, which is what
//! makes the registry scrapeable after the fact: [`MetricsRegistry::scrape`]
//! replays the merged increment stream at a fixed virtual-second cadence
//! and yields a monotone time series whose final sample equals the drained
//! totals exactly.
//!
//! Nothing in this crate advances a virtual clock: enabling metrics never
//! changes what a run computes, only what it reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod histogram;
mod registry;
mod shard;

pub use histogram::Histogram;
pub use registry::{MetricsRegistry, MetricsReport, MetricsSnapshot, ScrapePoint};
pub use shard::{RankDrain, RankMetrics, Sample};

/// Monotonic counters tracked per rank and in the registry totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterKey {
    /// Physical point-to-point messages sent.
    Sends,
    /// Physical point-to-point messages received.
    Recvs,
    /// Physical payload bytes sent.
    BytesSent,
    /// Physical payload bytes received.
    BytesReceived,
    /// Rank fail-stops observed (each rank records its own death once).
    Deaths,
    /// Receive-path votes over redundant copies.
    Votes,
    /// Wildcard-receive leader failovers.
    Failovers,
    /// Coordinated checkpoints committed (post-barrier, per rank).
    CheckpointCommits,
    /// Checkpoint restores performed.
    Restores,
    /// Execution attempts started.
    Attempts,
    /// Restarts (failed attempts).
    Restarts,
    /// Process deaths masked by redundancy.
    MaskedFailures,
    /// Replicas respawned and rejoined by the self-healing layer.
    Respawns,
    /// Heartbeat suspicion deadlines that elapsed (dead replicas detected).
    Suspicions,
}

impl CounterKey {
    /// Number of counter keys.
    pub const COUNT: usize = 14;

    /// Every counter key, in index order.
    pub const ALL: [CounterKey; CounterKey::COUNT] = [
        CounterKey::Sends,
        CounterKey::Recvs,
        CounterKey::BytesSent,
        CounterKey::BytesReceived,
        CounterKey::Deaths,
        CounterKey::Votes,
        CounterKey::Failovers,
        CounterKey::CheckpointCommits,
        CounterKey::Restores,
        CounterKey::Attempts,
        CounterKey::Restarts,
        CounterKey::MaskedFailures,
        CounterKey::Respawns,
        CounterKey::Suspicions,
    ];

    /// Stable snake_case name (used in exports and reports).
    pub fn name(self) -> &'static str {
        match self {
            CounterKey::Sends => "sends_total",
            CounterKey::Recvs => "recvs_total",
            CounterKey::BytesSent => "bytes_sent_total",
            CounterKey::BytesReceived => "bytes_received_total",
            CounterKey::Deaths => "deaths_total",
            CounterKey::Votes => "votes_total",
            CounterKey::Failovers => "failovers_total",
            CounterKey::CheckpointCommits => "checkpoint_commits_total",
            CounterKey::Restores => "restores_total",
            CounterKey::Attempts => "attempts_total",
            CounterKey::Restarts => "restarts_total",
            CounterKey::MaskedFailures => "masked_failures_total",
            CounterKey::Respawns => "respawns_total",
            CounterKey::Suspicions => "suspicions_total",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            CounterKey::Sends => 0,
            CounterKey::Recvs => 1,
            CounterKey::BytesSent => 2,
            CounterKey::BytesReceived => 3,
            CounterKey::Deaths => 4,
            CounterKey::Votes => 5,
            CounterKey::Failovers => 6,
            CounterKey::CheckpointCommits => 7,
            CounterKey::Restores => 8,
            CounterKey::Attempts => 9,
            CounterKey::Restarts => 10,
            CounterKey::MaskedFailures => 11,
            CounterKey::Respawns => 12,
            CounterKey::Suspicions => 13,
        }
    }
}

/// Last-value gauges (merged by latest virtual-time stamp).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GaugeKey {
    /// The rank's virtual clock at teardown, seconds.
    VirtualTime,
}

impl GaugeKey {
    /// Number of gauge keys.
    pub const COUNT: usize = 1;

    /// Every gauge key, in index order.
    pub const ALL: [GaugeKey; GaugeKey::COUNT] = [GaugeKey::VirtualTime];

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            GaugeKey::VirtualTime => "virtual_time_seconds",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            GaugeKey::VirtualTime => 0,
        }
    }
}

/// Log2-bucketed histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HistKey {
    /// Virtual seconds from message injection to receive completion.
    MessageLatency,
    /// Payload size of sent messages, bytes.
    PayloadSize,
    /// Virtual seconds one receive-path vote took (gather + compare).
    VoteLatency,
    /// Virtual seconds from checkpoint begin to post-barrier commit.
    CommitLatency,
    /// Length of one sphere's degraded interval, virtual seconds.
    DegradedInterval,
    /// Heal latency: virtual seconds from a replica's death to its
    /// respawned incarnation's rejoin commit.
    HealLatency,
}

impl HistKey {
    /// Number of histogram keys.
    pub const COUNT: usize = 6;

    /// Every histogram key, in index order.
    pub const ALL: [HistKey; HistKey::COUNT] = [
        HistKey::MessageLatency,
        HistKey::PayloadSize,
        HistKey::VoteLatency,
        HistKey::CommitLatency,
        HistKey::DegradedInterval,
        HistKey::HealLatency,
    ];

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            HistKey::MessageLatency => "message_latency_seconds",
            HistKey::PayloadSize => "payload_size_bytes",
            HistKey::VoteLatency => "vote_latency_seconds",
            HistKey::CommitLatency => "commit_latency_seconds",
            HistKey::DegradedInterval => "degraded_interval_seconds",
            HistKey::HealLatency => "heal_latency_seconds",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            HistKey::MessageLatency => 0,
            HistKey::PayloadSize => 1,
            HistKey::VoteLatency => 2,
            HistKey::CommitLatency => 3,
            HistKey::DegradedInterval => 4,
            HistKey::HealLatency => 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_indices_are_dense_and_distinct() {
        let mut seen = [false; CounterKey::COUNT];
        for k in CounterKey::ALL {
            assert!(!seen[k.index()], "duplicate index for {k:?}");
            seen[k.index()] = true;
            assert!(!k.name().is_empty());
        }
        assert!(seen.iter().all(|&s| s));
        for (i, k) in HistKey::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        for (i, k) in GaugeKey::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }
}
