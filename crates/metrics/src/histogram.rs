//! A fixed-size log2-bucketed histogram.

/// Lowest power-of-two exponent with its own bucket (`2^-48` ≈ 3.6e-15 —
/// well below one virtual nanosecond).
pub(crate) const MIN_EXP: i32 = -48;
/// Highest power-of-two exponent with its own bucket (`2^47` ≈ 1.4e14 —
/// well above any virtual duration or payload size this stack produces).
pub(crate) const MAX_EXP: i32 = 47;
/// Number of regular buckets.
pub(crate) const N_BUCKETS: usize = (MAX_EXP - MIN_EXP + 1) as usize;

/// A log2-bucketed histogram of non-negative `f64` observations.
///
/// Bucket `k` covers the half-open range `[2^k, 2^(k+1))` for
/// `k ∈ [-48, 47]`; an exactly-on-boundary value `2^k` lands in bucket `k`
/// (lower-inclusive). Bucketing extracts the IEEE-754 exponent directly
/// from the bit pattern, so boundary values can never be mis-binned by a
/// `log2().floor()` rounding error. Outside the regular range:
///
/// * `0.0` (and `-0.0`) is counted in a dedicated zero bucket;
/// * positive values below `2^-48` — including every subnormal — underflow;
/// * values at or above `2^48` — including `+∞` — overflow;
/// * `NaN` and negative values are **counted and quarantined**: they bump
///   [`quarantined`](Histogram::quarantined) but never touch the buckets or
///   the sum, so a poisoned observation is visible instead of silently
///   dropped or propagated.
///
/// [`sum`](Histogram::sum) covers finite accepted observations only (an
/// `+∞` observation is counted in overflow but excluded from the sum, so
/// [`mean`](Histogram::mean) stays finite).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    sum: f64,
    zero: u64,
    underflow: u64,
    overflow: u64,
    quarantined: u64,
    buckets: [u64; N_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            zero: 0,
            underflow: 0,
            overflow: 0,
            quarantined: 0,
            buckets: [0; N_BUCKETS],
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        if v.is_nan() || v < 0.0 {
            self.quarantined += 1;
            return;
        }
        self.count += 1;
        if v == 0.0 {
            self.zero += 1;
            return;
        }
        if v.is_infinite() {
            self.overflow += 1;
            return;
        }
        self.sum += v;
        let exp = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
        if exp < MIN_EXP {
            self.underflow += 1;
        } else if exp > MAX_EXP {
            self.overflow += 1;
        } else {
            self.buckets[(exp - MIN_EXP) as usize] += 1;
        }
    }

    /// Accepted (non-quarantined) observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// All observations, including quarantined ones.
    pub fn observations(&self) -> u64 {
        self.count + self.quarantined
    }

    /// Sum of finite accepted observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean over accepted observations (0.0 when empty). `+∞` observations
    /// count in the denominator but not the sum, keeping the mean finite.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Observations equal to zero.
    pub fn zero(&self) -> u64 {
        self.zero
    }

    /// Positive observations below the smallest bucket (subnormals live
    /// here).
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `2^48`, including `+∞`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Quarantined observations (`NaN` or negative).
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// Count in the bucket for exponent `exp` (`[2^exp, 2^(exp+1))`).
    ///
    /// # Panics
    ///
    /// Panics if `exp` is outside `[-48, 47]`.
    pub fn bucket(&self, exp: i32) -> u64 {
        assert!((MIN_EXP..=MAX_EXP).contains(&exp), "bucket exponent {exp} out of range");
        self.buckets[(exp - MIN_EXP) as usize]
    }

    /// Non-empty regular buckets as `(exponent, count)`, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(i32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i as i32 + MIN_EXP, c))
            .collect()
    }

    /// Whether the histogram has no observations at all.
    pub fn is_empty(&self) -> bool {
        self.observations() == 0
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the accepted
    /// observations from the bucket CDF, or `None` when the histogram has
    /// no accepted observations or `q` is out of range.
    ///
    /// The CDF walks zero → underflow → regular buckets → overflow. Within
    /// a regular bucket `[2^k, 2^(k+1))` the estimate interpolates
    /// log-linearly (geometrically) by the target's fractional position in
    /// the bucket, which is exact for a log-uniform in-bucket distribution
    /// and bounded by the bucket edges otherwise — a factor-of-two worst
    /// case, the price of the log2 binning. Quantiles that land in the
    /// zero bucket return `0.0`; in underflow, `2^-48` (the range's lower
    /// edge); in overflow, `2^48`. Quarantined observations are excluded,
    /// matching [`count`](Self::count).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // Rank of the target observation, 1-based: ceil(q * count),
        // clamped to [1, count] so q=0.0 finds the minimum bucket.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = self.zero;
        if target <= seen {
            return Some(0.0);
        }
        seen += self.underflow;
        if target <= seen {
            return Some((2.0f64).powi(MIN_EXP));
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if target <= seen + c {
                let exp = i as i32 + MIN_EXP;
                // Midpoint-rank convention: rank r of c maps to fraction
                // (r - 1/2)/c, so estimates stay strictly inside the
                // bucket ([2^k, 2^(k+1)) is upper-exclusive) and a
                // single-observation bucket reports its geometric middle.
                let frac = ((target - seen) as f64 - 0.5) / c as f64;
                return Some((2.0f64).powi(exp) * (2.0f64).powf(frac));
            }
            seen += c;
        }
        Some((2.0f64).powi(MAX_EXP + 1))
    }

    /// Merges another histogram (e.g. a second rank shard) into this one,
    /// bucket-wise.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.zero += other.zero;
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.quarantined += other.quarantined;
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_negative_zero_counted_in_zero_bucket() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(-0.0);
        assert_eq!(h.zero(), 2);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn subnormals_underflow() {
        let mut h = Histogram::new();
        h.observe(f64::MIN_POSITIVE / 2.0); // subnormal
        h.observe(f64::MIN_POSITIVE); // smallest normal, still < 2^-48
        assert_eq!(h.underflow(), 2);
        assert_eq!(h.count(), 2);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn exact_boundaries_are_lower_inclusive() {
        let mut h = Histogram::new();
        h.observe(1.0); // 2^0: bucket 0
        h.observe(2.0); // 2^1: bucket 1, not bucket 0
        h.observe(0.5); // 2^-1: bucket -1
        h.observe(1.9999999999999998); // just below 2^1: bucket 0
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(-1), 1);
        assert_eq!(h.count(), 4);
        // The extreme in-range boundaries land in their own buckets.
        let mut edges = Histogram::new();
        edges.observe((2.0f64).powi(MIN_EXP));
        edges.observe((2.0f64).powi(MAX_EXP));
        assert_eq!(edges.bucket(MIN_EXP), 1);
        assert_eq!(edges.bucket(MAX_EXP), 1);
        assert_eq!(edges.underflow() + edges.overflow(), 0);
    }

    #[test]
    fn infinity_overflows_without_poisoning_sum() {
        let mut h = Histogram::new();
        h.observe(f64::INFINITY);
        h.observe((2.0f64).powi(48)); // just past the top bucket
        h.observe(3.0);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
        assert!(h.sum().is_finite());
        assert!(h.mean().is_finite());
    }

    #[test]
    fn nan_is_counted_and_quarantined_not_dropped() {
        let mut h = Histogram::new();
        h.observe(f64::NAN);
        h.observe(-1.0);
        h.observe(4.0);
        assert_eq!(h.quarantined(), 2, "NaN and negatives are quarantined");
        assert_eq!(h.count(), 1, "quarantined values are not accepted");
        assert_eq!(h.observations(), 3, "...but they are still counted");
        assert_eq!(h.sum(), 4.0);
        assert!(!h.is_empty());
    }

    #[test]
    fn merge_of_two_shards_is_fieldwise() {
        let mut a = Histogram::new();
        a.observe(1.0);
        a.observe(0.0);
        a.observe(f64::NAN);
        let mut b = Histogram::new();
        b.observe(1.5);
        b.observe(f64::MIN_POSITIVE);
        b.observe(f64::INFINITY);
        a.merge(&b);
        assert_eq!(a.bucket(0), 2, "1.0 and 1.5 share bucket 0");
        assert_eq!(a.zero(), 1);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.quarantined(), 1);
        assert_eq!(a.count(), 5);
        assert_eq!(a.observations(), 6);
        assert!((a.sum() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantiles_follow_the_bucket_cdf() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
        for _ in 0..90 {
            h.observe(1.0); // bucket 0: [1, 2)
        }
        for _ in 0..10 {
            h.observe(1024.0); // bucket 10: [1024, 2048)
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((1.0..2.0).contains(&p50), "p50 {p50} must fall in [1, 2)");
        let p90 = h.quantile(0.9).unwrap();
        assert!((1.0..2.0).contains(&p90), "p90 is the 90th of 100: still bucket 0");
        let p99 = h.quantile(0.99).unwrap();
        assert!((1024.0..2048.0).contains(&p99), "p99 {p99} must fall in [1024, 2048)");
        assert!(h.quantile(1.5).is_none(), "q out of range");
        assert!(h.quantile(-0.1).is_none());
        // q=0 and q=1 land on the extreme buckets.
        assert!((1.0..2.0).contains(&h.quantile(0.0).unwrap()));
        assert!((1024.0..2048.0).contains(&h.quantile(1.0).unwrap()));
    }

    #[test]
    fn quantiles_in_side_buckets_return_edges() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(0.0);
        h.observe(f64::MIN_POSITIVE); // underflow
        h.observe(f64::INFINITY); // overflow
        assert_eq!(h.quantile(0.25).unwrap(), 0.0);
        assert_eq!(h.quantile(0.75).unwrap(), (2.0f64).powi(MIN_EXP));
        assert_eq!(h.quantile(1.0).unwrap(), (2.0f64).powi(MAX_EXP + 1));
        // NaN never shifts the quantile rank.
        h.observe(f64::NAN);
        assert_eq!(h.quantile(1.0).unwrap(), (2.0f64).powi(MAX_EXP + 1));
    }

    #[test]
    fn bucket_out_of_range_panics() {
        let h = Histogram::new();
        assert!(std::panic::catch_unwind(|| h.bucket(48)).is_err());
    }
}
