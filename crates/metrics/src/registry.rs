//! The shared registry: drained shards merge here; the scraper replays the
//! merged increment stream on a virtual-time grid.

use parking_lot::Mutex;

use crate::histogram::Histogram;
use crate::shard::{RankDrain, Sample};
use crate::{CounterKey, GaugeKey, HistKey};

/// The world-shared metrics sink. Rank shards are absorbed at teardown (one
/// lock per rank per run); layers without a rank thread (the executor)
/// record directly. Cheap to share: `Arc<MetricsRegistry>` mirrors how the
/// trace `Collector` travels.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    counters: [u64; CounterKey::COUNT],
    gauges: [(f64, f64); GaugeKey::COUNT],
    hists: [Histogram; HistKey::COUNT],
    /// Per-rank counter totals, sorted by rank.
    per_rank: Vec<(u32, [u64; CounterKey::COUNT])>,
    /// The merged increment stream (unsorted; ranks drain at different
    /// times).
    samples: Vec<Sample>,
}

impl Default for Inner {
    fn default() -> Self {
        Inner {
            counters: [0; CounterKey::COUNT],
            gauges: [(f64::NAN, f64::NEG_INFINITY); GaugeKey::COUNT],
            hists: std::array::from_fn(|_| Histogram::new()),
            per_rank: Vec::new(),
            samples: Vec::new(),
        }
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Merges a drained rank shard: counters and histograms add, gauges
    /// keep the later-stamped value, samples append.
    pub fn absorb(&self, drain: RankDrain) {
        let mut inner = self.inner.lock();
        for i in 0..CounterKey::COUNT {
            inner.counters[i] += drain.counters[i];
        }
        for (i, &(value, time)) in drain.gauges.iter().enumerate() {
            if time > inner.gauges[i].1 {
                inner.gauges[i] = (value, time);
            }
        }
        for (i, h) in drain.hists.iter().enumerate() {
            inner.hists[i].merge(h);
        }
        match inner.per_rank.binary_search_by_key(&drain.rank, |&(r, _)| r) {
            Ok(at) => {
                for i in 0..CounterKey::COUNT {
                    inner.per_rank[at].1[i] += drain.counters[i];
                }
            }
            Err(at) => inner.per_rank.insert(at, (drain.rank, drain.counters)),
        }
        inner.samples.extend(drain.samples);
    }

    /// Increments `key` by one at virtual time `time` (rank-less; used by
    /// layers that are not a rank thread, like the executor).
    pub fn inc(&self, key: CounterKey, time: f64) {
        self.add(key, 1, time);
    }

    /// Increments `key` by `delta` at virtual time `time` (rank-less).
    pub fn add(&self, key: CounterKey, delta: u64, time: f64) {
        if delta == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.counters[key.index()] += delta;
        inner.samples.push(Sample { time, key, delta });
    }

    /// Records one rank-less histogram observation.
    pub fn observe(&self, key: HistKey, value: f64) {
        self.inner.lock().hists[key.index()].observe(value);
    }

    /// A copy of the current totals.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner.counters,
            gauges: inner.gauges,
            hists: inner.hists.clone(),
        }
    }

    /// Replays the merged increment stream on a virtual-time grid of
    /// spacing `interval` seconds: sample `k` holds every counter's value
    /// at virtual time `k·interval` (increments stamped exactly on a grid
    /// point are included in that point). The series is monotone
    /// non-decreasing by construction and its final sample equals the
    /// drained totals exactly.
    ///
    /// A non-positive or non-finite `interval` collapses the grid to a
    /// single final sample. A grid that would exceed one million points is
    /// coarsened to that bound (the totals are unaffected).
    pub fn scrape(&self, interval: f64) -> Vec<ScrapePoint> {
        let inner = self.inner.lock();
        let mut samples: Vec<Sample> = inner.samples.clone();
        drop(inner);
        samples.sort_by(|a, b| a.time.total_cmp(&b.time));
        let end = samples.last().map_or(0.0, |s| s.time).max(0.0);

        const MAX_POINTS: f64 = 1_000_000.0;
        let interval = if interval.is_finite() && interval > 0.0 {
            if end / interval > MAX_POINTS {
                end / MAX_POINTS
            } else {
                interval
            }
        } else {
            // One point at the end of the run.
            end.max(1.0)
        };

        let mut points = Vec::new();
        let mut acc = [0u64; CounterKey::COUNT];
        let mut next = 0usize;
        for k in 0u64.. {
            let t = k as f64 * interval;
            while next < samples.len() && samples[next].time <= t {
                acc[samples[next].key.index()] += samples[next].delta;
                next += 1;
            }
            points.push(ScrapePoint { time: t, counters: acc });
            if t >= end {
                break;
            }
        }
        points
    }

    /// Bundles totals, per-rank counters and the scraped series into one
    /// detached report.
    pub fn report(&self, scrape_interval: f64) -> MetricsReport {
        let series = self.scrape(scrape_interval);
        let inner = self.inner.lock();
        MetricsReport {
            totals: MetricsSnapshot {
                counters: inner.counters,
                gauges: inner.gauges,
                hists: inner.hists.clone(),
            },
            per_rank: inner.per_rank.clone(),
            scrape_interval,
            series,
        }
    }
}

/// A point-in-time copy of every metric's total.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    counters: [u64; CounterKey::COUNT],
    gauges: [(f64, f64); GaugeKey::COUNT],
    hists: [Histogram; HistKey::COUNT],
}

impl MetricsSnapshot {
    /// Value of counter `key`.
    pub fn counter(&self, key: CounterKey) -> u64 {
        self.counters[key.index()]
    }

    /// Last value of gauge `key`, if it was ever set.
    pub fn gauge(&self, key: GaugeKey) -> Option<f64> {
        let (value, time) = self.gauges[key.index()];
        time.is_finite().then_some(value)
    }

    /// The histogram for `key`.
    pub fn histogram(&self, key: HistKey) -> &Histogram {
        &self.hists[key.index()]
    }
}

/// One sample of the scraped time series: every counter's value at virtual
/// time `time`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrapePoint {
    /// Grid time, virtual seconds.
    pub time: f64,
    /// Counter values at `time`, indexed like [`CounterKey::ALL`].
    pub counters: [u64; CounterKey::COUNT],
}

impl ScrapePoint {
    /// Value of counter `key` at this point.
    pub fn counter(&self, key: CounterKey) -> u64 {
        self.counters[key.index()]
    }
}

/// A detached metrics report: what an execution hands back when metrics
/// were enabled.
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Final totals across all ranks and layers.
    pub totals: MetricsSnapshot,
    /// Per-rank counter totals, sorted by rank. Executor-level (rank-less)
    /// increments are only in [`totals`](MetricsReport::totals).
    pub per_rank: Vec<(u32, [u64; CounterKey::COUNT])>,
    /// The grid spacing the series was scraped at, virtual seconds.
    pub scrape_interval: f64,
    /// The scraped counter time series.
    pub series: Vec<ScrapePoint>,
}

impl MetricsReport {
    /// Per-rank value of counter `key`, as `(rank, value)` pairs.
    pub fn per_rank_counter(&self, key: CounterKey) -> Vec<(u32, u64)> {
        self.per_rank.iter().map(|&(r, ref c)| (r, c[key.index()])).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RankMetrics;

    #[test]
    fn absorb_merges_counters_per_rank_and_histograms() {
        let reg = MetricsRegistry::new();
        let a = RankMetrics::new(0);
        a.inc(CounterKey::Sends, 1.0);
        a.observe(HistKey::PayloadSize, 8.0);
        a.set_gauge(GaugeKey::VirtualTime, 5.0, 5.0);
        let b = RankMetrics::new(1);
        b.inc(CounterKey::Sends, 2.0);
        b.inc(CounterKey::Recvs, 2.5);
        b.observe(HistKey::PayloadSize, 16.0);
        b.set_gauge(GaugeKey::VirtualTime, 7.0, 7.0);
        reg.absorb(a.drain());
        reg.absorb(b.drain());
        reg.inc(CounterKey::Attempts, 7.0);

        let snap = reg.snapshot();
        assert_eq!(snap.counter(CounterKey::Sends), 2);
        assert_eq!(snap.counter(CounterKey::Recvs), 1);
        assert_eq!(snap.counter(CounterKey::Attempts), 1);
        assert_eq!(snap.gauge(GaugeKey::VirtualTime), Some(7.0), "later stamp wins");
        assert_eq!(snap.histogram(HistKey::PayloadSize).count(), 2);

        let report = reg.report(1.0);
        assert_eq!(report.per_rank_counter(CounterKey::Sends), vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn scrape_is_monotone_and_final_sample_equals_totals() {
        let reg = MetricsRegistry::new();
        let m = RankMetrics::new(0);
        for i in 0..10 {
            m.inc(CounterKey::Sends, i as f64 * 0.7);
            m.add(CounterKey::BytesSent, 100, i as f64 * 0.7);
        }
        reg.absorb(m.drain());
        reg.inc(CounterKey::Attempts, 6.5);

        let series = reg.scrape(1.0);
        assert!(series.len() >= 7, "6.3s of samples on a 1s grid: {}", series.len());
        for pair in series.windows(2) {
            assert!(pair[1].time > pair[0].time);
            for k in CounterKey::ALL {
                assert!(pair[1].counter(k) >= pair[0].counter(k), "{k:?} not monotone");
            }
        }
        let totals = reg.snapshot();
        let last = series.last().unwrap();
        for k in CounterKey::ALL {
            assert_eq!(last.counter(k), totals.counter(k), "{k:?} final sample != total");
        }
        // Boundary stamps are included in the grid point they land on.
        let at_0 = &series[0];
        assert_eq!(at_0.counter(CounterKey::Sends), 1, "t=0 increment included at t=0");
    }

    #[test]
    fn degenerate_intervals_collapse_to_final_sample() {
        let reg = MetricsRegistry::new();
        reg.add(CounterKey::Sends, 3, 2.0);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let series = reg.scrape(bad);
            let last = series.last().unwrap();
            assert_eq!(last.counter(CounterKey::Sends), 3, "interval {bad}");
        }
        // Empty registry still yields one (all-zero) sample.
        let empty = MetricsRegistry::new();
        let series = empty.scrape(1.0);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].counter(CounterKey::Sends), 0);
    }
}
