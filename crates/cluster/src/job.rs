//! Job configuration for the timeline simulator.

use serde::{Deserialize, Serialize};

/// When is the job exposed to failures?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FailureExposure {
    /// Failures can strike at any time, including during checkpoints and
    /// restarts — the assumption of the paper's analytic model
    /// (Section 4.2: "failures can occur anytime between the start and the
    /// end of application execution, i.e., failures can occur even when a
    /// checkpoint is taken or when the application is restarted").
    #[default]
    AllTime,
    /// Failures are only triggered during work phases — the behaviour of
    /// the paper's cluster experiments (Section 6(5): "failures are not
    /// triggered when a checkpoint is performed or when restart is in
    /// progress").
    WorkOnly,
}

/// A job to simulate. All durations share one unit (the benches use hours).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobConfig {
    /// Total useful work the job must complete (`t`, or `t_Red` under
    /// redundancy).
    pub work: f64,
    /// Cost of one checkpoint, `c`.
    pub checkpoint_cost: f64,
    /// Work between checkpoints, `δ`.
    pub checkpoint_interval: f64,
    /// Restart overhead after a failure, `R`.
    pub restart_cost: f64,
    /// Failure exposure mode.
    pub exposure: FailureExposure,
    /// Safety valve: abort the simulation after this many attempts (the
    /// configuration is then effectively divergent, matching the model's
    /// `λ·t_RR ≥ 1` condition).
    pub max_attempts: u64,
}

impl JobConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on non-positive work/interval or negative costs (programming
    /// errors, not data errors).
    pub fn validate(&self) {
        assert!(self.work > 0.0 && self.work.is_finite(), "work must be positive");
        assert!(
            self.checkpoint_interval > 0.0 && self.checkpoint_interval.is_finite(),
            "interval must be positive"
        );
        assert!(self.checkpoint_cost >= 0.0, "checkpoint cost must be non-negative");
        assert!(self.restart_cost >= 0.0, "restart cost must be non-negative");
        assert!(self.max_attempts > 0, "need at least one attempt");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_reasonable_config() {
        JobConfig {
            work: 10.0,
            checkpoint_cost: 0.1,
            checkpoint_interval: 1.0,
            restart_cost: 0.2,
            exposure: FailureExposure::AllTime,
            max_attempts: 100,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn validate_rejects_zero_interval() {
        JobConfig {
            work: 10.0,
            checkpoint_cost: 0.1,
            checkpoint_interval: 0.0,
            restart_cost: 0.2,
            exposure: FailureExposure::AllTime,
            max_attempts: 100,
        }
        .validate();
    }
}
