//! Seeded Monte-Carlo aggregation over many simulated runs, parallelized
//! across OS threads.

use crate::simulate::SimError;
use crate::stats::JobStats;

/// Fractional (expected-value) means of the per-run event counts.
///
/// [`JobStats`] stores counts as `u64`, so the element-wise mean in
/// [`Aggregate::mean`] has to round — which reported rare events (true
/// mean < 0.5) as exactly 0 across a whole sweep. These are the unrounded
/// means; use them whenever the magnitude matters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CountMeans {
    /// Mean failures endured per completed run.
    pub failures: f64,
    /// Mean masked (redundancy-absorbed) process deaths per completed run.
    pub masked_failures: f64,
    /// Mean checkpoints committed per completed run.
    pub checkpoints: f64,
    /// Mean attempts per completed run (1 = failure-free).
    pub attempts: f64,
}

/// Aggregate of a Monte-Carlo batch.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Number of runs requested.
    pub runs: usize,
    /// Number of runs that completed (non-divergent).
    pub completed: usize,
    /// Mean total time over completed runs.
    pub mean_total_time: f64,
    /// Sample standard deviation of the total time.
    pub std_total_time: f64,
    /// Element-wise mean of the completed runs' stats. The `u64` count
    /// fields are **rounded** to the nearest integer; read
    /// [`Aggregate::mean_counts`] for the exact fractional means.
    pub mean: JobStats,
    /// Unrounded means of the count fields (failures, masked failures,
    /// checkpoints, attempts).
    pub mean_counts: CountMeans,
}

impl Aggregate {
    /// Fraction of runs that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.completed as f64 / self.runs as f64
        }
    }

    /// Standard error of the mean total time.
    pub fn sem_total_time(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.std_total_time / (self.completed as f64).sqrt()
        }
    }
}

/// Runs `runs` seeded simulations (`f(seed)` for seeds `0..runs`) on up to
/// `threads` OS threads and aggregates the outcomes. Divergent runs
/// ([`SimError::TooManyAttempts`]) are counted but excluded from the means;
/// any other error aborts the sweep.
///
/// # Errors
///
/// Propagates the first non-divergence error encountered.
pub fn monte_carlo<F>(runs: usize, threads: usize, f: F) -> Result<Aggregate, SimError>
where
    F: Fn(u64) -> Result<JobStats, SimError> + Sync,
{
    let threads = threads.max(1);
    let mut slots: Vec<Option<Result<JobStats, SimError>>> = Vec::new();
    slots.resize_with(runs, || None);
    let f = &f;

    std::thread::scope(|scope| {
        for (chunk_idx, chunk) in slots.chunks_mut(runs.div_ceil(threads).max(1)).enumerate() {
            let base = chunk_idx * runs.div_ceil(threads).max(1);
            scope.spawn(move || {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(f((base + i) as u64));
                }
            });
        }
    });

    let mut completed_stats = Vec::with_capacity(runs);
    for slot in slots {
        match slot.expect("all slots filled") {
            Ok(stats) => completed_stats.push(stats),
            Err(SimError::TooManyAttempts { .. }) => {}
            Err(e) => return Err(e),
        }
    }

    let completed = completed_stats.len();
    let mut mean = JobStats::default();
    let mut mean_counts = CountMeans::default();
    let mut mean_total = 0.0;
    if completed > 0 {
        for s in &completed_stats {
            // Exhaustive destructuring: adding a field to `JobStats`
            // without aggregating it here is a compile error, not a
            // silently-zero mean (masked_failures was once dropped here).
            let JobStats {
                total_time,
                work_time,
                checkpoint_time,
                recompute_time,
                restart_time,
                failures,
                masked_failures,
                checkpoints,
                attempts,
            } = *s;
            mean.total_time += total_time;
            mean.work_time += work_time;
            mean.checkpoint_time += checkpoint_time;
            mean.recompute_time += recompute_time;
            mean.restart_time += restart_time;
            mean.failures += failures;
            mean.masked_failures += masked_failures;
            mean.checkpoints += checkpoints;
            mean.attempts += attempts;
        }
        let n = completed as f64;
        mean.total_time /= n;
        mean.work_time /= n;
        mean.checkpoint_time /= n;
        mean.recompute_time /= n;
        mean.restart_time /= n;
        // The fractional means are the real aggregate; the `u64` fields of
        // `mean` can only hold a rounded copy (a rare event with true mean
        // 0.2 used to vanish to 0 here — keep both, rounded for the
        // integer-typed struct, exact in `mean_counts`).
        mean_counts = CountMeans {
            failures: mean.failures as f64 / n,
            masked_failures: mean.masked_failures as f64 / n,
            checkpoints: mean.checkpoints as f64 / n,
            attempts: mean.attempts as f64 / n,
        };
        mean.failures = mean_counts.failures.round() as u64;
        mean.masked_failures = mean_counts.masked_failures.round() as u64;
        mean.checkpoints = mean_counts.checkpoints.round() as u64;
        mean.attempts = mean_counts.attempts.round() as u64;
        mean_total = mean.total_time;
    }
    let variance = if completed > 1 {
        completed_stats.iter().map(|s| (s.total_time - mean_total).powi(2)).sum::<f64>()
            / (completed - 1) as f64
    } else {
        0.0
    };

    Ok(Aggregate {
        runs,
        completed,
        mean_total_time: mean_total,
        std_total_time: variance.sqrt(),
        mean,
        mean_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure_source::PoissonSource;
    use crate::job::{FailureExposure, JobConfig};
    use crate::simulate::simulate_job;

    fn run_one(seed: u64) -> Result<JobStats, SimError> {
        let cfg = JobConfig {
            work: 50.0,
            checkpoint_cost: 0.2,
            checkpoint_interval: 2.0,
            restart_cost: 0.5,
            exposure: FailureExposure::AllTime,
            max_attempts: 1_000_000,
        };
        let mut src = PoissonSource::new(25.0, seed);
        simulate_job(&cfg, &mut src)
    }

    #[test]
    fn aggregates_many_runs() {
        let agg = monte_carlo(64, 8, run_one).unwrap();
        assert_eq!(agg.runs, 64);
        assert_eq!(agg.completed, 64);
        assert!(agg.mean_total_time > 50.0);
        assert!(agg.std_total_time > 0.0);
        assert!(agg.sem_total_time() < agg.std_total_time);
        assert!((agg.mean.work_time - 50.0).abs() < 1e-6);
        assert_eq!(agg.completion_rate(), 1.0);
    }

    #[test]
    fn deterministic_given_seeds() {
        let a = monte_carlo(16, 4, run_one).unwrap();
        let b = monte_carlo(16, 2, run_one).unwrap();
        assert_eq!(a.mean_total_time, b.mean_total_time, "thread count must not matter");
    }

    #[test]
    fn divergent_runs_excluded() {
        let agg = monte_carlo(8, 2, |seed| {
            if seed % 2 == 0 {
                run_one(seed)
            } else {
                Err(SimError::TooManyAttempts { attempts: 10 })
            }
        })
        .unwrap();
        assert_eq!(agg.completed, 4);
        assert!((agg.completion_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn masked_failures_survive_aggregation() {
        // Regression: the mean loop used to drop masked_failures, so 2x
        // sweeps always reported a mean of zero masked deaths. Under a
        // harsh MTBF at dual redundancy nearly every run masks something.
        use redcr_fault::ReplicaGroups;

        use crate::failure_source::SphereSource;

        let cfg = JobConfig {
            work: 50.0,
            checkpoint_cost: 0.2,
            checkpoint_interval: 2.0,
            restart_cost: 0.5,
            exposure: FailureExposure::AllTime,
            max_attempts: 1_000_000,
        };
        let agg = monte_carlo(32, 4, |seed| {
            let mut src = SphereSource::new(ReplicaGroups::uniform(8, 2), 6.0, seed);
            simulate_job(&cfg, &mut src)
        })
        .unwrap();
        assert_eq!(agg.completed, 32);
        assert!(
            agg.mean.masked_failures > 0,
            "2x redundancy at mtbf 6 must mask deaths on average: {:?}",
            agg.mean
        );
    }

    #[test]
    fn rare_events_keep_fractional_means() {
        // Regression: the count means were rounded to u64, so any event
        // rarer than 0.5 per run reported as exactly 0 across an entire
        // sweep. At MTBF 1000 h a 50 h job fails in roughly 5% of runs —
        // rare, but emphatically not never.
        let cfg = JobConfig {
            work: 50.0,
            checkpoint_cost: 0.2,
            checkpoint_interval: 2.0,
            restart_cost: 0.5,
            exposure: FailureExposure::AllTime,
            max_attempts: 1_000_000,
        };
        let agg = monte_carlo(256, 8, |seed| {
            let mut src = PoissonSource::new(1000.0, seed);
            simulate_job(&cfg, &mut src)
        })
        .unwrap();
        assert_eq!(agg.completed, 256);
        assert_eq!(agg.mean.failures, 0, "rounded mean hides the rare failures");
        assert!(
            agg.mean_counts.failures > 0.0 && agg.mean_counts.failures < 0.5,
            "fractional mean must surface them: {:?}",
            agg.mean_counts
        );
        // attempts = failures + 1 run-for-run, so the means must agree.
        assert!(
            (agg.mean_counts.attempts - 1.0 - agg.mean_counts.failures).abs() < 1e-12,
            "{:?}",
            agg.mean_counts
        );
    }

    #[test]
    fn fractional_and_rounded_means_agree_when_events_are_common() {
        let agg = monte_carlo(64, 8, run_one).unwrap();
        assert_eq!(agg.mean.checkpoints, agg.mean_counts.checkpoints.round() as u64);
        assert_eq!(agg.mean.attempts, agg.mean_counts.attempts.round() as u64);
        assert!(agg.mean_counts.checkpoints > 0.0);
    }

    #[test]
    fn zero_runs_ok() {
        let agg = monte_carlo(0, 4, run_one).unwrap();
        assert_eq!(agg.completed, 0);
        assert_eq!(agg.mean_total_time, 0.0);
    }
}
