//! Bridges the analytic model's [`CombinedConfig`] to a Monte-Carlo
//! simulation: the simulated counterpart of
//! [`CombinedConfig::evaluate`](redcr_model::combined::CombinedConfig::evaluate).

use redcr_fault::ReplicaGroups;
use redcr_model::combined::CombinedConfig;
use redcr_model::redundancy::{redundant_time, SystemModel};

use crate::failure_source::SphereSource;
use crate::job::{FailureExposure, JobConfig};
use crate::simulate::{simulate_job, SimError};
use crate::stats::JobStats;

/// Default attempt cap for combined simulations.
pub const DEFAULT_MAX_ATTEMPTS: u64 = 1_000_000;

/// Derives the simulator inputs (job + sphere structure) from a combined
/// model configuration.
///
/// # Errors
///
/// Propagates model errors (invalid parameters, divergent interval).
pub fn derive_job(
    cfg: &CombinedConfig,
    exposure: FailureExposure,
) -> Result<(JobConfig, ReplicaGroups), SimError> {
    cfg.validate()?;
    let t_red = redundant_time(cfg.base_time, cfg.alpha, cfg.degree)?;
    let system = SystemModel::with_approximation(
        cfg.n_virtual,
        cfg.degree,
        cfg.node_mtbf,
        cfg.approximation,
    )?;
    let sys = system.evaluate(t_red)?;
    let delta = if sys.failure_rate == 0.0 {
        // Failure-free limit: one giant segment.
        t_red
    } else {
        cfg.interval_policy.interval(cfg.checkpoint_cost, sys.mtbf)?
    };
    let partition = cfg.partition()?;
    let counts: Vec<usize> =
        (0..partition.n_virtual()).map(|v| partition.replicas_of(v) as usize).collect();
    let groups = ReplicaGroups::from_counts(&counts);
    let job = JobConfig {
        work: t_red,
        checkpoint_cost: cfg.checkpoint_cost,
        checkpoint_interval: delta,
        restart_cost: cfg.restart_cost,
        exposure,
        max_attempts: DEFAULT_MAX_ATTEMPTS,
    };
    Ok((job, groups))
}

/// Runs one Monte-Carlo simulation of a combined C/R + redundancy
/// configuration: per-process exponential failures, sphere-level job death,
/// Daly-interval checkpointing.
///
/// # Errors
///
/// Returns [`SimError::TooManyAttempts`] for divergent configurations or a
/// model error for invalid ones.
pub fn simulate_combined(
    cfg: &CombinedConfig,
    exposure: FailureExposure,
    seed: u64,
) -> Result<JobStats, SimError> {
    let (job, groups) = derive_job(cfg, exposure)?;
    let mut source = SphereSource::new(groups, cfg.node_mtbf, seed);
    simulate_job(&job, &mut source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcr_model::units;

    fn base_config() -> CombinedConfig {
        CombinedConfig::builder()
            .virtual_processes(64)
            .base_time_hours(10.0)
            .node_mtbf_hours(500.0)
            .comm_fraction(0.2)
            .checkpoint_cost_hours(units::hours_from_secs(120.0))
            .restart_cost_hours(units::hours_from_secs(500.0))
            .build()
            .unwrap()
    }

    #[test]
    fn derive_job_scales_work_with_redundancy() {
        let cfg = base_config();
        let (j1, g1) = derive_job(&cfg.with_degree(1.0), FailureExposure::AllTime).unwrap();
        let (j2, g2) = derive_job(&cfg.with_degree(2.0), FailureExposure::AllTime).unwrap();
        assert!(j2.work > j1.work, "redundant communication slows the job");
        assert_eq!(g1.n_physical(), 64);
        assert_eq!(g2.n_physical(), 128);
        // Higher reliability at 2x means a longer Daly interval.
        assert!(j2.checkpoint_interval > j1.checkpoint_interval);
    }

    #[test]
    fn simulation_completes_and_is_consistent() {
        let cfg = base_config().with_degree(2.0);
        let stats = simulate_combined(&cfg, FailureExposure::AllTime, 7).unwrap();
        assert!(stats.is_consistent());
        let (job, _) = derive_job(&cfg, FailureExposure::AllTime).unwrap();
        assert!((stats.work_time - job.work).abs() < 1e-6);
    }

    #[test]
    fn monte_carlo_tracks_model_prediction() {
        // The mean simulated total time should be in the same ballpark as
        // the closed-form Eq. 14 prediction (the paper's model-validation
        // claim, here at 2x redundancy).
        let cfg = base_config().with_degree(2.0);
        let model = cfg.evaluate().unwrap();
        let n = 40;
        let mut total = 0.0;
        for seed in 0..n {
            total += simulate_combined(&cfg, FailureExposure::AllTime, seed).unwrap().total_time;
        }
        let mean = total / n as f64;
        let rel = (mean - model.total_time).abs() / model.total_time;
        assert!(rel < 0.15, "simulated mean {mean} vs model {} (rel {rel})", model.total_time);
    }

    #[test]
    fn partial_degrees_simulate() {
        let cfg = base_config().with_degree(1.5);
        let stats = simulate_combined(&cfg, FailureExposure::WorkOnly, 3).unwrap();
        assert!(stats.is_consistent());
        let (_, groups) = derive_job(&cfg, FailureExposure::WorkOnly).unwrap();
        assert_eq!(groups.n_physical(), 96);
    }
}
