//! Simulation outcomes: the four-bucket time breakdown of the paper's
//! Table 2 (work / checkpoint / recompute / restart).

use serde::{Deserialize, Serialize};

/// Where a finished job's time went.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct JobStats {
    /// Total wallclock, `T_total`.
    pub total_time: f64,
    /// Time spent executing *new* work (sums to the job's work amount).
    pub work_time: f64,
    /// Time spent writing checkpoints (including partial, failed ones).
    pub checkpoint_time: f64,
    /// Time spent re-executing work lost to failures.
    pub recompute_time: f64,
    /// Time spent in restart phases (including partial ones).
    pub restart_time: f64,
    /// Number of failures endured.
    pub failures: u64,
    /// Individual process deaths masked by redundancy (a replica died but
    /// its sphere survived, so the job did not restart). Sources without
    /// process granularity report 0.
    pub masked_failures: u64,
    /// Number of checkpoints committed.
    pub checkpoints: u64,
    /// Number of attempts (1 = failure-free).
    pub attempts: u64,
}

impl JobStats {
    /// Fraction of total time in each bucket:
    /// `(work, checkpoint, recompute, restart)` — the paper's Table 2 rows.
    pub fn breakdown(&self) -> (f64, f64, f64, f64) {
        if self.total_time == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.work_time / self.total_time,
            self.checkpoint_time / self.total_time,
            self.recompute_time / self.total_time,
            self.restart_time / self.total_time,
        )
    }

    /// The C/R efficiency: useful work over total time (the "useful vs
    /// scheduled machine time" ratio of the paper's introduction).
    pub fn efficiency(&self) -> f64 {
        if self.total_time == 0.0 {
            0.0
        } else {
            self.work_time / self.total_time
        }
    }

    /// Internal consistency: the buckets must sum to the total.
    pub fn is_consistent(&self) -> bool {
        let sum = self.work_time + self.checkpoint_time + self.recompute_time + self.restart_time;
        (sum - self.total_time).abs() <= 1e-6 * self.total_time.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_fractions() {
        let s = JobStats {
            total_time: 100.0,
            work_time: 35.0,
            checkpoint_time: 20.0,
            recompute_time: 10.0,
            restart_time: 35.0,
            failures: 5,
            masked_failures: 2,
            checkpoints: 10,
            attempts: 6,
        };
        let (w, c, r, rs) = s.breakdown();
        assert_eq!((w, c, r, rs), (0.35, 0.2, 0.1, 0.35));
        assert!(s.is_consistent());
        assert_eq!(s.efficiency(), 0.35);
    }

    #[test]
    fn zero_total_guard() {
        let s = JobStats::default();
        assert_eq!(s.breakdown(), (0.0, 0.0, 0.0, 0.0));
        assert_eq!(s.efficiency(), 0.0);
    }
}
