//! # redcr-cluster — a discrete-event simulator of checkpointed,
//! replicated jobs at scale
//!
//! The paper's evaluation spans scales no testbed reaches (Tables 2–3 cover
//! up to 100 000 nodes; Figures 13–14 up to 200 000+ processes). This crate
//! replays a job's **segment / checkpoint / failure / restart / rework
//! timeline** directly as events, so a 168-hour, 100k-node job simulates in
//! microseconds — the Monte-Carlo counterpart of the closed-form model in
//! `redcr-model`, and the engine behind the Table 2/3/4 reproductions.
//!
//! * [`job`] — job configuration: work amount, checkpoint interval/cost,
//!   restart cost, and whether failures strike during overhead phases
//!   (the paper's model says yes; its cluster experiments say no — both
//!   are supported).
//! * [`failure_source`] — where failures come from: a memoryless system
//!   failure rate, a full per-process + replica-sphere sampler (via
//!   `redcr-fault`), or a scripted schedule for tests.
//! * [`simulate`] — the timeline walker producing a [`stats::JobStats`]
//!   breakdown (work / checkpoint / recompute / restart), the same four
//!   buckets as the paper's Table 2.
//! * [`sweep`] — seeded Monte-Carlo aggregation (mean/σ over many runs),
//!   parallelized across OS threads.
//! * [`combined`] — bridges `redcr-model::combined::CombinedConfig` to a
//!   simulation: redundant time from Eq. 1, sphere structure from the
//!   partial-redundancy partition, Daly's interval from Eq. 15.
//!
//! # Example
//!
//! ```
//! use redcr_cluster::job::{FailureExposure, JobConfig};
//! use redcr_cluster::failure_source::PoissonSource;
//! use redcr_cluster::simulate::simulate_job;
//!
//! // 100 h of work, 6 min checkpoints every 2 h, 10 min restarts,
//! // system MTBF 50 h.
//! let cfg = JobConfig {
//!     work: 100.0,
//!     checkpoint_cost: 0.1,
//!     checkpoint_interval: 2.0,
//!     restart_cost: 1.0 / 6.0,
//!     exposure: FailureExposure::AllTime,
//!     max_attempts: 100_000,
//! };
//! let mut source = PoissonSource::new(50.0, 42);
//! let stats = simulate_job(&cfg, &mut source).expect("completes");
//! assert!(stats.total_time > 100.0);
//! assert!(stats.work_time >= 100.0 - 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod combined;
pub mod failure_source;
pub mod job;
pub mod simulate;
pub mod stats;
pub mod sweep;

pub use failure_source::{
    FailureSource, NodeSphereSource, PoissonSource, ScheduledSource, SphereSource,
};
pub use job::{FailureExposure, JobConfig};
pub use simulate::{simulate_job, SimError};
pub use stats::JobStats;
pub use sweep::{monte_carlo, Aggregate, CountMeans};
