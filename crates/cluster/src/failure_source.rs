//! Failure sources feeding the timeline simulator.

use redcr_fault::{ExpSampler, FailureSchedule, NodePlacement, ReplicaGroups};

/// Supplies, per attempt, the (relative) time at which the job fails.
///
/// Times are measured on the attempt's *exposure clock* (see
/// [`FailureExposure`](crate::job::FailureExposure)): under `AllTime` this
/// is wall time from attempt start; under `WorkOnly` it advances only while
/// the job is doing useful work.
pub trait FailureSource {
    /// The failure time of attempt `attempt` (relative to the attempt's
    /// start, in exposure-clock units). `f64::INFINITY` means the attempt
    /// is failure-free.
    fn next_failure(&mut self, attempt: u64) -> f64;

    /// Individual process deaths from the most recent [`next_failure`]
    /// sample that occurred by exposure time `exposure` **without** killing
    /// the job — deaths masked by surviving replicas. Sources without
    /// process granularity report 0.
    ///
    /// [`next_failure`]: FailureSource::next_failure
    fn masked_before(&self, _exposure: f64) -> u64 {
        0
    }
}

/// Memoryless system-level failures at a fixed rate (system MTBF `Θ`):
/// the aggregated view the analytic model uses (Eq. 10).
#[derive(Debug, Clone)]
pub struct PoissonSource {
    sampler: ExpSampler,
}

impl PoissonSource {
    /// Failures with mean inter-arrival `system_mtbf` (same unit as the job
    /// durations), deterministically seeded.
    ///
    /// # Panics
    ///
    /// Panics if `system_mtbf` is not positive.
    pub fn new(system_mtbf: f64, seed: u64) -> Self {
        PoissonSource { sampler: ExpSampler::new(system_mtbf, seed) }
    }
}

impl FailureSource for PoissonSource {
    fn next_failure(&mut self, _attempt: u64) -> f64 {
        self.sampler.sample()
    }
}

/// Per-physical-process sampling with replica-sphere semantics: the job
/// fails when the first whole sphere is dead (partial redundancy, via
/// `redcr-fault`). Fresh samples per attempt (spares replace failed nodes).
#[derive(Debug, Clone)]
pub struct SphereSource {
    groups: ReplicaGroups,
    sampler: ExpSampler,
    /// Fast path: when no process is replicated, the job failure time is
    /// the minimum of `N` i.i.d. exponentials — a single `Exp(θ/N)` draw.
    min_sampler: Option<ExpSampler>,
    /// Most recent sample: `(schedule, killer_sphere, failure_time)`, kept
    /// for masked-death accounting.
    last: Option<(FailureSchedule, usize, f64)>,
}

impl SphereSource {
    /// Creates a source for the given sphere structure with per-process
    /// MTBF `node_mtbf` (same unit as job durations).
    ///
    /// # Panics
    ///
    /// Panics if `node_mtbf` is not positive.
    pub fn new(groups: ReplicaGroups, node_mtbf: f64, seed: u64) -> Self {
        let min_sampler = if groups.iter().all(|g| g.len() == 1) && node_mtbf.is_finite() {
            Some(ExpSampler::new(node_mtbf / groups.n_physical() as f64, seed ^ 0x5eed))
        } else {
            None
        };
        SphereSource { groups, sampler: ExpSampler::new(node_mtbf, seed), min_sampler, last: None }
    }

    /// The sphere structure.
    pub fn groups(&self) -> &ReplicaGroups {
        &self.groups
    }
}

impl FailureSource for SphereSource {
    fn next_failure(&mut self, _attempt: u64) -> f64 {
        if let Some(min_sampler) = &mut self.min_sampler {
            // Unreplicated fast path: the first death kills the job, so no
            // death is ever masked and the schedule is not needed.
            return min_sampler.sample();
        }
        let schedule = FailureSchedule::sample(self.groups.n_physical(), &mut self.sampler);
        let (failure, killer) = schedule.job_failure(&self.groups);
        self.last = Some((schedule, killer, failure));
        failure
    }

    fn masked_before(&self, exposure: f64) -> u64 {
        masked_in_schedule(self.last.as_ref(), &self.groups, exposure)
    }
}

/// Counts the deaths in `last`'s schedule by `exposure` that did not kill
/// the job: everything up to the failure time except the killer sphere's
/// own members.
fn masked_in_schedule(
    last: Option<&(FailureSchedule, usize, f64)>,
    groups: &ReplicaGroups,
    exposure: f64,
) -> u64 {
    let Some((schedule, killer, failure)) = last else { return 0 };
    if exposure >= *failure {
        let dead = schedule.dead_by(*failure).len();
        dead.saturating_sub(groups.members(*killer).len()) as u64
    } else {
        schedule.dead_by(exposure).len() as u64
    }
}

/// Node-granularity failures: per-*node* exponential sampling with every
/// process on a dead node dying together (the paper's socket-as-failure-
/// unit view, with its 14-processes-per-node pinning). The ablation
/// counterpart of [`SphereSource`].
#[derive(Debug, Clone)]
pub struct NodeSphereSource {
    groups: ReplicaGroups,
    placement: NodePlacement,
    sampler: ExpSampler,
    last: Option<(FailureSchedule, usize, f64)>,
}

impl NodeSphereSource {
    /// Creates a source with `procs_per_node` processes packed per node and
    /// per-node MTBF `node_mtbf`. Replica anti-affinity is enforced (a
    /// sphere with two replicas on one node would die atomically).
    ///
    /// # Panics
    ///
    /// Panics if `node_mtbf` is not positive or replicas share a node.
    pub fn new(groups: ReplicaGroups, procs_per_node: usize, node_mtbf: f64, seed: u64) -> Self {
        let placement = NodePlacement::anti_affine(&groups, procs_per_node);
        NodeSphereSource {
            groups,
            placement,
            sampler: ExpSampler::new(node_mtbf, seed),
            last: None,
        }
    }

    /// The node placement in effect.
    pub fn placement(&self) -> &NodePlacement {
        &self.placement
    }
}

impl FailureSource for NodeSphereSource {
    fn next_failure(&mut self, _attempt: u64) -> f64 {
        let schedule = self.placement.sample(&mut self.sampler);
        let (failure, killer) = schedule.job_failure(&self.groups);
        self.last = Some((schedule, killer, failure));
        failure
    }

    fn masked_before(&self, exposure: f64) -> u64 {
        masked_in_schedule(self.last.as_ref(), &self.groups, exposure)
    }
}

/// A scripted list of per-attempt failure times (tests); attempts beyond
/// the list are failure-free.
#[derive(Debug, Clone)]
pub struct ScheduledSource {
    times: Vec<f64>,
}

impl ScheduledSource {
    /// Creates a source failing attempt `i` at `times[i]`.
    pub fn new(times: Vec<f64>) -> Self {
        ScheduledSource { times }
    }
}

impl FailureSource for ScheduledSource {
    fn next_failure(&mut self, attempt: u64) -> f64 {
        self.times.get(attempt as usize).copied().unwrap_or(f64::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduled_source_replays_then_clean() {
        let mut s = ScheduledSource::new(vec![1.0, 2.0]);
        assert_eq!(s.next_failure(0), 1.0);
        assert_eq!(s.next_failure(1), 2.0);
        assert_eq!(s.next_failure(2), f64::INFINITY);
    }

    #[test]
    fn poisson_source_mean() {
        let mut s = PoissonSource::new(10.0, 3);
        let n = 50_000;
        let sum: f64 = (0..n).map(|i| s.next_failure(i)).sum();
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn node_source_respects_anti_affinity_and_granularity() {
        let mk = |replicas: usize, seed: u64| {
            let groups = ReplicaGroups::uniform(28, replicas);
            NodeSphereSource::new(groups, 14, 100.0, seed)
        };
        // 1x: 28 procs on 2 nodes; 2x: 56 procs on 4 nodes.
        let mut s1 = mk(1, 3);
        let mut s2 = mk(2, 3);
        let n = 500;
        let m1: f64 = (0..n).map(|i| s1.next_failure(i)).sum::<f64>() / n as f64;
        let m2: f64 = (0..n).map(|i| s2.next_failure(i)).sum::<f64>() / n as f64;
        // 1x dies at the first of 2 node failures: mean ~ 100/2 = 50.
        assert!((m1 - 50.0).abs() < 8.0, "m1 = {m1}");
        // Dual redundancy on anti-affine nodes: the job dies at the first
        // fully-dead node *pair*, the min of two Exp-max variables with
        // mean ≈ 94 at θ = 100 — nearly double the 1x lifetime.
        assert!(m2 > 1.6 * m1, "m2 = {m2}");
        assert!((m2 - 94.0).abs() < 15.0, "m2 = {m2}");
    }

    #[test]
    fn sphere_source_counts_masked_deaths() {
        // 2x spheres with a harsh MTBF: by the time the job dies, several
        // processes outside the killer sphere usually died too — all of
        // them masked. Before the failure, *every* sampled death is masked.
        let mut s = SphereSource::new(ReplicaGroups::uniform(8, 2), 5.0, 4);
        let mut saw_masked = false;
        for attempt in 0..50 {
            let failure = s.next_failure(attempt);
            assert!(failure.is_finite());
            assert_eq!(s.masked_before(0.0), 0, "no deaths at exposure 0");
            let at_failure = s.masked_before(failure);
            let just_before = s.masked_before(failure * (1.0 - 1e-12));
            assert!(at_failure <= just_before, "the killer sphere is not masked");
            saw_masked |= at_failure > 0;
        }
        assert!(saw_masked, "masked deaths must occur under mtbf 5 at 2x");
        // The unreplicated fast path has nothing to mask.
        let mut plain = SphereSource::new(ReplicaGroups::uniform(8, 1), 5.0, 4);
        let failure = plain.next_failure(0);
        assert_eq!(plain.masked_before(failure), 0);
    }

    #[test]
    fn sphere_source_redundancy_extends_lifetime() {
        let mean_of = |groups: ReplicaGroups, seed| {
            let mut s = SphereSource::new(groups, 100.0, seed);
            (0..2000).map(|i| s.next_failure(i)).sum::<f64>() / 2000.0
        };
        let m1 = mean_of(ReplicaGroups::uniform(16, 1), 1);
        let m2 = mean_of(ReplicaGroups::uniform(8, 2), 1);
        // 1x on 16 nodes: MTBF ~ 100/16 = 6.25. Dual redundancy: far longer.
        assert!((m1 - 6.25).abs() < 1.0, "m1 = {m1}");
        assert!(m2 > 4.0 * m1, "m2 = {m2}");
    }
}
