//! The timeline walker: replays restart → (work → checkpoint)* phases
//! against a failure source until the job's work is complete.

use std::error::Error;
use std::fmt;

use crate::failure_source::FailureSource;
use crate::job::{FailureExposure, JobConfig};
use crate::stats::JobStats;

/// Simulation failures.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The job did not complete within `max_attempts` — the configuration
    /// is effectively divergent (cf. the model's `λ·t_RR ≥ 1`).
    TooManyAttempts {
        /// The configured attempt limit that was reached.
        attempts: u64,
    },
    /// A model-side error while deriving the job configuration.
    Model(redcr_model::ModelError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooManyAttempts { attempts } => {
                write!(f, "job did not complete within {attempts} attempts (divergent)")
            }
            SimError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<redcr_model::ModelError> for SimError {
    fn from(e: redcr_model::ModelError) -> Self {
        SimError::Model(e)
    }
}

/// Numerical slack for "work complete" comparisons.
const EPS: f64 = 1e-12;

/// Simulates one job to completion against `source`.
///
/// # Errors
///
/// Returns [`SimError::TooManyAttempts`] if the job cannot finish within
/// `cfg.max_attempts`.
///
/// # Panics
///
/// Panics if `cfg` is invalid (see [`JobConfig::validate`]).
pub fn simulate_job(cfg: &JobConfig, source: &mut dyn FailureSource) -> Result<JobStats, SimError> {
    cfg.validate();
    let overhead_exposed = cfg.exposure == FailureExposure::AllTime;
    let mut stats = JobStats::default();
    // Work position safely committed to stable storage.
    let mut committed = 0.0f64;
    // Furthest work position ever executed (for recompute accounting).
    let mut high_water = 0.0f64;

    loop {
        if stats.attempts >= cfg.max_attempts {
            return Err(SimError::TooManyAttempts { attempts: cfg.max_attempts });
        }
        let fail_at = source.next_failure(stats.attempts);
        stats.attempts += 1;
        let restarting = stats.attempts > 1;
        let mut exposure = 0.0f64; // exposure clock within this attempt
        let mut position = committed;
        let mut failed = false;

        // Restart phase (every attempt after the first).
        if restarting {
            if overhead_exposed && fail_at - exposure < cfg.restart_cost {
                let partial = fail_at - exposure;
                stats.restart_time += partial;
                stats.total_time += partial;
                stats.failures += 1;
                stats.masked_failures += source.masked_before(fail_at);
                continue;
            }
            stats.restart_time += cfg.restart_cost;
            stats.total_time += cfg.restart_cost;
            if overhead_exposed {
                exposure += cfg.restart_cost;
            }
        }

        // Work segments punctuated by checkpoints.
        while position < cfg.work - EPS {
            let seg = (cfg.work - position).min(cfg.checkpoint_interval);
            // Work phase — always exposed to failures.
            if fail_at - exposure < seg {
                let done = (fail_at - exposure).max(0.0);
                account_work(&mut stats, position, done, &mut high_water);
                stats.total_time += done;
                stats.failures += 1;
                stats.masked_failures += source.masked_before(fail_at);
                failed = true;
                break;
            }
            account_work(&mut stats, position, seg, &mut high_water);
            stats.total_time += seg;
            exposure += seg;
            position += seg;
            if position >= cfg.work - EPS {
                // Job done; no trailing checkpoint needed.
                committed = position;
                break;
            }
            // Checkpoint phase.
            if overhead_exposed && fail_at - exposure < cfg.checkpoint_cost {
                let partial = (fail_at - exposure).max(0.0);
                stats.checkpoint_time += partial;
                stats.total_time += partial;
                stats.failures += 1;
                stats.masked_failures += source.masked_before(fail_at);
                failed = true;
                break;
            }
            stats.checkpoint_time += cfg.checkpoint_cost;
            stats.total_time += cfg.checkpoint_cost;
            if overhead_exposed {
                exposure += cfg.checkpoint_cost;
            }
            committed = position;
            stats.checkpoints += 1;
        }

        if !failed {
            // Deaths the completed attempt rode out were all masked.
            stats.masked_failures += source.masked_before(exposure);
            debug_assert!(committed >= cfg.work - 1e-9);
            debug_assert!(stats.is_consistent(), "{stats:?}");
            debug_assert!(
                (stats.work_time - cfg.work).abs() < 1e-6 * cfg.work.max(1.0),
                "fresh work {} != {}",
                stats.work_time,
                cfg.work
            );
            return Ok(stats);
        }
    }
}

/// Splits a stretch of executed work into "fresh" and "recomputed" parts
/// based on the high-water mark of previously executed work.
fn account_work(stats: &mut JobStats, position: f64, amount: f64, high_water: &mut f64) {
    let recomp = (*high_water - position).clamp(0.0, amount);
    stats.recompute_time += recomp;
    stats.work_time += amount - recomp;
    *high_water = high_water.max(position + amount);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure_source::{PoissonSource, ScheduledSource};

    fn cfg(work: f64, c: f64, delta: f64, restart: f64) -> JobConfig {
        JobConfig {
            work,
            checkpoint_cost: c,
            checkpoint_interval: delta,
            restart_cost: restart,
            exposure: FailureExposure::AllTime,
            max_attempts: 1_000_000,
        }
    }

    #[test]
    fn failure_free_time_is_work_plus_checkpoints() {
        // 10 units of work, checkpoint every 3: segments 3,3,3,1 with
        // checkpoints after the first three.
        let mut src = ScheduledSource::new(vec![]);
        let stats = simulate_job(&cfg(10.0, 0.5, 3.0, 1.0), &mut src).unwrap();
        assert_eq!(stats.attempts, 1);
        assert_eq!(stats.failures, 0);
        assert_eq!(stats.checkpoints, 3);
        assert!((stats.total_time - (10.0 + 3.0 * 0.5)).abs() < 1e-9);
        assert!((stats.work_time - 10.0).abs() < 1e-9);
        assert_eq!(stats.recompute_time, 0.0);
    }

    #[test]
    fn one_failure_mid_segment_recomputes_lost_work() {
        // Fail attempt 0 at exposure 4.0: one committed segment (3 work +
        // 0.5 ckpt), then 0.5 into the second segment.
        let mut src = ScheduledSource::new(vec![4.0]);
        let stats = simulate_job(&cfg(10.0, 0.5, 3.0, 1.0), &mut src).unwrap();
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.attempts, 2);
        // Lost 0.5 of work which is re-executed in attempt 2.
        assert!((stats.recompute_time - 0.5).abs() < 1e-9, "{stats:?}");
        assert!((stats.work_time - 10.0).abs() < 1e-9);
        assert!((stats.restart_time - 1.0).abs() < 1e-9);
        assert!(stats.is_consistent());
    }

    #[test]
    fn failure_during_checkpoint_loses_whole_segment() {
        // Fail at exposure 3.2: inside the first checkpoint (starts at 3.0).
        let mut src = ScheduledSource::new(vec![3.2]);
        let stats = simulate_job(&cfg(10.0, 0.5, 3.0, 1.0), &mut src).unwrap();
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.checkpoints, 3, "attempt 2 re-takes the checkpoint");
        // The whole 3-unit segment is recomputed.
        assert!((stats.recompute_time - 3.0).abs() < 1e-9, "{stats:?}");
        // Partial checkpoint time (0.2) plus three full ones.
        assert!((stats.checkpoint_time - (0.2 + 1.5)).abs() < 1e-9);
    }

    #[test]
    fn failure_during_restart_repeats_restart() {
        // Attempt 0 dies at 1.0 (mid first segment); attempt 1 dies at 0.5,
        // i.e. inside its own 1.0-long restart phase; attempt 2 finishes.
        let mut src = ScheduledSource::new(vec![1.0, 0.5]);
        let stats = simulate_job(&cfg(5.0, 0.5, 3.0, 1.0), &mut src).unwrap();
        assert_eq!(stats.failures, 2);
        assert_eq!(stats.attempts, 3);
        // Restart time: 0.5 (partial, killed) + 1.0 (successful).
        assert!((stats.restart_time - 1.5).abs() < 1e-9, "{stats:?}");
    }

    #[test]
    fn work_only_exposure_shields_overheads() {
        // Failure at exposure 3.1 under WorkOnly: the checkpoint (wall time
        // 3.0-3.5) is not exposed, so the failure lands 0.1 into the second
        // segment instead.
        let mut wall = cfg(10.0, 0.5, 3.0, 1.0);
        wall.exposure = FailureExposure::WorkOnly;
        let mut src = ScheduledSource::new(vec![3.1]);
        let stats = simulate_job(&wall, &mut src).unwrap();
        assert_eq!(stats.failures, 1);
        // Only 0.1 of work lost, not the whole segment.
        assert!((stats.recompute_time - 0.1).abs() < 1e-9, "{stats:?}");
    }

    #[test]
    fn divergent_config_detected() {
        let mut c = cfg(100.0, 0.5, 3.0, 10.0);
        c.max_attempts = 50;
        // Dies at the very start of every attempt.
        let mut src = PoissonSource::new(0.01, 1);
        let err = simulate_job(&c, &mut src).unwrap_err();
        assert!(matches!(err, SimError::TooManyAttempts { .. }));
    }

    #[test]
    fn statistics_sane_under_random_failures() {
        let c = cfg(100.0, 0.2, 2.0, 0.5);
        let mut src = PoissonSource::new(20.0, 7);
        let stats = simulate_job(&c, &mut src).unwrap();
        assert!(stats.is_consistent(), "{stats:?}");
        assert!((stats.work_time - 100.0).abs() < 1e-6);
        assert!(stats.failures > 0, "MTBF 20 over >100 time units must fail sometimes");
        assert!(stats.total_time > 100.0);
    }

    #[test]
    fn shorter_interval_reduces_recompute_but_adds_checkpoints() {
        let run = |delta: f64| {
            let c = cfg(200.0, 0.1, delta, 0.5);
            let mut src = PoissonSource::new(10.0, 42);
            simulate_job(&c, &mut src).unwrap()
        };
        let tight = run(1.0);
        let loose = run(50.0);
        assert!(tight.checkpoint_time > loose.checkpoint_time);
        assert!(tight.recompute_time < loose.recompute_time);
    }
}
