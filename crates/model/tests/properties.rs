//! Property-based tests for the analytic model's invariants.

use proptest::prelude::*;
use redcr_model::checkpointing::{daly_interval, lost_work, restart_rework, young_interval};
use redcr_model::combined::CombinedConfig;
use redcr_model::partition::{AssignmentStrategy, RedundancyPartition};
use redcr_model::redundancy::{redundant_time, SystemModel};
use redcr_model::reliability::{node_reliability, sphere_reliability, Approximation};

proptest! {
    /// Eq. 5: the two partition sets always cover N exactly.
    #[test]
    fn partition_sets_cover_n(n in 1u64..100_000, r in 1.0f64..3.0) {
        let p = RedundancyPartition::new(n, r).unwrap();
        prop_assert_eq!(p.n_floor_set() + p.n_ceil_set(), n);
    }

    /// Eq. 8: N·r ≤ N_total < N·r + 1 (floor rounding adds at most one).
    #[test]
    fn partition_total_tracks_nr(n in 1u64..100_000, r in 1.0f64..3.0) {
        let p = RedundancyPartition::new(n, r).unwrap();
        let total = p.total_physical() as f64;
        let nr = n as f64 * r;
        prop_assert!(total >= nr - 1e-6);
        prop_assert!(total < nr + 1.0 + 1e-6);
    }

    /// Per-rank replica counts only take the two partition values and sum to
    /// the partition total, for both placement strategies.
    #[test]
    fn partition_assignment_consistent(
        n in 1u64..2_000,
        r in 1.0f64..3.0,
        blocked in any::<bool>(),
    ) {
        let strategy = if blocked {
            AssignmentStrategy::Blocked
        } else {
            AssignmentStrategy::Interleaved
        };
        let p = RedundancyPartition::with_strategy(n, r, strategy).unwrap();
        let mut sum = 0;
        let mut ceil_count = 0;
        for v in 0..n {
            let c = p.replicas_of(v);
            prop_assert!(c == p.floor_replicas() || c == p.ceil_replicas());
            if c == p.ceil_replicas() {
                ceil_count += 1;
            }
            sum += c;
        }
        prop_assert_eq!(sum, p.total_physical());
        if p.floor_replicas() != p.ceil_replicas() {
            prop_assert_eq!(ceil_count, p.n_ceil_set());
        }
    }

    /// Reliabilities are probabilities.
    #[test]
    fn reliability_in_unit_interval(
        t in 0.0f64..1e6,
        theta in 1e-3f64..1e9,
        k in 1u64..8,
    ) {
        for approx in [Approximation::Linear, Approximation::Exact] {
            let r = node_reliability(t, theta, approx).unwrap();
            prop_assert!((0.0..=1.0).contains(&r));
            let s = sphere_reliability(t, theta, k, approx).unwrap();
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!(s >= r - 1e-12, "sphere at least as reliable as one node");
        }
    }

    /// Eq. 1: t_Red is monotone in r and bounded by [t, r·t].
    #[test]
    fn redundant_time_monotone(
        t in 1e-3f64..1e5,
        alpha in 0.0f64..1.0,
        r in 1.0f64..3.0,
    ) {
        let tr = redundant_time(t, alpha, r).unwrap();
        prop_assert!(tr >= t - 1e-9);
        prop_assert!(tr <= r * t + 1e-9);
        let tr2 = redundant_time(t, alpha, (r + 0.5).min(3.0)).unwrap();
        prop_assert!(tr2 >= tr - 1e-9);
    }

    /// System reliability improves (weakly) with redundancy degree.
    #[test]
    fn system_reliability_monotone_in_r(
        n in 1u64..10_000,
        theta in 10.0f64..1e7,
        t in 0.1f64..100.0,
    ) {
        prop_assume!(t < theta);
        let mut last = -1.0f64;
        for r in [1.0, 1.5, 2.0, 2.5, 3.0] {
            let m = SystemModel::new(n, r, theta).unwrap();
            let rel = m.system_reliability(t).unwrap();
            prop_assert!(rel >= last - 1e-12, "r={} rel={} last={}", r, rel, last);
            last = rel;
        }
    }

    /// Eq. 12: expected lost work never exceeds the segment length.
    #[test]
    fn lost_work_bounds(
        delta in 1e-6f64..1e4,
        c in 0.0f64..1e3,
        theta in 1e-3f64..1e12,
    ) {
        let t_lw = lost_work(delta, c, theta).unwrap();
        prop_assert!(t_lw >= 0.0);
        prop_assert!(t_lw <= delta + 1e-9);
    }

    /// Eq. 13: expected restart+rework never exceeds the nominal R + t_lw.
    #[test]
    fn restart_rework_bounds(
        restart in 0.0f64..1e3,
        t_lw in 0.0f64..1e3,
        theta in 1e-3f64..1e9,
    ) {
        let t_rr = restart_rework(restart, t_lw, theta).unwrap();
        prop_assert!(t_rr >= 0.0);
        prop_assert!(t_rr <= restart + t_lw + 1e-9);
    }

    /// Eq. 15: Daly's interval is positive and grows with both c and Θ.
    #[test]
    fn daly_positive_and_monotone(c in 1e-6f64..10.0, theta in 1e-2f64..1e8) {
        let d = daly_interval(c, theta).unwrap();
        prop_assert!(d > 0.0);
        let d_bigger_theta = daly_interval(c, theta * 4.0).unwrap();
        prop_assert!(d_bigger_theta >= d - 1e-9);
    }

    /// Daly's higher-order interval is never longer than Young's first-order
    /// one (the correction terms subtract c and shrink the interval).
    #[test]
    fn daly_at_most_young_plus_slack(c in 1e-6f64..1.0, theta in 1.0f64..1e8) {
        prop_assume!(c < theta / 10.0);
        let d = daly_interval(c, theta).unwrap();
        let y = young_interval(c, theta).unwrap();
        // d = y(1 + small corrections) - c; corrections are <= ~0.12 for c << theta
        prop_assert!(d <= y * 1.2);
    }

    /// The combined model: total time is at least the redundant time, and
    /// efficiency is in (0, 1].
    #[test]
    fn combined_total_at_least_t_red(
        n in 1u64..50_000,
        r in 1.0f64..3.0,
        theta_hours in 100.0f64..1e7,
        alpha in 0.0f64..0.9,
    ) {
        let cfg = CombinedConfig::builder()
            .virtual_processes(n)
            .degree(r)
            .base_time_hours(10.0)
            .node_mtbf_hours(theta_hours)
            .comm_fraction(alpha)
            .checkpoint_cost_hours(0.05)
            .restart_cost_hours(0.1)
            .build()
            .unwrap();
        if let Ok(o) = cfg.evaluate() {
            prop_assert!(o.total_time >= o.redundant_time - 1e-6);
            let eff = o.work_efficiency();
            prop_assert!(eff > 0.0 && eff <= 1.0 + 1e-9);
            prop_assert!(o.expected_failures >= 0.0);
        }
    }
}
