//! Redundant execution time and system-level reliability under partial
//! redundancy (paper Eq. 1 and Eqs. 9–10).

use serde::{Deserialize, Serialize};

use crate::error::{ensure_in_range, ensure_non_negative, ensure_positive};
use crate::partition::RedundancyPartition;
use crate::reliability::{node_failure_probability, Approximation};
use crate::Result;

/// Execution time under redundancy degree `r` (Eq. 1):
///
/// `t_Red = (1 − α)·t + α·t·r`
///
/// where `α` is the communication/computation ratio of the application. Only
/// communication is slowed down: the replication layer turns each virtual
/// point-to-point call into `r` physical calls.
///
/// # Errors
///
/// Returns an error if `t < 0`, `alpha ∉ [0, 1]`, or `r < 1`.
pub fn redundant_time(t: f64, alpha: f64, r: f64) -> Result<f64> {
    ensure_non_negative("t", t)?;
    ensure_in_range("alpha", alpha, 0.0, 1.0)?;
    ensure_in_range("r", r, 1.0, crate::partition::MAX_DEGREE)?;
    Ok((1.0 - alpha) * t + alpha * t * r)
}

/// A system of `N` virtual processes at redundancy degree `r`, used to
/// evaluate Eqs. 9–10.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemModel {
    partition: RedundancyPartition,
    /// Per-node MTBF `θ` (same unit as the times passed to methods).
    node_mtbf: f64,
    approx: Approximation,
}

/// System-level reliability figures derived from Eqs. 9–10.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemReliability {
    /// `R_sys`: probability that every virtual process survives the horizon.
    pub reliability: f64,
    /// `λ_sys = −ln(R_sys)/t_Red` (Eq. 10).
    pub failure_rate: f64,
    /// `Θ_sys = 1/λ_sys` (Eq. 10).
    pub mtbf: f64,
}

impl SystemModel {
    /// Creates a system model.
    ///
    /// # Errors
    ///
    /// Returns an error if the partition parameters are invalid (see
    /// [`RedundancyPartition::new`]) or `node_mtbf <= 0`.
    pub fn new(n_virtual: u64, degree: f64, node_mtbf: f64) -> Result<Self> {
        Self::with_approximation(n_virtual, degree, node_mtbf, Approximation::default())
    }

    /// Like [`SystemModel::new`] with an explicit failure-probability form.
    ///
    /// # Errors
    ///
    /// Same as [`SystemModel::new`].
    pub fn with_approximation(
        n_virtual: u64,
        degree: f64,
        node_mtbf: f64,
        approx: Approximation,
    ) -> Result<Self> {
        ensure_positive("node_mtbf", node_mtbf)?;
        Ok(Self { partition: RedundancyPartition::new(n_virtual, degree)?, node_mtbf, approx })
    }

    /// The underlying partial-redundancy partition.
    pub fn partition(&self) -> &RedundancyPartition {
        &self.partition
    }

    /// Per-node MTBF `θ`.
    pub fn node_mtbf(&self) -> f64 {
        self.node_mtbf
    }

    /// `R_sys` over horizon `t_red` (Eq. 9):
    ///
    /// `R_sys = [1 − (t/θ)^⌊r⌋]^{N⌊r⌋} · [1 − (t/θ)^⌈r⌉]^{N⌈r⌉}`
    ///
    /// i.e. all `N⌊r⌋` less-replicated spheres *and* all `N⌈r⌉`
    /// more-replicated spheres survive.
    ///
    /// # Errors
    ///
    /// Returns an error if `t_red < 0`.
    pub fn system_reliability(&self, t_red: f64) -> Result<f64> {
        ensure_non_negative("t_red", t_red)?;
        let pf = node_failure_probability(t_red, self.node_mtbf, self.approx)?;
        let p = &self.partition;
        // Work in log space: N can be ~10^6 and the factors are close to 1.
        let mut log_r = 0.0f64;
        if p.n_floor_set() > 0 {
            let sphere = 1.0 - pf.powi(p.floor_replicas() as i32);
            if sphere <= 0.0 {
                return Ok(0.0);
            }
            log_r += p.n_floor_set() as f64 * sphere.ln();
        }
        if p.n_ceil_set() > 0 {
            let sphere = 1.0 - pf.powi(p.ceil_replicas() as i32);
            if sphere <= 0.0 {
                return Ok(0.0);
            }
            log_r += p.n_ceil_set() as f64 * sphere.ln();
        }
        Ok(log_r.exp())
    }

    /// Failure rate, MTBF and reliability of the whole system over horizon
    /// `t_red` (Eq. 10).
    ///
    /// When `R_sys` underflows to zero the failure rate is reported as
    /// `f64::INFINITY` and the MTBF as `0.0`.
    ///
    /// # Errors
    ///
    /// Returns an error if `t_red <= 0`.
    pub fn evaluate(&self, t_red: f64) -> Result<SystemReliability> {
        ensure_positive("t_red", t_red)?;
        // λ_sys = −ln(R_sys)/t_Red. Compute in log space directly so that
        // the rate stays finite and meaningful even when R_sys itself
        // underflows to 0 (long horizons at large N), and keeps precision
        // when R_sys ≈ 1 (exascale-small failure probabilities). The rate
        // is genuinely infinite only when a sphere's failure within the
        // horizon is *certain* (pf^k = 1 under the linear approximation).
        let pf = node_failure_probability(t_red, self.node_mtbf, self.approx)?;
        let p = &self.partition;
        let mut neg_log = 0.0f64;
        for (count, replicas) in
            [(p.n_floor_set(), p.floor_replicas()), (p.n_ceil_set(), p.ceil_replicas())]
        {
            if count == 0 {
                continue;
            }
            let sphere_fail = pf.powi(replicas as i32);
            if sphere_fail >= 1.0 {
                neg_log = f64::INFINITY;
                break;
            }
            neg_log -= count as f64 * (-sphere_fail).ln_1p();
        }
        let reliability = (-neg_log).exp();
        let failure_rate = neg_log / t_red;
        let mtbf = if failure_rate == 0.0 { f64::INFINITY } else { 1.0 / failure_rate };
        Ok(SystemReliability { reliability, failure_rate, mtbf })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundant_time_eq1() {
        // alpha = 0.2, t = 100, r = 2 -> 80 + 40 = 120.
        let t = redundant_time(100.0, 0.2, 2.0).unwrap();
        assert!((t - 120.0).abs() < 1e-12);
        // r = 1 leaves time unchanged.
        assert_eq!(redundant_time(100.0, 0.2, 1.0).unwrap(), 100.0);
        // alpha = 0: redundancy is free.
        assert_eq!(redundant_time(100.0, 0.0, 3.0).unwrap(), 100.0);
        // alpha = 1: time scales linearly with r.
        assert_eq!(redundant_time(100.0, 1.0, 3.0).unwrap(), 300.0);
    }

    #[test]
    fn redundant_time_rejects_bad_inputs() {
        assert!(redundant_time(-1.0, 0.2, 2.0).is_err());
        assert!(redundant_time(1.0, 1.2, 2.0).is_err());
        assert!(redundant_time(1.0, 0.2, 0.9).is_err());
    }

    #[test]
    fn integral_degree_reliability_matches_closed_form() {
        let m = SystemModel::new(100, 2.0, 10.0).unwrap();
        let t = 1.0;
        // R = (1 - (t/theta)^2)^100 with t/theta = 0.1.
        let expect = (1.0f64 - (0.1f64).powi(2)).powi(100);
        let got = m.system_reliability(t).unwrap();
        assert!((got - expect).abs() < 1e-9, "got {got} expect {expect}");
    }

    #[test]
    fn partial_degree_reliability_is_product_of_sets() {
        let m = SystemModel::new(10, 1.5, 10.0).unwrap();
        let t = 1.0;
        // 5 singles, 5 duals: (1-0.1)^5 * (1-0.01)^5
        let expect = 0.9f64.powi(5) * 0.99f64.powi(5);
        let got = m.system_reliability(t).unwrap();
        assert!((got - expect).abs() < 1e-9);
    }

    #[test]
    fn reliability_increases_with_degree() {
        let t = 1.0;
        let mut last = 0.0;
        for r in [1.0, 1.5, 2.0, 2.5, 3.0] {
            let m = SystemModel::new(1000, r, 50.0).unwrap();
            let rel = m.system_reliability(t).unwrap();
            assert!(rel >= last, "r={r}: {rel} < {last}");
            last = rel;
        }
    }

    #[test]
    fn failure_rate_and_mtbf_are_consistent() {
        let m = SystemModel::new(128, 2.0, 12.0).unwrap();
        let s = m.evaluate(2.0).unwrap();
        assert!((s.failure_rate * s.mtbf - 1.0).abs() < 1e-9);
        // Cross-check λ against the direct formula.
        let direct = -s.reliability.ln() / 2.0;
        assert!((s.failure_rate - direct).abs() / direct < 1e-6);
    }

    #[test]
    fn dead_system_reports_infinite_rate() {
        // t >= theta with linear approximation: every node surely fails.
        let m = SystemModel::new(4, 1.0, 1.0).unwrap();
        let s = m.evaluate(2.0).unwrap();
        assert_eq!(s.reliability, 0.0);
        assert!(s.failure_rate.is_infinite());
        assert_eq!(s.mtbf, 0.0);
    }

    #[test]
    fn exascale_scale_does_not_underflow() {
        // 10^6 nodes, 5-year MTBF, 128-hour horizon, dual redundancy: the
        // per-sphere failure probability is ~(128/43800)^2 ~ 8.5e-6; R_sys
        // should be well-defined and the rate finite and positive.
        let theta = crate::units::hours_from_years(5.0);
        let m = SystemModel::new(1_000_000, 2.0, theta).unwrap();
        let s = m.evaluate(128.0).unwrap();
        assert!(s.reliability > 0.0 && s.reliability < 1.0);
        assert!(s.failure_rate > 0.0 && s.failure_rate.is_finite());
    }

    #[test]
    fn higher_node_mtbf_improves_system_mtbf() {
        let a = SystemModel::new(128, 2.0, 6.0).unwrap().evaluate(1.0).unwrap();
        let b = SystemModel::new(128, 2.0, 30.0).unwrap().evaluate(1.0).unwrap();
        assert!(b.mtbf > a.mtbf);
    }
}
