//! Optimal configuration search: best redundancy degree, best checkpoint
//! interval, weighted time-vs-resource cost functions, and the crossover
//! finders behind Figures 13–14.
//!
//! The paper's central practical claim is that redundancy is a *tuning knob*:
//! HPC users can trade additional nodes for shorter wallclock time. The
//! functions here mechanize that trade-off.

use serde::{Deserialize, Serialize};

use crate::combined::{CombinedConfig, CombinedOutcome};
use crate::{ModelError, Result};

/// A grid of candidate redundancy degrees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RGrid(Vec<f64>);

impl RGrid {
    /// Builds a grid from explicit degrees.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty or any degree is out of range.
    pub fn new(degrees: Vec<f64>) -> Result<Self> {
        if degrees.is_empty() {
            return Err(ModelError::InvalidParameter {
                name: "degrees",
                value: 0.0,
                reason: "grid must contain at least one degree",
            });
        }
        for &d in &degrees {
            crate::error::ensure_in_range(
                "degree",
                d,
                crate::partition::MIN_DEGREE,
                crate::partition::MAX_DEGREE,
            )?;
        }
        Ok(Self(degrees))
    }

    /// The paper's experimental grid: `1x` to `3x` in steps of `0.25x`.
    pub fn quarter_steps() -> Self {
        Self((0..=8).map(|i| 1.0 + 0.25 * i as f64).collect())
    }

    /// The degrees plotted in Figures 13–14: `{1, 1.5, 2, 2.5, 3}`.
    pub fn half_steps() -> Self {
        Self(vec![1.0, 1.5, 2.0, 2.5, 3.0])
    }

    /// Integral degrees only: `{1, 2, 3}`.
    pub fn integral() -> Self {
        Self(vec![1.0, 2.0, 3.0])
    }

    /// The degrees in the grid.
    pub fn degrees(&self) -> &[f64] {
        &self.0
    }
}

/// Result of a redundancy-degree search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BestDegree {
    /// The winning degree.
    pub degree: f64,
    /// The model outcome at that degree.
    pub outcome: CombinedOutcome,
    /// Outcomes for every evaluated degree (degree, total time, or `None`
    /// where the model diverged).
    pub sweep: Vec<(f64, Option<f64>)>,
}

/// Evaluates `cfg` at each degree in `grid` and returns the degree with the
/// minimum expected total time. Diverging configurations (Eq. 14 blow-up)
/// are skipped.
///
/// # Errors
///
/// Returns [`ModelError::NoSolution`] if *every* degree diverges, or a
/// domain error for invalid base parameters.
pub fn optimal_redundancy(cfg: &CombinedConfig, grid: &RGrid) -> Result<BestDegree> {
    optimal_by_cost(cfg, grid, &CostWeights::time_only())
}

/// Relative weights for the combined time/resource cost function.
///
/// The cost of an outcome is
/// `time_weight · T_total + resource_weight · N_total · T_total`
/// (wallclock hours and node-hours respectively). A user who only cares
/// about finishing fast uses [`CostWeights::time_only`]; a capacity-computing
/// site that pays per node-hour uses [`CostWeights::resources_only`] or a
/// blend.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostWeights {
    /// Weight of the wallclock term, per hour.
    pub time_weight: f64,
    /// Weight of the resource term, per node-hour.
    pub resource_weight: f64,
}

impl CostWeights {
    /// Pure wallclock minimization.
    pub fn time_only() -> Self {
        Self { time_weight: 1.0, resource_weight: 0.0 }
    }

    /// Pure node-hour minimization.
    pub fn resources_only() -> Self {
        Self { time_weight: 0.0, resource_weight: 1.0 }
    }

    /// A blend: `w ∈ [0, 1]` of the time term, `1−w` of the resource term.
    ///
    /// # Errors
    ///
    /// Returns an error if `w ∉ [0, 1]`.
    pub fn blend(w: f64) -> Result<Self> {
        crate::error::ensure_in_range("w", w, 0.0, 1.0)?;
        Ok(Self { time_weight: w, resource_weight: 1.0 - w })
    }

    /// The scalar cost of an outcome under these weights.
    pub fn cost(&self, outcome: &CombinedOutcome) -> f64 {
        self.time_weight * outcome.total_time + self.resource_weight * outcome.node_hours
    }
}

/// Like [`optimal_redundancy`] but minimizing an arbitrary weighted cost.
///
/// # Errors
///
/// See [`optimal_redundancy`].
pub fn optimal_by_cost(
    cfg: &CombinedConfig,
    grid: &RGrid,
    weights: &CostWeights,
) -> Result<BestDegree> {
    let mut best: Option<(f64, CombinedOutcome, f64)> = None;
    let mut sweep = Vec::with_capacity(grid.degrees().len());
    for &r in grid.degrees() {
        match cfg.with_degree(r).evaluate() {
            Ok(outcome) => {
                let cost = weights.cost(&outcome);
                sweep.push((r, Some(outcome.total_time)));
                let better = match &best {
                    None => true,
                    Some((_, _, c)) => cost < *c,
                };
                if better {
                    best = Some((r, outcome, cost));
                }
            }
            Err(ModelError::Diverged { .. }) => sweep.push((r, None)),
            Err(e) => return Err(e),
        }
    }
    match best {
        Some((degree, outcome, _)) => Ok(BestDegree { degree, outcome, sweep }),
        None => Err(ModelError::NoSolution { what: "optimal redundancy degree (all diverge)" }),
    }
}

/// Total expected time at degree `r` for `n` virtual processes, or `None`
/// when the model diverges. Convenience for scaling sweeps.
pub fn time_at(cfg: &CombinedConfig, n: u64, r: f64) -> Option<f64> {
    cfg.with_virtual_processes(n).with_degree(r).evaluate().ok().map(|o| o.total_time)
}

/// Finds the smallest process count `n ∈ [lo, hi]` at which degree `r_b`
/// completes no later than degree `r_a` — the crossover points of
/// Figures 13–14 (e.g. 1x/2x at ≈ 4 351 processes).
///
/// A diverging configuration is treated as "infinitely slow".
///
/// # Errors
///
/// Returns [`ModelError::NoSolution`] if `r_b` never wins in the range.
pub fn crossover(cfg: &CombinedConfig, r_a: f64, r_b: f64, lo: u64, hi: u64) -> Result<u64> {
    if lo == 0 || hi < lo {
        return Err(ModelError::InvalidParameter {
            name: "lo/hi",
            value: lo as f64,
            reason: "need 1 <= lo <= hi",
        });
    }
    let b_wins = |n: u64| -> bool {
        let ta = time_at(cfg, n, r_a).unwrap_or(f64::INFINITY);
        let tb = time_at(cfg, n, r_b).unwrap_or(f64::INFINITY);
        tb.is_finite() && tb <= ta
    };
    if !b_wins(hi) {
        return Err(ModelError::NoSolution { what: "redundancy crossover in range" });
    }
    if b_wins(lo) {
        return Ok(lo);
    }
    // Monotone threshold by assumption (failure impact grows with n);
    // binary search for the first n where b wins.
    let (mut lo, mut hi) = (lo, hi);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if b_wins(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

/// Finds the smallest process count at which running the job at degree
/// `r` is at least `factor` times faster than running it without redundancy
/// — e.g. `factor = 2` gives the paper's "two dual-redundant 128-hour jobs
/// finish within one non-redundant job" point (≈ 78 536 processes).
///
/// # Errors
///
/// Returns [`ModelError::NoSolution`] if the speedup never reaches `factor`
/// in `[lo, hi]`.
pub fn throughput_break_even(
    cfg: &CombinedConfig,
    r: f64,
    factor: f64,
    lo: u64,
    hi: u64,
) -> Result<u64> {
    crate::error::ensure_positive("factor", factor)?;
    let wins = |n: u64| -> bool {
        let t1 = time_at(cfg, n, 1.0).unwrap_or(f64::INFINITY);
        let tr = time_at(cfg, n, r).unwrap_or(f64::INFINITY);
        if !tr.is_finite() {
            return false;
        }
        if !t1.is_finite() {
            return true; // 1x cannot finish at all
        }
        t1 >= factor * tr
    };
    if !wins(hi) {
        return Err(ModelError::NoSolution { what: "throughput break-even in range" });
    }
    if wins(lo) {
        return Ok(lo);
    }
    let (mut lo, mut hi) = (lo, hi);
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if wins(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combined::IntervalPolicy;
    use crate::units;

    /// Weak-scaling configuration in the spirit of Figures 13–14: a 128-hour
    /// job, 5-year per-node MTBF.
    fn scaling_config() -> CombinedConfig {
        CombinedConfig::builder()
            .virtual_processes(10_000)
            .base_time_hours(128.0)
            .node_mtbf_hours(units::hours_from_years(5.0))
            .comm_fraction(0.2)
            .checkpoint_cost_hours(units::hours_from_mins(10.0))
            .restart_cost_hours(units::hours_from_mins(30.0))
            .interval_policy(IntervalPolicy::Daly)
            .build()
            .unwrap()
    }

    #[test]
    fn grid_constructors() {
        assert_eq!(RGrid::quarter_steps().degrees().len(), 9);
        assert_eq!(RGrid::half_steps().degrees(), &[1.0, 1.5, 2.0, 2.5, 3.0]);
        assert!(RGrid::new(vec![]).is_err());
        assert!(RGrid::new(vec![0.5]).is_err());
    }

    #[test]
    fn small_scale_prefers_no_redundancy() {
        // 16 processes with 5-year MTBF: failures are negligible, the
        // communication overhead of replication dominates.
        let cfg = scaling_config().with_virtual_processes(16);
        let best = optimal_redundancy(&cfg, &RGrid::half_steps()).unwrap();
        assert_eq!(best.degree, 1.0, "sweep: {:?}", best.sweep);
    }

    #[test]
    fn large_scale_prefers_dual_redundancy() {
        let cfg = scaling_config().with_virtual_processes(100_000);
        let best = optimal_redundancy(&cfg, &RGrid::half_steps()).unwrap();
        assert!(best.degree >= 2.0, "sweep: {:?}", best.sweep);
    }

    #[test]
    fn sweep_records_every_degree() {
        let cfg = scaling_config();
        let best = optimal_redundancy(&cfg, &RGrid::quarter_steps()).unwrap();
        assert_eq!(best.sweep.len(), 9);
    }

    #[test]
    fn resource_weighting_prefers_lower_degree() {
        let cfg = scaling_config().with_virtual_processes(50_000);
        let by_time =
            optimal_by_cost(&cfg, &RGrid::half_steps(), &CostWeights::time_only()).unwrap();
        let by_resources =
            optimal_by_cost(&cfg, &RGrid::half_steps(), &CostWeights::resources_only()).unwrap();
        assert!(by_resources.degree <= by_time.degree);
    }

    #[test]
    fn blend_validates() {
        assert!(CostWeights::blend(0.5).is_ok());
        assert!(CostWeights::blend(1.5).is_err());
    }

    #[test]
    fn crossover_is_found_and_ordered() {
        let cfg = scaling_config();
        let x12 = crossover(&cfg, 1.0, 2.0, 100, 1_000_000).unwrap();
        let x13 = crossover(&cfg, 1.0, 3.0, 100, 1_000_000).unwrap();
        // Dual redundancy starts paying off before triple (Figure 13).
        assert!(x12 < x13, "x12={x12} x13={x13}");
        // Sanity: in the low thousands-to-tens-of-thousands regime.
        assert!(x12 > 100 && x12 < 100_000, "x12={x12}");
    }

    #[test]
    fn throughput_break_even_found() {
        let cfg = scaling_config();
        let n = throughput_break_even(&cfg, 2.0, 2.0, 1_000, 10_000_000).unwrap();
        // The 1x curve blows up exponentially; a factor-2 speedup point must
        // exist well below 10^7 processes.
        assert!(n > 1_000 && n < 10_000_000);
        // At that point the 1x job really is at least twice as slow.
        let t1 = time_at(&cfg, n, 1.0).unwrap_or(f64::INFINITY);
        let t2 = time_at(&cfg, n, 2.0).unwrap();
        assert!(t1 >= 2.0 * t2);
    }

    #[test]
    fn crossover_errors_when_never_wins() {
        let cfg = scaling_config();
        // 2x never beats 1x at tiny scales.
        let err = crossover(&cfg, 1.0, 2.0, 2, 8).unwrap_err();
        assert!(matches!(err, ModelError::NoSolution { .. }));
    }

    /// A regime so hostile (minutes-scale node MTBF at a million nodes)
    /// that no degree in the paper's grid can make progress.
    fn hopeless_config() -> CombinedConfig {
        CombinedConfig::builder()
            .virtual_processes(1_000_000)
            .base_time_hours(128.0)
            .node_mtbf_hours(0.05)
            .comm_fraction(0.2)
            .checkpoint_cost_hours(0.1)
            .restart_cost_hours(0.1)
            .interval_policy(IntervalPolicy::Daly)
            .build()
            .unwrap()
    }

    #[test]
    fn every_degree_diverging_is_no_solution_with_full_sweep() {
        let cfg = hopeless_config();
        for &r in RGrid::quarter_steps().degrees() {
            assert!(time_at(&cfg, 1_000_000, r).is_none(), "degree {r} should diverge");
        }
        let err = optimal_redundancy(&cfg, &RGrid::quarter_steps()).unwrap_err();
        assert!(matches!(err, ModelError::NoSolution { .. }), "{err:?}");
        // The weighted variant takes the same path.
        let err =
            optimal_by_cost(&cfg, &RGrid::integral(), &CostWeights::resources_only()).unwrap_err();
        assert!(matches!(err, ModelError::NoSolution { .. }), "{err:?}");
    }

    #[test]
    fn crossover_degenerate_and_invalid_ranges() {
        let cfg = scaling_config();
        // Single-point range where 2x already wins: returned as-is.
        let deep = 1_000_000;
        assert_eq!(crossover(&cfg, 1.0, 2.0, deep, deep).unwrap(), deep);
        // Single-point range where it doesn't: NoSolution, not a probe
        // outside [lo, hi].
        let err = crossover(&cfg, 1.0, 2.0, 100, 100).unwrap_err();
        assert!(matches!(err, ModelError::NoSolution { .. }));
        // lo = 0 and inverted ranges are parameter errors.
        assert!(matches!(
            crossover(&cfg, 1.0, 2.0, 0, 100).unwrap_err(),
            ModelError::InvalidParameter { .. }
        ));
        assert!(matches!(
            crossover(&cfg, 1.0, 2.0, 200, 100).unwrap_err(),
            ModelError::InvalidParameter { .. }
        ));
    }

    #[test]
    fn crossover_at_lower_bound_returns_lo_exactly() {
        let cfg = scaling_config();
        // Find the true crossover, then search a window starting at it: the
        // bound itself must come back, not bound+1.
        let x = crossover(&cfg, 1.0, 2.0, 100, 1_000_000).unwrap();
        assert_eq!(crossover(&cfg, 1.0, 2.0, x, 1_000_000).unwrap(), x);
        // And a window starting just past it still reports its own lo.
        assert_eq!(crossover(&cfg, 1.0, 2.0, x + 1, 1_000_000).unwrap(), x + 1);
    }

    #[test]
    fn throughput_break_even_bounds_and_invalid_factor() {
        let cfg = scaling_config();
        assert!(matches!(
            throughput_break_even(&cfg, 2.0, 0.0, 100, 1_000).unwrap_err(),
            ModelError::InvalidParameter { .. }
        ));
        assert!(matches!(
            throughput_break_even(&cfg, 2.0, -1.0, 100, 1_000).unwrap_err(),
            ModelError::InvalidParameter { .. }
        ));
        // Degenerate single-point range behaves like crossover's.
        let n = throughput_break_even(&cfg, 2.0, 2.0, 1_000, 10_000_000).unwrap();
        assert_eq!(throughput_break_even(&cfg, 2.0, 2.0, n, n).unwrap(), n);
        let err = throughput_break_even(&cfg, 2.0, 2.0, 1_000, 1_000).unwrap_err();
        assert!(matches!(err, ModelError::NoSolution { .. }));
    }

    #[test]
    fn blend_endpoints_match_the_pure_weightings() {
        // blend(1) is time-only, blend(0) is resources-only — both as
        // weights and through the optimizer.
        assert_eq!(CostWeights::blend(1.0).unwrap(), CostWeights::time_only());
        assert_eq!(CostWeights::blend(0.0).unwrap(), CostWeights::resources_only());
        let cfg = scaling_config().with_virtual_processes(50_000);
        let grid = RGrid::half_steps();
        let t = optimal_by_cost(&cfg, &grid, &CostWeights::blend(1.0).unwrap()).unwrap();
        assert_eq!(
            t.degree,
            optimal_by_cost(&cfg, &grid, &CostWeights::time_only()).unwrap().degree
        );
        let r = optimal_by_cost(&cfg, &grid, &CostWeights::blend(0.0).unwrap()).unwrap();
        assert_eq!(
            r.degree,
            optimal_by_cost(&cfg, &grid, &CostWeights::resources_only()).unwrap().degree
        );
        // Boundary validation: exactly 0 and 1 are legal, just outside is not.
        assert!(CostWeights::blend(-f64::EPSILON).is_err());
        assert!(CostWeights::blend(1.0 + f64::EPSILON).is_err());
    }

    #[test]
    fn time_at_none_on_divergence() {
        // Catastrophic MTBF so 1x diverges at scale.
        let cfg = CombinedConfig::builder()
            .virtual_processes(1000)
            .base_time_hours(128.0)
            .node_mtbf_hours(24.0)
            .comm_fraction(0.2)
            .checkpoint_cost_hours(0.1)
            .restart_cost_hours(0.1)
            .build()
            .unwrap();
        assert!(time_at(&cfg, 1_000_000, 1.0).is_none());
    }
}
