//! The combined redundancy + checkpointing model (paper Section 4.3) and the
//! simplified variant of Section 6(5) used for Figures 11–12.
//!
//! This module chains Eq. 1 (redundant execution time), Eqs. 9–10 (system
//! failure rate under partial redundancy) and Eqs. 12–15 (checkpointing) into
//! a single evaluation: given an application and a cluster, what is the
//! expected wallclock time at redundancy degree `r` with checkpoint interval
//! `δ`?

use serde::{Deserialize, Serialize};

pub use crate::checkpointing::IntervalPolicy;

use crate::checkpointing::{lost_work, restart_rework, total_time};
use crate::error::{ensure_in_range, ensure_positive};
use crate::partition::{RedundancyPartition, MAX_DEGREE, MIN_DEGREE};
use crate::redundancy::{redundant_time, SystemModel};
use crate::reliability::Approximation;
use crate::{ModelError, Result};

/// Full configuration of a combined C/R + redundancy run.
///
/// All durations are in **hours**. Construct via [`CombinedConfig::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinedConfig {
    /// `N`: number of virtual (application-visible) processes.
    pub n_virtual: u64,
    /// `r`: redundancy degree in `[1, 16]` (paper evaluates `[1, 3]`).
    pub degree: f64,
    /// `t`: failure-free base execution time without redundancy, hours.
    pub base_time: f64,
    /// `θ`: per-node MTBF, hours.
    pub node_mtbf: f64,
    /// `α`: communication/computation ratio in `[0, 1]`.
    pub alpha: f64,
    /// `c`: time for a single coordinated checkpoint, hours.
    pub checkpoint_cost: f64,
    /// `R`: restart overhead (read images, respawn, coordinate), hours.
    pub restart_cost: f64,
    /// Checkpoint-interval policy (Daly by default).
    pub interval_policy: IntervalPolicy,
    /// Failure-probability form (paper default: linear, Eq. 3).
    pub approximation: Approximation,
}

impl CombinedConfig {
    /// Starts building a configuration.
    pub fn builder() -> CombinedConfigBuilder {
        CombinedConfigBuilder::default()
    }

    /// Returns a copy of this configuration with a different redundancy
    /// degree — convenient for sweeps over `r`.
    pub fn with_degree(&self, degree: f64) -> Self {
        Self { degree, ..self.clone() }
    }

    /// Returns a copy with a different virtual process count — convenient
    /// for weak-scaling sweeps (Figures 13–14).
    pub fn with_virtual_processes(&self, n_virtual: u64) -> Self {
        Self { n_virtual, ..self.clone() }
    }

    /// Validates all parameters.
    ///
    /// # Errors
    ///
    /// Returns the first violated domain constraint.
    pub fn validate(&self) -> Result<()> {
        if self.n_virtual == 0 {
            return Err(ModelError::InvalidParameter {
                name: "n_virtual",
                value: 0.0,
                reason: "must be at least 1",
            });
        }
        ensure_in_range("degree", self.degree, MIN_DEGREE, MAX_DEGREE)?;
        ensure_positive("base_time", self.base_time)?;
        ensure_positive("node_mtbf", self.node_mtbf)?;
        ensure_in_range("alpha", self.alpha, 0.0, 1.0)?;
        ensure_positive("checkpoint_cost", self.checkpoint_cost)?;
        ensure_positive("restart_cost", self.restart_cost)?;
        Ok(())
    }

    /// The partial-redundancy partition induced by `n_virtual` and `degree`.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid `n_virtual`/`degree`.
    pub fn partition(&self) -> Result<RedundancyPartition> {
        RedundancyPartition::new(self.n_virtual, self.degree)
    }

    /// Evaluates the **full combined model** (Section 4.3).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Diverged`] when the configuration cannot
    /// complete (`λ·t_RR ≥ 1` in Eq. 14), or a domain error for invalid
    /// parameters.
    pub fn evaluate(&self) -> Result<CombinedOutcome> {
        self.validate()?;
        let t_red = redundant_time(self.base_time, self.alpha, self.degree)?;
        let system = SystemModel::with_approximation(
            self.n_virtual,
            self.degree,
            self.node_mtbf,
            self.approximation,
        )?;
        let sys = system.evaluate(t_red)?;
        let partition = system.partition().clone();

        if sys.failure_rate == 0.0 {
            // Failure-free limit: no checkpointing needed.
            return Ok(CombinedOutcome {
                config: self.clone(),
                redundant_time: t_red,
                system_reliability: sys.reliability,
                system_failure_rate: 0.0,
                system_mtbf: f64::INFINITY,
                checkpoint_interval: f64::INFINITY,
                expected_checkpoints: 0.0,
                lost_work: 0.0,
                restart_rework: 0.0,
                total_time: t_red,
                expected_failures: 0.0,
                total_physical: partition.total_physical(),
                node_hours: partition.total_physical() as f64 * t_red,
            });
        }
        if !sys.failure_rate.is_finite() {
            return Err(ModelError::Diverged {
                failure_rate: sys.failure_rate,
                restart_rework: f64::INFINITY,
            });
        }

        let delta = self.interval_policy.interval(self.checkpoint_cost, sys.mtbf)?;
        let t_lw = lost_work(delta, self.checkpoint_cost, sys.mtbf)?;
        let t_rr = restart_rework(self.restart_cost, t_lw, sys.mtbf)?;
        let t_total = total_time(t_red, self.checkpoint_cost, delta, sys.failure_rate, t_rr)?;
        let expected_failures = t_total * sys.failure_rate; // Eq. 11
        let expected_checkpoints = t_red / delta;

        Ok(CombinedOutcome {
            config: self.clone(),
            redundant_time: t_red,
            system_reliability: sys.reliability,
            system_failure_rate: sys.failure_rate,
            system_mtbf: sys.mtbf,
            checkpoint_interval: delta,
            expected_checkpoints,
            lost_work: t_lw,
            restart_rework: t_rr,
            total_time: t_total,
            expected_failures,
            total_physical: partition.total_physical(),
            node_hours: partition.total_physical() as f64 * t_total,
        })
    }

    /// Evaluates the **simplified model** the paper fits to its cluster
    /// experiments (Section 6, observation (5); Figures 11–12).
    ///
    /// In the experiments failures are *not* injected while a checkpoint or
    /// restart is in progress, so the feedback term of Eq. 14 disappears.
    ///
    /// # Errors
    ///
    /// Returns a domain error for invalid parameters.
    pub fn evaluate_simplified(&self, form: SimplifiedForm) -> Result<f64> {
        self.validate()?;
        let t_red = redundant_time(self.base_time, self.alpha, self.degree)?;
        let system = SystemModel::with_approximation(
            self.n_virtual,
            self.degree,
            self.node_mtbf,
            self.approximation,
        )?;
        let sys = system.evaluate(t_red)?;
        if sys.failure_rate == 0.0 {
            return Ok(t_red);
        }
        match form {
            SimplifiedForm::Verbatim => {
                // As printed in the paper:
                //   T = t_Red + t_Red·√(2cΘ) + t_Red·λ_sys·R
                Ok(t_red
                    + t_red * (2.0 * self.checkpoint_cost * sys.mtbf).sqrt()
                    + t_red * sys.failure_rate * self.restart_cost)
            }
            SimplifiedForm::Consistent => {
                // Dimensionally consistent reading: the checkpoint term is
                // (number of checkpoints)·c = (t_Red/δ_opt)·c and each of the
                // t_Red·λ failures costs a restart R plus the expected lost
                // work t_lw:
                //   T = t_Red·(1 + c/δ_opt + λ_sys·(R + t_lw))
                let delta = self.interval_policy.interval(self.checkpoint_cost, sys.mtbf)?;
                let t_lw = lost_work(delta, self.checkpoint_cost, sys.mtbf)?;
                Ok(t_red
                    * (1.0
                        + self.checkpoint_cost / delta
                        + sys.failure_rate * (self.restart_cost + t_lw)))
            }
        }
    }
}

/// Which rendering of the paper's simplified experimental model to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SimplifiedForm {
    /// The formula exactly as printed in Section 6(5):
    /// `T = t_Red + t_Red·√(2cΘ) + t_Red·λ_sys·R`. Note the middle term is
    /// dimensionally a time·time; retained verbatim for comparison.
    Verbatim,
    /// The dimensionally consistent reading (checkpoint count × cost +
    /// failures × (restart + lost work)); this is the form our Figure 11/12
    /// reproduction plots.
    #[default]
    Consistent,
}

/// Everything the combined model predicts for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinedOutcome {
    /// The evaluated configuration (for provenance).
    pub config: CombinedConfig,
    /// `t_Red` (Eq. 1), hours.
    pub redundant_time: f64,
    /// `R_sys` over the `t_Red` horizon (Eq. 9).
    pub system_reliability: f64,
    /// `λ_sys`, failures per hour (Eq. 10).
    pub system_failure_rate: f64,
    /// `Θ_sys = 1/λ_sys`, hours (Eq. 10).
    pub system_mtbf: f64,
    /// Chosen checkpoint interval `δ`, hours.
    pub checkpoint_interval: f64,
    /// Expected number of checkpoints taken (`t_Red/δ`).
    pub expected_checkpoints: f64,
    /// Expected lost work per failure `t_lw` (Eq. 12), hours.
    pub lost_work: f64,
    /// Expected restart+rework per failure `t_RR` (Eq. 13), hours.
    pub restart_rework: f64,
    /// `T_total` (Eq. 14), hours.
    pub total_time: f64,
    /// Expected number of failures over the whole run (Eq. 11).
    pub expected_failures: f64,
    /// Physical processes deployed (`N_total`, Eq. 8).
    pub total_physical: u64,
    /// Resource usage: `N_total × T_total`, node-hours.
    pub node_hours: f64,
}

impl CombinedOutcome {
    /// Fraction of the total time spent on useful work (`t / T_total`).
    pub fn work_efficiency(&self) -> f64 {
        self.config.base_time / self.total_time
    }
}

/// Builder for [`CombinedConfig`] (all durations in hours).
#[derive(Debug, Clone, Default)]
pub struct CombinedConfigBuilder {
    n_virtual: Option<u64>,
    degree: Option<f64>,
    base_time: Option<f64>,
    node_mtbf: Option<f64>,
    alpha: Option<f64>,
    checkpoint_cost: Option<f64>,
    restart_cost: Option<f64>,
    interval_policy: Option<IntervalPolicy>,
    approximation: Option<Approximation>,
}

impl CombinedConfigBuilder {
    /// Sets `N`, the number of virtual processes (required).
    pub fn virtual_processes(&mut self, n: u64) -> &mut Self {
        self.n_virtual = Some(n);
        self
    }

    /// Sets the redundancy degree `r` (default `1.0`).
    pub fn degree(&mut self, r: f64) -> &mut Self {
        self.degree = Some(r);
        self
    }

    /// Sets the failure-free base time `t` in hours (required).
    pub fn base_time_hours(&mut self, t: f64) -> &mut Self {
        self.base_time = Some(t);
        self
    }

    /// Sets the per-node MTBF `θ` in hours (required).
    pub fn node_mtbf_hours(&mut self, theta: f64) -> &mut Self {
        self.node_mtbf = Some(theta);
        self
    }

    /// Sets the communication/computation ratio `α` (default `0.0`).
    pub fn comm_fraction(&mut self, alpha: f64) -> &mut Self {
        self.alpha = Some(alpha);
        self
    }

    /// Sets the checkpoint cost `c` in hours (required).
    pub fn checkpoint_cost_hours(&mut self, c: f64) -> &mut Self {
        self.checkpoint_cost = Some(c);
        self
    }

    /// Sets the restart cost `R` in hours (required).
    pub fn restart_cost_hours(&mut self, r: f64) -> &mut Self {
        self.restart_cost = Some(r);
        self
    }

    /// Sets the checkpoint-interval policy (default [`IntervalPolicy::Daly`]).
    pub fn interval_policy(&mut self, p: IntervalPolicy) -> &mut Self {
        self.interval_policy = Some(p);
        self
    }

    /// Sets the failure-probability form (default [`Approximation::Linear`]).
    pub fn approximation(&mut self, a: Approximation) -> &mut Self {
        self.approximation = Some(a);
        self
    }

    /// Builds and validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if a required field is
    /// missing or any field violates its domain.
    pub fn build(&self) -> Result<CombinedConfig> {
        fn required<T: Copy>(name: &'static str, v: Option<T>) -> Result<T> {
            v.ok_or(ModelError::InvalidParameter {
                name,
                value: f64::NAN,
                reason: "required field not set on builder",
            })
        }
        let cfg = CombinedConfig {
            n_virtual: required("n_virtual", self.n_virtual)?,
            degree: self.degree.unwrap_or(1.0),
            base_time: required("base_time", self.base_time)?,
            node_mtbf: required("node_mtbf", self.node_mtbf)?,
            alpha: self.alpha.unwrap_or(0.0),
            checkpoint_cost: required("checkpoint_cost", self.checkpoint_cost)?,
            restart_cost: required("restart_cost", self.restart_cost)?,
            interval_policy: self.interval_policy.unwrap_or_default(),
            approximation: self.approximation.unwrap_or_default(),
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units;

    fn paper_experiment_config() -> CombinedConfig {
        // Section 6 parameters: CG, 128 processes, t = 46 min, c = 120 s,
        // R = 500 s, alpha = 0.2.
        CombinedConfig::builder()
            .virtual_processes(128)
            .base_time_hours(units::hours_from_mins(46.0))
            .node_mtbf_hours(12.0)
            .comm_fraction(0.2)
            .checkpoint_cost_hours(units::hours_from_secs(120.0))
            .restart_cost_hours(units::hours_from_secs(500.0))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_fields() {
        let err = CombinedConfig::builder().build().unwrap_err();
        assert!(matches!(err, ModelError::InvalidParameter { name: "n_virtual", .. }));
    }

    #[test]
    fn builder_defaults() {
        let cfg = paper_experiment_config();
        assert_eq!(cfg.degree, 1.0);
        assert_eq!(cfg.interval_policy, IntervalPolicy::Daly);
    }

    #[test]
    fn redundancy_reduces_total_time_under_high_failure_rate() {
        let cfg = paper_experiment_config();
        let t1 = cfg.with_degree(1.0).evaluate();
        let t2 = cfg.with_degree(2.0).evaluate().unwrap();
        // At MTBF/node = 12 h with 128 processes, 1x either diverges or is
        // far slower than 2x.
        match t1 {
            Err(ModelError::Diverged { .. }) => {}
            Ok(o1) => assert!(o1.total_time > t2.total_time),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn degree_two_beats_degree_three_at_low_failure_rate() {
        // With a healthy MTBF the extra communication of 3x is wasted.
        let cfg = CombinedConfig::builder()
            .virtual_processes(128)
            .base_time_hours(0.77)
            .node_mtbf_hours(10_000.0)
            .comm_fraction(0.2)
            .checkpoint_cost_hours(units::hours_from_secs(120.0))
            .restart_cost_hours(units::hours_from_secs(500.0))
            .build()
            .unwrap();
        let t2 = cfg.with_degree(2.0).evaluate().unwrap();
        let t3 = cfg.with_degree(3.0).evaluate().unwrap();
        assert!(t2.total_time < t3.total_time);
    }

    #[test]
    fn failure_free_limit_returns_t_red() {
        // Astronomically reliable nodes: linear approximation gives exactly
        // zero failure probability only at t/theta = 0, so use a huge theta
        // and check T ~ t_red.
        let cfg = CombinedConfig::builder()
            .virtual_processes(4)
            .base_time_hours(1.0)
            .node_mtbf_hours(1e15)
            .comm_fraction(0.5)
            .degree(2.0)
            .checkpoint_cost_hours(0.01)
            .restart_cost_hours(0.01)
            .build()
            .unwrap();
        let o = cfg.evaluate().unwrap();
        assert!((o.redundant_time - 1.5).abs() < 1e-12);
        assert!(o.total_time < 1.6);
    }

    #[test]
    fn outcome_bookkeeping_consistent() {
        let cfg = paper_experiment_config().with_degree(2.0);
        let o = cfg.evaluate().unwrap();
        assert!((o.expected_failures - o.total_time * o.system_failure_rate).abs() < 1e-9);
        assert_eq!(o.total_physical, 256);
        assert!((o.node_hours - 256.0 * o.total_time).abs() < 1e-9);
        assert!(o.work_efficiency() <= 1.0);
        assert!(o.checkpoint_interval > 0.0);
    }

    #[test]
    fn partial_degree_uses_partition() {
        let cfg = paper_experiment_config().with_degree(1.5);
        let o = cfg.evaluate().unwrap();
        assert_eq!(o.total_physical, 192);
    }

    #[test]
    fn simplified_consistent_is_finite_and_ordered() {
        let cfg = paper_experiment_config();
        let s2 = cfg.with_degree(2.0).evaluate_simplified(SimplifiedForm::Consistent).unwrap();
        let s3 = cfg.with_degree(3.0).evaluate_simplified(SimplifiedForm::Consistent).unwrap();
        assert!(s2.is_finite() && s3.is_finite());
        assert!(s2 > 0.0 && s3 > 0.0);
        // At 12 h MTBF the paper observes the optimum near 2.5x; 2x should
        // at least not be worse than 3x by a large factor.
        assert!(s2 < 2.0 * s3);
    }

    #[test]
    fn simplified_verbatim_computes() {
        let cfg = paper_experiment_config().with_degree(2.0);
        let v = cfg.evaluate_simplified(SimplifiedForm::Verbatim).unwrap();
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn with_helpers_change_only_one_field() {
        let cfg = paper_experiment_config();
        let c2 = cfg.with_degree(2.5);
        assert_eq!(c2.degree, 2.5);
        assert_eq!(c2.n_virtual, cfg.n_virtual);
        let c3 = cfg.with_virtual_processes(999);
        assert_eq!(c3.n_virtual, 999);
        assert_eq!(c3.degree, cfg.degree);
    }
}
