//! Checkpoint/restart execution-time model (paper Section 4.2, Eqs. 11–15).
//!
//! The application alternates *work segments* of length `δ` with *checkpoint
//! phases* of length `c`. Failures arrive with rate `λ = 1/Θ` (system MTBF
//! `Θ` from Eq. 10) at any time, including during checkpointing, restart and
//! rework. Each failure costs a restart of (up to) `R` plus the recomputation
//! of the work lost since the last completed checkpoint.

use serde::{Deserialize, Serialize};

use crate::error::{ensure_non_negative, ensure_positive, ModelError};
use crate::Result;

/// Expected lost work per failure, `t_lw` (Eq. 12):
///
/// ```text
/// t_lw = [Θ − Θ·e^{−δ/Θ} − δ·e^{−δc/Θ}] / (1 − e^{−δc/Θ}),   δc = δ + c
/// ```
///
/// Derived from the segment-phase failure PDF: a failure at offset
/// `0 ≤ t ≤ δ` into a segment loses `t` of work; a failure during the
/// checkpoint phase (`δ < t ≤ δ+c`) loses the whole segment `δ`.
///
/// The result always satisfies `0 ≤ t_lw ≤ δ`.
///
/// # Errors
///
/// Returns an error if `delta <= 0`, `c < 0`, or `theta <= 0`.
pub fn lost_work(delta: f64, c: f64, theta: f64) -> Result<f64> {
    ensure_positive("delta", delta)?;
    ensure_non_negative("c", c)?;
    ensure_positive("theta", theta)?;
    let dc = delta + c;
    if dc / theta < 1e-9 {
        // Θ ≫ δ+c: failures land uniformly within the segment; the exact
        // formula is 0/0-degenerate in f64, so use the series limit
        // t_lw -> δ·(δ/2 + c)/(δ + c).
        return Ok(delta * (delta / 2.0 + c) / dc);
    }
    let denom = -(-dc / theta).exp_m1(); // 1 - e^{-dc/Θ}, precise for small dc/Θ
                                         // num = Θ·(1 − e^{−δ/Θ}) − δ·e^{−(δ+c)/Θ}, via expm1 for precision.
    let num = -theta * (-delta / theta).exp_m1() - delta * (-dc / theta).exp();
    Ok((num / denom).clamp(0.0, delta))
}

/// Expected duration of the combined restart+rework phase, `t_RR` (Eq. 13).
///
/// The phase nominally lasts `R + t_lw`; because failures can strike during
/// the phase itself, its expected duration is
///
/// ```text
/// t_RR = (1 − e^{−x/Θ})·[Θ − e^{−x/Θ}(x + Θ)] + e^{−x/Θ}·x,   x = R + t_lw
/// ```
///
/// # Errors
///
/// Returns an error if `restart < 0`, `t_lw < 0`, or `theta <= 0`.
pub fn restart_rework(restart: f64, t_lw: f64, theta: f64) -> Result<f64> {
    ensure_non_negative("restart", restart)?;
    ensure_non_negative("t_lw", t_lw)?;
    ensure_positive("theta", theta)?;
    let x = restart + t_lw;
    let e = (-x / theta).exp();
    let fail_before = 1.0 - e;
    // Expected time of a failure conditioned... the paper keeps the
    // unconditioned truncated mean: ∫0^x t·(1/Θ)e^{−t/Θ} dt = Θ − e^{−x/Θ}(x+Θ).
    let truncated_mean = theta - e * (x + theta);
    Ok(fail_before * truncated_mean + e * x)
}

/// Total expected completion time `T_total` (Eq. 14):
///
/// `T_total = (t + t·c/δ) / (1 − λ·t_RR)`
///
/// # Errors
///
/// Returns [`ModelError::Diverged`] when `λ·t_RR >= 1` — the system fails
/// faster than it can recover, so the job never completes. Returns
/// [`ModelError::InvalidParameter`] for out-of-domain inputs.
pub fn total_time(t: f64, c: f64, delta: f64, lambda: f64, t_rr: f64) -> Result<f64> {
    ensure_non_negative("t", t)?;
    ensure_non_negative("c", c)?;
    ensure_positive("delta", delta)?;
    ensure_non_negative("lambda", lambda)?;
    ensure_non_negative("t_rr", t_rr)?;
    let loss = lambda * t_rr;
    if loss >= 1.0 {
        return Err(ModelError::Diverged { failure_rate: lambda, restart_rework: t_rr });
    }
    Ok((t + t * c / delta) / (1.0 - loss))
}

/// Daly's higher-order optimal checkpoint interval (Eq. 15):
///
/// ```text
/// δ_opt = √(2cΘ)·[1 + ⅓·(c/2Θ)^½ + ⅑·(c/2Θ)] − c
/// ```
///
/// Valid for `c < 2Θ`; for `c ≥ 2Θ` Daly prescribes `δ_opt = Θ` (the system
/// fails about once per checkpoint — checkpointing is hopeless anyway).
///
/// # Errors
///
/// Returns an error if `c <= 0` or `theta <= 0`.
pub fn daly_interval(c: f64, theta: f64) -> Result<f64> {
    ensure_positive("c", c)?;
    ensure_positive("theta", theta)?;
    if c >= 2.0 * theta {
        return Ok(theta);
    }
    let ratio = c / (2.0 * theta);
    let delta = (2.0 * c * theta).sqrt() * (1.0 + ratio.sqrt() / 3.0 + ratio / 9.0) - c;
    Ok(delta.max(c.min(theta)))
}

/// Young's first-order optimal interval, `δ = √(2cΘ)` (for ablation against
/// [`daly_interval`]).
///
/// # Errors
///
/// Returns an error if `c <= 0` or `theta <= 0`.
pub fn young_interval(c: f64, theta: f64) -> Result<f64> {
    ensure_positive("c", c)?;
    ensure_positive("theta", theta)?;
    Ok((2.0 * c * theta).sqrt())
}

/// Policy for choosing the checkpoint interval `δ`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum IntervalPolicy {
    /// Daly's higher-order interval (Eq. 15) — the paper's choice.
    #[default]
    Daly,
    /// Young's first-order interval `√(2cΘ)`.
    Young,
    /// A fixed, user-supplied interval (same time unit as the other inputs).
    Fixed(f64),
    /// Numerically minimize Eq. 14 over `δ` (golden-section search).
    Optimal,
}

impl IntervalPolicy {
    /// Resolves the policy to a concrete interval for checkpoint cost `c`
    /// and system MTBF `theta`.
    ///
    /// # Errors
    ///
    /// Propagates domain errors from the underlying formulas; for
    /// [`IntervalPolicy::Fixed`] an error is returned if the value is not
    /// positive.
    pub fn interval(&self, c: f64, theta: f64) -> Result<f64> {
        match *self {
            IntervalPolicy::Daly => daly_interval(c, theta),
            IntervalPolicy::Young => young_interval(c, theta),
            IntervalPolicy::Fixed(delta) => {
                ensure_positive("delta", delta)?;
                Ok(delta)
            }
            IntervalPolicy::Optimal => optimal_interval_numeric(c, theta),
        }
    }
}

/// Numerically minimizes `T_total(δ)` (Eq. 14, with Eq. 12–13 substituted)
/// via golden-section search over `δ ∈ [c/100, 100·Θ]`.
///
/// # Errors
///
/// Returns an error for out-of-domain `c`/`theta`, or
/// [`ModelError::NoSolution`] if every interval in the bracket diverges.
pub fn optimal_interval_numeric(c: f64, theta: f64) -> Result<f64> {
    ensure_positive("c", c)?;
    ensure_positive("theta", theta)?;
    // Objective: per-unit-work overhead factor; t cancels, use t = 1, R = 0
    // (R shifts the objective by a delta-independent amount only through
    // t_RR, which is monotone in t_lw; including a nominal R keeps the
    // minimum location essentially identical).
    let obj = |delta: f64| -> f64 {
        let t_lw = match lost_work(delta, c, theta) {
            Ok(v) => v,
            Err(_) => return f64::INFINITY,
        };
        let t_rr = match restart_rework(0.0, t_lw, theta) {
            Ok(v) => v,
            Err(_) => return f64::INFINITY,
        };
        total_time(1.0, c, delta, 1.0 / theta, t_rr).unwrap_or(f64::INFINITY)
    };
    // The objective is not globally unimodal (a nearly-flat tail where
    // t_lw saturates at Θ slopes gently downward through the c/δ term), so
    // first locate the basin with a coarse logarithmic scan, then refine
    // with golden-section inside the bracketing neighbours.
    let (scan_lo, scan_hi) = (c / 100.0, 100.0 * theta);
    const SCAN: usize = 256;
    let log_lo = scan_lo.ln();
    let step = (scan_hi / scan_lo).ln() / (SCAN - 1) as f64;
    let mut best_i = 0usize;
    let mut best_f = f64::INFINITY;
    for i in 0..SCAN {
        let d = (log_lo + step * i as f64).exp();
        let f = obj(d);
        if f < best_f {
            best_f = f;
            best_i = i;
        }
    }
    if !best_f.is_finite() {
        return Err(ModelError::NoSolution { what: "optimal checkpoint interval" });
    }
    let (mut lo, mut hi) = (
        (log_lo + step * best_i.saturating_sub(1) as f64).exp(),
        (log_lo + step * (best_i + 1).min(SCAN - 1) as f64).exp(),
    );
    const PHI: f64 = 0.618_033_988_749_894_8;
    let mut m1 = hi - PHI * (hi - lo);
    let mut m2 = lo + PHI * (hi - lo);
    let (mut f1, mut f2) = (obj(m1), obj(m2));
    for _ in 0..200 {
        if f1 <= f2 {
            hi = m2;
            m2 = m1;
            f2 = f1;
            m1 = hi - PHI * (hi - lo);
            f1 = obj(m1);
        } else {
            lo = m1;
            m1 = m2;
            f1 = f2;
            m2 = lo + PHI * (hi - lo);
            f2 = obj(m2);
        }
        if (hi - lo) / hi < 1e-10 {
            break;
        }
    }
    let best = 0.5 * (lo + hi);
    if obj(best).is_finite() {
        Ok(best)
    } else {
        Err(ModelError::NoSolution { what: "optimal checkpoint interval" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lost_work_bounded_by_delta() {
        for theta in [0.5, 1.0, 10.0, 1e4] {
            for delta in [0.01, 0.1, 1.0, 5.0] {
                let t_lw = lost_work(delta, 0.05, theta).unwrap();
                assert!(t_lw >= 0.0 && t_lw <= delta, "theta={theta} delta={delta}: {t_lw}");
            }
        }
    }

    #[test]
    fn lost_work_small_segment_is_about_half_delta() {
        // When δ+c ≪ Θ, failures land uniformly; expected loss ≈ δ(δ/2+c)/(δ+c).
        let (delta, c, theta) = (1.0, 0.1, 1e6);
        let t_lw = lost_work(delta, c, theta).unwrap();
        let expect = delta * (delta / 2.0 + c) / (delta + c);
        assert!((t_lw - expect).abs() < 1e-3, "{t_lw} vs {expect}");
    }

    #[test]
    fn lost_work_huge_theta_uses_series_limit() {
        let t_lw = lost_work(1.0, 0.1, f64::MAX / 4.0).unwrap();
        let expect = 1.0 * (0.5 + 0.1) / 1.1;
        assert!((t_lw - expect).abs() < 1e-9);
    }

    #[test]
    fn restart_rework_at_least_shrinks_gracefully() {
        // With Θ huge, t_RR -> R + t_lw (failure during recovery negligible).
        let t_rr = restart_rework(0.2, 0.3, 1e9).unwrap();
        assert!((t_rr - 0.5).abs() < 1e-6);
        // With Θ small, t_RR is dominated by the truncated mean and is below
        // R + t_lw.
        let t_rr = restart_rework(5.0, 5.0, 1.0).unwrap();
        assert!(t_rr < 10.0);
        assert!(t_rr > 0.0);
    }

    #[test]
    fn total_time_eq14() {
        // No failures: T = t(1 + c/δ).
        let t = total_time(100.0, 1.0, 10.0, 0.0, 0.0).unwrap();
        assert!((t - 110.0).abs() < 1e-9);
        // λ·t_RR = 0.5 doubles the time.
        let t = total_time(100.0, 1.0, 10.0, 0.5, 1.0).unwrap();
        assert!((t - 220.0).abs() < 1e-9);
    }

    #[test]
    fn total_time_diverges() {
        let err = total_time(100.0, 1.0, 10.0, 1.0, 1.0).unwrap_err();
        assert!(matches!(err, ModelError::Diverged { .. }));
    }

    #[test]
    fn daly_matches_first_order_for_small_c() {
        // For c ≪ Θ, Daly ≈ Young.
        let c = 1e-4;
        let theta = 100.0;
        let d = daly_interval(c, theta).unwrap();
        let y = young_interval(c, theta).unwrap();
        assert!((d - y).abs() / y < 0.01, "daly={d} young={y}");
    }

    #[test]
    fn daly_caps_at_theta_for_large_c() {
        assert_eq!(daly_interval(10.0, 1.0).unwrap(), 1.0);
    }

    #[test]
    fn daly_paper_ratio_sqrt_10() {
        // Section 4.3: changing c by 10x changes δ_opt by about √10
        // (Figures 4 vs 6: δ = 22.9 vs 7.2).
        let theta = 1572.0; // hours; implied system MTBF of the figures
        let d1 = daly_interval(600.0 / 3600.0, theta).unwrap();
        let d2 = daly_interval(60.0 / 3600.0, theta).unwrap();
        let ratio = d1 / d2;
        assert!((ratio - 10f64.sqrt()).abs() < 0.1, "ratio {ratio}");
        // And the absolute values land near the paper's annotations.
        assert!((d1 - 22.9).abs() < 0.5, "d1={d1}");
        assert!((d2 - 7.2).abs() < 0.3, "d2={d2}");
    }

    #[test]
    fn numeric_optimum_close_to_daly() {
        let (c, theta) = (0.2, 100.0);
        let daly = daly_interval(c, theta).unwrap();
        let num = optimal_interval_numeric(c, theta).unwrap();
        assert!((num - daly).abs() / daly < 0.15, "numeric {num} vs daly {daly}");
    }

    #[test]
    fn interval_policy_dispatch() {
        let c = 0.1;
        let theta = 50.0;
        assert_eq!(
            IntervalPolicy::Daly.interval(c, theta).unwrap(),
            daly_interval(c, theta).unwrap()
        );
        assert_eq!(
            IntervalPolicy::Young.interval(c, theta).unwrap(),
            young_interval(c, theta).unwrap()
        );
        assert_eq!(IntervalPolicy::Fixed(2.5).interval(c, theta).unwrap(), 2.5);
        assert!(IntervalPolicy::Fixed(0.0).interval(c, theta).is_err());
        assert!(IntervalPolicy::Optimal.interval(c, theta).unwrap() > 0.0);
    }

    #[test]
    fn domain_errors() {
        assert!(lost_work(0.0, 0.1, 1.0).is_err());
        assert!(restart_rework(-1.0, 0.0, 1.0).is_err());
        assert!(daly_interval(0.0, 1.0).is_err());
        assert!(young_interval(1.0, 0.0).is_err());
    }
}
