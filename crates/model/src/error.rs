use std::error::Error;
use std::fmt;

/// Error type returned by all fallible computations in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A numeric input was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter (as documented on the function).
        name: &'static str,
        /// The value that was supplied.
        value: f64,
        /// Human-readable description of the valid domain.
        reason: &'static str,
    },
    /// The model predicts the application never completes: the expected
    /// restart+rework demand exceeds the failure-free capacity
    /// (`λ · t_RR ≥ 1` in Eq. 14).
    Diverged {
        /// The system failure rate λ at the diverging configuration.
        failure_rate: f64,
        /// Expected restart+rework time per failure, `t_RR`.
        restart_rework: f64,
    },
    /// An iterative search failed to bracket or converge on a solution.
    NoSolution {
        /// Description of what was being searched for.
        what: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParameter { name, value, reason } => {
                write!(f, "invalid parameter `{name}` = {value}: {reason}")
            }
            ModelError::Diverged { failure_rate, restart_rework } => write!(
                f,
                "model diverges: failure rate {failure_rate} x restart+rework \
                 {restart_rework} >= 1, the job never completes"
            ),
            ModelError::NoSolution { what } => {
                write!(f, "no solution found for {what}")
            }
        }
    }
}

impl Error for ModelError {}

/// Validates that `value` is finite and strictly positive.
pub(crate) fn ensure_positive(name: &'static str, value: f64) -> super::Result<()> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(ModelError::InvalidParameter { name, value, reason: "must be finite and > 0" })
    }
}

/// Validates that `value` is finite and non-negative.
pub(crate) fn ensure_non_negative(name: &'static str, value: f64) -> super::Result<()> {
    if value.is_finite() && value >= 0.0 {
        Ok(())
    } else {
        Err(ModelError::InvalidParameter { name, value, reason: "must be finite and >= 0" })
    }
}

/// Validates that `value` lies in the closed interval `[lo, hi]`.
pub(crate) fn ensure_in_range(
    name: &'static str,
    value: f64,
    lo: f64,
    hi: f64,
) -> super::Result<()> {
    if value.is_finite() && value >= lo && value <= hi {
        Ok(())
    } else {
        Err(ModelError::InvalidParameter {
            name,
            value,
            reason: "must be finite and within the documented range",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = ModelError::InvalidParameter { name: "alpha", value: 2.0, reason: "r" };
        let s = e.to_string();
        assert!(s.contains("alpha"));
        assert!(s.starts_with("invalid"));
    }

    #[test]
    fn ensure_positive_rejects_zero_nan_inf() {
        assert!(ensure_positive("x", 0.0).is_err());
        assert!(ensure_positive("x", f64::NAN).is_err());
        assert!(ensure_positive("x", f64::INFINITY).is_err());
        assert!(ensure_positive("x", -1.0).is_err());
        assert!(ensure_positive("x", 1e-300).is_ok());
    }

    #[test]
    fn ensure_non_negative_accepts_zero() {
        assert!(ensure_non_negative("x", 0.0).is_ok());
        assert!(ensure_non_negative("x", -0.1).is_err());
    }

    #[test]
    fn ensure_in_range_bounds_inclusive() {
        assert!(ensure_in_range("x", 0.0, 0.0, 1.0).is_ok());
        assert!(ensure_in_range("x", 1.0, 0.0, 1.0).is_ok());
        assert!(ensure_in_range("x", 1.0001, 0.0, 1.0).is_err());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
