//! Repair-extended system reliability: the self-healing variant of
//! Eqs. 9–10.
//!
//! The base model treats a replica death as permanent for the rest of the
//! attempt: a sphere of `r` replicas dies once all `r` have failed, and
//! Eq. 9 integrates that race over a fixed horizon. The self-healing
//! executor changes the stochastic process — a degraded sphere is *repaired*
//! (a fresh replica is respawned from a surviving copy) at some rate `μ`
//! while it still has a live member. This module models one sphere as an
//! absorbing birth–death chain on the number of dead replicas and feeds the
//! resulting sphere lifetime back into the Eq. 10 shape (`λ_sys`, `Θ_sys`),
//! so the checkpointing layer (Eqs. 12–14) applies unchanged on top.
//!
//! # The chain
//!
//! State `k ∈ {0, …, r}` is the number of currently-dead replicas of one
//! sphere. Transitions:
//!
//! * `k → k+1` at rate `b_k = (r − k)·λ_node` — one of the live replicas
//!   fails (each at rate `λ_node = 1/θ`);
//! * `k → k−1` at rate `d_k = μ` for `1 ≤ k ≤ r−1` — the healing layer
//!   respawns a dead replica from a survivor;
//! * `k = r` is absorbing — the sphere (and the job) is dead; there is no
//!   donor left to heal from.
//!
//! The mean time to absorption from the fully-alive state follows the
//! standard first-passage recurrence
//!
//! ```text
//! h_0 = 1/b_0,   h_j = (1 + μ·h_{j−1}) / b_j,   T = Σ_{j=0}^{r−1} h_j
//! ```
//!
//! where `h_j` is the expected time the chain spends reaching `j+1` from
//! `j` (counting excursions back down). With `μ = 0` this collapses to the
//! memoryless no-repair lifetime `T = θ·(1 + 1/2 + … + 1/r)` (the harmonic
//! mean time for `r` exponential deaths), and for `r = 1` repair never
//! applies (there is no donor), so `T = θ` for every `μ`.

use serde::{Deserialize, Serialize};

use crate::error::{ensure_non_negative, ensure_positive};
use crate::partition::RedundancyPartition;
use crate::redundancy::SystemReliability;
use crate::Result;

/// Mean time to sphere death (absorption) for one sphere of `replicas`
/// copies, per-replica failure rate `1/node_mtbf`, and repair rate
/// `repair_rate` (`μ`, repairs per time unit while the sphere is degraded
/// but alive).
///
/// Returns `f64::INFINITY` when `replicas == 0` (an empty sphere never
/// dies — it does not exist) or when `node_mtbf` is infinite.
///
/// # Errors
///
/// Returns an error if `node_mtbf <= 0` or `repair_rate < 0`.
pub fn sphere_mean_lifetime(replicas: u64, node_mtbf: f64, repair_rate: f64) -> Result<f64> {
    // +∞ is a meaningful MTBF (failure-free nodes); anything else must be
    // finite and positive.
    if node_mtbf != f64::INFINITY {
        ensure_positive("node_mtbf", node_mtbf)?;
    }
    ensure_non_negative("repair_rate", repair_rate)?;
    if replicas == 0 || node_mtbf.is_infinite() {
        return Ok(f64::INFINITY);
    }
    let lambda = 1.0 / node_mtbf;
    let mut total = 0.0f64;
    let mut h_prev = 0.0f64;
    for j in 0..replicas {
        let b_j = (replicas - j) as f64 * lambda;
        // No repair out of state 0 (nothing is dead yet): d_0 = 0, so the
        // recurrence seeds itself with h_prev = 0.
        let d_j = if j == 0 { 0.0 } else { repair_rate };
        let h_j = (1.0 + d_j * h_prev) / b_j;
        total += h_j;
        h_prev = h_j;
    }
    Ok(total)
}

/// A system of `N` virtual processes at redundancy degree `r` whose
/// degraded spheres are healed at rate `μ`: the repair-rate extension of
/// [`SystemModel`](crate::redundancy::SystemModel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairModel {
    partition: RedundancyPartition,
    node_mtbf: f64,
    repair_rate: f64,
}

impl RepairModel {
    /// Creates a repair-extended system model. `repair_rate` is `μ` in
    /// repairs per time unit (the same unit as `node_mtbf`); `μ = 0`
    /// recovers the no-repair sphere lifetime.
    ///
    /// # Errors
    ///
    /// Returns an error if the partition parameters are invalid (see
    /// [`RedundancyPartition::new`]), `node_mtbf <= 0`, or
    /// `repair_rate < 0`.
    pub fn new(n_virtual: u64, degree: f64, node_mtbf: f64, repair_rate: f64) -> Result<Self> {
        if node_mtbf != f64::INFINITY {
            ensure_positive("node_mtbf", node_mtbf)?;
        }
        ensure_non_negative("repair_rate", repair_rate)?;
        Ok(Self { partition: RedundancyPartition::new(n_virtual, degree)?, node_mtbf, repair_rate })
    }

    /// The underlying partial-redundancy partition.
    pub fn partition(&self) -> &RedundancyPartition {
        &self.partition
    }

    /// Per-node MTBF `θ`.
    pub fn node_mtbf(&self) -> f64 {
        self.node_mtbf
    }

    /// Repair rate `μ`.
    pub fn repair_rate(&self) -> f64 {
        self.repair_rate
    }

    /// System failure rate, MTBF and per-horizon reliability under repair.
    ///
    /// Each sphere's time to death is the birth–death absorption time of
    /// [`sphere_mean_lifetime`]; approximating every sphere lifetime as
    /// exponential at its mean (the same memoryless reduction Eq. 10
    /// applies to the no-repair race), the system fails at the first sphere
    /// death, so the rates add over the `⌊r⌋`- and `⌈r⌉`-replicated sets:
    ///
    /// ```text
    /// λ_sys = N_⌊r⌋ / T_⌊r⌋ + N_⌈r⌉ / T_⌈r⌉,   Θ_sys = 1/λ_sys
    /// ```
    ///
    /// The returned reliability is `exp(−λ_sys·t_red)`, comparable to
    /// Eq. 9's horizon reliability.
    ///
    /// # Errors
    ///
    /// Returns an error if `t_red <= 0`.
    pub fn evaluate(&self, t_red: f64) -> Result<SystemReliability> {
        ensure_positive("t_red", t_red)?;
        let p = &self.partition;
        let mut rate = 0.0f64;
        for (count, replicas) in
            [(p.n_floor_set(), p.floor_replicas()), (p.n_ceil_set(), p.ceil_replicas())]
        {
            if count == 0 {
                continue;
            }
            let lifetime = sphere_mean_lifetime(replicas, self.node_mtbf, self.repair_rate)?;
            if lifetime.is_finite() {
                rate += count as f64 / lifetime;
            }
        }
        let mtbf = if rate == 0.0 { f64::INFINITY } else { 1.0 / rate };
        Ok(SystemReliability { reliability: (-rate * t_red).exp(), failure_rate: rate, mtbf })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mu_zero_is_the_harmonic_no_repair_lifetime() {
        // r exponential deaths, no repair: T = θ·(1 + 1/2 + … + 1/r).
        let theta = 50.0;
        for r in 1..=5u64 {
            let harmonic: f64 = (1..=r).map(|j| 1.0 / j as f64).sum();
            let got = sphere_mean_lifetime(r, theta, 0.0).unwrap();
            assert!(
                (got - theta * harmonic).abs() < 1e-9,
                "r={r}: got {got}, expect {}",
                theta * harmonic
            );
        }
    }

    #[test]
    fn lifetime_is_monotone_in_repair_rate() {
        let mut last = 0.0;
        for mu in [0.0, 0.01, 0.1, 1.0, 10.0] {
            let t = sphere_mean_lifetime(3, 100.0, mu).unwrap();
            assert!(t > last, "mu={mu}: {t} <= {last}");
            last = t;
        }
        // Strong repair makes a triple sphere effectively immortal compared
        // to the no-repair harmonic lifetime.
        assert!(last > 100.0 * (1.0 + 0.5 + 1.0 / 3.0) * 50.0);
    }

    #[test]
    fn singleton_spheres_cannot_be_repaired() {
        // r = 1 has no surviving donor: lifetime is θ for every μ.
        for mu in [0.0, 1.0, 1e6] {
            assert!((sphere_mean_lifetime(1, 42.0, mu).unwrap() - 42.0).abs() < 1e-12);
        }
    }

    #[test]
    fn duplex_lifetime_matches_closed_form() {
        // r = 2: h_0 = 1/(2λ), h_1 = (1 + μ·h_0)/λ,
        // T = 1/(2λ) + 1/λ + μ/(2λ²).
        let (theta, mu) = (20.0, 0.3);
        let lambda = 1.0 / theta;
        let expect = 1.0 / (2.0 * lambda) + 1.0 / lambda + mu / (2.0 * lambda * lambda);
        let got = sphere_mean_lifetime(2, theta, mu).unwrap();
        assert!((got - expect).abs() < 1e-9, "got {got} expect {expect}");
    }

    #[test]
    fn system_rate_adds_over_partition_sets() {
        // N = 10 at r = 1.5: 5 singles + 5 duals.
        let m = RepairModel::new(10, 1.5, 100.0, 0.5).unwrap();
        let t1 = sphere_mean_lifetime(1, 100.0, 0.5).unwrap();
        let t2 = sphere_mean_lifetime(2, 100.0, 0.5).unwrap();
        let expect = 5.0 / t1 + 5.0 / t2;
        let s = m.evaluate(1.0).unwrap();
        assert!((s.failure_rate - expect).abs() < 1e-12);
        assert!((s.failure_rate * s.mtbf - 1.0).abs() < 1e-12);
        assert!((s.reliability - (-expect).exp()).abs() < 1e-12);
    }

    #[test]
    fn repair_extends_system_mtbf() {
        let base = RepairModel::new(64, 2.0, 150.0, 0.0).unwrap().evaluate(10.0).unwrap();
        let healed = RepairModel::new(64, 2.0, 150.0, 0.2).unwrap().evaluate(10.0).unwrap();
        assert!(healed.mtbf > base.mtbf);
        assert!(healed.reliability > base.reliability);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(RepairModel::new(8, 2.0, 0.0, 0.1).is_err());
        assert!(RepairModel::new(8, 2.0, 100.0, -0.1).is_err());
        assert!(sphere_mean_lifetime(2, -1.0, 0.0).is_err());
        assert!(sphere_mean_lifetime(2, 10.0, -1.0).is_err());
        assert!(RepairModel::new(8, 2.0, 100.0, 0.1).unwrap().evaluate(0.0).is_err());
    }

    #[test]
    fn infinite_mtbf_never_fails() {
        let m = RepairModel::new(8, 2.0, f64::INFINITY, 0.0).unwrap();
        let s = m.evaluate(5.0).unwrap();
        assert_eq!(s.failure_rate, 0.0);
        assert!(s.mtbf.is_infinite());
        assert_eq!(s.reliability, 1.0);
    }
}
