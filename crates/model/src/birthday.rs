//! The "birthday problem" view of simultaneous replica failure
//! (paper Section 4.3).
//!
//! After a primary node fails, the job only dies if the *specific* shadow
//! node of that primary also fails — and picking just that node among the
//! remaining `n − 1` becomes ever less likely as `n` grows. The paper
//! approximates the probability that some node *and its own shadow* both
//! fail as
//!
//! `p(n) ≈ 1 − ((n−2)/n)^(n(n−1)/2)`
//!
//! which rapidly approaches zero: `lim_{n→∞} p(n) = 0`... note that the
//! expression as printed actually tends to `1 − e^{−(n−1)} → 1`; the paper's
//! intent (and the form we also provide) is the per-failure *pairing*
//! probability, which does vanish. Both are exposed so the bench can plot
//! them side by side.

use crate::error::ModelError;
use crate::Result;

/// The paper's printed approximation `p(n) = 1 − ((n−2)/n)^(n(n−1)/2)`.
///
/// # Errors
///
/// Returns an error if `n < 2`.
pub fn paper_approximation(n: u64) -> Result<f64> {
    if n < 2 {
        return Err(ModelError::InvalidParameter {
            name: "n",
            value: n as f64,
            reason: "the birthday approximation needs at least 2 nodes",
        });
    }
    let nf = n as f64;
    let exponent = nf * (nf - 1.0) / 2.0;
    // Compute in log space to survive huge exponents.
    let log_term = exponent * ((nf - 2.0) / nf).ln();
    Ok(1.0 - log_term.exp())
}

/// Probability that the *second* failure hits exactly the shadow of the
/// first failed node: `1/(n−1)` for `n` nodes under dual redundancy.
///
/// This is the quantity that actually vanishes as `n → ∞` and underpins the
/// paper's argument that "redundancy scales".
///
/// # Errors
///
/// Returns an error if `n < 2`.
pub fn shadow_pairing_probability(n: u64) -> Result<f64> {
    if n < 2 {
        return Err(ModelError::InvalidParameter {
            name: "n",
            value: n as f64,
            reason: "need at least a primary and a shadow",
        });
    }
    Ok(1.0 / (n as f64 - 1.0))
}

/// Probability that among `f` random distinct node failures in a system of
/// `2n` nodes (n primary/shadow pairs) at least one *pair* is fully dead —
/// the exact "birthday-style" collision probability, computed via the
/// no-collision product `Π_{i=0}^{f−1} (2n − 2i) / (2n − i)`.
///
/// # Errors
///
/// Returns an error if `pairs == 0` or `failures > 2·pairs`.
pub fn pair_collision_probability(pairs: u64, failures: u64) -> Result<f64> {
    if pairs == 0 {
        return Err(ModelError::InvalidParameter {
            name: "pairs",
            value: 0.0,
            reason: "need at least one replica pair",
        });
    }
    let total = 2 * pairs;
    if failures > total {
        return Err(ModelError::InvalidParameter {
            name: "failures",
            value: failures as f64,
            reason: "cannot exceed the total number of nodes (2 * pairs)",
        });
    }
    if failures > pairs {
        // Pigeonhole: more failures than pairs guarantees a dead pair.
        return Ok(1.0);
    }
    // log P(no pair dead) = Σ log((total − 2i)/(total − i))
    let mut log_p = 0.0f64;
    for i in 0..failures {
        let avail = (total - 2 * i) as f64; // nodes whose partner is alive
        let remaining = (total - i) as f64;
        log_p += (avail / remaining).ln();
    }
    Ok(1.0 - log_p.exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_pairing_vanishes() {
        let p10 = shadow_pairing_probability(10).unwrap();
        let p1e6 = shadow_pairing_probability(1_000_000).unwrap();
        assert!(p10 > p1e6);
        assert!(p1e6 < 1.1e-6);
    }

    #[test]
    fn paper_form_is_well_defined() {
        for n in [2u64, 3, 10, 1000, 1_000_000] {
            let p = paper_approximation(n).unwrap();
            assert!((0.0..=1.0).contains(&p), "n={n}: {p}");
        }
        // n = 2: exponent 1, base 0 -> p = 1 (both nodes are one pair).
        assert_eq!(paper_approximation(2).unwrap(), 1.0);
    }

    #[test]
    fn exact_collision_matches_hand_computation() {
        // 2 pairs (4 nodes), 2 failures: P(collision) = 2/(C(4,2)) = 1/3.
        let p = pair_collision_probability(2, 2).unwrap();
        assert!((p - 1.0 / 3.0).abs() < 1e-12, "{p}");
        // 0 failures -> no collision possible.
        assert_eq!(pair_collision_probability(5, 0).unwrap(), 0.0);
        // 1 failure -> partner still alive.
        assert_eq!(pair_collision_probability(5, 1).unwrap(), 0.0);
    }

    #[test]
    fn pigeonhole_forces_collision() {
        assert_eq!(pair_collision_probability(3, 4).unwrap(), 1.0);
    }

    #[test]
    fn collision_probability_decreases_with_scale_at_fixed_failures() {
        // The "redundancy scales" claim: same number of failures, more
        // pairs -> lower chance that a full pair is dead.
        let small = pair_collision_probability(100, 10).unwrap();
        let large = pair_collision_probability(10_000, 10).unwrap();
        assert!(large < small);
    }

    #[test]
    fn error_cases() {
        assert!(paper_approximation(1).is_err());
        assert!(shadow_pairing_probability(1).is_err());
        assert!(pair_collision_probability(0, 0).is_err());
        assert!(pair_collision_probability(2, 5).is_err());
    }
}
