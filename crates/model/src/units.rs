//! Time-unit helpers.
//!
//! The model equations are unit-agnostic: every function works as long as all
//! durations share one unit. The configuration structs in this crate document
//! their fields in **hours**; these helpers convert common units to hours so
//! call sites stay readable:
//!
//! ```
//! use redcr_model::units;
//!
//! assert_eq!(units::hours_from_secs(3600.0), 1.0);
//! assert_eq!(units::hours_from_years(1.0), 8760.0);
//! ```

/// Hours per year used throughout the paper-style configurations (365 days).
pub const HOURS_PER_YEAR: f64 = 365.0 * 24.0;

/// Hours per day.
pub const HOURS_PER_DAY: f64 = 24.0;

/// Converts seconds to hours.
#[inline]
pub fn hours_from_secs(secs: f64) -> f64 {
    secs / 3600.0
}

/// Converts minutes to hours.
#[inline]
pub fn hours_from_mins(mins: f64) -> f64 {
    mins / 60.0
}

/// Converts days to hours.
#[inline]
pub fn hours_from_days(days: f64) -> f64 {
    days * HOURS_PER_DAY
}

/// Converts years (365 days) to hours.
#[inline]
pub fn hours_from_years(years: f64) -> f64 {
    years * HOURS_PER_YEAR
}

/// Converts hours to seconds.
#[inline]
pub fn secs_from_hours(hours: f64) -> f64 {
    hours * 3600.0
}

/// Converts hours to minutes.
#[inline]
pub fn mins_from_hours(hours: f64) -> f64 {
    hours * 60.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        assert!((secs_from_hours(hours_from_secs(1234.5)) - 1234.5).abs() < 1e-9);
        assert!((mins_from_hours(hours_from_mins(77.0)) - 77.0).abs() < 1e-9);
    }

    #[test]
    fn paper_constants() {
        // 5-year MTBF used in Tables 2-3.
        assert_eq!(hours_from_years(5.0), 43_800.0);
        // 120 s checkpoint cost from Section 6.
        assert!((hours_from_secs(120.0) - 1.0 / 30.0).abs() < 1e-12);
    }
}
