//! Node and replica-sphere reliability (paper Eqs. 2–4).
//!
//! Node failures are assumed to arrive as a Poisson process (paper
//! assumption 3), so a node's survival probability over time `t` is
//! `R(t) = e^{−t/θ}` with MTBF `θ`. For large `θ` the paper linearizes the
//! failure probability to `t/θ` (Eq. 3); both forms are provided here and an
//! ablation bench quantifies where they diverge.

use serde::{Deserialize, Serialize};

use crate::error::{ensure_non_negative, ensure_positive};
use crate::Result;

/// Which functional form to use for single-node failure probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Approximation {
    /// The paper's first-order form `Pr(fail) = t/θ` (Eq. 3), clamped to 1.
    ///
    /// This is the form used throughout the paper's Section 4 derivations.
    #[default]
    Linear,
    /// The exact exponential `Pr(fail) = 1 − e^{−t/θ}` (Eq. 2).
    Exact,
}

/// Probability that a single node survives until time `t` (reliability).
///
/// `R(t) = e^{−t/θ}` for [`Approximation::Exact`], `1 − t/θ` (clamped to
/// `[0, 1]`) for [`Approximation::Linear`].
///
/// # Errors
///
/// Returns an error if `t < 0` or `theta <= 0`.
pub fn node_reliability(t: f64, theta: f64, approx: Approximation) -> Result<f64> {
    ensure_non_negative("t", t)?;
    ensure_positive("theta", theta)?;
    Ok(match approx {
        Approximation::Exact => (-t / theta).exp(),
        Approximation::Linear => (1.0 - t / theta).clamp(0.0, 1.0),
    })
}

/// Probability that a single node fails before time `t` (Eqs. 2–3).
///
/// # Errors
///
/// Returns an error if `t < 0` or `theta <= 0`.
pub fn node_failure_probability(t: f64, theta: f64, approx: Approximation) -> Result<f64> {
    Ok(1.0 - node_reliability(t, theta, approx)?)
}

/// Reliability of a replica *sphere* of `k` i.i.d. nodes (Eq. 4):
/// the sphere survives unless **all** `k` replicas fail,
/// `R_red(t) = 1 − Pr(fail)^k`.
///
/// # Errors
///
/// Returns an error if `t < 0`, `theta <= 0`, or `k == 0`.
pub fn sphere_reliability(t: f64, theta: f64, k: u64, approx: Approximation) -> Result<f64> {
    if k == 0 {
        return Err(crate::ModelError::InvalidParameter {
            name: "k",
            value: 0.0,
            reason: "a sphere must contain at least one replica",
        });
    }
    let pf = node_failure_probability(t, theta, approx)?;
    Ok(1.0 - pf.powi(k as i32))
}

/// Converts a reliability `R(t)` observed over horizon `t` into the implied
/// constant failure rate `λ = −ln(R)/t` (the inverse of `R = e^{−λt}`).
///
/// Returns `f64::INFINITY` when `reliability == 0` and `0.0` when
/// `reliability == 1`.
///
/// # Errors
///
/// Returns an error if `t <= 0` or `reliability` is outside `[0, 1]`.
pub fn implied_failure_rate(reliability: f64, t: f64) -> Result<f64> {
    ensure_positive("t", t)?;
    crate::error::ensure_in_range("reliability", reliability, 0.0, 1.0)?;
    if reliability == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(-reliability.ln() / t)
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn exact_reliability_is_exponential() {
        let r = node_reliability(1.0, 2.0, Approximation::Exact).unwrap();
        assert!((r - (-0.5f64).exp()).abs() < EPS);
    }

    #[test]
    fn linear_reliability_matches_paper_eq3() {
        let r = node_reliability(1.0, 10.0, Approximation::Linear).unwrap();
        assert!((r - 0.9).abs() < EPS);
        // Clamped when t > theta.
        let r = node_reliability(20.0, 10.0, Approximation::Linear).unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn linear_approximates_exact_for_large_theta() {
        let exact = node_failure_probability(1.0, 1e6, Approximation::Exact).unwrap();
        let linear = node_failure_probability(1.0, 1e6, Approximation::Linear).unwrap();
        assert!((exact - linear).abs() < 1e-9);
    }

    #[test]
    fn sphere_reliability_eq4() {
        // k = 2, t/theta = 0.1 -> R = 1 - 0.01 = 0.99.
        let r = sphere_reliability(1.0, 10.0, 2, Approximation::Linear).unwrap();
        assert!((r - 0.99).abs() < EPS);
        // k = 3 -> 1 - 1e-3.
        let r = sphere_reliability(1.0, 10.0, 3, Approximation::Linear).unwrap();
        assert!((r - 0.999).abs() < EPS);
    }

    #[test]
    fn more_replicas_never_hurt() {
        let mut last = 0.0;
        for k in 1..=6 {
            let r = sphere_reliability(2.0, 10.0, k, Approximation::Exact).unwrap();
            assert!(r >= last, "k={k}");
            last = r;
        }
    }

    #[test]
    fn zero_time_is_perfectly_reliable() {
        for approx in [Approximation::Linear, Approximation::Exact] {
            assert_eq!(node_reliability(0.0, 5.0, approx).unwrap(), 1.0);
            assert_eq!(sphere_reliability(0.0, 5.0, 2, approx).unwrap(), 1.0);
        }
    }

    #[test]
    fn implied_rate_inverts_exponential() {
        let theta: f64 = 7.5;
        let t = 3.0;
        let r = (-t / theta).exp();
        let lambda = implied_failure_rate(r, t).unwrap();
        assert!((lambda - 1.0 / theta).abs() < EPS);
    }

    #[test]
    fn implied_rate_edge_cases() {
        assert_eq!(implied_failure_rate(1.0, 2.0).unwrap(), 0.0);
        assert_eq!(implied_failure_rate(0.0, 2.0).unwrap(), f64::INFINITY);
        assert!(implied_failure_rate(1.5, 2.0).is_err());
        assert!(implied_failure_rate(0.5, 0.0).is_err());
    }

    #[test]
    fn sphere_rejects_zero_replicas() {
        assert!(sphere_reliability(1.0, 10.0, 0, Approximation::Linear).is_err());
    }
}
