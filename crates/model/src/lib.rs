//! Analytic model for **combined partial redundancy and checkpoint/restart**
//! in HPC, reproducing Elliott, Kharbas, Fiala, Mueller, Ferreira and
//! Engelmann, *Combining Partial Redundancy and Checkpointing for HPC*,
//! ICDCS 2012 (Section 4, Eqs. 1–15).
//!
//! The model answers two questions posed by the paper:
//!
//! 1. Is it advantageous to use both C/R and redundancy at the same time?
//! 2. What are the optimal values of the (partial) redundancy degree `r` and
//!    the checkpoint interval `δ`?
//!
//! # Structure
//!
//! * [`partition`] — Eqs. 5–8: splitting `N` virtual processes into the
//!   `⌊r⌋`- and `⌈r⌉`-replicated sets for a fractional degree `r`.
//! * [`reliability`] — Eqs. 2–4: node and replica-sphere reliability.
//! * [`redundancy`] — Eq. 1 (redundant execution time) and Eqs. 9–10
//!   (system reliability, failure rate and MTBF under partial redundancy).
//! * [`repair`] — the repair-rate extension of Eqs. 9–10: sphere lifetimes
//!   as absorbing birth–death chains when the self-healing layer respawns
//!   dead replicas at rate `μ`.
//! * [`checkpointing`] — Eqs. 12–14 (expected lost work, restart+rework,
//!   total time under periodic checkpointing) and Eq. 15 (Daly's optimal
//!   checkpoint interval), plus Young's first-order interval.
//! * [`combined`] — Section 4.3: the full combined model and the simplified
//!   variant the paper uses in Section 6(5) for Figures 11–12.
//! * [`optimizer`] — optimal `r`/`δ` search, weighted time-vs-resource cost
//!   functions, and crossover finders (Figures 13–14).
//! * [`birthday`] — the birthday-problem approximation of Section 4.3.
//!
//! # Conventions
//!
//! All durations passed to free functions are in **a single consistent unit**
//! (the functions are unit-agnostic; the structs in [`combined`] document
//! their fields in hours). MTBF is always the mean time between failures of
//! a *single* failure unit (node) unless explicitly named `system_*`.
//!
//! # Example
//!
//! Find the optimal redundancy degree for a 128-hour job on 100 000 nodes
//! with a 5-year per-node MTBF:
//!
//! ```
//! use redcr_model::combined::{CombinedConfig, IntervalPolicy};
//! use redcr_model::optimizer::{self, RGrid};
//!
//! # fn main() -> Result<(), redcr_model::ModelError> {
//! let cfg = CombinedConfig::builder()
//!     .virtual_processes(100_000)
//!     .base_time_hours(128.0)
//!     .node_mtbf_hours(5.0 * 365.0 * 24.0)
//!     .comm_fraction(0.2)
//!     .checkpoint_cost_hours(600.0 / 3600.0)
//!     .restart_cost_hours(500.0 / 3600.0)
//!     .interval_policy(IntervalPolicy::Daly)
//!     .build()?;
//! let best = optimizer::optimal_redundancy(&cfg, &optimizer::RGrid::quarter_steps())?;
//! assert!(best.degree >= 2.0); // at this scale dual redundancy wins
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod birthday;
pub mod checkpointing;
pub mod combined;
pub mod optimizer;
pub mod partition;
pub mod redundancy;
pub mod reliability;
pub mod repair;
pub mod units;

mod error;

pub use error::ModelError;

/// Convenient result alias for fallible model computations.
pub type Result<T> = std::result::Result<T, ModelError>;
