//! Partial-redundancy partitioning (paper Eqs. 5–8).
//!
//! A fractional redundancy degree `r` (e.g. `1.5`) cannot be realized
//! uniformly: some virtual processes receive `⌈r⌉` physical replicas and the
//! rest `⌊r⌋`. The paper partitions the `N` virtual processes as
//!
//! ```text
//! N        = N⌊r⌋ + N⌈r⌉                        (Eq. 5)
//! N⌊r⌋     = ⌊(⌈r⌉ − r)·N⌋                       (Eq. 6)
//! N⌈r⌉     = N − N⌊r⌋                            (Eq. 7)
//! N_total  = N⌈r⌉·⌈r⌉ + N⌊r⌋·⌊r⌋  ≤  N·r         (Eq. 8)
//! ```
//!
//! When `r` is a positive integer, `N⌊r⌋ = 0` and every virtual process has
//! exactly `r` replicas.

use serde::{Deserialize, Serialize};

use crate::error::{ensure_in_range, ModelError};
use crate::Result;

/// Minimum supported redundancy degree.
pub const MIN_DEGREE: f64 = 1.0;
/// Maximum supported redundancy degree. The paper evaluates degrees in
/// `[1, 3]`; we allow a little headroom for extension studies.
pub const MAX_DEGREE: f64 = 16.0;

/// How virtual ranks are assigned to the `⌈r⌉`-replica set.
///
/// The paper's experiments replicate "every other process (i.e., every even
/// process)" for `r = 1.5`, which corresponds to [`Interleaved`]. [`Blocked`]
/// assigns the first `N⌈r⌉` ranks instead and is provided for ablation
/// studies of replica placement.
///
/// [`Interleaved`]: AssignmentStrategy::Interleaved
/// [`Blocked`]: AssignmentStrategy::Blocked
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AssignmentStrategy {
    /// Spread the extra replicas evenly across the rank space (paper default:
    /// for `r = 1.5` every even rank gets the extra replica).
    #[default]
    Interleaved,
    /// Give the extra replicas to the lowest-numbered ranks.
    Blocked,
}

/// The partition of `N` virtual processes induced by a (possibly fractional)
/// redundancy degree `r` (Eqs. 5–8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RedundancyPartition {
    n_virtual: u64,
    degree: f64,
    floor_replicas: u64,
    ceil_replicas: u64,
    n_floor_set: u64,
    n_ceil_set: u64,
    strategy: AssignmentStrategy,
}

impl RedundancyPartition {
    /// Builds the partition for `n_virtual` virtual processes at redundancy
    /// degree `degree`, using the default ([`AssignmentStrategy::Interleaved`])
    /// replica placement.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidParameter`] if `n_virtual == 0` or
    /// `degree` lies outside `[MIN_DEGREE, MAX_DEGREE]`.
    pub fn new(n_virtual: u64, degree: f64) -> Result<Self> {
        Self::with_strategy(n_virtual, degree, AssignmentStrategy::default())
    }

    /// Like [`RedundancyPartition::new`] but with an explicit placement
    /// strategy.
    ///
    /// # Errors
    ///
    /// Same as [`RedundancyPartition::new`].
    pub fn with_strategy(
        n_virtual: u64,
        degree: f64,
        strategy: AssignmentStrategy,
    ) -> Result<Self> {
        if n_virtual == 0 {
            return Err(ModelError::InvalidParameter {
                name: "n_virtual",
                value: 0.0,
                reason: "must be at least 1",
            });
        }
        ensure_in_range("degree", degree, MIN_DEGREE, MAX_DEGREE)?;

        let floor_replicas = degree.floor() as u64;
        let ceil_replicas = degree.ceil() as u64;
        // Eq. 6: N_floor = floor((ceil(r) - r) * N). For integral r the term
        // (ceil(r) - r) is zero, so N_floor = 0 as the paper's special case
        // requires.
        let n_floor_set = ((ceil_replicas as f64 - degree) * n_virtual as f64).floor() as u64;
        let n_floor_set = n_floor_set.min(n_virtual);
        let n_ceil_set = n_virtual - n_floor_set; // Eq. 7

        Ok(Self {
            n_virtual,
            degree,
            floor_replicas,
            ceil_replicas,
            n_floor_set,
            n_ceil_set,
            strategy,
        })
    }

    /// Number of virtual processes `N`.
    pub fn n_virtual(&self) -> u64 {
        self.n_virtual
    }

    /// The requested redundancy degree `r`.
    pub fn degree(&self) -> f64 {
        self.degree
    }

    /// `⌊r⌋`: replica count of the less-replicated set.
    pub fn floor_replicas(&self) -> u64 {
        self.floor_replicas
    }

    /// `⌈r⌉`: replica count of the more-replicated set.
    pub fn ceil_replicas(&self) -> u64 {
        self.ceil_replicas
    }

    /// `N⌊r⌋` (Eq. 6): number of virtual processes with `⌊r⌋` replicas.
    pub fn n_floor_set(&self) -> u64 {
        self.n_floor_set
    }

    /// `N⌈r⌉` (Eq. 7): number of virtual processes with `⌈r⌉` replicas.
    pub fn n_ceil_set(&self) -> u64 {
        self.n_ceil_set
    }

    /// The replica placement strategy.
    pub fn strategy(&self) -> AssignmentStrategy {
        self.strategy
    }

    /// `N_total` (Eq. 8): total number of physical processes required.
    ///
    /// Because of the floor in Eq. 6, `N·r ≤ N_total < N·r + 1`: the paper
    /// notes `N_total ≤ N×r` "as a fraction of a process is nonexistent",
    /// which holds whenever `(⌈r⌉−r)·N` is integral; in general the rounding
    /// can add at most one extra physical process.
    pub fn total_physical(&self) -> u64 {
        self.n_ceil_set * self.ceil_replicas + self.n_floor_set * self.floor_replicas
    }

    /// The *effective* degree actually realized, `N_total / N`.
    ///
    /// Differs from [`degree`](Self::degree) by less than `1/N` due to the
    /// floor in Eq. 6.
    pub fn effective_degree(&self) -> f64 {
        self.total_physical() as f64 / self.n_virtual as f64
    }

    /// Number of physical replicas assigned to virtual rank `vrank`.
    ///
    /// # Panics
    ///
    /// Panics if `vrank >= n_virtual()`.
    pub fn replicas_of(&self, vrank: u64) -> u64 {
        assert!(vrank < self.n_virtual, "virtual rank {vrank} out of range");
        if self.n_floor_set == 0 {
            return self.ceil_replicas;
        }
        if self.n_ceil_set == 0 {
            return self.floor_replicas;
        }
        match self.strategy {
            AssignmentStrategy::Blocked => {
                if vrank < self.n_ceil_set {
                    self.ceil_replicas
                } else {
                    self.floor_replicas
                }
            }
            AssignmentStrategy::Interleaved => {
                // Distribute the n_ceil_set extra-replica slots evenly over
                // the rank space (Bresenham/Beatty rounding): rank v is in
                // the ceil set iff (v·k) mod N < k, which selects exactly k
                // ranks starting at rank 0. For r = 1.5 and even N this marks
                // exactly the even ranks, matching the paper's "every even
                // process has a replica".
                let k = self.n_ceil_set as u128;
                let n = self.n_virtual as u128;
                if (vrank as u128 * k) % n < k {
                    self.ceil_replicas
                } else {
                    self.floor_replicas
                }
            }
        }
    }

    /// Iterates over `(virtual_rank, replica_count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        (0..self.n_virtual).map(move |v| (v, self.replicas_of(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_degrees_have_empty_floor_set() {
        for r in [1.0, 2.0, 3.0] {
            let p = RedundancyPartition::new(128, r).unwrap();
            assert_eq!(p.n_floor_set(), 0, "r={r}");
            assert_eq!(p.n_ceil_set(), 128);
            assert_eq!(p.total_physical(), 128 * r as u64);
            assert_eq!(p.effective_degree(), r);
        }
    }

    #[test]
    fn half_degree_splits_evenly() {
        let p = RedundancyPartition::new(128, 1.5).unwrap();
        assert_eq!(p.n_floor_set(), 64);
        assert_eq!(p.n_ceil_set(), 64);
        assert_eq!(p.total_physical(), 64 + 128);
        assert!((p.effective_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn interleaved_matches_paper_even_rank_replication() {
        // Paper Section 6: "a redundancy degree of 1.5x means that every
        // other process (i.e., every even process) has a replica".
        let p = RedundancyPartition::new(8, 1.5).unwrap();
        let counts: Vec<u64> = (0..8).map(|v| p.replicas_of(v)).collect();
        assert_eq!(counts, vec![2, 1, 2, 1, 2, 1, 2, 1]);
    }

    #[test]
    fn blocked_assigns_prefix() {
        let p = RedundancyPartition::with_strategy(8, 1.5, AssignmentStrategy::Blocked).unwrap();
        let counts: Vec<u64> = (0..8).map(|v| p.replicas_of(v)).collect();
        assert_eq!(counts, vec![2, 2, 2, 2, 1, 1, 1, 1]);
    }

    #[test]
    fn quarter_degrees_match_paper_table() {
        // 128 processes at 1.25x: N_floor = floor(0.75*128) = 96 singles,
        // 32 duals -> 160 physical processes.
        let p = RedundancyPartition::new(128, 1.25).unwrap();
        assert_eq!(p.n_floor_set(), 96);
        assert_eq!(p.n_ceil_set(), 32);
        assert_eq!(p.total_physical(), 96 + 64);
        // 2.75x: floor set has 2 replicas, ceil set 3.
        let p = RedundancyPartition::new(128, 2.75).unwrap();
        assert_eq!(p.floor_replicas(), 2);
        assert_eq!(p.ceil_replicas(), 3);
        assert_eq!(p.n_floor_set(), 32);
        assert_eq!(p.n_ceil_set(), 96);
        assert_eq!(p.total_physical(), 32 * 2 + 96 * 3);
    }

    #[test]
    fn total_is_within_one_of_n_times_r() {
        for n in [1u64, 7, 13, 100, 128, 1001] {
            for r in [1.0, 1.1, 1.25, 1.5, 1.9, 2.25, 2.5, 3.0] {
                let p = RedundancyPartition::new(n, r).unwrap();
                let total = p.total_physical() as f64;
                let nr = n as f64 * r;
                assert!(
                    total >= nr - 1e-9 && total < nr + 1.0,
                    "n={n} r={r} total={total} nr={nr}"
                );
            }
        }
    }

    #[test]
    fn per_rank_counts_sum_to_total() {
        for n in [1u64, 5, 64, 129] {
            for r in [1.0, 1.25, 1.5, 2.75] {
                let p = RedundancyPartition::new(n, r).unwrap();
                let sum: u64 = p.iter().map(|(_, c)| c).sum();
                assert_eq!(sum, p.total_physical(), "n={n} r={r}");
            }
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(RedundancyPartition::new(0, 2.0).is_err());
        assert!(RedundancyPartition::new(4, 0.5).is_err());
        assert!(RedundancyPartition::new(4, f64::NAN).is_err());
        assert!(RedundancyPartition::new(4, 17.0).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn replicas_of_panics_out_of_range() {
        let p = RedundancyPartition::new(4, 2.0).unwrap();
        let _ = p.replicas_of(4);
    }
}
