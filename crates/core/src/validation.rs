//! Measured-vs-model validation: feeds a run's *measured* quantities back
//! into the paper's analytic model and compares the predicted runtime with
//! the observed one.
//!
//! The paper validates its model against cluster measurements (Section 6);
//! this module is the simulator-side counterpart. From a traced run it
//! extracts, per physical rank, the observed communication fraction `α`
//! (exactly the trace analyzer's derivation — the sidecar α is asserted
//! bit-identical to [`Analysis`]'s), the measured checkpoint commit
//! latency `c`, and the failure counts; it then pushes them through
//!
//! * Eq. 1 (`t_Red = (1−α)·t + α·t·r`) per rank, taking the slowest rank
//!   as the measured redundant execution time,
//! * Eqs. 9–10 for the system failure rate `λ` at the configured degree
//!   (replaced by the repair-extended birth–death model of
//!   [`redcr_model::repair`] when the run healed: `μ` is measured as
//!   respawns over total heal latency),
//! * Eqs. 12–13 for the expected lost work and restart+rework phases, and
//! * Eq. 14 for the predicted total time,
//!
//! and reports `(predicted − observed)/observed`. The bench harness writes
//! this as a `*_validation.json` sidecar next to every paper-figure
//! artifact (see `results/README.md`), and CI asserts the failure-free
//! relative error stays under 20%.

use std::fmt;
use std::fmt::Write as _;

use redcr_model::checkpointing::{lost_work, restart_rework, total_time};
use redcr_model::redundancy::{redundant_time, SystemModel};
use redcr_model::repair::RepairModel;
use redcr_mpi::trace::{Analysis, AnalyzeError, CriticalPath, EventKind};

use crate::config::ExecutorConfig;
use crate::report::ExecutionReport;

/// Why a validation report could not be built.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ValidationError {
    /// The run carried no trace ([`ExecutorConfig::tracing`] was off).
    NoTrace,
    /// The trace replay failed.
    Analyze(AnalyzeError),
    /// The run never completed an attempt, so there is no measured
    /// steady-state to validate against.
    NoCompletedAttempt,
    /// The final attempt recorded no rank timings (no `RankFinish`).
    NoRankTimings,
    /// The analytic model rejected the measured inputs.
    Model(String),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NoTrace => write!(f, "run has no trace (enable cfg.tracing)"),
            ValidationError::Analyze(e) => write!(f, "trace replay failed: {e}"),
            ValidationError::NoCompletedAttempt => write!(f, "no completed attempt to validate"),
            ValidationError::NoRankTimings => write!(f, "final attempt has no rank timings"),
            ValidationError::Model(what) => write!(f, "model evaluation failed: {what}"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl From<AnalyzeError> for ValidationError {
    fn from(e: AnalyzeError) -> Self {
        ValidationError::Analyze(e)
    }
}

/// One physical rank's measured execution split in the final attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct RankMeasurement {
    /// Physical (world) rank.
    pub rank: u32,
    /// Observed communication fraction `α = comm / (busy + comm)` — taken
    /// **verbatim** from the trace analyzer.
    pub alpha: f64,
    /// Seconds attributed to computation.
    pub busy: f64,
    /// Seconds attributed to communication (amplified by replication).
    pub comm: f64,
    /// Replicas in this rank's sphere (Eq. 1's `r` for this rank).
    pub replicas: u32,
}

/// The measured-vs-model comparison of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelValidation {
    /// Virtual processes (config echo).
    pub n_virtual: u64,
    /// Redundancy degree `r` (config echo).
    pub degree: f64,
    /// Per-node MTBF, virtual seconds (config echo).
    pub node_mtbf: f64,
    /// Checkpoint interval `δ`, virtual seconds (config echo).
    pub checkpoint_interval: f64,
    /// Restart cost `R`, virtual seconds (config echo).
    pub restart_cost: f64,
    /// Injector seed (config echo).
    pub seed: u64,
    /// Per-rank measurements from the final completed attempt.
    pub ranks: Vec<RankMeasurement>,
    /// Mean of the per-rank `α`s.
    pub mean_alpha: f64,
    /// Critical-path blame α: the blocked-on-recv share of
    /// compute-plus-blocked time over the final attempt, from the trace's
    /// happens-before replay
    /// ([`CriticalPath::blame_alpha`](redcr_mpi::trace::CriticalPath::blame_alpha))
    /// — the same measured quantity as `mean_alpha` but with checkpoint
    /// and heal brackets carved out of the communication share, and
    /// weighted by rank activity rather than averaged per rank.
    pub critical_path_alpha: f64,
    /// Measured checkpoint commit latency `c`: mean begin→commit span
    /// across all attempts (0 when no checkpoint committed).
    pub commit_latency_mean: f64,
    /// Checkpoints committed in the final attempt.
    pub commits: u64,
    /// Attempts performed.
    pub attempts: u64,
    /// Job failures endured.
    pub failures: u64,
    /// Process failures masked by redundancy.
    pub masked_failures: u64,
    /// Replicas respawned by the self-healing layer (report echo).
    pub respawns: u64,
    /// Total heal latency, virtual seconds (report echo).
    pub heal_latency_seconds: f64,
    /// Recovered voting-seconds (report echo).
    pub recovered_voting_seconds: f64,
    /// Measured heal stall: virtual seconds the run paid inside heal
    /// cycles (respawn-begin → rejoin-commit spans, from the trace).
    pub heal_stall_seconds: f64,
    /// Measured repair rate `μ` fed to the repair-extended model:
    /// `respawns / heal_latency_seconds`, or 0 when the run never healed.
    pub repair_rate: f64,
    /// Eq. 1 applied per rank to the de-amplified solo time, slowest rank:
    /// the measured redundant execution time (includes checkpoint costs).
    pub t_red: f64,
    /// `t_red` with the measured checkpoint overhead removed — the model's
    /// failure- and checkpoint-free application time `t`.
    pub t_app: f64,
    /// System failure rate `λ` from Eqs. 9–10 at the measured horizon.
    pub lambda: f64,
    /// System MTBF `Θ = 1/λ`.
    pub system_mtbf: f64,
    /// Expected lost work per failure `t_lw` (Eq. 12).
    pub t_lost_work: f64,
    /// Expected restart+rework phase `t_RR` (Eq. 13).
    pub t_restart_rework: f64,
    /// Eq. 14's predicted total completion time.
    pub predicted_total: f64,
    /// The run's observed total virtual time.
    pub observed_total: f64,
    /// `(predicted − observed) / observed`.
    pub relative_error: f64,
}

impl ModelValidation {
    /// Builds the comparison from a finished run: replays the report's
    /// trace, extracts the measured inputs and evaluates the model chain.
    ///
    /// # Errors
    ///
    /// See [`ValidationError`]: the run must have been traced, must have a
    /// completed attempt with rank timings, and the measured inputs must be
    /// inside the model's domain.
    pub fn from_run<S>(
        cfg: &ExecutorConfig,
        report: &ExecutionReport<S>,
    ) -> Result<ModelValidation, ValidationError> {
        let trace = report.trace.as_ref().ok_or(ValidationError::NoTrace)?;
        let analysis = Analysis::analyze(trace)?;
        Self::from_analysis(cfg, report, &analysis)
    }

    /// Like [`from_run`](Self::from_run) with an already-replayed analysis
    /// (avoids re-analyzing when the caller has one).
    ///
    /// # Errors
    ///
    /// See [`ValidationError`].
    pub fn from_analysis<S>(
        cfg: &ExecutorConfig,
        report: &ExecutionReport<S>,
        analysis: &Analysis,
    ) -> Result<ModelValidation, ValidationError> {
        let last = analysis
            .attempts
            .last()
            .filter(|a| a.completed)
            .ok_or(ValidationError::NoCompletedAttempt)?;

        // Busy/comm splits of the final attempt, keyed by rank. A heal
        // relaunch makes a rank finish once per segment, so the splits
        // aggregate across its `RankFinish` events (the same merge the
        // trace analyzer applies before deriving α).
        let mut splits: Vec<(u32, f64, f64)> = Vec::new();
        for e in &last.events {
            if let (Some(rank), EventKind::RankFinish { busy, comm }) = (e.rank, &e.kind) {
                if let Some(s) = splits.iter_mut().find(|s| s.0 == rank) {
                    s.1 += busy;
                    s.2 += comm;
                } else {
                    splits.push((rank, *busy, *comm));
                }
            }
        }
        if splits.is_empty() {
            return Err(ValidationError::NoRankTimings);
        }

        let replicas_of = |rank: u32| -> u32 {
            analysis
                .spheres
                .iter()
                .find(|members| members.contains(&rank))
                .map_or(1, |members| members.len().max(1) as u32)
        };

        // The sidecar α is the analyzer's, verbatim.
        let mut ranks: Vec<RankMeasurement> = Vec::with_capacity(last.alphas.len());
        for &(rank, alpha) in &last.alphas {
            let (busy, comm) = splits
                .iter()
                .find(|&&(r, _, _)| r == rank)
                .map(|&(_, b, c)| (b, c))
                .unwrap_or((0.0, 0.0));
            ranks.push(RankMeasurement { rank, alpha, busy, comm, replicas: replicas_of(rank) });
        }
        let mean_alpha = if ranks.is_empty() {
            0.0
        } else {
            ranks.iter().map(|r| r.alpha).sum::<f64>() / ranks.len() as f64
        };
        let critical_path_alpha =
            CriticalPath::analyze(analysis).blame_alpha().unwrap_or(mean_alpha);

        // Eq. 1 per rank: de-amplify the measured comm back to the solo
        // (r = 1) execution, then apply the model's redundant slowdown at
        // this rank's replica count. The slowest rank is the measured
        // redundant execution time.
        let model = |e: redcr_model::ModelError| ValidationError::Model(e.to_string());
        let mut t_red = 0.0f64;
        for r in &ranks {
            let solo_comm = r.comm / f64::from(r.replicas);
            let solo_t = r.busy + solo_comm;
            let solo_alpha = if solo_t > 0.0 { solo_comm / solo_t } else { 0.0 };
            let t_i = redundant_time(solo_t, solo_alpha, f64::from(r.replicas)).map_err(model)?;
            t_red = t_red.max(t_i);
        }

        // Measured checkpoint cost: mean commit latency across the run.
        let latencies: Vec<f64> =
            analysis.attempts.iter().flat_map(|a| a.commit_latencies.iter().copied()).collect();
        let commit_latency_mean = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let commits = last.committed_seqs.len() as u64;

        // Remove the measured checkpoint overhead from the redundant time:
        // what remains is the model's checkpoint-free application time.
        let t_app = (t_red - commits as f64 * commit_latency_mean).max(f64::MIN_POSITIVE);

        // Self-healing measurements: the repair rate is respawns over the
        // total death→rejoin latency, and the stall is what the run paid
        // inside heal cycles (neither shows up in any rank's busy/comm).
        let repair_rate = if report.respawns > 0 && report.heal_latency_seconds > 0.0 {
            report.respawns as f64 / report.heal_latency_seconds
        } else {
            0.0
        };
        let heal_stall_seconds: f64 = analysis.attempts.iter().map(|a| a.heal_stall_seconds).sum();

        // Eqs. 9–10: system failure rate at the measured horizon — or, when
        // the run healed, the repair-extended birth–death rates at the
        // measured `μ`. An infinite node MTBF short-circuits to a
        // failure-free system (the closed forms degenerate to 0·∞ there).
        let (lambda, system_mtbf) = if cfg.node_mtbf.is_finite() && t_red > 0.0 {
            let sys = if repair_rate > 0.0 {
                RepairModel::new(cfg.n_virtual, cfg.degree, cfg.node_mtbf, repair_rate)
                    .map_err(model)?
                    .evaluate(t_red)
                    .map_err(model)?
            } else {
                SystemModel::new(cfg.n_virtual, cfg.degree, cfg.node_mtbf)
                    .map_err(model)?
                    .evaluate(t_red)
                    .map_err(model)?
            };
            (sys.failure_rate, sys.mtbf)
        } else {
            (0.0, f64::INFINITY)
        };

        // Eqs. 12–13, on the *measured* checkpoint cost.
        let (t_lost_work, t_restart_rework) =
            if lambda > 0.0 && system_mtbf.is_finite() && cfg.checkpoint_interval.is_finite() {
                let t_lw = lost_work(cfg.checkpoint_interval, commit_latency_mean, system_mtbf)
                    .map_err(model)?;
                let t_rr = restart_rework(cfg.restart_cost, t_lw, system_mtbf).map_err(model)?;
                (t_lw, t_rr)
            } else {
                (0.0, 0.0)
            };

        // Eq. 14, plus the measured heal stall: the repair model prices
        // healing into `λ` (fewer restarts), while the stall the run paid
        // waiting on respawn+transfer is a flat measured addition the
        // checkpointing chain does not see.
        let predicted_total = total_time(
            t_app,
            commit_latency_mean,
            cfg.checkpoint_interval,
            lambda,
            t_restart_rework,
        )
        .map_err(model)?
            + heal_stall_seconds;

        let observed_total = report.total_virtual_time;
        let relative_error = if observed_total > 0.0 {
            (predicted_total - observed_total) / observed_total
        } else {
            f64::INFINITY
        };

        Ok(ModelValidation {
            n_virtual: cfg.n_virtual,
            degree: cfg.degree,
            node_mtbf: cfg.node_mtbf,
            checkpoint_interval: cfg.checkpoint_interval,
            restart_cost: cfg.restart_cost,
            seed: cfg.seed,
            ranks,
            mean_alpha,
            critical_path_alpha,
            commit_latency_mean,
            commits,
            attempts: report.attempts,
            failures: report.failures,
            masked_failures: report.masked_failures,
            respawns: report.respawns,
            heal_latency_seconds: report.heal_latency_seconds,
            recovered_voting_seconds: report.recovered_voting_seconds,
            heal_stall_seconds,
            repair_rate,
            t_red,
            t_app,
            lambda,
            system_mtbf,
            t_lost_work,
            t_restart_rework,
            predicted_total,
            observed_total,
            relative_error,
        })
    }

    /// Renders the report as a self-describing JSON document
    /// (`"schema": "redcr-model-validation/1"`). Written by hand — the
    /// workspace vendors no JSON library; finite floats use Rust's
    /// shortest round-trip `Display`, non-finite values become `null`.
    pub fn to_json(&self) -> String {
        fn num(out: &mut String, x: f64) {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        let mut o = String::with_capacity(1024);
        o.push_str("{\n  \"schema\": \"redcr-model-validation/1\",\n  \"config\": {");
        let _ = write!(o, "\"n_virtual\": {}, \"degree\": ", self.n_virtual);
        num(&mut o, self.degree);
        o.push_str(", \"node_mtbf\": ");
        num(&mut o, self.node_mtbf);
        o.push_str(", \"checkpoint_interval\": ");
        num(&mut o, self.checkpoint_interval);
        o.push_str(", \"restart_cost\": ");
        num(&mut o, self.restart_cost);
        let _ = write!(o, ", \"seed\": {}}},\n  \"measured\": {{\n    \"ranks\": [", self.seed);
        for (i, r) in self.ranks.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            let _ = write!(o, "\n      {{\"rank\": {}, \"alpha\": ", r.rank);
            num(&mut o, r.alpha);
            o.push_str(", \"busy\": ");
            num(&mut o, r.busy);
            o.push_str(", \"comm\": ");
            num(&mut o, r.comm);
            let _ = write!(o, ", \"replicas\": {}}}", r.replicas);
        }
        o.push_str("\n    ],\n    \"mean_alpha\": ");
        num(&mut o, self.mean_alpha);
        o.push_str(",\n    \"critical_path_alpha\": ");
        num(&mut o, self.critical_path_alpha);
        o.push_str(",\n    \"commit_latency_mean\": ");
        num(&mut o, self.commit_latency_mean);
        let _ = write!(
            o,
            ",\n    \"commits\": {}, \"attempts\": {}, \"failures\": {}, \"masked_failures\": {},",
            self.commits, self.attempts, self.failures, self.masked_failures
        );
        let _ = write!(o, "\n    \"respawns\": {}, \"heal_latency_seconds\": ", self.respawns);
        num(&mut o, self.heal_latency_seconds);
        o.push_str(", \"recovered_voting_seconds\": ");
        num(&mut o, self.recovered_voting_seconds);
        o.push_str(", \"heal_stall_seconds\": ");
        num(&mut o, self.heal_stall_seconds);
        o.push_str(",\n    \"observed_total\": ");
        num(&mut o, self.observed_total);
        o.push_str("\n  },\n  \"model\": {\n    \"t_red\": ");
        num(&mut o, self.t_red);
        o.push_str(",\n    \"t_app\": ");
        num(&mut o, self.t_app);
        o.push_str(",\n    \"repair_rate\": ");
        num(&mut o, self.repair_rate);
        o.push_str(",\n    \"lambda\": ");
        num(&mut o, self.lambda);
        o.push_str(",\n    \"system_mtbf\": ");
        num(&mut o, self.system_mtbf);
        o.push_str(",\n    \"t_lost_work\": ");
        num(&mut o, self.t_lost_work);
        o.push_str(",\n    \"t_restart_rework\": ");
        num(&mut o, self.t_restart_rework);
        o.push_str(",\n    \"predicted_total\": ");
        num(&mut o, self.predicted_total);
        o.push_str("\n  },\n  \"relative_error\": ");
        num(&mut o, self.relative_error);
        o.push_str("\n}\n");
        o
    }
}

impl fmt::Display for ModelValidation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model validation: N={} r={} θ={:.3e} s δ={:.3} s",
            self.n_virtual, self.degree, self.node_mtbf, self.checkpoint_interval
        )?;
        writeln!(
            f,
            "  measured : ᾱ={:.4}, c={:.4} s, {} commits, {} attempts ({} failures, {} masked)",
            self.mean_alpha,
            self.commit_latency_mean,
            self.commits,
            self.attempts,
            self.failures,
            self.masked_failures
        )?;
        if self.respawns > 0 {
            writeln!(
                f,
                "  healing  : {} respawns, μ={:.3e}/s, stall {:.3} s, recovered {:.3} s",
                self.respawns,
                self.repair_rate,
                self.heal_stall_seconds,
                self.recovered_voting_seconds
            )?;
        }
        writeln!(
            f,
            "  model    : t_red={:.3} s, t_app={:.3} s, λ={:.3e}/s, t_RR={:.3} s",
            self.t_red, self.t_app, self.lambda, self.t_restart_rework
        )?;
        write!(
            f,
            "  predicted {:.3} s vs observed {:.3} s → relative error {:+.2}%",
            self.predicted_total,
            self.observed_total,
            self.relative_error * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcr_fault::FailureTrace;
    use redcr_mpi::trace::{Event, Trace};
    use redcr_red::stats::StatsSnapshot;

    fn ev(time: f64, rank: Option<u32>, kind: EventKind) -> Event {
        Event { time, rank, kind }
    }

    fn report_with(trace: Option<Trace>, total: f64) -> ExecutionReport<()> {
        ExecutionReport {
            total_virtual_time: total,
            attempts: 1,
            failures: 0,
            masked_failures: 0,
            degraded_sphere_seconds: 0.0,
            checkpoints_committed: 1,
            respawns: 0,
            heal_latency_seconds: 0.0,
            recovered_voting_seconds: 0.0,
            replication: StatsSnapshot::default(),
            physical_messages: 0,
            physical_bytes: 0,
            n_physical: 4,
            node_seconds: 0.0,
            failure_trace: FailureTrace::new(),
            trace,
            metrics: None,
            profile: None,
            final_states: vec![],
        }
    }

    fn traced_run() -> Trace {
        Trace {
            events: vec![
                ev(0.0, Some(0), EventKind::Topology { sphere: 0, replica: 0 }),
                ev(0.0, Some(1), EventKind::Topology { sphere: 0, replica: 1 }),
                ev(0.0, None, EventKind::AttemptStart { attempt: 0 }),
                ev(2.0, Some(0), EventKind::CheckpointBegin { seq: 0 }),
                ev(2.5, Some(0), EventKind::CheckpointCommit { seq: 0, bytes: 64, cost: 0.5 }),
                ev(10.0, Some(0), EventKind::RankFinish { busy: 8.0, comm: 2.0 }),
                ev(10.0, Some(1), EventKind::RankFinish { busy: 8.0, comm: 2.0 }),
                ev(
                    10.0,
                    None,
                    EventKind::AttemptEnd {
                        attempt: 0,
                        completed: true,
                        rel_end: 10.0,
                        rel_failure: f64::INFINITY,
                        killer: None,
                    },
                ),
            ],
        }
    }

    fn cfg() -> ExecutorConfig {
        ExecutorConfig::new(1, 2.0)
            .node_mtbf(1e6)
            .checkpoint_interval(5.0)
            .checkpoint_cost(0.5)
            .restart_cost(1.0)
    }

    #[test]
    fn alphas_match_analyzer_verbatim() {
        let trace = traced_run();
        let analysis = Analysis::analyze(&trace).unwrap();
        let report = report_with(Some(trace), 10.0);
        let v = ModelValidation::from_run(&cfg(), &report).unwrap();
        let expected = &analysis.attempts.last().unwrap().alphas;
        assert_eq!(v.ranks.len(), expected.len());
        for (m, &(rank, alpha)) in v.ranks.iter().zip(expected) {
            assert_eq!(m.rank, rank);
            assert_eq!(m.alpha.to_bits(), alpha.to_bits(), "α must be verbatim");
            assert_eq!(m.replicas, 2);
        }
    }

    #[test]
    fn failure_free_prediction_is_close() {
        let report = report_with(Some(traced_run()), 10.0);
        let v = ModelValidation::from_run(&cfg(), &report).unwrap();
        // Eq. 1 on the de-amplified split reproduces busy + comm = 10.
        assert!((v.t_red - 10.0).abs() < 1e-12, "{}", v.t_red);
        assert!((v.commit_latency_mean - 0.5).abs() < 1e-12);
        // t_app = 10 − 1×0.5; predicted = t_app·(1 + c/δ)/(1 − λ·t_RR) ≈ 10.45.
        assert!((v.t_app - 9.5).abs() < 1e-12);
        assert!(v.relative_error.abs() < 0.2, "{}", v.relative_error);
        assert!(v.lambda > 0.0 && v.lambda < 1e-3);
    }

    #[test]
    fn untraced_run_is_rejected() {
        let report = report_with(None, 10.0);
        let err = ModelValidation::from_run(&cfg(), &report).unwrap_err();
        assert_eq!(err, ValidationError::NoTrace);
    }

    #[test]
    fn incomplete_run_is_rejected() {
        let trace = Trace {
            events: vec![
                ev(0.0, None, EventKind::AttemptStart { attempt: 0 }),
                ev(
                    1.0,
                    None,
                    EventKind::AttemptEnd {
                        attempt: 0,
                        completed: false,
                        rel_end: 1.0,
                        rel_failure: 1.0,
                        killer: Some(0),
                    },
                ),
            ],
        };
        let err = ModelValidation::from_run(&cfg(), &report_with(Some(trace), 1.0)).unwrap_err();
        assert_eq!(err, ValidationError::NoCompletedAttempt);
    }

    #[test]
    fn json_sidecar_is_self_describing() {
        let report = report_with(Some(traced_run()), 10.0);
        let v = ModelValidation::from_run(&cfg(), &report).unwrap();
        let json = v.to_json();
        assert!(json.contains("\"schema\": \"redcr-model-validation/1\""));
        assert!(json.contains("\"relative_error\": "));
        assert!(json.contains("\"alpha\": 0.2"));
        // An infinite field serializes as null.
        let mut inf = v.clone();
        inf.node_mtbf = f64::INFINITY;
        assert!(inf.to_json().contains("\"node_mtbf\": null"));
    }
}
