//! Executor configuration.

use redcr_ckpt::coordinator::CoordinationProtocol;
use redcr_mpi::CostModel;
use redcr_red::{HealPolicy, VotingMode};

/// Full configuration of a resilient execution. All durations are
/// **virtual seconds** (the executor lives at runtime granularity; the
/// hour-based planner output converts via `* 3600`).
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Number of application (virtual) processes.
    pub n_virtual: u64,
    /// Redundancy degree `r` (possibly fractional).
    pub degree: f64,
    /// Per-physical-process MTBF, virtual seconds.
    pub node_mtbf: f64,
    /// Checkpoint interval `δ`, virtual seconds.
    pub checkpoint_interval: f64,
    /// Checkpoint write cost `c`, virtual seconds (fixed per checkpoint).
    pub checkpoint_cost: f64,
    /// Restart cost `R`, virtual seconds (fixed per restart).
    pub restart_cost: f64,
    /// Communication cost model of the runtime.
    pub comm_cost: CostModel,
    /// Replication voting mode.
    pub voting: VotingMode,
    /// Checkpoint coordination protocol.
    pub protocol: CoordinationProtocol,
    /// Failure injector seed.
    pub seed: u64,
    /// Attempt budget before giving up.
    pub max_attempts: u64,
    /// Livelock guard: abort with [`CoreError::NoProgress`] after this many
    /// *consecutive* attempts that committed no new checkpoint.
    ///
    /// [`CoreError::NoProgress`]: crate::CoreError::NoProgress
    pub no_progress_limit: u64,
    /// Whether to run the flight recorder: when set, every layer emits
    /// virtual-time events and the report carries the full
    /// [`Trace`](redcr_mpi::trace::Trace) in
    /// [`ExecutionReport::trace`](crate::ExecutionReport::trace).
    pub tracing: bool,
    /// Whether to run the metrics plane: when set, every layer counts its
    /// operations into a virtual-time
    /// [`MetricsRegistry`](redcr_mpi::metrics::MetricsRegistry) and the
    /// report carries totals plus the scraped time series in
    /// [`ExecutionReport::metrics`](crate::ExecutionReport::metrics).
    /// Metrics never advance a virtual clock, so enabling them does not
    /// change any reported total.
    pub metrics: bool,
    /// Virtual-second cadence of the metrics scraper (counter time-series
    /// grid spacing). Ignored unless [`metrics`](Self::metrics) is set.
    pub scrape_interval: f64,
    /// Whether to run the wall-clock self-profiler: when set, every layer
    /// times its hot paths (mailbox waits and parks, checkpoint
    /// encode/commit, voting, executor segments) into a
    /// [`Profiler`](redcr_mpi::prof::Profiler) and the report carries the
    /// drained result in
    /// [`ExecutionReport::profile`](crate::ExecutionReport::profile).
    /// The profiler reads the *host* clock only and never advances a
    /// virtual clock, so enabling it leaves every virtual-time total and
    /// trace bit-identical — it watches the simulator, not the simulated
    /// machine.
    pub profiling: bool,
    /// Self-healing policy: whether (and when) dead replicas are respawned
    /// mid-attempt instead of leaving their sphere degraded for the rest of
    /// the run. [`HealPolicy::Never`] reproduces the legacy fault path
    /// bit for bit.
    pub heal_policy: HealPolicy,
    /// Modeled heartbeat period of the failure detector, virtual seconds.
    /// Ignored unless [`heal_policy`](Self::heal_policy) heals.
    pub heartbeat_period: f64,
    /// Suspicion timeout after the last heartbeat, virtual seconds. Values
    /// below the period are clamped up to it, which guarantees no false
    /// suspicion of a live replica.
    pub suspicion_timeout: f64,
    /// Fixed cost of allocating and booting a replacement process,
    /// virtual seconds per heal cycle.
    pub respawn_cost: f64,
    /// Modeled state-transfer cost, virtual seconds per serialized
    /// checkpoint-image byte shipped from the donor replica.
    pub transfer_cost_per_byte: f64,
    /// Scheduler worker threads driving the rank coroutines, or `None` to
    /// defer to the `REDCR_WORKERS` environment variable and then to
    /// `std::thread::available_parallelism`. Purely a host-side throughput
    /// knob: every virtual-time total and trace is bit-identical at any
    /// worker count.
    pub workers: Option<usize>,
}

impl ExecutorConfig {
    /// A configuration with sensible defaults: all-to-all voting, bookmark
    /// coordination, zero-cost communication, seed 0, 10 000 attempts.
    pub fn new(n_virtual: u64, degree: f64) -> Self {
        ExecutorConfig {
            n_virtual,
            degree,
            node_mtbf: f64::INFINITY,
            checkpoint_interval: f64::INFINITY,
            checkpoint_cost: 0.0,
            restart_cost: 0.0,
            comm_cost: CostModel::zero(),
            voting: VotingMode::AllToAll,
            protocol: CoordinationProtocol::Bookmark,
            seed: 0,
            max_attempts: 10_000,
            no_progress_limit: 64,
            tracing: false,
            metrics: false,
            scrape_interval: 1.0,
            profiling: false,
            heal_policy: HealPolicy::Never,
            heartbeat_period: 1.0,
            suspicion_timeout: 1.0,
            respawn_cost: 0.0,
            transfer_cost_per_byte: 0.0,
            workers: None,
        }
    }

    /// Pins the scheduler worker count (overrides `REDCR_WORKERS` and the
    /// host-parallelism default). Worker count never changes results, only
    /// how many OS threads drive the rank coroutines.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the per-process MTBF (virtual seconds).
    pub fn node_mtbf(mut self, seconds: f64) -> Self {
        self.node_mtbf = seconds;
        self
    }

    /// Sets the checkpoint interval (virtual seconds).
    pub fn checkpoint_interval(mut self, seconds: f64) -> Self {
        self.checkpoint_interval = seconds;
        self
    }

    /// Sets the fixed checkpoint cost `c` (virtual seconds).
    pub fn checkpoint_cost(mut self, seconds: f64) -> Self {
        self.checkpoint_cost = seconds;
        self
    }

    /// Sets the fixed restart cost `R` (virtual seconds).
    pub fn restart_cost(mut self, seconds: f64) -> Self {
        self.restart_cost = seconds;
        self
    }

    /// Sets the runtime communication cost model.
    pub fn comm_cost(mut self, cost: CostModel) -> Self {
        self.comm_cost = cost;
        self
    }

    /// Sets the replication voting mode.
    pub fn voting(mut self, voting: VotingMode) -> Self {
        self.voting = voting;
        self
    }

    /// Sets the checkpoint coordination protocol.
    pub fn protocol(mut self, protocol: CoordinationProtocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the failure injector seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the attempt budget.
    pub fn max_attempts(mut self, attempts: u64) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Sets the livelock guard: consecutive checkpoint-free attempts
    /// tolerated before giving up.
    pub fn no_progress_limit(mut self, attempts: u64) -> Self {
        self.no_progress_limit = attempts;
        self
    }

    /// Enables (or disables) the flight recorder for this execution.
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Enables (or disables) the metrics plane for this execution.
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = on;
        self
    }

    /// Sets the metrics scraper cadence (virtual seconds per sample).
    pub fn scrape_interval(mut self, seconds: f64) -> Self {
        self.scrape_interval = seconds;
        self
    }

    /// Enables (or disables) the wall-clock self-profiler for this
    /// execution.
    pub fn profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// Sets the self-healing policy.
    pub fn heal_policy(mut self, policy: HealPolicy) -> Self {
        self.heal_policy = policy;
        self
    }

    /// Sets the failure-detector heartbeat period (virtual seconds).
    pub fn heartbeat_period(mut self, seconds: f64) -> Self {
        self.heartbeat_period = seconds;
        self
    }

    /// Sets the failure-detector suspicion timeout (virtual seconds).
    pub fn suspicion_timeout(mut self, seconds: f64) -> Self {
        self.suspicion_timeout = seconds;
        self
    }

    /// Sets the fixed respawn cost per heal cycle (virtual seconds).
    pub fn respawn_cost(mut self, seconds: f64) -> Self {
        self.respawn_cost = seconds;
        self
    }

    /// Sets the modeled transfer cost (virtual seconds per image byte).
    pub fn transfer_cost_per_byte(mut self, seconds: f64) -> Self {
        self.transfer_cost_per_byte = seconds;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let cfg = ExecutorConfig::new(8, 2.0)
            .node_mtbf(3600.0)
            .checkpoint_interval(60.0)
            .checkpoint_cost(2.0)
            .restart_cost(5.0)
            .seed(7)
            .max_attempts(100)
            .heal_policy(HealPolicy::OnDegrade)
            .heartbeat_period(0.5)
            .suspicion_timeout(2.0)
            .respawn_cost(1.5)
            .transfer_cost_per_byte(1e-6);
        assert_eq!(cfg.n_virtual, 8);
        assert_eq!(cfg.degree, 2.0);
        assert_eq!(cfg.node_mtbf, 3600.0);
        assert_eq!(cfg.checkpoint_interval, 60.0);
        assert_eq!(cfg.max_attempts, 100);
        assert_eq!(cfg.heal_policy, HealPolicy::OnDegrade);
        assert_eq!(cfg.heartbeat_period, 0.5);
        assert_eq!(cfg.suspicion_timeout, 2.0);
        assert_eq!(cfg.respawn_cost, 1.5);
        assert_eq!(cfg.transfer_cost_per_byte, 1e-6);
    }

    #[test]
    fn heal_defaults_to_never() {
        let cfg = ExecutorConfig::new(4, 2.0);
        assert_eq!(cfg.heal_policy, HealPolicy::Never);
        assert_eq!(cfg.heartbeat_period, 1.0);
        assert_eq!(cfg.suspicion_timeout, 1.0);
        assert_eq!(cfg.respawn_cost, 0.0);
        assert_eq!(cfg.transfer_cost_per_byte, 0.0);
    }
}
