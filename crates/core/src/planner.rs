//! The configuration planner: the "tuning knob" of the paper's conclusion.
//!
//! Wraps the analytic model's optimal-configuration search in a
//! goal-oriented API: tell the planner about the application (base time,
//! communication fraction), the machine (process count, node MTBF,
//! checkpoint and restart costs) and the objective (fastest wallclock,
//! fewest node-hours, or a weighted blend) and it recommends the
//! redundancy degree and checkpoint interval.

use serde::{Deserialize, Serialize};

use redcr_model::combined::{CombinedConfig, CombinedOutcome, IntervalPolicy};
use redcr_model::optimizer::{optimal_by_cost, CostWeights, RGrid};
use redcr_model::reliability::Approximation;

use crate::config::ExecutorConfig;
use crate::Result;

/// A recommended configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// Recommended redundancy degree `r`.
    pub degree: f64,
    /// Recommended checkpoint interval `δ`, hours.
    pub checkpoint_interval: f64,
    /// The model's prediction for this configuration.
    pub predicted: CombinedOutcome,
    /// The `(degree, predicted total time)` sweep behind the choice
    /// (`None` entries diverged).
    pub sweep: Vec<(f64, Option<f64>)>,
}

impl Plan {
    /// Converts the plan into a runnable [`ExecutorConfig`], translating the
    /// model's hours into the executor's virtual seconds with an optional
    /// time compression factor: `scale = 3600.0` runs the plan at full
    /// fidelity (1 model hour = 3600 virtual seconds); smaller scales
    /// shrink every duration proportionally so a 128-hour plan can be
    /// exercised in a quick simulation without changing the *ratios* the
    /// model cares about (δ/Θ, c/δ, R/Θ).
    ///
    /// # Panics
    ///
    /// Panics if `seconds_per_model_hour` is not positive.
    pub fn to_executor_config(&self, seconds_per_model_hour: f64) -> ExecutorConfig {
        assert!(
            seconds_per_model_hour > 0.0 && seconds_per_model_hour.is_finite(),
            "scale must be positive"
        );
        let s = seconds_per_model_hour;
        let cfg = &self.predicted.config;
        ExecutorConfig::new(cfg.n_virtual, self.degree)
            .node_mtbf(cfg.node_mtbf * s)
            .checkpoint_interval(self.checkpoint_interval * s)
            .checkpoint_cost(cfg.checkpoint_cost * s)
            .restart_cost(cfg.restart_cost * s)
    }
}

/// Builder-style planner.
#[derive(Debug, Clone)]
pub struct Planner {
    n_virtual: Option<u64>,
    base_time: Option<f64>,
    node_mtbf: Option<f64>,
    alpha: f64,
    checkpoint_cost: Option<f64>,
    restart_cost: Option<f64>,
    interval_policy: IntervalPolicy,
    approximation: Approximation,
    weights: CostWeights,
    grid: RGrid,
}

impl Default for Planner {
    fn default() -> Self {
        Self::new()
    }
}

impl Planner {
    /// A planner with the paper's defaults: Daly intervals, linear failure
    /// approximation, pure wallclock objective, quarter-step degree grid.
    pub fn new() -> Self {
        Planner {
            n_virtual: None,
            base_time: None,
            node_mtbf: None,
            alpha: 0.0,
            checkpoint_cost: None,
            restart_cost: None,
            interval_policy: IntervalPolicy::Daly,
            approximation: Approximation::default(),
            weights: CostWeights::time_only(),
            grid: RGrid::quarter_steps(),
        }
    }

    /// Number of application (virtual) processes `N` (required).
    pub fn virtual_processes(mut self, n: u64) -> Self {
        self.n_virtual = Some(n);
        self
    }

    /// Failure-free base time `t`, hours (required).
    pub fn base_time_hours(mut self, t: f64) -> Self {
        self.base_time = Some(t);
        self
    }

    /// Per-node MTBF `θ`, hours (required).
    pub fn node_mtbf_hours(mut self, theta: f64) -> Self {
        self.node_mtbf = Some(theta);
        self
    }

    /// Communication/computation ratio `α` (default 0).
    pub fn comm_fraction(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Checkpoint cost `c`, hours (required).
    pub fn checkpoint_cost_hours(mut self, c: f64) -> Self {
        self.checkpoint_cost = Some(c);
        self
    }

    /// Restart cost `R`, hours (required).
    pub fn restart_cost_hours(mut self, r: f64) -> Self {
        self.restart_cost = Some(r);
        self
    }

    /// Checkpoint-interval policy (default: Daly's Eq. 15).
    pub fn interval_policy(mut self, policy: IntervalPolicy) -> Self {
        self.interval_policy = policy;
        self
    }

    /// Objective weights (default: wallclock only).
    pub fn objective(mut self, weights: CostWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Candidate degrees to search (default: 1x–3x in 0.25 steps).
    pub fn degree_grid(mut self, grid: RGrid) -> Self {
        self.grid = grid;
        self
    }

    /// Builds the underlying model configuration at degree 1 (exposed so
    /// executors and benches can reuse the exact same inputs).
    ///
    /// # Errors
    ///
    /// Returns a model error if required fields are missing or invalid.
    pub fn to_config(&self) -> Result<CombinedConfig> {
        let mut builder = CombinedConfig::builder();
        if let Some(n) = self.n_virtual {
            builder.virtual_processes(n);
        }
        if let Some(t) = self.base_time {
            builder.base_time_hours(t);
        }
        if let Some(theta) = self.node_mtbf {
            builder.node_mtbf_hours(theta);
        }
        if let Some(c) = self.checkpoint_cost {
            builder.checkpoint_cost_hours(c);
        }
        if let Some(r) = self.restart_cost {
            builder.restart_cost_hours(r);
        }
        builder
            .comm_fraction(self.alpha)
            .interval_policy(self.interval_policy)
            .approximation(self.approximation);
        Ok(builder.build()?)
    }

    /// Recommends a configuration.
    ///
    /// # Errors
    ///
    /// Returns a model error for invalid inputs or if every candidate
    /// degree diverges (the job cannot finish on this machine at all).
    pub fn recommend(&self) -> Result<Plan> {
        let cfg = self.to_config()?;
        let best = optimal_by_cost(&cfg, &self.grid, &self.weights)?;
        Ok(Plan {
            degree: best.degree,
            checkpoint_interval: best.outcome.checkpoint_interval,
            predicted: best.outcome,
            sweep: best.sweep,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcr_model::units;

    fn planner() -> Planner {
        Planner::new()
            .virtual_processes(50_000)
            .base_time_hours(128.0)
            .node_mtbf_hours(units::hours_from_years(5.0))
            .comm_fraction(0.2)
            .checkpoint_cost_hours(units::hours_from_mins(10.0))
            .restart_cost_hours(units::hours_from_mins(30.0))
    }

    #[test]
    fn recommends_dual_redundancy_at_scale() {
        let plan = planner().recommend().unwrap();
        assert!(plan.degree >= 1.75, "sweep: {:?}", plan.sweep);
        assert!(plan.checkpoint_interval > 0.0);
        assert_eq!(plan.sweep.len(), 9);
    }

    #[test]
    fn small_scale_prefers_no_redundancy() {
        let plan = planner().virtual_processes(32).recommend().unwrap();
        assert_eq!(plan.degree, 1.0, "sweep: {:?}", plan.sweep);
    }

    #[test]
    fn resource_objective_lowers_degree() {
        let time_plan = planner().recommend().unwrap();
        let resource_plan = planner().objective(CostWeights::resources_only()).recommend().unwrap();
        assert!(resource_plan.degree <= time_plan.degree);
    }

    #[test]
    fn missing_fields_error() {
        let err = Planner::new().recommend().unwrap_err();
        assert!(matches!(err, crate::CoreError::Model(_)));
    }

    #[test]
    fn plan_converts_to_executor_config() {
        let plan = Planner::new()
            .virtual_processes(8)
            .base_time_hours(1.0)
            .node_mtbf_hours(100.0)
            .checkpoint_cost_hours(0.05)
            .restart_cost_hours(0.1)
            .recommend()
            .unwrap();
        let cfg = plan.to_executor_config(3600.0);
        assert_eq!(cfg.n_virtual, 8);
        assert_eq!(cfg.degree, plan.degree);
        assert!((cfg.node_mtbf - 360_000.0).abs() < 1e-6);
        assert!((cfg.checkpoint_cost - 180.0).abs() < 1e-6);
        // Compressed scale preserves ratios.
        let fast = plan.to_executor_config(36.0);
        let ratio_full = cfg.checkpoint_interval / cfg.node_mtbf;
        let ratio_fast = fast.checkpoint_interval / fast.node_mtbf;
        assert!((ratio_full - ratio_fast).abs() < 1e-12);
    }

    #[test]
    fn config_round_trip_matches_prediction() {
        let p = planner();
        let plan = p.recommend().unwrap();
        let cfg = p.to_config().unwrap().with_degree(plan.degree);
        let outcome = cfg.evaluate().unwrap();
        assert!((outcome.total_time - plan.predicted.total_time).abs() < 1e-9);
    }
}
