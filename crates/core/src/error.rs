use std::error::Error;
use std::fmt;

/// Errors from planning or resilient execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A model-level error (invalid parameters, divergent configuration).
    Model(redcr_model::ModelError),
    /// A runtime error that was not a planned fail-stop abort.
    Runtime(redcr_mpi::MpiError),
    /// A checkpoint/restore error.
    Checkpoint(redcr_ckpt::CkptError),
    /// The job did not finish within the configured attempt budget.
    AttemptsExhausted {
        /// Attempts performed.
        attempts: u64,
    },
    /// Livelock guard: the configured number of consecutive attempts went
    /// by without a single new checkpoint being committed — the job is
    /// restarting in place and will never finish.
    NoProgress {
        /// Attempts performed when the guard fired.
        attempts: u64,
    },
    /// Live replicas of a virtual rank finished the run disagreeing on how
    /// many checkpoints were committed. The commit barrier makes the count
    /// a collective property, so divergence means the run is corrupt and
    /// must not be silently papered over with a `max`.
    CheckpointDivergence {
        /// The virtual rank whose replicas disagree (or the first rank
        /// whose agreed count differs from the rest of the job).
        virtual_rank: u32,
        /// The committed-checkpoint counts observed, in replica order.
        counts: Vec<u64>,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Runtime(e) => write!(f, "runtime error: {e}"),
            CoreError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            CoreError::AttemptsExhausted { attempts } => {
                write!(f, "job did not complete within {attempts} attempts")
            }
            CoreError::NoProgress { attempts } => {
                write!(
                    f,
                    "no checkpoint progress over consecutive restarts \
                     (livelock detected after {attempts} attempts)"
                )
            }
            CoreError::CheckpointDivergence { virtual_rank, counts } => {
                write!(
                    f,
                    "replicas of virtual rank {virtual_rank} disagree on the \
                     committed checkpoint count: {counts:?}"
                )
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Model(e) => Some(e),
            CoreError::Runtime(e) => Some(e),
            CoreError::Checkpoint(e) => Some(e),
            CoreError::AttemptsExhausted { .. }
            | CoreError::NoProgress { .. }
            | CoreError::CheckpointDivergence { .. } => None,
        }
    }
}

impl From<redcr_model::ModelError> for CoreError {
    fn from(e: redcr_model::ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<redcr_mpi::MpiError> for CoreError {
    fn from(e: redcr_mpi::MpiError) -> Self {
        CoreError::Runtime(e)
    }
}

impl From<redcr_ckpt::CkptError> for CoreError {
    fn from(e: redcr_ckpt::CkptError) -> Self {
        CoreError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = redcr_model::ModelError::NoSolution { what: "x" }.into();
        assert!(e.to_string().contains("model"));
        let e: CoreError =
            redcr_mpi::MpiError::Aborted { rank: redcr_mpi::Rank::new(0), at: 1.0 }.into();
        assert!(e.source().is_some());
        let e = CoreError::AttemptsExhausted { attempts: 3 };
        assert!(e.to_string().contains('3'));
    }
}
