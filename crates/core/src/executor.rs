//! The resilient executor: runs a steppable application under combined
//! replication + coordinated checkpointing + fault injection, restarting
//! from the last checkpoint after every sphere failure, until the
//! application completes.

use std::sync::Arc;

use serde::de::DeserializeOwned;
use serde::Serialize;

use redcr_ckpt::coordinator::CheckpointCoordinator;
use redcr_ckpt::restart;
use redcr_ckpt::storage::{MemoryStorage, StableStorage, StorageCostModel};
use redcr_ckpt::CountingComm;
use redcr_fault::{FailureInjector, ReplicaGroups};
use redcr_model::partition::RedundancyPartition;
use redcr_mpi::collectives::ReduceOp;
use redcr_mpi::metrics::{CounterKey, HistKey, MetricsRegistry};
use redcr_mpi::trace::{Collector, EventKind};
use redcr_mpi::{Communicator, MpiError};
use redcr_red::ReplicatedWorld;

use crate::config::ExecutorConfig;
use crate::report::ExecutionReport;
use crate::{CoreError, Result};

/// An application the executor can run, checkpoint and restart.
///
/// The three methods see the world through any [`Communicator`], so the
/// same implementation runs replicated or plain. `State` is everything that
/// must survive a restart.
pub trait ResilientApp: Sync {
    /// The checkpointable state.
    type State: Serialize + DeserializeOwned + Send + 'static;

    /// Builds the initial state (collective).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    fn init<C: Communicator>(&self, comm: &C) -> redcr_mpi::Result<Self::State>;

    /// Advances the application by one step (collective).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    fn step<C: Communicator>(&self, comm: &C, state: &mut Self::State) -> redcr_mpi::Result<()>;

    /// Whether the application has finished.
    fn is_done(&self, state: &Self::State) -> bool;
}

/// Runs [`ResilientApp`]s to completion under failures.
#[derive(Debug)]
pub struct ResilientExecutor {
    config: ExecutorConfig,
    storage: Arc<dyn StableStorage>,
}

impl ResilientExecutor {
    /// An executor with in-memory stable storage.
    pub fn new(config: ExecutorConfig) -> Self {
        ResilientExecutor { config, storage: Arc::new(MemoryStorage::new()) }
    }

    /// An executor writing checkpoints to the given storage backend.
    pub fn with_storage(config: ExecutorConfig, storage: Arc<dyn StableStorage>) -> Self {
        ResilientExecutor { config, storage }
    }

    /// The configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Runs `app` to completion: plans per-process failure times per
    /// attempt, injects them **live** into the replicated runtime (each
    /// process fail-stops at its sampled time), checkpoints at the
    /// configured interval, and restarts from the last complete checkpoint
    /// whenever some sphere loses its *last* replica. Individual deaths
    /// that redundancy masks do not restart anything — they only show up
    /// in the report as [`masked_failures`] and degraded running time.
    ///
    /// [`masked_failures`]: ExecutionReport::masked_failures
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::AttemptsExhausted`] if the attempt budget runs
    /// out, [`CoreError::NoProgress`] if the livelock guard fires, or the
    /// underlying model/runtime/checkpoint error.
    pub fn run<A: ResilientApp>(&self, app: &A) -> Result<ExecutionReport<A::State>> {
        let cfg = &self.config;
        let partition = RedundancyPartition::new(cfg.n_virtual, cfg.degree)?;
        let counts: Vec<usize> =
            (0..partition.n_virtual()).map(|v| partition.replicas_of(v) as usize).collect();
        let groups = ReplicaGroups::from_counts(&counts);
        let mut injector = FailureInjector::new(groups, cfg.node_mtbf, cfg.seed);
        let storage_cost = StorageCostModel::fixed(cfg.checkpoint_cost, cfg.restart_cost);
        let coordinator = CheckpointCoordinator::new(Arc::clone(&self.storage))
            .cost_model(storage_cost)
            .protocol(cfg.protocol);

        let registry = cfg.metrics.then(|| Arc::new(MetricsRegistry::new()));
        let collector = cfg.tracing.then(|| Arc::new(Collector::new()));
        if let Some(c) = &collector {
            for (v, members) in injector.groups().iter().enumerate() {
                for (replica, &p) in members.iter().enumerate() {
                    c.record(
                        0.0,
                        Some(p as u32),
                        EventKind::Topology { sphere: v as u32, replica: replica as u32 },
                    );
                }
            }
        }

        let mut resume_time = 0.0f64;
        let mut attempts = 0u64;
        let mut failures = 0u64;
        let mut masked_failures = 0u64;
        let mut degraded_sphere_seconds = 0.0f64;
        let mut stagnant = 0u64;
        let mut last_committed: Option<u64> = None;
        let mut stats = redcr_red::stats::StatsSnapshot::default();
        let mut physical_messages = 0u64;
        let mut physical_bytes = 0u64;

        loop {
            if attempts >= cfg.max_attempts {
                return Err(CoreError::AttemptsExhausted { attempts });
            }
            attempts += 1;
            let plan = injector.plan_attempt(resume_time);
            let first_attempt = attempts == 1;
            if let Some(c) = &collector {
                c.record(plan.start_time, None, EventKind::AttemptStart { attempt: plan.attempt });
                for (p, &d) in plan.schedule.death_times.iter().enumerate() {
                    if d.is_finite() {
                        c.record(
                            plan.start_time + d,
                            Some(p as u32),
                            EventKind::Injected { rel: d },
                        );
                    }
                }
            }

            let coordinator = &coordinator;
            let storage = &self.storage;
            let interval = cfg.checkpoint_interval;
            let restart_cost = cfg.restart_cost;
            let app_ref = app;

            let mut builder = ReplicatedWorld::builder(cfg.n_virtual, cfg.degree)?
                .voting_mode(cfg.voting)
                .cost_model(cfg.comm_cost)
                .death_times(plan.absolute_death_times())
                .start_time(resume_time);
            if let Some(c) = &collector {
                builder = builder.trace(Arc::clone(c));
            }
            if let Some(r) = &registry {
                builder = builder.metrics(Arc::clone(r));
            }
            let report = builder.run(move |comm| {
                let n_ranks = comm.size() as u32;
                let latest =
                    restart::latest_complete(storage.as_ref(), n_ranks).map_err(MpiError::from)?;
                let (mut state, mut next_seq, counting) = match latest {
                    Some(seq) => {
                        // Restore: charges the read cost R to virtual
                        // time and primes the channel state.
                        let restored: redcr_ckpt::coordinator::Restored<A::State> =
                            coordinator.restore(comm, seq).map_err(MpiError::from)?;
                        let counting = CountingComm::with_restored_channel(comm, restored.channel);
                        (restored.state, seq + 1, counting)
                    }
                    None => {
                        if !first_attempt {
                            // Restarting from scratch still pays the
                            // restart overhead (process re-launch).
                            comm.compute(restart_cost)?;
                        }
                        let counting = CountingComm::new(comm);
                        let state = app_ref.init(&counting)?;
                        (state, 0, counting)
                    }
                };

                let mut checkpoints = 0u64;
                let mut next_ckpt = comm.now() + interval;
                loop {
                    app_ref.step(&counting, &mut state)?;
                    if app_ref.is_done(&state) {
                        break;
                    }
                    // Collective clock agreement so that every rank and
                    // replica takes the checkpoint decision together.
                    let now_max = counting.allreduce_f64(&[counting.now()], ReduceOp::Max)?[0];
                    if now_max >= next_ckpt {
                        coordinator
                            .checkpoint(&counting, next_seq, &state)
                            .map_err(MpiError::from)?;
                        next_seq += 1;
                        checkpoints += 1;
                        next_ckpt = now_max + interval;
                    }
                }
                Ok((state, checkpoints))
            })?;

            stats = stats.add(&report.stats);
            physical_messages += report.physical_messages;
            physical_bytes += report.physical_bytes;

            // Any non-fail-stop error is a genuine bug, never a planned
            // death (Dead/DeadPeer/SphereDead/Aborted are all expected
            // outcomes of live injection).
            for r in &report.results {
                if let Err(e) = r {
                    if !e.is_fail_stop() {
                        return Err(CoreError::Runtime(e.clone()));
                    }
                }
            }

            let vmap = report.vmap().clone();
            // Completed iff no job abort was raised and every virtual rank
            // kept at least one live replica to the end. A rank's *primary*
            // may well be `Err(Dead)` — a surviving shadow carries the
            // state then.
            let completed = !report.aborted
                && (0..cfg.n_virtual as u32).all(|v| {
                    vmap.replicas_of(redcr_mpi::Rank::new(v))
                        .iter()
                        .any(|p| report.results[p.index()].is_ok())
                });

            // Where the attempt ended on the virtual clock. On a failure
            // the survivors can be discovered slightly past the sampled
            // sphere-death time (the death materializes at the next
            // operation boundary), so take the max.
            let attempt_end = if completed || !plan.job_failure_time.is_finite() {
                report.max_virtual_time
            } else {
                report.max_virtual_time.max(plan.job_failure_time)
            };
            let end_rel = (attempt_end - plan.start_time).max(0.0);
            let rel_failure = plan.job_failure_time - plan.start_time;
            if let Some(c) = &collector {
                // Carries the exact relative values the accounting below
                // compares, so the trace analyzer reproduces it bit-for-bit.
                c.record(
                    attempt_end,
                    None,
                    EventKind::AttemptEnd {
                        attempt: plan.attempt,
                        completed,
                        rel_end: end_rel,
                        rel_failure,
                        killer: (!completed && rel_failure.is_finite())
                            .then_some(plan.killer_sphere as u32),
                    },
                );
            }

            // Degraded running time: for each sphere that lost a member
            // during the attempt, the span from its first member death to
            // its own death (or the end of the attempt, whichever first).
            // Summed per attempt first, in the same order the trace
            // analyzer uses, so the floating-point totals match bit-for-bit.
            let mut attempt_degraded = 0.0f64;
            for members in injector.groups().iter() {
                let times = members.iter().map(|&p| plan.schedule.death_times[p]);
                let first = times.clone().fold(f64::INFINITY, f64::min);
                if first.is_finite() && first < end_rel {
                    let last = times.fold(f64::NEG_INFINITY, f64::max);
                    attempt_degraded += last.min(end_rel) - first;
                    if let Some(r) = &registry {
                        r.observe(HistKey::DegradedInterval, last.min(end_rel) - first);
                    }
                }
            }
            degraded_sphere_seconds += attempt_degraded;

            if let Some(r) = &registry {
                r.inc(CounterKey::Attempts, attempt_end);
            }

            if !completed {
                // Every process death up to the job failure that was NOT a
                // member of the killer sphere was masked by redundancy.
                failures += 1;
                if rel_failure.is_finite() {
                    let dead = plan.schedule.dead_by(rel_failure).len();
                    let fatal = injector.groups().members(plan.killer_sphere).len();
                    masked_failures += dead.saturating_sub(fatal) as u64;
                    if let Some(r) = &registry {
                        r.add(
                            CounterKey::MaskedFailures,
                            dead.saturating_sub(fatal) as u64,
                            attempt_end,
                        );
                    }
                }
                if let Some(r) = &registry {
                    r.inc(CounterKey::Restarts, attempt_end);
                }
                resume_time = attempt_end;

                // Livelock guard: a restart that found no new checkpoint
                // replays exactly the ground already lost.
                let latest = restart::latest_complete(self.storage.as_ref(), cfg.n_virtual as u32)?;
                if latest == last_committed {
                    stagnant += 1;
                    if stagnant >= cfg.no_progress_limit {
                        return Err(CoreError::NoProgress { attempts });
                    }
                } else {
                    last_committed = latest;
                    stagnant = 0;
                }
                continue;
            }

            // Completed: every death that occurred during the attempt was
            // masked; the planned *job* failure never materialized, so
            // prune its never-observed events from the log.
            masked_failures += plan.schedule.dead_by(end_rel).len() as u64;
            if let Some(r) = &registry {
                r.add(
                    CounterKey::MaskedFailures,
                    plan.schedule.dead_by(end_rel).len() as u64,
                    attempt_end,
                );
            }
            injector.trace_mut().truncate_attempt(plan.attempt, report.max_virtual_time);
            let total_time = report.max_virtual_time;
            let n_physical = report.n_physical;
            let mut results = report.results;
            let mut final_states = Vec::with_capacity(cfg.n_virtual as usize);
            // The checkpoint decision is a collective (allreduce) and the
            // commit is post-barrier, so every live replica of every
            // virtual rank must report the same committed count. Divergence
            // is corruption and must surface, not vanish under a `max`.
            let mut checkpoints_agreed: Option<u64> = None;
            for v in 0..cfg.n_virtual as u32 {
                let mut state = None;
                let mut counts: Vec<u64> = Vec::new();
                for p in vmap.replicas_of(redcr_mpi::Rank::new(v)) {
                    if let Some((s, ckpts)) = results[p.index()].take_ok() {
                        if state.is_none() {
                            state = Some(s);
                        }
                        counts.push(ckpts);
                    }
                }
                let Some(state) = state else {
                    return Err(CoreError::Runtime(MpiError::App {
                        what: format!("no live replica of rank {v} produced a result"),
                    }));
                };
                if counts.windows(2).any(|w| w[0] != w[1]) {
                    return Err(CoreError::CheckpointDivergence { virtual_rank: v, counts });
                }
                match checkpoints_agreed {
                    None => checkpoints_agreed = Some(counts[0]),
                    Some(agreed) if agreed != counts[0] => {
                        return Err(CoreError::CheckpointDivergence {
                            virtual_rank: v,
                            counts: vec![agreed, counts[0]],
                        });
                    }
                    Some(_) => {}
                }
                final_states.push(state);
            }
            let checkpoints_committed = checkpoints_agreed.unwrap_or(0);

            return Ok(ExecutionReport {
                total_virtual_time: total_time,
                attempts,
                failures,
                masked_failures,
                degraded_sphere_seconds,
                checkpoints_committed,
                replication: stats,
                physical_messages,
                physical_bytes,
                n_physical,
                node_seconds: n_physical as f64 * total_time,
                failure_trace: injector.trace().clone(),
                trace: collector.as_ref().map(|c| c.take()),
                metrics: registry.as_ref().map(|r| r.report(cfg.scrape_interval)),
                final_states,
            });
        }
    }
}

/// Small helper: move the Ok value out of a `Result` slot.
trait TakeOk<T> {
    fn take_ok(&mut self) -> Option<T>;
}

impl<T> TakeOk<T> for redcr_mpi::Result<T> {
    fn take_ok(&mut self) -> Option<T> {
        std::mem::replace(self, Err(MpiError::App { what: "result already taken".into() })).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcr_apps::cg::{CgConfig, CgSolver, CgState};

    /// CG wrapped as a resilient app with a fixed iteration target.
    struct CgApp {
        solver: CgSolver,
        iterations: u64,
        /// Virtual seconds of synthetic extra compute per step, to stretch
        /// runtime so checkpoints/failures trigger.
        pad_seconds: f64,
    }

    impl ResilientApp for CgApp {
        type State = CgState;

        fn init<C: Communicator>(&self, comm: &C) -> redcr_mpi::Result<CgState> {
            self.solver.init_state(comm)
        }

        fn step<C: Communicator>(&self, comm: &C, state: &mut CgState) -> redcr_mpi::Result<()> {
            comm.compute(self.pad_seconds)?;
            self.solver.step(comm, state)?;
            Ok(())
        }

        fn is_done(&self, state: &CgState) -> bool {
            state.iteration >= self.iterations
        }
    }

    fn cg_app(n: usize, iterations: u64, pad: f64) -> CgApp {
        CgApp { solver: CgSolver::new(CgConfig::small(n)), iterations, pad_seconds: pad }
    }

    #[test]
    fn failure_free_run_completes_without_restarts() {
        let cfg = ExecutorConfig::new(4, 1.0);
        let report = ResilientExecutor::new(cfg).run(&cg_app(32, 10, 0.0)).unwrap();
        assert_eq!(report.attempts, 1);
        assert_eq!(report.failures, 0);
        assert_eq!(report.final_states.len(), 4);
        for s in &report.final_states {
            assert_eq!(s.iteration, 10);
        }
    }

    #[test]
    fn checkpoints_taken_at_interval() {
        // Each step pads 1.0 virtual second; checkpoint every 2.5 s.
        let cfg = ExecutorConfig::new(2, 1.0).checkpoint_interval(2.5).checkpoint_cost(0.1);
        let report = ResilientExecutor::new(cfg).run(&cg_app(16, 10, 1.0)).unwrap();
        assert_eq!(report.failures, 0);
        assert!(
            report.checkpoints_committed >= 2,
            "expected several checkpoints, got {}",
            report.checkpoints_committed
        );
        // Total time includes checkpoint costs.
        assert!(report.total_virtual_time >= 10.0);
    }

    #[test]
    fn recovers_from_failures_and_finishes() {
        // MTBF of 30 s per process over a ~40 s job with 4 processes at 1x:
        // several failures guaranteed; checkpoints every 5 s keep progress.
        let cfg = ExecutorConfig::new(4, 1.0)
            .node_mtbf(30.0)
            .checkpoint_interval(5.0)
            .checkpoint_cost(0.2)
            .restart_cost(1.0)
            .seed(12);
        let report = ResilientExecutor::new(cfg).run(&cg_app(32, 40, 1.0)).unwrap();
        assert!(report.failures > 0, "expected failures: {report:?}");
        assert_eq!(report.attempts, report.failures + 1);
        for s in &report.final_states {
            assert_eq!(s.iteration, 40, "application completed despite failures");
        }
        // Wallclock exceeds the failure-free time.
        assert!(report.total_virtual_time > 40.0);
        assert!(!report.failure_trace.is_empty());
    }

    #[test]
    fn redundancy_reduces_restarts_at_same_mtbf() {
        let run = |degree: f64, seed: u64| {
            let cfg = ExecutorConfig::new(4, degree)
                .node_mtbf(60.0)
                .checkpoint_interval(8.0)
                .checkpoint_cost(0.2)
                .restart_cost(1.0)
                .seed(seed);
            ResilientExecutor::new(cfg).run(&cg_app(32, 30, 1.0)).unwrap()
        };
        let mut fail1 = 0;
        let mut fail2 = 0;
        for seed in 0..5 {
            fail1 += run(1.0, seed).failures;
            fail2 += run(2.0, seed).failures;
        }
        assert!(fail2 < fail1, "dual redundancy must cut job failures: 1x={fail1} 2x={fail2}");
    }

    #[test]
    fn solution_identical_with_and_without_failures() {
        let clean = {
            let cfg = ExecutorConfig::new(4, 1.0);
            ResilientExecutor::new(cfg).run(&cg_app(32, 25, 1.0)).unwrap()
        };
        let stormy = {
            let cfg = ExecutorConfig::new(4, 2.0)
                .node_mtbf(40.0)
                .checkpoint_interval(4.0)
                .checkpoint_cost(0.1)
                .restart_cost(0.5)
                .seed(3);
            ResilientExecutor::new(cfg).run(&cg_app(32, 25, 1.0)).unwrap()
        };
        assert!(stormy.failures > 0, "storm run should see failures");
        for (a, b) in clean.final_states.iter().zip(&stormy.final_states) {
            assert_eq!(a.iteration, b.iteration);
            for (x, y) in a.x.iter().zip(&b.x) {
                assert!((x - y).abs() < 1e-12, "numerics must survive restarts");
            }
        }
    }

    #[test]
    fn masked_failures_counted_and_fatal_ones_excluded() {
        // At 2x with a harsh MTBF some attempts restart (sphere deaths) and
        // some individual deaths are masked; both tallies must be visible.
        let cfg = ExecutorConfig::new(4, 2.0)
            .node_mtbf(25.0)
            .checkpoint_interval(4.0)
            .checkpoint_cost(0.1)
            .restart_cost(0.5)
            .seed(8);
        let report = ResilientExecutor::new(cfg).run(&cg_app(32, 30, 1.0)).unwrap();
        assert!(report.masked_failures > 0, "2x under mtbf 25 must mask deaths: {report}");
        assert!(report.degraded_sphere_seconds > 0.0);
        for s in &report.final_states {
            assert_eq!(s.iteration, 30);
        }
    }

    #[test]
    fn livelock_guard_reports_no_progress() {
        // The job can never reach its first checkpoint, so every restart
        // replays from scratch: the guard must fire before the (large)
        // attempt budget.
        let cfg = ExecutorConfig::new(4, 1.0)
            .node_mtbf(0.5)
            .checkpoint_interval(10.0)
            .checkpoint_cost(1.0)
            .restart_cost(1.0)
            .max_attempts(10_000)
            .no_progress_limit(6);
        let err = ResilientExecutor::new(cfg).run(&cg_app(32, 1000, 1.0)).unwrap_err();
        assert!(
            matches!(err, CoreError::NoProgress { attempts: 6 }),
            "expected the livelock guard, got: {err}"
        );
    }

    #[test]
    fn attempt_budget_enforced() {
        // Absurd MTBF: the job can never finish a checkpoint.
        let cfg = ExecutorConfig::new(4, 1.0)
            .node_mtbf(0.5)
            .checkpoint_interval(10.0)
            .checkpoint_cost(1.0)
            .restart_cost(1.0)
            .max_attempts(5);
        let err = ResilientExecutor::new(cfg).run(&cg_app(32, 1000, 1.0)).unwrap_err();
        assert!(matches!(err, CoreError::AttemptsExhausted { attempts: 5 }));
    }
}
