//! The resilient executor: runs a steppable application under combined
//! replication + coordinated checkpointing + fault injection, restarting
//! from the last checkpoint after every sphere failure, until the
//! application completes.

use std::sync::Arc;

use serde::de::DeserializeOwned;
use serde::Serialize;

use redcr_ckpt::bookmark;
use redcr_ckpt::coordinator::CheckpointCoordinator;
use redcr_ckpt::restart;
use redcr_ckpt::snapshot::{ChannelMessage, ProcessImage};
use redcr_ckpt::storage::{MemoryStorage, StableStorage, StorageCostModel};
use redcr_ckpt::CountingComm;
use redcr_fault::{FailureEvent, FailureInjector, ReplicaGroups};
use redcr_model::partition::RedundancyPartition;
use redcr_mpi::collectives::ReduceOp;
use redcr_mpi::metrics::{CounterKey, HistKey, MetricsRegistry};
use redcr_mpi::prof::{ProfScope, Profiler, SpanKey as ProfSpanKey};
use redcr_mpi::trace::{heal, Collector, EventKind};
use redcr_mpi::{Communicator, MpiError};
use redcr_red::{DetectorParams, HealPolicy, ReplicatedWorld};

use crate::config::ExecutorConfig;
use crate::report::ExecutionReport;
use crate::{CoreError, Result};

/// An application the executor can run, checkpoint and restart.
///
/// The three methods see the world through any [`Communicator`], so the
/// same implementation runs replicated or plain. `State` is everything that
/// must survive a restart.
pub trait ResilientApp: Sync {
    /// The checkpointable state.
    type State: Serialize + DeserializeOwned + Send + 'static;

    /// Builds the initial state (collective).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    fn init<C: Communicator>(&self, comm: &C) -> redcr_mpi::Result<Self::State>;

    /// Advances the application by one step (collective).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    fn step<C: Communicator>(&self, comm: &C, state: &mut Self::State) -> redcr_mpi::Result<()>;

    /// Whether the application has finished.
    fn is_done(&self, state: &Self::State) -> bool;
}

/// What one world segment of an attempt produced on each rank. An attempt
/// is a sequence of segments: the failure detector splits it at heal
/// boundaries, and only the last segment runs the application to
/// completion.
enum SegmentOutcome<S> {
    /// The application finished; `checkpoints` counts commits across the
    /// whole attempt (carried over heal relaunches).
    Done { state: S, checkpoints: u64 },
    /// The failure detector fired at the collective boundary: the segment
    /// quiesced its channels so the executor can respawn the suspected
    /// replicas and relaunch every rank from live state.
    Heal {
        state: S,
        channel: Vec<ChannelMessage>,
        boundary: f64,
        next_seq: u64,
        next_ckpt: f64,
        checkpoints: u64,
    },
}

/// Live state carried across a heal relaunch: one serialized checkpoint
/// image per virtual rank (the donor replica's snapshot — the checkpoint
/// codec doubles as the state-transfer wire format) plus the checkpoint
/// cursor of the quiesced segment.
struct HealSeed {
    images: Vec<Vec<u8>>,
    next_seq: u64,
    next_ckpt: f64,
    checkpoints: u64,
}

/// Failure-detector inputs of one segment. Present only when the policy
/// heals, so the legacy `Never` path performs zero extra work.
struct HealCtx {
    policy: HealPolicy,
    params: DetectorParams,
    attempt_start: f64,
    deaths: Vec<f64>,
}

impl HealCtx {
    /// Whether any replica's suspicion deadline has elapsed at the agreed
    /// clock boundary `now_max`. Pure in the boundary and the (identical)
    /// death schedule, so every rank takes the same branch without any
    /// extra communication.
    fn suspects_at(&self, now_max: f64) -> bool {
        self.deaths.iter().any(|&d| self.params.suspicion_time(self.attempt_start, d) <= now_max)
    }
}

/// Absolute job-failure time of the current death timeline: the earliest
/// moment any sphere loses its last replica (max member death, minimized
/// over spheres; ties resolve to the lower sphere, matching the sampled
/// schedule's own `job_failure`).
fn job_failure_abs(groups: &ReplicaGroups, deaths_abs: &[f64]) -> (f64, usize) {
    let mut when = f64::INFINITY;
    let mut who = usize::MAX;
    for (v, members) in groups.iter().enumerate() {
        let dead_at = members
            .iter()
            .map(|&p| deaths_abs.get(p).copied().unwrap_or(f64::INFINITY))
            .fold(f64::NEG_INFINITY, f64::max);
        if dead_at < when {
            when = dead_at;
            who = v;
        }
    }
    (when, who)
}

/// Rewrites an attempt's failure log against its *current* timeline. A heal
/// commit changes which deaths occur and which one (if any) kills the job,
/// so the events recorded at plan time are dropped and re-recorded from the
/// live death list, with `killed_job` pointing at the recomputed killer.
fn rebuild_failure_log(
    injector: &mut FailureInjector,
    attempt: u64,
    deaths_log: &[(u32, f64)],
    job_fail_abs: f64,
    killer: usize,
) {
    let fatal: Vec<usize> = if job_fail_abs.is_finite() {
        injector.groups().members(killer).to_vec()
    } else {
        Vec::new()
    };
    let trace = injector.trace_mut();
    trace.truncate_attempt(attempt, f64::NEG_INFINITY);
    if !job_fail_abs.is_finite() {
        return;
    }
    for &(p, abs) in deaths_log {
        if abs <= job_fail_abs {
            trace.record(FailureEvent {
                attempt,
                time: abs,
                process: p as usize,
                killed_job: abs == job_fail_abs && fatal.contains(&(p as usize)),
            });
        }
    }
}

/// Runs [`ResilientApp`]s to completion under failures.
#[derive(Debug)]
pub struct ResilientExecutor {
    config: ExecutorConfig,
    storage: Arc<dyn StableStorage>,
}

impl ResilientExecutor {
    /// An executor with in-memory stable storage.
    pub fn new(config: ExecutorConfig) -> Self {
        ResilientExecutor { config, storage: Arc::new(MemoryStorage::new()) }
    }

    /// An executor writing checkpoints to the given storage backend.
    pub fn with_storage(config: ExecutorConfig, storage: Arc<dyn StableStorage>) -> Self {
        ResilientExecutor { config, storage }
    }

    /// The configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Runs `app` to completion: plans per-process failure times per
    /// attempt, injects them **live** into the replicated runtime (each
    /// process fail-stops at its sampled time), checkpoints at the
    /// configured interval, and restarts from the last complete checkpoint
    /// whenever some sphere loses its *last* replica. Individual deaths
    /// that redundancy masks do not restart anything — they only show up
    /// in the report as [`masked_failures`] and degraded running time.
    ///
    /// [`masked_failures`]: ExecutionReport::masked_failures
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::AttemptsExhausted`] if the attempt budget runs
    /// out, [`CoreError::NoProgress`] if the livelock guard fires, or the
    /// underlying model/runtime/checkpoint error.
    pub fn run<A: ResilientApp>(&self, app: &A) -> Result<ExecutionReport<A::State>> {
        let cfg = &self.config;
        let partition = RedundancyPartition::new(cfg.n_virtual, cfg.degree)?;
        let counts: Vec<usize> =
            (0..partition.n_virtual()).map(|v| partition.replicas_of(v) as usize).collect();
        let groups = ReplicaGroups::from_counts(&counts);
        let mut injector = FailureInjector::new(groups, cfg.node_mtbf, cfg.seed);
        let storage_cost = StorageCostModel::fixed(cfg.checkpoint_cost, cfg.restart_cost);
        let coordinator = CheckpointCoordinator::new(Arc::clone(&self.storage))
            .cost_model(storage_cost)
            .protocol(cfg.protocol);
        let params = DetectorParams::new(cfg.heartbeat_period, cfg.suspicion_timeout);
        // Sphere membership in the two shapes the heal paths need: members
        // per sphere (as u32, for the shared heal accounting) and sphere
        // per physical rank.
        let spheres: Vec<Vec<u32>> =
            injector.groups().iter().map(|m| m.iter().map(|&p| p as u32).collect()).collect();
        let mut sphere_of = vec![0usize; spheres.iter().map(Vec::len).sum()];
        for (v, members) in injector.groups().iter().enumerate() {
            for &p in members {
                if let Some(slot) = sphere_of.get_mut(p) {
                    *slot = v;
                }
            }
        }

        let registry = cfg.metrics.then(|| Arc::new(MetricsRegistry::new()));
        let collector = cfg.tracing.then(|| Arc::new(Collector::new()));
        // Wall-clock self-profiler. The driver thread keeps its own shard
        // (segment / heal spans); each world hands per-rank shards to its
        // rank threads. Everything is host-clock only — no virtual time.
        let profiler = cfg.profiling.then(|| Arc::new(Profiler::new()));
        let driver_prof = profiler.as_ref().map(|p| p.shard());
        if let Some(c) = &collector {
            for (v, members) in injector.groups().iter().enumerate() {
                for (replica, &p) in members.iter().enumerate() {
                    c.record(
                        0.0,
                        Some(p as u32),
                        EventKind::Topology { sphere: v as u32, replica: replica as u32 },
                    );
                }
            }
        }

        let mut resume_time = 0.0f64;
        let mut attempts = 0u64;
        let mut failures = 0u64;
        let mut masked_failures = 0u64;
        let mut degraded_sphere_seconds = 0.0f64;
        let mut stagnant = 0u64;
        let mut last_committed: Option<u64> = None;
        let mut stats = redcr_red::stats::StatsSnapshot::default();
        let mut physical_messages = 0u64;
        let mut physical_bytes = 0u64;
        let mut respawns_total = 0u64;
        let mut heal_latency_total = 0.0f64;
        let mut recovered_total = 0.0f64;

        loop {
            if attempts >= cfg.max_attempts {
                return Err(CoreError::AttemptsExhausted { attempts });
            }
            attempts += 1;
            let plan = injector.plan_attempt(resume_time);
            let first_attempt = attempts == 1;
            if let Some(c) = &collector {
                c.record(plan.start_time, None, EventKind::AttemptStart { attempt: plan.attempt });
                for (p, &d) in plan.schedule.death_times.iter().enumerate() {
                    if d.is_finite() {
                        c.record(
                            plan.start_time + d,
                            Some(p as u32),
                            EventKind::Injected { rel: d },
                        );
                    }
                }
            }

            // The attempt's *mutable* timeline: per-process absolute deaths
            // (updated by respawns), the death log in trace-emission order
            // (relative for the shared heal accounting, absolute for the
            // failure log), and the heal commits so far.
            let mut deaths_abs = plan.absolute_death_times();
            let mut deaths_rel: Vec<(u32, f64)> = Vec::new();
            let mut deaths_log: Vec<(u32, f64)> = Vec::new();
            for (p, &d) in plan.schedule.death_times.iter().enumerate() {
                if d.is_finite() {
                    deaths_rel.push((p as u32, d));
                    deaths_log.push((p as u32, plan.start_time + d));
                }
            }
            let mut heal_commits: Vec<(u32, f64)> = Vec::new();
            // Summed per attempt, folded into the run total once the
            // attempt ends — the same float-addition order the trace
            // analyzer uses, so the two stay bit-identical.
            let mut attempt_heal_latency = 0.0f64;
            let mut job_fail_abs = plan.job_failure_time;
            let mut killer = plan.killer_sphere;
            let mut seed: Option<Arc<HealSeed>> = None;
            let mut seg_start = resume_time;

            let coordinator = &coordinator;
            let storage = &self.storage;
            let interval = cfg.checkpoint_interval;
            let restart_cost = cfg.restart_cost;
            let app_ref = app;

            // One attempt is a sequence of world segments: the first starts
            // from stable storage (or scratch); each heal cycle quiesces
            // its segment, respawns the suspects, and relaunches the next
            // segment from transferred live state.
            let (report, completed) = loop {
                let mut builder = ReplicatedWorld::builder(cfg.n_virtual, cfg.degree)?
                    .voting_mode(cfg.voting)
                    .cost_model(cfg.comm_cost)
                    .death_times(deaths_abs.clone())
                    .start_time(seg_start);
                if let Some(w) = cfg.workers {
                    builder = builder.workers(w);
                }
                if let Some(c) = &collector {
                    builder = builder.trace(Arc::clone(c));
                }
                if let Some(r) = &registry {
                    builder = builder.metrics(Arc::clone(r));
                }
                if let Some(p) = &profiler {
                    builder = builder.profiler(Arc::clone(p));
                }
                let heal_ctx = (cfg.heal_policy != HealPolicy::Never).then(|| HealCtx {
                    policy: cfg.heal_policy,
                    params,
                    attempt_start: plan.start_time,
                    deaths: deaths_abs.clone(),
                });
                let seed_ref = seed.clone();
                let seg_span = driver_prof.as_ref().map(|p| p.span(ProfSpanKey::ExecutorSegment));
                let mut report = builder.run(move |comm| {
                    let (mut state, mut next_seq, mut next_ckpt, mut checkpoints, counting) =
                        match &seed_ref {
                            Some(seed) => {
                                // Heal relaunch: every rank — respawned or
                                // survivor — resumes from its sphere's
                                // transferred image. The transfer itself is
                                // charged on the executor side through the
                                // segment's start time, not here.
                                let v = comm.rank().index();
                                let bytes = seed.images.get(v).ok_or_else(|| MpiError::App {
                                    what: format!("no heal image for virtual rank {v}"),
                                })?;
                                let image = ProcessImage::from_stored_bytes(bytes)
                                    .map_err(MpiError::from)?;
                                let state: A::State = image.restore().map_err(MpiError::from)?;
                                let counting =
                                    CountingComm::with_restored_channel(comm, image.channel_state);
                                (state, seed.next_seq, seed.next_ckpt, seed.checkpoints, counting)
                            }
                            None => {
                                let n_ranks = comm.size() as u32;
                                let latest = restart::latest_complete(storage.as_ref(), n_ranks)
                                    .map_err(MpiError::from)?;
                                match latest {
                                    Some(seq) => {
                                        // Restore: charges the read cost R to
                                        // virtual time and primes the channel
                                        // state.
                                        let restored: redcr_ckpt::coordinator::Restored<A::State> =
                                            coordinator
                                                .restore(comm, seq)
                                                .map_err(MpiError::from)?;
                                        let counting = CountingComm::with_restored_channel(
                                            comm,
                                            restored.channel,
                                        );
                                        let next_ckpt = comm.now() + interval;
                                        (restored.state, seq + 1, next_ckpt, 0, counting)
                                    }
                                    None => {
                                        if !first_attempt {
                                            // Restarting from scratch still
                                            // pays the restart overhead
                                            // (process re-launch).
                                            comm.compute(restart_cost)?;
                                        }
                                        let counting = CountingComm::new(comm);
                                        let state = app_ref.init(&counting)?;
                                        let next_ckpt = comm.now() + interval;
                                        (state, 0, next_ckpt, 0, counting)
                                    }
                                }
                            }
                        };

                    loop {
                        app_ref.step(&counting, &mut state)?;
                        if app_ref.is_done(&state) {
                            return Ok(SegmentOutcome::Done { state, checkpoints });
                        }
                        // Collective clock agreement so that every rank and
                        // replica takes the checkpoint decision together.
                        let now_max = counting.allreduce_f64(&[counting.now()], ReduceOp::Max)?[0];
                        if let Some(ctx) = &heal_ctx {
                            let due = ctx.suspects_at(now_max)
                                && (ctx.policy != HealPolicy::AtCheckpoint || now_max >= next_ckpt);
                            if due {
                                // Every rank reaches this decision from the
                                // same agreed boundary, so the quiesce is
                                // collectively consistent.
                                let channel = bookmark::quiesce(&counting)?;
                                return Ok(SegmentOutcome::Heal {
                                    state,
                                    channel,
                                    boundary: now_max,
                                    next_seq,
                                    next_ckpt,
                                    checkpoints,
                                });
                            }
                        }
                        if now_max >= next_ckpt {
                            coordinator
                                .checkpoint(&counting, next_seq, &state)
                                .map_err(MpiError::from)?;
                            next_seq += 1;
                            checkpoints += 1;
                            next_ckpt = now_max + interval;
                        }
                    }
                })?;
                drop(seg_span);

                stats = stats.add(&report.stats);
                physical_messages += report.physical_messages;
                physical_bytes += report.physical_bytes;

                // Any non-fail-stop error is a genuine bug, never a planned
                // death (Dead/DeadPeer/SphereDead/Aborted are all expected
                // outcomes of live injection).
                for r in &report.results {
                    if let Err(e) = r {
                        if !e.is_fail_stop() {
                            return Err(CoreError::Runtime(e.clone()));
                        }
                    }
                }

                let healing = !report.aborted
                    && report.results.iter().any(|r| matches!(r, Ok(SegmentOutcome::Heal { .. })));
                if !healing {
                    // Completed iff no job abort was raised and every
                    // virtual rank kept at least one live replica running
                    // to `Done`. A rank's *primary* may well be `Err(Dead)`
                    // — a surviving shadow carries the state then.
                    let vmap = report.vmap().clone();
                    let completed = !report.aborted
                        && (0..cfg.n_virtual as u32).all(|v| {
                            vmap.replicas_of(redcr_mpi::Rank::new(v)).iter().any(|p| {
                                matches!(report.results[p.index()], Ok(SegmentOutcome::Done { .. }))
                            })
                        });
                    break (report, completed);
                }

                // === Heal cycle ===
                // Spans the suspect scan, donor vote, image transfer and
                // relaunch prep; dropped when this loop iteration ends.
                let _heal_span = driver_prof.as_ref().map(|p| p.span(ProfSpanKey::ExecutorHeal));
                // The boundary the detector fired at: the agreed clock
                // maximum, advanced past the quiesce drain.
                let mut boundary = report.max_virtual_time;
                for r in &report.results {
                    if let Ok(SegmentOutcome::Heal { boundary: b, .. }) = r {
                        boundary = boundary.max(*b);
                    }
                }
                // Replicas whose suspicion deadline has elapsed at the
                // boundary; everyone else is a potential donor.
                let suspects: Vec<usize> = (0..deaths_abs.len())
                    .filter(|&p| params.suspicion_time(plan.start_time, deaths_abs[p]) <= boundary)
                    .collect();

                // Capture one canonical image per virtual rank from its
                // lowest-ranked replica that reached the quiesce (the
                // donor). Only images of healing spheres count as transfer
                // bytes — survivors keep their state in place.
                let vmap = report.vmap().clone();
                let mut images: Vec<Vec<u8>> = Vec::with_capacity(cfg.n_virtual as usize);
                let mut transfer_bytes = 0u64;
                let mut cursor: Option<(u64, f64, u64)> = None;
                for v in 0..cfg.n_virtual as u32 {
                    let mut donor_bytes = None;
                    for p in vmap.replicas_of(redcr_mpi::Rank::new(v)) {
                        let Some(outcome) = report.results[p.index()].take_ok() else { continue };
                        let SegmentOutcome::Heal {
                            state,
                            channel,
                            next_seq,
                            next_ckpt,
                            checkpoints,
                            ..
                        } = outcome
                        else {
                            continue;
                        };
                        let image =
                            ProcessImage::capture(v, boundary, &state)?.with_channel_state(channel);
                        donor_bytes = Some(image.to_stored_bytes()?);
                        cursor = Some((next_seq, next_ckpt, checkpoints));
                        break;
                    }
                    let Some(bytes) = donor_bytes else {
                        return Err(CoreError::Runtime(MpiError::App {
                            what: format!("no live donor replica for virtual rank {v}"),
                        }));
                    };
                    if suspects.iter().any(|&p| sphere_of.get(p) == Some(&(v as usize))) {
                        transfer_bytes += bytes.len() as u64;
                    }
                    images.push(bytes);
                }
                let Some((next_seq, next_ckpt, checkpoints)) = cursor else {
                    return Err(CoreError::Runtime(MpiError::App {
                        what: "heal cycle found no checkpoint cursor".into(),
                    }));
                };

                // The respawn commits after the modeled repair work: fresh
                // process allocation plus shipping the donor images.
                let commit = boundary
                    + cfg.respawn_cost
                    + cfg.transfer_cost_per_byte * transfer_bytes as f64;

                // Detection happened and the respawn began regardless of
                // whether the transfer survives; record both per suspect.
                for &p in &suspects {
                    let sphere = sphere_of.get(p).copied().unwrap_or(0) as u32;
                    let suspected_at = params.suspicion_time(plan.start_time, deaths_abs[p]);
                    if let Some(c) = &collector {
                        c.record(suspected_at, Some(p as u32), EventKind::HeartbeatMiss { sphere });
                        c.record(boundary, Some(p as u32), EventKind::RespawnBegin { sphere });
                    }
                    if let Some(r) = &registry {
                        r.inc(CounterKey::Suspicions, suspected_at);
                    }
                }

                // Kill-during-transfer race: a sphere survives the heal iff
                // some replica that is not itself being respawned outlives
                // the commit. Otherwise the job dies mid-heal, at the
                // moment its last donor went.
                let mut kill_time = f64::INFINITY;
                let mut kill_sphere = usize::MAX;
                for (v, members) in injector.groups().iter().enumerate() {
                    let last_donor = members
                        .iter()
                        .filter(|p| !suspects.contains(p))
                        .map(|&p| deaths_abs.get(p).copied().unwrap_or(f64::INFINITY))
                        .fold(f64::NEG_INFINITY, f64::max);
                    if last_donor.is_finite() && last_donor <= commit && last_donor < kill_time {
                        kill_time = last_donor;
                        kill_sphere = v;
                    }
                }
                if kill_sphere != usize::MAX {
                    // The respawn never commits; the attempt fails like any
                    // sphere death, at the new (earlier) failure time.
                    job_fail_abs = kill_time;
                    killer = kill_sphere;
                    rebuild_failure_log(
                        &mut injector,
                        plan.attempt,
                        &deaths_log,
                        job_fail_abs,
                        killer,
                    );
                    break (report, false);
                }

                // Commit: respawn every suspect, drawing each incarnation's
                // lifetime from the injector's deterministic stream, and
                // replay the virtual map back to full voting strength.
                for &p in &suspects {
                    let sphere = sphere_of.get(p).copied().unwrap_or(0) as u32;
                    let died_at = deaths_abs[p];
                    let rebirth = commit + injector.resample_death();
                    deaths_abs[p] = rebirth;
                    let rel_rebirth = rebirth - plan.start_time;
                    if rel_rebirth.is_finite() {
                        deaths_rel.push((p as u32, rel_rebirth));
                        deaths_log.push((p as u32, rebirth));
                    }
                    let latency = commit - died_at;
                    let rel_commit = commit - plan.start_time;
                    if let Some(c) = &collector {
                        if rel_rebirth.is_finite() {
                            c.record(
                                rebirth,
                                Some(p as u32),
                                EventKind::Injected { rel: rel_rebirth },
                            );
                        }
                        c.record(
                            commit,
                            Some(p as u32),
                            EventKind::RespawnCommit { sphere, rel: rel_commit, latency },
                        );
                        let copies = spheres.get(sphere as usize).map(Vec::len).unwrap_or(0) as u32;
                        c.record(commit, Some(p as u32), EventKind::RejoinVote { sphere, copies });
                    }
                    if let Some(r) = &registry {
                        r.inc(CounterKey::Respawns, commit);
                        r.observe(HistKey::HealLatency, latency);
                    }
                    respawns_total += 1;
                    attempt_heal_latency += latency;
                    // One commit per healed sphere per cycle: a cycle that
                    // respawns two replicas of one sphere commits it once.
                    let key = (sphere, rel_commit);
                    if !heal_commits.contains(&key) {
                        heal_commits.push(key);
                    }
                }

                // The timeline changed: recompute when (and whether) the
                // job now fails, and rewrite the failure log to match.
                let (when, who) = job_failure_abs(injector.groups(), &deaths_abs);
                job_fail_abs = when;
                killer = who;
                rebuild_failure_log(&mut injector, plan.attempt, &deaths_log, job_fail_abs, killer);

                seed = Some(Arc::new(HealSeed { images, next_seq, next_ckpt, checkpoints }));
                seg_start = commit;
            };

            // Where the attempt ended on the virtual clock. On a failure
            // the survivors can be discovered slightly past the sampled
            // sphere-death time (the death materializes at the next
            // operation boundary), so take the max.
            heal_latency_total += attempt_heal_latency;
            let attempt_end = if completed || !job_fail_abs.is_finite() {
                report.max_virtual_time
            } else {
                report.max_virtual_time.max(job_fail_abs)
            };
            let end_rel = (attempt_end - plan.start_time).max(0.0);
            let rel_failure = job_fail_abs - plan.start_time;
            if let Some(c) = &collector {
                // Carries the exact relative values the accounting below
                // compares, so the trace analyzer reproduces it bit-for-bit.
                c.record(
                    attempt_end,
                    None,
                    EventKind::AttemptEnd {
                        attempt: plan.attempt,
                        completed,
                        rel_end: end_rel,
                        rel_failure,
                        killer: (!completed && rel_failure.is_finite()).then_some(killer as u32),
                    },
                );
            }

            // Degraded running time. Without heal commits, the legacy
            // first-to-last-death sweep over the sampled schedule (the
            // bit-exact path the determinism gate pins); with commits, the
            // heal-aware interval sweep shared with the trace analyzer.
            let mut attempt_degraded = 0.0f64;
            if heal_commits.is_empty() {
                for members in injector.groups().iter() {
                    let times = members.iter().map(|&p| plan.schedule.death_times[p]);
                    let first = times.clone().fold(f64::INFINITY, f64::min);
                    if first.is_finite() && first < end_rel {
                        let last = times.fold(f64::NEG_INFINITY, f64::max);
                        attempt_degraded += last.min(end_rel) - first;
                        if let Some(r) = &registry {
                            r.observe(HistKey::DegradedInterval, last.min(end_rel) - first);
                        }
                    }
                }
            } else {
                let spans = heal::degraded_spans(&spheres, &deaths_rel, &heal_commits, end_rel);
                if let Some(r) = &registry {
                    for &span in &spans {
                        r.observe(HistKey::DegradedInterval, span);
                    }
                }
                attempt_degraded = spans.iter().fold(0.0f64, |acc, &s| acc + s);
                recovered_total +=
                    heal::recovered_seconds(&spheres, &deaths_rel, &heal_commits, end_rel);
            }
            degraded_sphere_seconds += attempt_degraded;

            if let Some(r) = &registry {
                r.inc(CounterKey::Attempts, attempt_end);
            }

            if !completed {
                // Every process death up to the job failure that was NOT a
                // member of the killer sphere was masked by redundancy.
                failures += 1;
                if rel_failure.is_finite() {
                    let dead = deaths_rel.iter().filter(|&&(_, d)| d <= rel_failure).count();
                    let fatal = injector.groups().members(killer).len();
                    masked_failures += dead.saturating_sub(fatal) as u64;
                    if let Some(r) = &registry {
                        r.add(
                            CounterKey::MaskedFailures,
                            dead.saturating_sub(fatal) as u64,
                            attempt_end,
                        );
                    }
                }
                if let Some(r) = &registry {
                    r.inc(CounterKey::Restarts, attempt_end);
                }
                resume_time = attempt_end;

                // Livelock guard: a restart that found no new checkpoint
                // replays exactly the ground already lost.
                let latest = restart::latest_complete(self.storage.as_ref(), cfg.n_virtual as u32)?;
                if latest == last_committed {
                    stagnant += 1;
                    if stagnant >= cfg.no_progress_limit {
                        return Err(CoreError::NoProgress { attempts });
                    }
                } else {
                    last_committed = latest;
                    stagnant = 0;
                }
                continue;
            }

            // Completed: every death that occurred during the attempt was
            // masked; the planned *job* failure never materialized, so
            // prune its never-observed events from the log.
            let dead = deaths_rel.iter().filter(|&&(_, d)| d <= end_rel).count() as u64;
            masked_failures += dead;
            if let Some(r) = &registry {
                r.add(CounterKey::MaskedFailures, dead, attempt_end);
            }
            injector.trace_mut().truncate_attempt(plan.attempt, report.max_virtual_time);
            let total_time = report.max_virtual_time;
            let n_physical = report.n_physical;
            let vmap = report.vmap().clone();
            let mut results = report.results;
            let mut final_states = Vec::with_capacity(cfg.n_virtual as usize);
            // The checkpoint decision is a collective (allreduce) and the
            // commit is post-barrier, so every live replica of every
            // virtual rank must report the same committed count. Divergence
            // is corruption and must surface, not vanish under a `max`.
            let mut checkpoints_agreed: Option<u64> = None;
            for v in 0..cfg.n_virtual as u32 {
                let mut state = None;
                let mut counts: Vec<u64> = Vec::new();
                for p in vmap.replicas_of(redcr_mpi::Rank::new(v)) {
                    if let Some(SegmentOutcome::Done { state: s, checkpoints: ckpts }) =
                        results[p.index()].take_ok()
                    {
                        if state.is_none() {
                            state = Some(s);
                        }
                        counts.push(ckpts);
                    }
                }
                let Some(state) = state else {
                    return Err(CoreError::Runtime(MpiError::App {
                        what: format!("no live replica of rank {v} produced a result"),
                    }));
                };
                if counts.windows(2).any(|w| w[0] != w[1]) {
                    return Err(CoreError::CheckpointDivergence { virtual_rank: v, counts });
                }
                match checkpoints_agreed {
                    None => checkpoints_agreed = Some(counts[0]),
                    Some(agreed) if agreed != counts[0] => {
                        return Err(CoreError::CheckpointDivergence {
                            virtual_rank: v,
                            counts: vec![agreed, counts[0]],
                        });
                    }
                    Some(_) => {}
                }
                final_states.push(state);
            }
            let checkpoints_committed = checkpoints_agreed.unwrap_or(0);

            return Ok(ExecutionReport {
                total_virtual_time: total_time,
                attempts,
                failures,
                masked_failures,
                degraded_sphere_seconds,
                checkpoints_committed,
                respawns: respawns_total,
                heal_latency_seconds: heal_latency_total,
                recovered_voting_seconds: recovered_total,
                replication: stats,
                physical_messages,
                physical_bytes,
                n_physical,
                node_seconds: n_physical as f64 * total_time,
                failure_trace: injector.trace().clone(),
                trace: collector.as_ref().map(|c| c.take()),
                metrics: registry.as_ref().map(|r| r.report(cfg.scrape_interval)),
                profile: profiler.as_ref().map(|p| {
                    if let Some(shard) = &driver_prof {
                        p.absorb(ProfScope::Driver, shard.drain());
                    }
                    p.report()
                }),
                final_states,
            });
        }
    }
}

/// Small helper: move the Ok value out of a `Result` slot.
trait TakeOk<T> {
    fn take_ok(&mut self) -> Option<T>;
}

impl<T> TakeOk<T> for redcr_mpi::Result<T> {
    fn take_ok(&mut self) -> Option<T> {
        std::mem::replace(self, Err(MpiError::App { what: "result already taken".into() })).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcr_apps::cg::{CgConfig, CgSolver, CgState};

    /// CG wrapped as a resilient app with a fixed iteration target.
    struct CgApp {
        solver: CgSolver,
        iterations: u64,
        /// Virtual seconds of synthetic extra compute per step, to stretch
        /// runtime so checkpoints/failures trigger.
        pad_seconds: f64,
    }

    impl ResilientApp for CgApp {
        type State = CgState;

        fn init<C: Communicator>(&self, comm: &C) -> redcr_mpi::Result<CgState> {
            self.solver.init_state(comm)
        }

        fn step<C: Communicator>(&self, comm: &C, state: &mut CgState) -> redcr_mpi::Result<()> {
            comm.compute(self.pad_seconds)?;
            self.solver.step(comm, state)?;
            Ok(())
        }

        fn is_done(&self, state: &CgState) -> bool {
            state.iteration >= self.iterations
        }
    }

    fn cg_app(n: usize, iterations: u64, pad: f64) -> CgApp {
        CgApp { solver: CgSolver::new(CgConfig::small(n)), iterations, pad_seconds: pad }
    }

    #[test]
    fn failure_free_run_completes_without_restarts() {
        let cfg = ExecutorConfig::new(4, 1.0);
        let report = ResilientExecutor::new(cfg).run(&cg_app(32, 10, 0.0)).unwrap();
        assert_eq!(report.attempts, 1);
        assert_eq!(report.failures, 0);
        assert_eq!(report.final_states.len(), 4);
        for s in &report.final_states {
            assert_eq!(s.iteration, 10);
        }
    }

    #[test]
    fn checkpoints_taken_at_interval() {
        // Each step pads 1.0 virtual second; checkpoint every 2.5 s.
        let cfg = ExecutorConfig::new(2, 1.0).checkpoint_interval(2.5).checkpoint_cost(0.1);
        let report = ResilientExecutor::new(cfg).run(&cg_app(16, 10, 1.0)).unwrap();
        assert_eq!(report.failures, 0);
        assert!(
            report.checkpoints_committed >= 2,
            "expected several checkpoints, got {}",
            report.checkpoints_committed
        );
        // Total time includes checkpoint costs.
        assert!(report.total_virtual_time >= 10.0);
    }

    #[test]
    fn recovers_from_failures_and_finishes() {
        // MTBF of 30 s per process over a ~40 s job with 4 processes at 1x:
        // several failures guaranteed; checkpoints every 5 s keep progress.
        let cfg = ExecutorConfig::new(4, 1.0)
            .node_mtbf(30.0)
            .checkpoint_interval(5.0)
            .checkpoint_cost(0.2)
            .restart_cost(1.0)
            .seed(12);
        let report = ResilientExecutor::new(cfg).run(&cg_app(32, 40, 1.0)).unwrap();
        assert!(report.failures > 0, "expected failures: {report:?}");
        assert_eq!(report.attempts, report.failures + 1);
        for s in &report.final_states {
            assert_eq!(s.iteration, 40, "application completed despite failures");
        }
        // Wallclock exceeds the failure-free time.
        assert!(report.total_virtual_time > 40.0);
        assert!(!report.failure_trace.is_empty());
    }

    #[test]
    fn redundancy_reduces_restarts_at_same_mtbf() {
        let run = |degree: f64, seed: u64| {
            let cfg = ExecutorConfig::new(4, degree)
                .node_mtbf(60.0)
                .checkpoint_interval(8.0)
                .checkpoint_cost(0.2)
                .restart_cost(1.0)
                .seed(seed);
            ResilientExecutor::new(cfg).run(&cg_app(32, 30, 1.0)).unwrap()
        };
        let mut fail1 = 0;
        let mut fail2 = 0;
        for seed in 0..5 {
            fail1 += run(1.0, seed).failures;
            fail2 += run(2.0, seed).failures;
        }
        assert!(fail2 < fail1, "dual redundancy must cut job failures: 1x={fail1} 2x={fail2}");
    }

    #[test]
    fn solution_identical_with_and_without_failures() {
        let clean = {
            let cfg = ExecutorConfig::new(4, 1.0);
            ResilientExecutor::new(cfg).run(&cg_app(32, 25, 1.0)).unwrap()
        };
        let stormy = {
            let cfg = ExecutorConfig::new(4, 2.0)
                .node_mtbf(40.0)
                .checkpoint_interval(4.0)
                .checkpoint_cost(0.1)
                .restart_cost(0.5)
                .seed(3);
            ResilientExecutor::new(cfg).run(&cg_app(32, 25, 1.0)).unwrap()
        };
        assert!(stormy.failures > 0, "storm run should see failures");
        for (a, b) in clean.final_states.iter().zip(&stormy.final_states) {
            assert_eq!(a.iteration, b.iteration);
            for (x, y) in a.x.iter().zip(&b.x) {
                assert!((x - y).abs() < 1e-12, "numerics must survive restarts");
            }
        }
    }

    #[test]
    fn masked_failures_counted_and_fatal_ones_excluded() {
        // At 2x with a harsh MTBF some attempts restart (sphere deaths) and
        // some individual deaths are masked; both tallies must be visible.
        let cfg = ExecutorConfig::new(4, 2.0)
            .node_mtbf(25.0)
            .checkpoint_interval(4.0)
            .checkpoint_cost(0.1)
            .restart_cost(0.5)
            .seed(8);
        let report = ResilientExecutor::new(cfg).run(&cg_app(32, 30, 1.0)).unwrap();
        assert!(report.masked_failures > 0, "2x under mtbf 25 must mask deaths: {report}");
        assert!(report.degraded_sphere_seconds > 0.0);
        for s in &report.final_states {
            assert_eq!(s.iteration, 30);
        }
    }

    #[test]
    fn livelock_guard_reports_no_progress() {
        // The job can never reach its first checkpoint, so every restart
        // replays from scratch: the guard must fire before the (large)
        // attempt budget.
        let cfg = ExecutorConfig::new(4, 1.0)
            .node_mtbf(0.5)
            .checkpoint_interval(10.0)
            .checkpoint_cost(1.0)
            .restart_cost(1.0)
            .max_attempts(10_000)
            .no_progress_limit(6);
        let err = ResilientExecutor::new(cfg).run(&cg_app(32, 1000, 1.0)).unwrap_err();
        assert!(
            matches!(err, CoreError::NoProgress { attempts: 6 }),
            "expected the livelock guard, got: {err}"
        );
    }

    #[test]
    fn attempt_budget_enforced() {
        // Absurd MTBF: the job can never finish a checkpoint.
        let cfg = ExecutorConfig::new(4, 1.0)
            .node_mtbf(0.5)
            .checkpoint_interval(10.0)
            .checkpoint_cost(1.0)
            .restart_cost(1.0)
            .max_attempts(5);
        let err = ResilientExecutor::new(cfg).run(&cg_app(32, 1000, 1.0)).unwrap_err();
        assert!(matches!(err, CoreError::AttemptsExhausted { attempts: 5 }));
    }
}
