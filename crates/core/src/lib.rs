//! # redcr-core — combined partial redundancy + checkpoint/restart
//!
//! The paper's primary contribution, as a library: given an application, a
//! cluster, and a resource/time goal, **choose the redundancy degree `r`
//! and checkpoint interval `δ`** that minimize the expected cost
//! ([`planner`]), and **execute** the application under exactly that
//! configuration — transparent replication, coordinated checkpointing,
//! Poisson fault injection, and restart from the last checkpoint — on the
//! virtual-time runtime ([`executor`]).
//!
//! The executor reproduces the paper's experimental procedure (Section 5):
//!
//! 1. a failure injector samples per-physical-process failure times;
//! 2. the application runs (replicated) until the first replica *sphere*
//!    is completely dead;
//! 3. the whole job is then terminated and restarted from the last
//!    coordinated checkpoint, with spare nodes replacing the failed ones;
//! 4. a checkpointer writes coordinated checkpoints at a fixed virtual-time
//!    interval (Daly's `δ_opt` by default).
//!
//! # Example: plan, then run
//!
//! ```
//! use redcr_core::planner::Planner;
//! use redcr_model::units;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let plan = Planner::new()
//!     .virtual_processes(10_000)
//!     .base_time_hours(128.0)
//!     .node_mtbf_hours(units::hours_from_years(5.0))
//!     .comm_fraction(0.2)
//!     .checkpoint_cost_hours(units::hours_from_mins(5.0))
//!     .restart_cost_hours(units::hours_from_mins(10.0))
//!     .recommend()?;
//! assert!(plan.degree >= 1.0 && plan.degree <= 3.0);
//! println!(
//!     "run at {}x, checkpoint every {:.2} h, expect {:.1} h total",
//!     plan.degree, plan.checkpoint_interval, plan.predicted.total_time
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod config;
pub mod executor;
pub mod planner;
pub mod report;
pub mod validation;

pub use config::ExecutorConfig;
pub use executor::{ResilientApp, ResilientExecutor};
pub use planner::{Plan, Planner};
pub use report::ExecutionReport;
pub use validation::{ModelValidation, ValidationError};

mod error;

pub use error::CoreError;

/// Result alias for executor operations.
pub type Result<T> = std::result::Result<T, CoreError>;
