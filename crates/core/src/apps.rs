//! Ready-made [`ResilientApp`] adapters for the `redcr-apps` kernels.
//!
//! Each adapter wraps a kernel with a fixed iteration target and an
//! optional per-step compute pad (virtual seconds) that stretches the
//! runtime so failure injection and checkpoint cadence have something to
//! bite on — the same reason the paper's modified CG "was modified to run
//! longer by adding more iterations".

use redcr_apps::cg::{CgConfig, CgSolver, CgState};
use redcr_apps::ep::{EpConfig, EpKernel, EpState};
use redcr_apps::jacobi::{JacobiConfig, JacobiSolver, JacobiState};
use redcr_mpi::Communicator;

use crate::executor::ResilientApp;

/// Conjugate gradient as a resilient application.
#[derive(Debug, Clone)]
pub struct CgApp {
    solver: CgSolver,
    iterations: u64,
    pad_seconds: f64,
}

impl CgApp {
    /// Wraps a CG configuration with an iteration target.
    pub fn new(config: CgConfig, iterations: u64) -> Self {
        CgApp { solver: CgSolver::new(config), iterations, pad_seconds: 0.0 }
    }

    /// Adds `seconds` of synthetic compute per step (virtual time).
    pub fn with_step_pad(mut self, seconds: f64) -> Self {
        self.pad_seconds = seconds;
        self
    }

    /// The wrapped solver.
    pub fn solver(&self) -> &CgSolver {
        &self.solver
    }
}

impl ResilientApp for CgApp {
    type State = CgState;

    fn init<C: Communicator>(&self, comm: &C) -> redcr_mpi::Result<CgState> {
        self.solver.init_state(comm)
    }

    fn step<C: Communicator>(&self, comm: &C, state: &mut CgState) -> redcr_mpi::Result<()> {
        if self.pad_seconds > 0.0 {
            comm.compute(self.pad_seconds)?;
        }
        self.solver.step(comm, state)?;
        Ok(())
    }

    fn is_done(&self, state: &CgState) -> bool {
        state.iteration >= self.iterations
    }
}

/// The 1-D Jacobi sweep as a resilient application.
#[derive(Debug, Clone)]
pub struct JacobiApp {
    solver: JacobiSolver,
    iterations: u64,
    pad_seconds: f64,
}

impl JacobiApp {
    /// Wraps a Jacobi configuration with a sweep target.
    pub fn new(config: JacobiConfig, iterations: u64) -> Self {
        JacobiApp { solver: JacobiSolver::new(config), iterations, pad_seconds: 0.0 }
    }

    /// Adds `seconds` of synthetic compute per sweep (virtual time).
    pub fn with_step_pad(mut self, seconds: f64) -> Self {
        self.pad_seconds = seconds;
        self
    }
}

impl ResilientApp for JacobiApp {
    type State = JacobiState;

    fn init<C: Communicator>(&self, _comm: &C) -> redcr_mpi::Result<JacobiState> {
        Ok(self.solver.init_state())
    }

    fn step<C: Communicator>(&self, comm: &C, state: &mut JacobiState) -> redcr_mpi::Result<()> {
        if self.pad_seconds > 0.0 {
            comm.compute(self.pad_seconds)?;
        }
        self.solver.step(comm, state)?;
        Ok(())
    }

    fn is_done(&self, state: &JacobiState) -> bool {
        state.iteration >= self.iterations
    }
}

/// The embarrassingly parallel kernel as a resilient application.
#[derive(Debug, Clone)]
pub struct EpApp {
    kernel: EpKernel,
    batches: u64,
    pad_seconds: f64,
}

impl EpApp {
    /// Wraps an EP configuration with a batch target.
    pub fn new(config: EpConfig, batches: u64) -> Self {
        EpApp { kernel: EpKernel::new(config), batches, pad_seconds: 0.0 }
    }

    /// Adds `seconds` of synthetic compute per batch (virtual time).
    pub fn with_step_pad(mut self, seconds: f64) -> Self {
        self.pad_seconds = seconds;
        self
    }

    /// The wrapped kernel (e.g. for [`EpKernel::estimate`]).
    pub fn kernel(&self) -> &EpKernel {
        &self.kernel
    }
}

impl ResilientApp for EpApp {
    type State = EpState;

    fn init<C: Communicator>(&self, _comm: &C) -> redcr_mpi::Result<EpState> {
        Ok(self.kernel.init_state())
    }

    fn step<C: Communicator>(&self, comm: &C, state: &mut EpState) -> redcr_mpi::Result<()> {
        if self.pad_seconds > 0.0 {
            comm.compute(self.pad_seconds)?;
        }
        self.kernel.step(comm, state)
    }

    fn is_done(&self, state: &EpState) -> bool {
        state.batch >= self.batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExecutorConfig;
    use crate::executor::ResilientExecutor;
    use redcr_apps::compute::ComputeModel;

    #[test]
    fn cg_adapter_runs_under_failures() {
        let app = CgApp::new(CgConfig::small(24), 20).with_step_pad(1.0);
        let cfg = ExecutorConfig::new(3, 2.0)
            .node_mtbf(40.0)
            .checkpoint_interval(5.0)
            .checkpoint_cost(0.2)
            .restart_cost(0.5)
            .seed(4);
        let report = ResilientExecutor::new(cfg).run(&app).unwrap();
        for s in &report.final_states {
            assert_eq!(s.iteration, 20);
        }
    }

    #[test]
    fn jacobi_adapter_runs() {
        let app = JacobiApp::new(JacobiConfig::small(6), 15).with_step_pad(0.5);
        let report = ResilientExecutor::new(ExecutorConfig::new(2, 1.0)).run(&app).unwrap();
        assert_eq!(report.final_states[0].iteration, 15);
    }

    #[test]
    fn ep_adapter_estimates_pi_despite_restarts() {
        let app = EpApp::new(
            EpConfig { pairs_per_batch: 5_000, seed: 1, compute: ComputeModel::zero() },
            10,
        )
        .with_step_pad(1.0);
        let cfg = ExecutorConfig::new(4, 2.0)
            .node_mtbf(30.0)
            .checkpoint_interval(3.0)
            .checkpoint_cost(0.1)
            .restart_cost(0.5)
            .seed(8);
        let report = ResilientExecutor::new(cfg).run(&app).unwrap();
        let s = &report.final_states[0];
        let pi = 4.0 * s.inside as f64 / s.total as f64;
        // Single-rank slice of the estimate is still a π estimate.
        assert!((pi - std::f64::consts::PI).abs() < 0.1, "pi {pi}");
    }
}
