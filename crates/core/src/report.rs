//! Execution reports.

use std::fmt;

use redcr_fault::FailureTrace;
use redcr_red::stats::StatsSnapshot;

/// Everything a resilient execution produced.
#[derive(Debug)]
pub struct ExecutionReport<S> {
    /// Total simulated wallclock, virtual seconds (across all attempts,
    /// restarts and checkpoints).
    pub total_virtual_time: f64,
    /// Attempts performed (1 = failure-free).
    pub attempts: u64,
    /// Job failures endured (sphere deaths).
    pub failures: u64,
    /// Individual process fail-stops that were **masked** by redundancy:
    /// the process died but its sphere kept at least one live replica, so
    /// the attempt did not have to restart because of it.
    pub masked_failures: u64,
    /// Total virtual seconds spheres spent running **degraded** (at least
    /// one replica dead but the sphere still alive), summed over spheres
    /// and attempts.
    pub degraded_sphere_seconds: f64,
    /// Coordinated checkpoints committed in the final (successful) attempt
    /// history.
    pub checkpoints_committed: u64,
    /// Replicas respawned and rejoined by the self-healing layer, across
    /// all attempts. Zero unless
    /// [`ExecutorConfig::heal_policy`](crate::ExecutorConfig::heal_policy)
    /// heals.
    pub respawns: u64,
    /// Total heal latency, virtual seconds: for each respawn, the span
    /// from the replica's death to its rejoin commit, summed across all
    /// attempts.
    pub heal_latency_seconds: f64,
    /// Recovered voting-seconds: virtual seconds healed spheres spent back
    /// at full voting strength that they would have spent degraded (or
    /// dead) without healing, summed across all attempts.
    pub recovered_voting_seconds: f64,
    /// Aggregated replication-layer statistics across all attempts.
    pub replication: StatsSnapshot,
    /// Physical messages injected across all attempts.
    pub physical_messages: u64,
    /// Physical payload bytes injected.
    pub physical_bytes: u64,
    /// Physical processes used per attempt.
    pub n_physical: usize,
    /// Resource usage: physical processes × total time.
    pub node_seconds: f64,
    /// The failure injector's event log.
    pub failure_trace: FailureTrace,
    /// The flight-recorder trace, present iff
    /// [`ExecutorConfig::tracing`](crate::ExecutorConfig::tracing) was set.
    /// Feed it to [`redcr_mpi::trace::Analysis::analyze`] to rebuild
    /// per-attempt timelines and derived quantities.
    pub trace: Option<redcr_mpi::trace::Trace>,
    /// The metrics report (totals, per-rank counters and the scraped
    /// virtual-time series), present iff
    /// [`ExecutorConfig::metrics`](crate::ExecutorConfig::metrics) was set.
    pub metrics: Option<redcr_mpi::metrics::MetricsReport>,
    /// The wall-clock self-profile (per-scope span totals, counters and
    /// sampled tracks), present iff
    /// [`ExecutorConfig::profiling`](crate::ExecutorConfig::profiling) was
    /// set. Host-clock observations of the simulator itself; contains no
    /// virtual time and never influences it.
    pub profile: Option<redcr_mpi::prof::ProfReport>,
    /// Final application state of each virtual rank (primary replicas).
    pub final_states: Vec<S>,
}

impl<S> ExecutionReport<S> {
    /// Simulated wallclock in virtual hours.
    pub fn total_hours(&self) -> f64 {
        self.total_virtual_time / 3600.0
    }

    /// A one-screen human-readable summary: the [`Display`](fmt::Display)
    /// block plus, when the metrics plane ran, a compact metrics section
    /// (votes, checkpoint commit latency, message latency with
    /// p50/p90/p99 quantile estimates), plus, when the profiler ran, a
    /// one-line wall-clock parking summary.
    pub fn summarize(&self) -> String {
        use redcr_mpi::metrics::{CounterKey, HistKey};
        let mut out = self.to_string();
        if let Some(m) = &self.metrics {
            let t = &m.totals;
            out.push('\n');
            out.push_str(&format!(
                "  metrics          : {} sends / {} recvs across {} ranks ({} samples @ {} s)\n",
                t.counter(CounterKey::Sends),
                t.counter(CounterKey::Recvs),
                m.per_rank.len(),
                m.series.len(),
                m.scrape_interval,
            ));
            out.push_str(&format!(
                "  votes / commits  : {} votes (mean {:.3e} s), {} commits (mean {:.3e} s)\n",
                t.counter(CounterKey::Votes),
                t.histogram(HistKey::VoteLatency).mean(),
                t.counter(CounterKey::CheckpointCommits),
                t.histogram(HistKey::CommitLatency).mean(),
            ));
            let lat = t.histogram(HistKey::MessageLatency);
            out.push_str(&format!(
                "  message latency  : mean {:.3e} s over {} receives",
                lat.mean(),
                lat.count(),
            ));
            if let (Some(p50), Some(p90), Some(p99)) =
                (lat.quantile(0.5), lat.quantile(0.9), lat.quantile(0.99))
            {
                out.push_str(&format!(
                    "\n  latency quantiles: p50 {p50:.3e} s, p90 {p90:.3e} s, p99 {p99:.3e} s",
                ));
            }
        }
        if let Some(p) = &self.profile {
            out.push('\n');
            out.push_str("  profile          : ");
            out.push_str(&p.park_summary());
            out.push('\n');
            out.push_str("  scheduler        : ");
            out.push_str(&p.sched_summary());
        }
        out
    }
}

impl<S> fmt::Display for ExecutionReport<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "resilient execution report")?;
        writeln!(f, "  wallclock        : {:.3} virtual s", self.total_virtual_time)?;
        writeln!(f, "  attempts         : {} ({} failures)", self.attempts, self.failures)?;
        writeln!(
            f,
            "  masked failures  : {} ({:.3} degraded sphere-seconds)",
            self.masked_failures, self.degraded_sphere_seconds
        )?;
        writeln!(f, "  checkpoints      : {}", self.checkpoints_committed)?;
        if self.respawns > 0 {
            writeln!(
                f,
                "  respawns         : {} ({:.3} s heal latency, {:.3} s recovered voting)",
                self.respawns, self.heal_latency_seconds, self.recovered_voting_seconds
            )?;
        }
        writeln!(f, "  physical procs   : {}", self.n_physical)?;
        writeln!(f, "  node-seconds     : {:.3}", self.node_seconds)?;
        writeln!(
            f,
            "  phys messages    : {} ({} bytes)",
            self.physical_messages, self.physical_bytes
        )?;
        write!(
            f,
            "  msg amplification: {:.2}x, votes {} (mismatches {})",
            self.replication.send_amplification(),
            self.replication.votes,
            self.replication.mismatches_detected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_numbers() {
        let report: ExecutionReport<()> = ExecutionReport {
            total_virtual_time: 12.5,
            attempts: 3,
            failures: 2,
            masked_failures: 1,
            degraded_sphere_seconds: 0.5,
            checkpoints_committed: 4,
            respawns: 2,
            heal_latency_seconds: 1.25,
            recovered_voting_seconds: 3.5,
            replication: StatsSnapshot::default(),
            physical_messages: 100,
            physical_bytes: 1000,
            n_physical: 8,
            node_seconds: 100.0,
            failure_trace: FailureTrace::new(),
            trace: None,
            metrics: None,
            profile: None,
            final_states: vec![],
        };
        let s = report.to_string();
        assert!(s.contains("attempts"));
        assert!(s.contains('3'));
        assert!(s.contains("respawns"));
        assert!(s.contains("1.250"));
        assert!((report.total_hours() - 12.5 / 3600.0).abs() < 1e-15);
        // Without metrics, summarize() is exactly the Display block.
        assert_eq!(report.summarize(), s);
    }
}
