//! Distributed conjugate gradient — the paper's experimental workload.
//!
//! Solves `A·x = b` for a random sparse SPD matrix with a row-block
//! partition: every rank owns a contiguous block of rows and the matching
//! slices of the iteration vectors. Each iteration performs
//!
//! 1. an **allgather** of the search-direction blocks (the irregular
//!    long-distance exchange NPB CG is known for),
//! 2. a local sparse matvec over the owned rows,
//! 3. two scalar **allreduces** for the dot products.
//!
//! Like the paper's modified CG, the iteration count is fixed (the
//! benchmark repeats work to run long enough to attract failures) rather
//! than residual-driven — but the residual is tracked and must shrink.
//!
//! [`CgState`] is serde-serializable: it is exactly what a checkpoint
//! saves, and resuming from a restored state continues the solve
//! identically.

use serde::{Deserialize, Serialize};

use redcr_mpi::collectives::ReduceOp;
use redcr_mpi::{datatype, Communicator, Result};

use crate::compute::ComputeModel;
use crate::sparse::CsrMatrix;

/// Configuration of a CG run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CgConfig {
    /// Global problem dimension.
    pub n: usize,
    /// Approximate off-diagonal entries per row of the random SPD matrix.
    pub offdiag_per_row: usize,
    /// Matrix generator seed (all ranks/replicas must agree).
    pub seed: u64,
    /// Computation cost model.
    pub compute: ComputeModel,
}

impl CgConfig {
    /// A small functional-test configuration.
    pub fn small(n: usize) -> Self {
        CgConfig { n, offdiag_per_row: 4, seed: 0xC6, compute: ComputeModel::zero() }
    }
}

/// The solver: owns the (replicated, deterministic) matrix and partition.
#[derive(Debug, Clone)]
pub struct CgSolver {
    config: CgConfig,
    matrix: CsrMatrix,
}

/// The iteration state — what a checkpoint captures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CgState {
    /// Completed iterations.
    pub iteration: u64,
    /// Local block of the solution vector `x`.
    pub x: Vec<f64>,
    /// Local block of the residual `r`.
    pub r: Vec<f64>,
    /// Local block of the search direction `p`.
    pub p: Vec<f64>,
    /// Global `rᵀr` from the previous iteration.
    pub rho: f64,
}

impl CgState {
    /// The current residual norm `‖r‖₂ = √rho`.
    pub fn residual_norm(&self) -> f64 {
        self.rho.sqrt()
    }
}

/// Row range `[lo, hi)` owned by `rank` of `size` for dimension `n`.
pub fn block_range(n: usize, rank: usize, size: usize) -> (usize, usize) {
    let base = n / size;
    let extra = n % size;
    let lo = rank * base + rank.min(extra);
    let hi = lo + base + usize::from(rank < extra);
    (lo, hi)
}

impl CgSolver {
    /// Builds the solver (every rank constructs the same matrix
    /// deterministically from the seed).
    pub fn new(config: CgConfig) -> Self {
        let matrix = CsrMatrix::random_spd(config.n, config.offdiag_per_row, config.seed);
        CgSolver { config, matrix }
    }

    /// The configuration.
    pub fn config(&self) -> &CgConfig {
        &self.config
    }

    /// The (global) system matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }

    /// Initializes the CG state for this rank: `x = 0`, `r = p = b` with
    /// `b = (1, 1, …, 1)`. Performs one allreduce to establish `rho`.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (abort).
    pub fn init_state<C: Communicator>(&self, comm: &C) -> Result<CgState> {
        let (lo, hi) = block_range(self.config.n, comm.rank().index(), comm.size());
        let local = hi - lo;
        let b = vec![1.0; local];
        let local_dot: f64 = b.iter().map(|v| v * v).sum();
        let rho = comm.allreduce_f64(&[local_dot], ReduceOp::Sum)?[0];
        Ok(CgState { iteration: 0, x: vec![0.0; local], r: b.clone(), p: b, rho })
    }

    /// Performs one CG iteration, advancing both the numerical state and
    /// the rank's virtual clock (compute + communication). Returns the new
    /// residual norm.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (abort).
    pub fn step<C: Communicator>(&self, comm: &C, state: &mut CgState) -> Result<f64> {
        let n = self.config.n;
        let size = comm.size();
        let me = comm.rank().index();
        let (lo, hi) = block_range(n, me, size);
        debug_assert_eq!(state.p.len(), hi - lo);

        // 1. Assemble the full search direction p (irregular exchange).
        let parts = comm.allgather(datatype::f64s_to_bytes(&state.p))?;
        let mut p_full = Vec::with_capacity(n);
        for part in &parts {
            p_full.extend(datatype::decode_f64s(part)?);
        }
        debug_assert_eq!(p_full.len(), n);

        // 2. Local sparse matvec q = A p over the owned rows.
        let (q, flops) = self.matrix.matvec_block(&p_full, lo, hi);
        comm.compute(self.config.compute.cost(flops))?;

        // 3. alpha = rho / (p q).
        let local_pq: f64 = state.p.iter().zip(&q).map(|(a, b)| a * b).sum();
        let pq = comm.allreduce_f64(&[local_pq], ReduceOp::Sum)?[0];
        let alpha = state.rho / pq;

        // 4. Update x, r locally.
        for ((x, r), (p, q)) in
            state.x.iter_mut().zip(state.r.iter_mut()).zip(state.p.iter().zip(&q))
        {
            *x += alpha * p;
            *r -= alpha * q;
        }
        comm.compute(self.config.compute.cost(4 * (hi - lo) as u64))?;

        // 5. rho' = r r; beta; p = r + beta p.
        let local_rr: f64 = state.r.iter().map(|v| v * v).sum();
        let rho_new = comm.allreduce_f64(&[local_rr], ReduceOp::Sum)?[0];
        let beta = rho_new / state.rho;
        for (p, r) in state.p.iter_mut().zip(&state.r) {
            *p = r + beta * *p;
        }
        comm.compute(self.config.compute.cost(4 * (hi - lo) as u64))?;

        state.rho = rho_new;
        state.iteration += 1;
        Ok(rho_new.sqrt())
    }

    /// Runs `iterations` steps from `state` (used directly by tests and by
    /// the resilient executor between checkpoints).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (abort).
    pub fn run<C: Communicator>(
        &self,
        comm: &C,
        state: &mut CgState,
        iterations: u64,
    ) -> Result<f64> {
        let mut res = state.residual_norm();
        for _ in 0..iterations {
            res = self.step(comm, state)?;
        }
        Ok(res)
    }

    /// Verifies `A·x ≈ b` for the assembled solution (gathers `x`);
    /// returns the max abs error on every rank.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (abort).
    pub fn verify<C: Communicator>(&self, comm: &C, state: &CgState) -> Result<f64> {
        let parts = comm.allgather(datatype::f64s_to_bytes(&state.x))?;
        let mut x_full = Vec::with_capacity(self.config.n);
        for part in &parts {
            x_full.extend(datatype::decode_f64s(part)?);
        }
        let (ax, _) = self.matrix.matvec_block(&x_full, 0, self.config.n);
        let err = ax.iter().map(|v| (v - 1.0).abs()).fold(0.0, f64::max);
        Ok(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcr_mpi::{CostModel, World};

    #[test]
    fn block_range_partitions_exactly() {
        for n in [1usize, 7, 64, 100] {
            for size in [1usize, 2, 3, 7, 16] {
                let mut covered = 0;
                for rank in 0..size {
                    let (lo, hi) = block_range(n, rank, size);
                    assert_eq!(lo, covered, "n={n} size={size} rank={rank}");
                    covered = hi;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn cg_converges_single_rank() {
        let solver = CgSolver::new(CgConfig::small(50));
        World::builder(1)
            .cost_model(CostModel::zero())
            .run(|comm| {
                let mut state = solver.init_state(comm)?;
                let initial = state.residual_norm();
                let final_res = solver.run(comm, &mut state, 30)?;
                assert!(final_res < initial * 1e-6, "res {final_res} vs {initial}");
                let err = solver.verify(comm, &state)?;
                assert!(err < 1e-6, "solution error {err}");
                Ok(())
            })
            .unwrap()
            .into_results()
            .unwrap();
    }

    #[test]
    fn cg_distributed_matches_single_rank() {
        let cfg = CgConfig::small(60);
        let run_with = |ranks: usize| {
            let solver = CgSolver::new(cfg.clone());
            World::builder(ranks)
                .cost_model(CostModel::zero())
                .run(move |comm| {
                    let mut state = solver.init_state(comm)?;
                    solver.run(comm, &mut state, 15)?;
                    Ok((state.rho, state.x))
                })
                .unwrap()
                .into_results()
                .unwrap()
        };
        let single = run_with(1);
        let multi = run_with(4);
        // Same rho (deterministic reduction trees differ between world
        // sizes, so allow tiny float drift).
        let rel = (single[0].0 - multi[0].0).abs() / single[0].0.abs().max(1e-300);
        assert!(rel < 1e-9, "rho diverged: {} vs {}", single[0].0, multi[0].0);
        // Concatenated solution blocks match.
        let x_multi: Vec<f64> = multi.iter().flat_map(|(_, x)| x.iter().copied()).collect();
        for (a, b) in single[0].1.iter().zip(&x_multi) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn state_round_trips_through_checkpoint_codec() {
        let solver = CgSolver::new(CgConfig::small(40));
        World::builder(2)
            .cost_model(CostModel::zero())
            .run(|comm| {
                let mut state = solver.init_state(comm)?;
                solver.run(comm, &mut state, 5)?;
                let bytes = redcr_ckpt::to_bytes(&state).expect("serialize");
                let restored: CgState = redcr_ckpt::from_bytes(&bytes).expect("deserialize");
                assert_eq!(restored, state);
                // Continue from the restored state: identical trajectory.
                let mut a = state.clone();
                let mut b = restored;
                solver.step(comm, &mut a)?;
                solver.step(comm, &mut b)?;
                assert_eq!(a, b);
                Ok(())
            })
            .unwrap()
            .into_results()
            .unwrap();
    }

    #[test]
    fn virtual_time_advances_with_compute_model() {
        let mut cfg = CgConfig::small(64);
        cfg.compute = ComputeModel { secs_per_flop: 1e-6 };
        let solver = CgSolver::new(cfg);
        let report = World::builder(2)
            .cost_model(CostModel::zero())
            .run(|comm| {
                let mut state = solver.init_state(comm)?;
                solver.run(comm, &mut state, 3)?;
                Ok(())
            })
            .unwrap();
        assert!(report.max_virtual_time > 0.0);
    }
}
