//! A 1-D Jacobi sweep (Laplace relaxation) with halo exchange — a
//! neighbour-communication workload with a lower communication fraction
//! than CG.

use serde::{Deserialize, Serialize};

use redcr_mpi::collectives::ReduceOp;
use redcr_mpi::{Communicator, Rank, Result, Tag};

use crate::compute::ComputeModel;

/// Halo-exchange tags.
const HALO_LEFT: u64 = 100;
const HALO_RIGHT: u64 = 101;

/// Configuration of a Jacobi run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JacobiConfig {
    /// Grid points per rank (interior).
    pub points_per_rank: usize,
    /// Boundary values at the global left/right ends.
    pub left_boundary: f64,
    /// Right end boundary value.
    pub right_boundary: f64,
    /// Computation cost model.
    pub compute: ComputeModel,
}

impl JacobiConfig {
    /// A small functional-test configuration.
    pub fn small(points_per_rank: usize) -> Self {
        JacobiConfig {
            points_per_rank,
            left_boundary: 0.0,
            right_boundary: 1.0,
            compute: ComputeModel::zero(),
        }
    }
}

/// Serializable Jacobi state (one rank's grid slice).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JacobiState {
    /// Completed sweeps.
    pub iteration: u64,
    /// The rank's interior points.
    pub u: Vec<f64>,
}

/// The Jacobi solver.
#[derive(Debug, Clone)]
pub struct JacobiSolver {
    config: JacobiConfig,
}

impl JacobiSolver {
    /// Creates a solver.
    pub fn new(config: JacobiConfig) -> Self {
        JacobiSolver { config }
    }

    /// The configuration.
    pub fn config(&self) -> &JacobiConfig {
        &self.config
    }

    /// Initial state: all zeros.
    pub fn init_state(&self) -> JacobiState {
        JacobiState { iteration: 0, u: vec![0.0; self.config.points_per_rank] }
    }

    /// One sweep: exchange halos with neighbours, relax every interior
    /// point, and return the global max update (via allreduce).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (abort).
    pub fn step<C: Communicator>(&self, comm: &C, state: &mut JacobiState) -> Result<f64> {
        let me = comm.rank().index();
        let n = comm.size();
        let local = &state.u;
        let m = local.len();

        // Exchange halo values (eager sends never deadlock).
        if me > 0 {
            comm.send_f64s(Rank::new((me - 1) as u32), Tag::new(HALO_LEFT), &[local[0]])?;
        }
        if me + 1 < n {
            comm.send_f64s(Rank::new((me + 1) as u32), Tag::new(HALO_RIGHT), &[local[m - 1]])?;
        }
        let left = if me > 0 {
            comm.recv_f64s(Rank::new((me - 1) as u32).into(), Tag::new(HALO_RIGHT).into())?.0[0]
        } else {
            self.config.left_boundary
        };
        let right = if me + 1 < n {
            comm.recv_f64s(Rank::new((me + 1) as u32).into(), Tag::new(HALO_LEFT).into())?.0[0]
        } else {
            self.config.right_boundary
        };

        // Relax.
        let mut next = Vec::with_capacity(m);
        let mut max_delta = 0.0f64;
        for i in 0..m {
            let l = if i == 0 { left } else { local[i - 1] };
            let r = if i + 1 == m { right } else { local[i + 1] };
            let v = 0.5 * (l + r);
            max_delta = max_delta.max((v - local[i]).abs());
            next.push(v);
        }
        comm.compute(self.config.compute.cost(3 * m as u64))?;
        state.u = next;
        state.iteration += 1;

        let global = comm.allreduce_f64(&[max_delta], ReduceOp::Max)?;
        Ok(global[0])
    }

    /// Runs `iterations` sweeps.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (abort).
    pub fn run<C: Communicator>(
        &self,
        comm: &C,
        state: &mut JacobiState,
        iterations: u64,
    ) -> Result<f64> {
        let mut delta = f64::INFINITY;
        for _ in 0..iterations {
            delta = self.step(comm, state)?;
        }
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcr_mpi::{CostModel, World};

    #[test]
    fn converges_to_linear_profile() {
        // Laplace in 1-D with boundaries 0 and 1 converges to a straight
        // line.
        let solver = JacobiSolver::new(JacobiConfig::small(8));
        let report = World::builder(4)
            .cost_model(CostModel::zero())
            .run(|comm| {
                let mut state = solver.init_state();
                let delta = solver.run(comm, &mut state, 3000)?;
                assert!(delta < 1e-8, "not converged: {delta}");
                Ok(state.u)
            })
            .unwrap();
        let blocks = report.into_results().unwrap();
        let all: Vec<f64> = blocks.into_iter().flatten().collect();
        let total = all.len();
        for (i, v) in all.iter().enumerate() {
            let expect = (i + 1) as f64 / (total + 1) as f64;
            assert!((v - expect).abs() < 1e-4, "point {i}: {v} vs {expect}");
        }
    }

    #[test]
    fn deltas_monotumble_toward_zero() {
        let solver = JacobiSolver::new(JacobiConfig::small(16));
        World::builder(2)
            .cost_model(CostModel::zero())
            .run(|comm| {
                let mut state = solver.init_state();
                let d1 = solver.run(comm, &mut state, 10)?;
                let d2 = solver.run(comm, &mut state, 100)?;
                assert!(d2 < d1);
                Ok(())
            })
            .unwrap()
            .into_results()
            .unwrap();
    }

    #[test]
    fn state_serializable() {
        let solver = JacobiSolver::new(JacobiConfig::small(4));
        let state = solver.init_state();
        let bytes = redcr_ckpt::to_bytes(&state).unwrap();
        let back: JacobiState = redcr_ckpt::from_bytes(&bytes).unwrap();
        assert_eq!(back, state);
    }
}
