//! Sparse matrices in CSR form and the NPB-CG-style random symmetric
//! positive-definite generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A sparse matrix in compressed-sparse-row format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from per-row `(column, value)` lists.
    ///
    /// # Panics
    ///
    /// Panics if any column index is out of range or a row's columns are
    /// not strictly increasing.
    pub fn from_rows(n: usize, rows: &[Vec<(usize, f64)>]) -> Self {
        assert_eq!(rows.len(), n, "need exactly n rows");
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in rows {
            let mut last: Option<usize> = None;
            for &(c, v) in row {
                assert!(c < n, "column {c} out of range");
                assert!(last.is_none_or(|l| c > l), "columns must be strictly increasing");
                last = Some(c);
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix { n, row_ptr, col_idx, values }
    }

    /// Dimension `n` (square matrices only).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(columns, values)` of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Dense `y = A·x` for the row range `[row_lo, row_hi)` only (the
    /// row-block matvec a rank performs). `x` must be the full vector.
    ///
    /// Returns the local block `y[row_lo..row_hi]` and the flop count.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n` or the range is invalid.
    pub fn matvec_block(&self, x: &[f64], row_lo: usize, row_hi: usize) -> (Vec<f64>, u64) {
        assert_eq!(x.len(), self.n);
        assert!(row_lo <= row_hi && row_hi <= self.n);
        let mut y = Vec::with_capacity(row_hi - row_lo);
        let mut flops = 0u64;
        for i in row_lo..row_hi {
            let (cols, vals) = self.row(i);
            let mut acc = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                acc += v * x[*c];
            }
            flops += 2 * cols.len() as u64;
            y.push(acc);
        }
        (y, flops)
    }

    /// Whether the matrix is symmetric (structurally and numerically).
    pub fn is_symmetric(&self) -> bool {
        for i in 0..self.n {
            let (cols, vals) = self.row(i);
            for (c, v) in cols.iter().zip(vals) {
                let (rc, rv) = self.row(*c);
                match rc.binary_search(&i) {
                    Ok(pos) => {
                        if (rv[pos] - v).abs() > 1e-12 {
                            return false;
                        }
                    }
                    Err(_) => return false,
                }
            }
        }
        true
    }

    /// Whether the matrix is strictly diagonally dominant (a sufficient
    /// condition for positive definiteness of a symmetric matrix with
    /// positive diagonal).
    pub fn is_diagonally_dominant(&self) -> bool {
        for i in 0..self.n {
            let (cols, vals) = self.row(i);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (c, v) in cols.iter().zip(vals) {
                if *c == i {
                    diag = *v;
                } else {
                    off += v.abs();
                }
            }
            if diag <= off {
                return false;
            }
        }
        true
    }

    /// Generates a random sparse symmetric strictly-diagonally-dominant
    /// (hence SPD) matrix in the spirit of the NPB CG input: `n` rows,
    /// about `offdiag_per_row` random off-diagonal entries per row placed
    /// irregularly across the full column space (this irregularity is what
    /// makes CG's communication "long distance").
    ///
    /// Deterministic for a given `(n, offdiag_per_row, seed)`, so every
    /// replica builds bitwise the same matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random_spd(n: usize, offdiag_per_row: usize, seed: u64) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        // Collect symmetric off-diagonal entries per row.
        let mut entries: Vec<std::collections::BTreeMap<usize, f64>> =
            vec![std::collections::BTreeMap::new(); n];
        for i in 0..n {
            for _ in 0..offdiag_per_row {
                let j = rng.gen_range(0..n);
                if j == i {
                    continue;
                }
                let v = rng.gen_range(-1.0..1.0);
                entries[i].insert(j, v);
                entries[j].insert(i, v);
            }
        }
        // Diagonal = 1 + sum of |off-diagonal| in the row: strict dominance.
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        for (i, row) in entries.into_iter().enumerate() {
            let off_sum: f64 = row.values().map(|v| v.abs()).sum();
            let mut r: Vec<(usize, f64)> = row.into_iter().collect();
            let diag = 1.0 + off_sum;
            let pos = r.iter().position(|(c, _)| *c >= i).unwrap_or(r.len());
            r.insert(pos, (i, diag));
            rows.push(r);
        }
        CsrMatrix::from_rows(n, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_access() {
        let m = CsrMatrix::from_rows(
            3,
            &[vec![(0, 2.0), (2, 1.0)], vec![(1, 3.0)], vec![(0, 1.0), (2, 4.0)]],
        );
        assert_eq!(m.n(), 3);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row(0), (&[0usize, 2][..], &[2.0, 1.0][..]));
        assert_eq!(m.row(1), (&[1usize][..], &[3.0][..]));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_columns() {
        let _ = CsrMatrix::from_rows(2, &[vec![(1, 1.0), (0, 1.0)], vec![]]);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = CsrMatrix::from_rows(
            3,
            &[vec![(0, 2.0), (2, 1.0)], vec![(1, 3.0)], vec![(0, 1.0), (2, 4.0)]],
        );
        let x = vec![1.0, 2.0, 3.0];
        let (y, flops) = m.matvec_block(&x, 0, 3);
        assert_eq!(y, vec![2.0 + 3.0, 6.0, 1.0 + 12.0]);
        assert_eq!(flops, 10);
        // Block extraction.
        let (y1, _) = m.matvec_block(&x, 1, 2);
        assert_eq!(y1, vec![6.0]);
    }

    #[test]
    fn random_spd_properties() {
        let m = CsrMatrix::random_spd(100, 4, 12345);
        assert!(m.is_symmetric());
        assert!(m.is_diagonally_dominant());
        assert!(m.nnz() >= 100, "at least the diagonal");
    }

    #[test]
    fn random_spd_deterministic() {
        let a = CsrMatrix::random_spd(64, 3, 9);
        let b = CsrMatrix::random_spd(64, 3, 9);
        assert_eq!(a, b);
        let c = CsrMatrix::random_spd(64, 3, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn single_row_matrix() {
        let m = CsrMatrix::random_spd(1, 3, 0);
        assert_eq!(m.n(), 1);
        let (y, _) = m.matvec_block(&[2.0], 0, 1);
        assert_eq!(y.len(), 1);
    }
}
