//! An embarrassingly parallel kernel (NPB "EP"-style): per-rank
//! pseudo-random accumulation with a single final reduction. Its
//! communication fraction is essentially zero, the opposite end of the `α`
//! spectrum from CG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use redcr_mpi::collectives::ReduceOp;
use redcr_mpi::{Communicator, Result};

use crate::compute::ComputeModel;

/// Configuration of an EP run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpConfig {
    /// Random pairs evaluated per rank per batch.
    pub pairs_per_batch: u64,
    /// Base RNG seed (combined with the rank).
    pub seed: u64,
    /// Computation cost model.
    pub compute: ComputeModel,
}

/// Serializable EP state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpState {
    /// Completed batches.
    pub batch: u64,
    /// Count of points inside the unit circle so far (Monte-Carlo π).
    pub inside: u64,
    /// Total points so far.
    pub total: u64,
}

/// The EP kernel: Monte-Carlo estimation of π, one batch at a time.
#[derive(Debug, Clone)]
pub struct EpKernel {
    config: EpConfig,
}

impl EpKernel {
    /// Creates the kernel.
    pub fn new(config: EpConfig) -> Self {
        EpKernel { config }
    }

    /// Fresh state.
    pub fn init_state(&self) -> EpState {
        EpState { batch: 0, inside: 0, total: 0 }
    }

    /// Runs one batch of local random evaluation (no communication).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (abort).
    pub fn step<C: Communicator>(&self, comm: &C, state: &mut EpState) -> Result<()> {
        // Seed derived from (seed, rank, batch): deterministic and
        // replica-identical, yet fresh per batch.
        let seed = self
            .config
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(comm.rank().as_u32() as u64)
            .wrapping_add(state.batch << 32);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inside = 0u64;
        for _ in 0..self.config.pairs_per_batch {
            let x: f64 = rng.gen();
            let y: f64 = rng.gen();
            if x * x + y * y <= 1.0 {
                inside += 1;
            }
        }
        comm.compute(self.config.compute.cost(4 * self.config.pairs_per_batch))?;
        state.inside += inside;
        state.total += self.config.pairs_per_batch;
        state.batch += 1;
        Ok(())
    }

    /// Reduces the global π estimate (one collective).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (abort).
    pub fn estimate<C: Communicator>(&self, comm: &C, state: &EpState) -> Result<f64> {
        let sums = comm.allreduce_f64(&[state.inside as f64, state.total as f64], ReduceOp::Sum)?;
        Ok(4.0 * sums[0] / sums[1].max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redcr_mpi::{CostModel, World};

    fn config() -> EpConfig {
        EpConfig { pairs_per_batch: 20_000, seed: 7, compute: ComputeModel::zero() }
    }

    #[test]
    fn estimates_pi() {
        let kernel = EpKernel::new(config());
        let report = World::builder(4)
            .cost_model(CostModel::zero())
            .run(|comm| {
                let mut state = kernel.init_state();
                for _ in 0..5 {
                    kernel.step(comm, &mut state)?;
                }
                kernel.estimate(comm, &state)
            })
            .unwrap();
        for pi in report.into_results().unwrap() {
            assert!((pi - std::f64::consts::PI).abs() < 0.02, "pi estimate {pi}");
        }
    }

    #[test]
    fn batches_are_deterministic_but_distinct() {
        let kernel = EpKernel::new(config());
        World::builder(1)
            .cost_model(CostModel::zero())
            .run(|comm| {
                let mut a = kernel.init_state();
                kernel.step(comm, &mut a)?;
                let first = a.inside;
                kernel.step(comm, &mut a)?;
                let second = a.inside - first;
                assert_ne!(first, second, "independent batches");
                // Re-running batch 0 reproduces it exactly.
                let mut b = kernel.init_state();
                kernel.step(comm, &mut b)?;
                assert_eq!(b.inside, first);
                Ok(())
            })
            .unwrap()
            .into_results()
            .unwrap();
    }

    #[test]
    fn state_serializable() {
        let s = EpState { batch: 3, inside: 100, total: 400 };
        let bytes = redcr_ckpt::to_bytes(&s).unwrap();
        let back: EpState = redcr_ckpt::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
    }
}
