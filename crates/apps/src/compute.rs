//! Computation cost model: converts floating-point work into virtual time.

use serde::{Deserialize, Serialize};

/// Converts flop counts into virtual seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    /// Seconds per floating-point operation (1 / sustained flop rate).
    pub secs_per_flop: f64,
}

impl ComputeModel {
    /// A 2010s-era Opteron-like core: ~2 Gflop/s sustained on sparse
    /// kernels.
    pub fn opteron_core() -> Self {
        ComputeModel { secs_per_flop: 0.5e-9 }
    }

    /// Zero-cost computation (functional tests).
    pub fn zero() -> Self {
        ComputeModel { secs_per_flop: 0.0 }
    }

    /// Virtual seconds for `flops` floating-point operations.
    pub fn cost(&self, flops: u64) -> f64 {
        flops as f64 * self.secs_per_flop
    }
}

impl Default for ComputeModel {
    fn default() -> Self {
        Self::opteron_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_linearly() {
        let m = ComputeModel { secs_per_flop: 1e-9 };
        assert_eq!(m.cost(0), 0.0);
        assert!((m.cost(2_000_000_000) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_opteron() {
        assert_eq!(ComputeModel::default(), ComputeModel::opteron_core());
    }
}
