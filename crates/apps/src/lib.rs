//! # redcr-apps — NPB-style distributed kernels over `redcr-mpi`
//!
//! The paper's experiments run a modified NPB **CG** (conjugate gradient)
//! benchmark — "typical of unstructured grid computations … irregular long
//! distance communication, unstructured matrix vector multiplication" —
//! under the RedMPI replication layer with BLCR checkpointing. This crate
//! provides that workload and two companions with different
//! communication/computation ratios `α`:
//!
//! * [`cg`] — a distributed conjugate-gradient solver on a random sparse
//!   symmetric positive-definite matrix (row-block partition, per-iteration
//!   allgather + allreduces). The paper measures `α ≈ 0.2` for CG; the
//!   [`compute::ComputeModel`] plus the runtime's
//!   [`CostModel`](redcr_mpi::CostModel) let benches calibrate the same
//!   ratio.
//! * [`jacobi`] — a 1-D Jacobi/Laplace sweep with halo exchange (neighbour
//!   communication, lower `α`).
//! * [`ep`] — an embarrassingly parallel kernel (`α ≈ 0`).
//! * [`workload`] — helpers to measure the realized `α` of any kernel.
//!
//! All kernels are generic over [`Communicator`](redcr_mpi::Communicator),
//! so they run identically on the plain runtime and under the replication
//! layer, and their states are `serde`-serializable for checkpointing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cg;
pub mod compute;
pub mod ep;
pub mod jacobi;
pub mod sparse;
pub mod workload;

pub use cg::{CgConfig, CgSolver, CgState};
pub use compute::ComputeModel;
pub use sparse::CsrMatrix;
