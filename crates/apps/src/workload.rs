//! Workload characterization: measuring the communication/computation
//! ratio `α` that parameterizes the paper's Eq. 1.

use redcr_mpi::{CostModel, Result, World};

use crate::cg::{CgConfig, CgSolver};
use crate::compute::ComputeModel;

/// Result of an `α` calibration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaMeasurement {
    /// Mean observed communication fraction across ranks.
    pub alpha: f64,
    /// Total virtual runtime of the probe, seconds.
    pub virtual_time: f64,
}

/// Measures the observed `α` of a CG configuration at redundancy 1 by
/// running `iterations` iterations on `ranks` ranks under the given cost
/// models.
///
/// # Errors
///
/// Propagates runtime errors.
pub fn measure_cg_alpha(
    ranks: usize,
    cfg: &CgConfig,
    cost: CostModel,
    iterations: u64,
) -> Result<AlphaMeasurement> {
    let solver = CgSolver::new(cfg.clone());
    let report = World::builder(ranks).cost_model(cost).run(move |comm| {
        let mut state = solver.init_state(comm)?;
        solver.run(comm, &mut state, iterations)?;
        Ok(())
    })?;
    Ok(AlphaMeasurement {
        alpha: report.mean_comm_fraction(),
        virtual_time: report.max_virtual_time,
    })
}

/// Searches (by bisection on the per-flop cost) for a [`ComputeModel`] that
/// makes the CG workload exhibit approximately `target_alpha` under `cost`.
/// Returns the calibrated model and the achieved measurement.
///
/// # Errors
///
/// Propagates runtime errors from the probe runs.
pub fn calibrate_cg_alpha(
    ranks: usize,
    base: &CgConfig,
    cost: CostModel,
    iterations: u64,
    target_alpha: f64,
) -> Result<(ComputeModel, AlphaMeasurement)> {
    // alpha decreases as computation gets more expensive; bisection over
    // log(secs_per_flop).
    let mut lo = 1e-12f64; // fast cpu -> high alpha
    let mut hi = 1e-3f64; // slow cpu -> low alpha
    let mut best = (
        ComputeModel { secs_per_flop: lo },
        AlphaMeasurement { alpha: f64::NAN, virtual_time: 0.0 },
    );
    for _ in 0..24 {
        let mid = (lo.ln() + hi.ln()) / 2.0;
        let model = ComputeModel { secs_per_flop: mid.exp() };
        let mut cfg = base.clone();
        cfg.compute = model;
        let m = measure_cg_alpha(ranks, &cfg, cost, iterations)?;
        best = (model, m);
        if m.alpha > target_alpha {
            // Too much communication: make compute more expensive.
            lo = model.secs_per_flop;
        } else {
            hi = model.secs_per_flop;
        }
        if (m.alpha - target_alpha).abs() < 0.002 {
            break;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_decreases_with_compute_cost() {
        let mut cfg = CgConfig::small(64);
        let cost = CostModel::infiniband_qdr();
        cfg.compute = ComputeModel { secs_per_flop: 1e-11 };
        let fast = measure_cg_alpha(4, &cfg, cost, 5).unwrap();
        cfg.compute = ComputeModel { secs_per_flop: 1e-6 };
        let slow = measure_cg_alpha(4, &cfg, cost, 5).unwrap();
        assert!(fast.alpha > slow.alpha, "fast {} slow {}", fast.alpha, slow.alpha);
        assert!(slow.alpha < 0.2, "slow alpha {}", slow.alpha);
        assert!(fast.alpha > 0.9, "fast alpha {}", fast.alpha);
    }

    #[test]
    fn calibration_hits_target() {
        let cfg = CgConfig::small(96);
        let (model, m) = calibrate_cg_alpha(4, &cfg, CostModel::infiniband_qdr(), 5, 0.2).unwrap();
        assert!(model.secs_per_flop > 0.0);
        assert!((m.alpha - 0.2).abs() < 0.05, "calibrated alpha {}", m.alpha);
    }
}
