//! # redcr-trace — a virtual-time flight recorder for the redcr stack
//!
//! Every layer of the reproduction — the message runtime (`redcr-mpi`), the
//! replication layer (`redcr-red`), the checkpoint coordinator
//! (`redcr-ckpt`) and the resilient executor (`redcr-core`) — emits
//! structured, virtual-time-stamped [`Event`]s into a per-rank [`Recorder`]
//! that is merged into a shared [`Collector`] at world teardown, the same
//! rank-thread-local pattern the replication statistics use. The resulting
//! [`Trace`] can be exported as JSONL (one event per line) and replayed by
//! the [`analyzer`], which reconstructs per-attempt, per-rank timelines and
//! derives the paper's measured quantities — observed communication
//! fraction `α` per rank, checkpoint commit latency, degraded-sphere
//! intervals, and lost work per failure — from the events alone, so the
//! derived totals can be cross-checked against the executor's hand-kept
//! counters.
//!
//! ## Virtual-time semantics
//!
//! Event times are **virtual seconds** on the emitting rank's clock
//! (absolute, i.e. including the resume offset of restarted attempts).
//! Events that participate in the executor's accounting additionally carry
//! the **relative** times the executor itself compared
//! ([`EventKind::Injected::rel`], [`EventKind::AttemptEnd::rel_failure`],
//! [`EventKind::AttemptEnd::rel_end`]) so the analyzer reproduces the exact
//! same `f64` comparisons — no re-derived rounding can flip an inclusive
//! boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod critical;
mod event;
pub mod heal;
mod jsonl;
pub mod perfetto;
mod recorder;

pub use analyzer::{Analysis, AnalyzeError, AttemptSummary, DerivedTotals};
pub use critical::{AttemptPath, Blame, CriticalPath, PathStep, RankBlame};
pub use event::{Event, EventKind};
pub use jsonl::TraceError;
pub use perfetto::{CounterTrack, PerfettoSummary};
pub use recorder::{Collector, Recorder, Trace};
