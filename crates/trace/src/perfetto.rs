//! Chrome/Perfetto `trace_event` JSON export of a [`Trace`].
//!
//! [`export`] renders a flight-recorder trace as a JSON array in the
//! [Trace Event Format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! that both `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! open directly:
//!
//! - one **track per physical rank** (thread `rank + 1` of process 0),
//!   named with the rank's sphere and replica index, plus an `executor`
//!   track (thread 0) carrying one slice per attempt;
//! - `X` (complete) slices for attempts and for `CheckpointBegin` →
//!   `CheckpointCommit` windows on each rank;
//! - `i` (instant) markers for deaths, scheduled fail-stops, wildcard
//!   leader failovers and checkpoint restores;
//! - **flow arrows** (`s`/`f` pairs bound to 1 µs `send`/`recv` slices)
//!   for every matched physical message, paired FIFO per
//!   `(sender, receiver)` channel within an attempt.
//!
//! Timestamps are **virtual microseconds** (virtual seconds × 10⁶), so the
//! Perfetto timeline reads directly in the paper's virtual time.
//!
//! [`validate`] re-parses an emitted document with a small self-contained
//! JSON reader (the workspace vendors no JSON library) and checks the
//! structural invariants above, returning a [`PerfettoSummary`] of what it
//! found — the CI smoke test and the acceptance tests run every export
//! through it.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::analyzer::{Analysis, AnalyzeError};
use crate::event::EventKind;
use crate::recorder::Trace;

/// Virtual seconds → trace microseconds.
const US: f64 = 1e6;

/// A wall-clock counter track to merge into an export as Perfetto `C`
/// (counter) events — the bridge between the wall-clock profiling plane
/// and the virtual-time trace. Defined here as a plain data carrier so the
/// trace crate needs no dependency on the profiler; callers map from
/// `redcr_prof::CounterTrackData`.
///
/// Counter timestamps are **wall microseconds since the profiler's
/// origin**, a different time base from the virtual-time tracks; the
/// export therefore parks counters in their own process (`pid` 1, named
/// `"redcr-prof (wall-clock)"`) so the two planes never read as one
/// timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterTrack {
    /// Shard label the samples came from (`"rank3"`, `"driver"`, …).
    pub scope: String,
    /// Counter name (`"queue_depth"`, `"parks"`, …).
    pub name: &'static str,
    /// `(wall nanoseconds since origin, value)` samples, ascending.
    pub samples: Vec<(u64, f64)>,
}

/// Renders `trace` as a Chrome `trace_event` JSON array.
///
/// The trace is replayed through [`Analysis::analyze`] first (for sphere
/// membership and attempt brackets), so a structurally broken trace is
/// rejected instead of exported.
///
/// # Errors
///
/// Returns the [`AnalyzeError`] of the underlying replay when the trace is
/// malformed.
pub fn export(trace: &Trace) -> Result<String, AnalyzeError> {
    export_with_counters(trace, &[])
}

/// [`export`] plus wall-clock [`CounterTrack`]s merged in as `C` events
/// under a dedicated profiler process (see [`CounterTrack`] for the
/// time-base contract). With an empty `counters` slice the output is
/// byte-identical to [`export`].
///
/// # Errors
///
/// Returns the [`AnalyzeError`] of the underlying replay when the trace is
/// malformed.
pub fn export_with_counters(
    trace: &Trace,
    counters: &[CounterTrack],
) -> Result<String, AnalyzeError> {
    let analysis = Analysis::analyze(trace)?;

    // rank -> (sphere, replica) from the recorded topology.
    let mut roles: BTreeMap<u32, (u32, u32)> = BTreeMap::new();
    for (sphere, members) in analysis.spheres.iter().enumerate() {
        for (replica, &rank) in members.iter().enumerate() {
            roles.insert(rank, (sphere as u32, replica as u32));
        }
    }
    // Every rank that ever emitted an event gets a track, topology or not.
    for a in &analysis.attempts {
        for e in &a.events {
            if let Some(rank) = e.rank {
                roles.entry(rank).or_insert((u32::MAX, u32::MAX));
            }
        }
    }

    let mut out = String::with_capacity(trace.events.len() * 96 + 1024);
    out.push_str("[\n");
    let mut first = true;

    // Track metadata: the executor lane and one lane per physical rank.
    push_meta(&mut out, &mut first, "process_name", 0, 0, "redcr virtual-time run");
    push_meta(&mut out, &mut first, "thread_name", 0, 0, "executor");
    for (&rank, &(sphere, replica)) in &roles {
        let name = if sphere == u32::MAX {
            format!("rank {rank}")
        } else {
            format!("rank {rank} (sphere {sphere}, replica {replica})")
        };
        push_meta(&mut out, &mut first, "thread_name", 0, rank + 1, &name);
    }

    let mut flow_id = 0u64;
    for a in &analysis.attempts {
        // Executor lane: one slice per attempt.
        push_event(
            &mut out,
            &mut first,
            &[
                ("name", Js::Str(format!("attempt {}", a.attempt))),
                ("cat", Js::Raw("\"attempt\"")),
                ("ph", Js::Raw("\"X\"")),
                ("ts", Js::Num(a.start * US)),
                ("dur", Js::Num(((a.end - a.start) * US).max(1.0))),
                ("pid", Js::Int(0)),
                ("tid", Js::Int(0)),
                (
                    "args",
                    Js::Args(vec![
                        ("completed", Js::Bool(a.completed)),
                        ("rel_end", Js::Num(a.rel_end)),
                    ]),
                ),
            ],
        );

        // FIFO channel pairing: k-th send on (src, dst) matches the k-th
        // receive of dst from src. Per-rank event order is time order, so
        // each channel's send and receive lists are already sorted.
        let mut sends: BTreeMap<(u32, u32), Vec<(f64, u64)>> = BTreeMap::new();
        let mut recvs: BTreeMap<(u32, u32), Vec<(f64, u64)>> = BTreeMap::new();
        // Open checkpoint windows: (rank, seq, begin time).
        let mut begins: Vec<(u32, u64, f64)> = Vec::new();

        for e in &a.events {
            let Some(rank) = e.rank else { continue };
            let tid = rank + 1;
            let ts = e.time * US;
            match &e.kind {
                EventKind::Send { to, bytes } => {
                    sends.entry((rank, *to)).or_default().push((e.time, *bytes));
                }
                EventKind::Recv { from, bytes } => {
                    recvs.entry((*from, rank)).or_default().push((e.time, *bytes));
                }
                EventKind::Death => push_instant(&mut out, &mut first, "death", tid, ts, &[]),
                EventKind::Injected { rel } => {
                    push_instant(
                        &mut out,
                        &mut first,
                        "injected",
                        tid,
                        ts,
                        &[("rel", Js::Num(*rel))],
                    );
                }
                EventKind::Failover { sphere } => {
                    push_instant(
                        &mut out,
                        &mut first,
                        "failover",
                        tid,
                        ts,
                        &[("sphere", Js::Int(u64::from(*sphere)))],
                    );
                }
                EventKind::Restore { seq, cut } => {
                    push_instant(
                        &mut out,
                        &mut first,
                        "restore",
                        tid,
                        ts,
                        &[("seq", Js::Int(*seq)), ("cut", Js::Num(*cut))],
                    );
                }
                EventKind::HeartbeatMiss { sphere } => {
                    push_instant(
                        &mut out,
                        &mut first,
                        "heartbeat_miss",
                        tid,
                        ts,
                        &[("sphere", Js::Int(u64::from(*sphere)))],
                    );
                }
                EventKind::RespawnBegin { sphere } => {
                    push_instant(
                        &mut out,
                        &mut first,
                        "respawn_begin",
                        tid,
                        ts,
                        &[("sphere", Js::Int(u64::from(*sphere)))],
                    );
                }
                EventKind::RespawnCommit { sphere, rel: _, latency } => {
                    push_instant(
                        &mut out,
                        &mut first,
                        "respawn_commit",
                        tid,
                        ts,
                        &[("sphere", Js::Int(u64::from(*sphere))), ("latency", Js::Num(*latency))],
                    );
                }
                EventKind::RejoinVote { sphere, copies } => {
                    push_instant(
                        &mut out,
                        &mut first,
                        "rejoin_vote",
                        tid,
                        ts,
                        &[
                            ("sphere", Js::Int(u64::from(*sphere))),
                            ("copies", Js::Int(u64::from(*copies))),
                        ],
                    );
                }
                EventKind::CheckpointBegin { seq } => begins.push((rank, *seq, e.time)),
                EventKind::CheckpointCommit { seq, bytes, cost } => {
                    // Close this rank's open window for `seq`, if any.
                    let begin = begins
                        .iter()
                        .position(|&(r, s, _)| r == rank && s == *seq)
                        .map(|i| begins.swap_remove(i).2)
                        .unwrap_or(e.time);
                    push_event(
                        &mut out,
                        &mut first,
                        &[
                            ("name", Js::Str(format!("checkpoint {seq}"))),
                            ("cat", Js::Raw("\"checkpoint\"")),
                            ("ph", Js::Raw("\"X\"")),
                            ("ts", Js::Num(begin * US)),
                            ("dur", Js::Num(((e.time - begin) * US).max(1.0))),
                            ("pid", Js::Int(0)),
                            ("tid", Js::Int(u64::from(tid))),
                            (
                                "args",
                                Js::Args(vec![
                                    ("bytes", Js::Int(*bytes)),
                                    ("cost", Js::Num(*cost)),
                                ]),
                            ),
                        ],
                    );
                }
                _ => {}
            }
        }
        // A rank that died mid-checkpoint leaves its begin unmatched.
        for (rank, seq, time) in begins {
            push_instant(
                &mut out,
                &mut first,
                "checkpoint begin (no commit)",
                rank + 1,
                time * US,
                &[("seq", Js::Int(seq))],
            );
        }

        for ((src, dst), tx) in &sends {
            let empty = Vec::new();
            let rx = recvs.get(&(*src, *dst)).unwrap_or(&empty);
            for (i, &(send_t, bytes)) in tx.iter().enumerate() {
                let matched = rx.get(i);
                // The 1 µs anchor slice the flow endpoints bind to.
                push_event(
                    &mut out,
                    &mut first,
                    &[
                        ("name", Js::Str(format!("send → {dst}"))),
                        ("cat", Js::Raw("\"comm\"")),
                        ("ph", Js::Raw("\"X\"")),
                        ("ts", Js::Num(send_t * US)),
                        ("dur", Js::Num(1.0)),
                        ("pid", Js::Int(0)),
                        ("tid", Js::Int(u64::from(src + 1))),
                        ("args", Js::Args(vec![("bytes", Js::Int(bytes))])),
                    ],
                );
                let Some(&(recv_t, _)) = matched else { continue };
                push_event(
                    &mut out,
                    &mut first,
                    &[
                        ("name", Js::Str(format!("recv ← {src}"))),
                        ("cat", Js::Raw("\"comm\"")),
                        ("ph", Js::Raw("\"X\"")),
                        ("ts", Js::Num(recv_t * US)),
                        ("dur", Js::Num(1.0)),
                        ("pid", Js::Int(0)),
                        ("tid", Js::Int(u64::from(dst + 1))),
                        ("args", Js::Args(vec![("bytes", Js::Int(bytes))])),
                    ],
                );
                for (ph, tid, t) in [("\"s\"", src + 1, send_t), ("\"f\"", dst + 1, recv_t)] {
                    let mut fields = vec![
                        ("name", Js::Raw("\"msg\"")),
                        ("cat", Js::Raw("\"msg\"")),
                        ("ph", Js::Raw(ph)),
                    ];
                    if ph == "\"f\"" {
                        fields.push(("bp", Js::Raw("\"e\"")));
                    }
                    fields.extend([
                        ("id", Js::Int(flow_id)),
                        ("ts", Js::Num(t * US)),
                        ("pid", Js::Int(0)),
                        ("tid", Js::Int(u64::from(tid))),
                    ]);
                    push_event(&mut out, &mut first, &fields);
                }
                flow_id += 1;
            }
        }
    }

    // Wall-clock counter plane: its own process, one C-event stream per
    // (scope, counter). Wall nanoseconds become microseconds so Perfetto's
    // axis unit matches the virtual tracks even though the origin differs.
    if !counters.is_empty() {
        push_meta(&mut out, &mut first, "process_name", 1, 0, "redcr-prof (wall-clock)");
        for c in counters {
            let track = format!("{}.{}", c.scope, c.name);
            for &(at_ns, value) in &c.samples {
                push_event(
                    &mut out,
                    &mut first,
                    &[
                        ("name", Js::Str(track.clone())),
                        ("cat", Js::Raw("\"prof\"")),
                        ("ph", Js::Raw("\"C\"")),
                        ("ts", Js::Num(at_ns as f64 / 1e3)),
                        ("pid", Js::Int(1)),
                        ("tid", Js::Int(0)),
                        ("args", Js::Args(vec![("value", Js::Num(value))])),
                    ],
                );
            }
        }
    }

    out.push_str("\n]\n");
    Ok(out)
}

/// A JSON fragment to emit: exact integers, floats, strings or raw tokens.
enum Js {
    Int(u64),
    Num(f64),
    Bool(bool),
    Str(String),
    /// A pre-quoted literal (static names, `ph` tags).
    Raw(&'static str),
    Args(Vec<(&'static str, Js)>),
}

// detlint::allow(R9, reason = "recursion depth equals Js nesting, which this writer builds at most two levels deep (Args of scalars); runs on the tracer's own thread, never a coroutine stack")
fn push_value(out: &mut String, v: &Js) {
    match v {
        Js::Int(x) => {
            let _ = write!(out, "{x}");
        }
        Js::Num(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Js::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Js::Str(s) => {
            // Track and slice names are generated ASCII without quotes or
            // backslashes, so no escaping is needed.
            let _ = write!(out, "\"{s}\"");
        }
        Js::Raw(s) => out.push_str(s),
        Js::Args(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":");
                push_value(out, v);
            }
            out.push('}');
        }
    }
}

fn push_event(out: &mut String, first: &mut bool, fields: &[(&'static str, Js)]) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{k}\":");
        push_value(out, v);
    }
    out.push('}');
}

fn push_meta(
    out: &mut String,
    first: &mut bool,
    what: &'static str,
    pid: u32,
    tid: u32,
    name: &str,
) {
    push_event(
        out,
        first,
        &[
            (
                "name",
                Js::Raw(match what {
                    "process_name" => "\"process_name\"",
                    _ => "\"thread_name\"",
                }),
            ),
            ("ph", Js::Raw("\"M\"")),
            ("pid", Js::Int(u64::from(pid))),
            ("tid", Js::Int(u64::from(tid))),
            ("args", Js::Args(vec![("name", Js::Str(name.to_string()))])),
        ],
    );
}

fn push_instant(
    out: &mut String,
    first: &mut bool,
    name: &'static str,
    tid: u32,
    ts: f64,
    args: &[(&'static str, Js)],
) {
    let mut fields = vec![
        ("name", Js::Raw("")),
        ("cat", Js::Raw("\"mark\"")),
        ("ph", Js::Raw("\"i\"")),
        ("s", Js::Raw("\"t\"")),
        ("ts", Js::Num(ts)),
        ("pid", Js::Int(0)),
        ("tid", Js::Int(u64::from(tid))),
    ];
    fields[0].1 = Js::Str(name.to_string());
    if !args.is_empty() {
        let owned: Vec<(&'static str, Js)> = args.iter().map(|(k, v)| (*k, clone_js(v))).collect();
        fields.push(("args", Js::Args(owned)));
    }
    push_event(out, first, &fields);
}

// detlint::allow(R9, reason = "recursion depth equals Js nesting (at most two levels in every producer); tracer-thread only, never a coroutine stack")
fn clone_js(v: &Js) -> Js {
    match v {
        Js::Int(x) => Js::Int(*x),
        Js::Num(x) => Js::Num(*x),
        Js::Bool(b) => Js::Bool(*b),
        Js::Str(s) => Js::Str(s.clone()),
        Js::Raw(s) => Js::Raw(s),
        Js::Args(fields) => Js::Args(fields.iter().map(|(k, v)| (*k, clone_js(v))).collect()),
    }
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

/// What [`validate`] found in an exported document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfettoSummary {
    /// Total trace events (including metadata).
    pub events: usize,
    /// `thread_name` tracks whose name starts with `"rank "` — one per
    /// physical rank.
    pub rank_tracks: usize,
    /// Complete (`X`) slices.
    pub slices: usize,
    /// Instant (`i`) markers.
    pub instants: usize,
    /// Flow arrows with both endpoints present (an `s` and an `f` event
    /// sharing an id).
    pub flow_pairs: usize,
    /// Counter (`C`) samples from merged wall-clock tracks.
    pub counter_samples: usize,
}

impl fmt::Display for PerfettoSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events: {} rank tracks, {} slices, {} instants, {} flow pairs, {} counters",
            self.events,
            self.rank_tracks,
            self.slices,
            self.instants,
            self.flow_pairs,
            self.counter_samples
        )
    }
}

/// Structurally validates an exported Perfetto document without any JSON
/// library: the top level must be an array of objects, every event needs a
/// `ph` tag, non-metadata events need numeric `ts`/`pid`/`tid`, `X` slices
/// need a `dur`, and flow endpoints must carry ids.
///
/// # Errors
///
/// Returns a description of the first violation (or JSON syntax error)
/// found.
pub fn validate(json: &str) -> Result<PerfettoSummary, String> {
    let doc = JsonParser { bytes: json.as_bytes(), pos: 0 }.parse_document()?;
    let Json::Arr(events) = doc else {
        return Err("top level is not an array".into());
    };
    let mut summary = PerfettoSummary {
        events: events.len(),
        rank_tracks: 0,
        slices: 0,
        instants: 0,
        flow_pairs: 0,
        counter_samples: 0,
    };
    let mut starts: Vec<u64> = Vec::new();
    let mut finishes: Vec<u64> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let Json::Obj(fields) = ev else {
            return Err(format!("event {i}: not an object"));
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let num = |key: &str| match get(key) {
            Some(Json::Num(x)) => Ok(*x),
            other => Err(format!("event {i}: field {key:?} not a number ({other:?})")),
        };
        let Some(Json::Str(ph)) = get("ph") else {
            return Err(format!("event {i}: missing \"ph\""));
        };
        if ph != "M" {
            num("ts")?;
            num("pid")?;
            num("tid")?;
        }
        match ph.as_str() {
            "M" => {
                let Some(Json::Obj(args)) = get("args") else {
                    return Err(format!("event {i}: metadata without args"));
                };
                if let Some(Json::Str(name)) =
                    args.iter().find(|(k, _)| k == "name").map(|(_, v)| v)
                {
                    if name.starts_with("rank ") {
                        summary.rank_tracks += 1;
                    }
                } else {
                    return Err(format!("event {i}: metadata args without name"));
                }
            }
            "X" => {
                num("dur")?;
                summary.slices += 1;
            }
            "i" => summary.instants += 1,
            "C" => {
                let Some(Json::Obj(args)) = get("args") else {
                    return Err(format!("event {i}: counter without args"));
                };
                if !args.iter().any(|(k, v)| k == "value" && matches!(v, Json::Num(_))) {
                    return Err(format!("event {i}: counter without numeric value"));
                }
                summary.counter_samples += 1;
            }
            "s" | "f" => {
                let id = num("id")? as u64;
                if ph == "s" { &mut starts } else { &mut finishes }.push(id);
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }

    starts.sort_unstable();
    finishes.sort_unstable();
    summary.flow_pairs = finishes.iter().filter(|id| starts.binary_search(id).is_ok()).count();
    if finishes.len() != summary.flow_pairs || starts.len() != summary.flow_pairs {
        return Err(format!(
            "unbalanced flows: {} starts, {} finishes, {} pairs",
            starts.len(),
            finishes.len(),
            summary.flow_pairs
        ));
    }
    Ok(summary)
}

/// A fully parsed JSON value (validator-side; supports nesting, unlike the
/// flat JSONL scanner).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn parse_document(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing characters at byte {}", self.pos));
        }
        Ok(v)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            got => Err(format!("byte {}: expected {:?}, got {got:?}", self.pos, b as char)),
        }
    }

    fn keyword(&mut self, word: &str, val: Json) -> Result<Json, String> {
        for expected in word.bytes() {
            if self.bump() != Some(expected) {
                return Err(format!("byte {}: bad literal (expected {word:?})", self.pos));
            }
        }
        Ok(val)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(c) => out.push(c as char),
                    None => return Err("unterminated escape".into()),
                },
                Some(c) => out.push(c as char),
                None => return Err("unterminated string".into()),
            }
        }
    }

    // detlint::allow(R9, reason = "recursion depth equals input JSON nesting; this parser only reads back the tracer's own shallow output in tests, on a full OS stack")
    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        match self.peek() {
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Json::Arr(items)),
                        other => {
                            return Err(format!(
                                "byte {}: expected ',' or ']', got {other:?}",
                                self.pos
                            ))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    fields.push((key, val));
                    self.ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Json::Obj(fields)),
                        other => {
                            return Err(format!(
                                "byte {}: expected ',' or '}}', got {other:?}",
                                self.pos
                            ))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "non-utf8 number".to_string())?;
                text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number {text:?}: {e}"))
            }
            other => Err(format!("byte {}: unexpected value start {other:?}", self.pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn ev(time: f64, rank: Option<u32>, kind: EventKind) -> Event {
        Event { time, rank, kind }
    }

    fn small_trace() -> Trace {
        Trace {
            events: vec![
                ev(0.0, Some(0), EventKind::Topology { sphere: 0, replica: 0 }),
                ev(0.0, Some(1), EventKind::Topology { sphere: 1, replica: 0 }),
                ev(0.0, None, EventKind::AttemptStart { attempt: 0 }),
                // Rank 0's stream (drained first), then rank 1's: per-rank
                // time order, not globally sorted — as collected.
                ev(0.5, Some(0), EventKind::Send { to: 1, bytes: 64 }),
                ev(1.0, Some(0), EventKind::Send { to: 1, bytes: 32 }),
                ev(2.0, Some(0), EventKind::CheckpointBegin { seq: 0 }),
                ev(2.5, Some(0), EventKind::CheckpointCommit { seq: 0, bytes: 128, cost: 0.5 }),
                ev(3.0, Some(0), EventKind::RankFinish { busy: 2.0, comm: 1.0 }),
                ev(0.6, Some(1), EventKind::Recv { from: 0, bytes: 64 }),
                ev(1.1, Some(1), EventKind::Recv { from: 0, bytes: 32 }),
                ev(2.8, Some(1), EventKind::Death),
                ev(
                    3.0,
                    None,
                    EventKind::AttemptEnd {
                        attempt: 0,
                        completed: true,
                        rel_end: 3.0,
                        rel_failure: f64::INFINITY,
                        killer: None,
                    },
                ),
            ],
        }
    }

    #[test]
    fn export_validates_with_expected_counts() {
        let json = export(&small_trace()).unwrap();
        let summary = validate(&json).unwrap();
        assert_eq!(summary.rank_tracks, 2);
        // 1 attempt + 1 checkpoint + 2 send + 2 recv anchor slices.
        assert_eq!(summary.slices, 6);
        assert_eq!(summary.flow_pairs, 2, "{summary}");
        assert_eq!(summary.instants, 1, "one death marker");
    }

    #[test]
    fn fifo_pairing_matches_kth_send_to_kth_recv() {
        let json = export(&small_trace()).unwrap();
        // The first flow start sits at the first send (0.5 s = 500000 µs)
        // and its finish at the first receive (0.6 s).
        let s = json.lines().find(|l| l.contains("\"ph\":\"s\"")).unwrap();
        assert!(s.contains("\"ts\":500000"), "{s}");
        let f = json.lines().find(|l| l.contains("\"ph\":\"f\"")).unwrap();
        assert!(f.contains("\"ts\":600000"), "{f}");
        assert!(f.contains("\"bp\":\"e\""), "{f}");
    }

    #[test]
    fn unmatched_send_gets_slice_but_no_flow() {
        let events = vec![
            ev(0.0, None, EventKind::AttemptStart { attempt: 0 }),
            ev(0.5, Some(0), EventKind::Send { to: 1, bytes: 8 }),
            ev(
                1.0,
                None,
                EventKind::AttemptEnd {
                    attempt: 0,
                    completed: true,
                    rel_end: 1.0,
                    rel_failure: f64::INFINITY,
                    killer: None,
                },
            ),
        ];
        let json = export(&Trace { events }).unwrap();
        let summary = validate(&json).unwrap();
        assert_eq!(summary.flow_pairs, 0);
        assert!(json.contains("send \u{2192} 1"));
    }

    #[test]
    fn counter_tracks_merge_under_profiler_process() {
        let tracks = vec![CounterTrack {
            scope: "rank0".to_string(),
            name: "queue_depth",
            samples: vec![(1_000, 1.0), (2_000, 3.0), (5_000, 0.0)],
        }];
        let json = export_with_counters(&small_trace(), &tracks).unwrap();
        let summary = validate(&json).unwrap();
        assert_eq!(summary.counter_samples, 3, "{summary}");
        assert!(json.contains("redcr-prof (wall-clock)"));
        assert!(json.contains("rank0.queue_depth"));
        // Wall ns → µs: the 2000 ns sample lands at ts 2.
        assert!(json.lines().any(|l| l.contains("\"ph\":\"C\"") && l.contains("\"ts\":2,")));
        // With no counters the output is byte-identical to plain export.
        let plain = export(&small_trace()).unwrap();
        let empty = export_with_counters(&small_trace(), &[]).unwrap();
        assert_eq!(plain, empty);
        assert_eq!(validate(&plain).unwrap().counter_samples, 0);
    }

    #[test]
    fn malformed_trace_refused() {
        let err = export(&Trace { events: vec![] }).unwrap_err();
        assert_eq!(err, AnalyzeError::EmptyTrace);
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate("{}").unwrap_err().contains("not an array"));
        assert!(validate("[1]").unwrap_err().contains("not an object"));
        assert!(validate("[{\"no_ph\":1}]").unwrap_err().contains("ph"));
        // An X slice without dur.
        let bad = "[{\"ph\":\"X\",\"ts\":0,\"pid\":0,\"tid\":1,\"name\":\"x\"}]";
        assert!(validate(bad).unwrap_err().contains("dur"));
        // A flow start with no finish.
        let bad = "[{\"ph\":\"s\",\"ts\":0,\"pid\":0,\"tid\":1,\"id\":7}]";
        assert!(validate(bad).unwrap_err().contains("unbalanced"));
    }
}
