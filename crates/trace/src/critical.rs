//! Virtual-time critical-path analysis over a replayed trace.
//!
//! Where the [`analyzer`](crate::analyzer) replays a trace into per-attempt
//! *aggregates*, this module asks a different question: **which chain of
//! events determined how long the attempt took?** It rebuilds the
//! happens-before DAG of an attempt — per-rank program order plus
//! cross-rank `Send → Recv` edges — and walks the longest virtual-time
//! chain backwards from the event that pinned the attempt's end. Every
//! step on that chain is blamed on one of four categories:
//!
//! * **compute** — program-order progress on a rank;
//! * **blocked-on-recv** — the step arrived over a message edge: the
//!   receiver could not have proceeded earlier because the sender's data
//!   was not yet available;
//! * **checkpoint** — the step closes a `CheckpointBegin → CheckpointCommit`
//!   bracket (write cost plus commit barrier);
//! * **heal** — the step closes a respawn/rejoin bracket of a heal cycle.
//!
//! Alongside the path, the analysis emits a **per-rank blame breakdown**
//! built from exact event brackets: a rank's checkpoint share is the sum of
//! its own begin→commit spans, its heal share is the attempt's deduped
//! respawn stall, and the remaining busy/comm split comes verbatim from its
//! `RankFinish` events — so the four categories partition the rank's active
//! time and the derived blocked-share α is a measured input for the paper's
//! Eq. 1 (see `blame_alpha`).
//!
//! **Bit-exactness contract.** The resilient executor sets its report's
//! `total_virtual_time` to `max_virtual_time` of the final (completed)
//! attempt, which is also the absolute timestamp it records on that
//! attempt's `AttemptEnd` event. [`CriticalPath::total_virtual_time`]
//! carries that timestamp verbatim, so a traced run can assert
//! `path.total_virtual_time.to_bits() == report.total_virtual_time.to_bits()`
//! — the same replay-don't-recompute discipline as
//! [`Analysis::totals`](crate::Analysis::totals). The per-category blame
//! sums are *derived* quantities (event subtraction re-associates the
//! executor's floating-point order), so they cross-check within tolerance,
//! not bitwise.
//!
//! Send→recv matching is FIFO per `(sender, receiver)` pair. The simulator
//! orders each `(source, wire-tag)` channel independently, so a program
//! that interleaves tags out of order between one pair of ranks can be
//! matched against the wrong in-flight message; the path length is
//! unaffected (edges stay time-monotone), only the edge attribution
//! coarsens.

use std::collections::{BTreeMap, VecDeque};

use crate::analyzer::{Analysis, AttemptSummary};
use crate::event::{Event, EventKind};

/// What a critical-path step (or a slice of a rank's time) is blamed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blame {
    /// Program-order progress on a rank.
    Compute,
    /// Waiting for a message: the step entered over a `Send → Recv` edge.
    BlockedOnRecv,
    /// Inside a `CheckpointBegin → CheckpointCommit` bracket.
    Checkpoint,
    /// Inside a heal cycle's respawn/rejoin bracket.
    Heal,
}

impl Blame {
    /// Stable lower-case name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Blame::Compute => "compute",
            Blame::BlockedOnRecv => "blocked_on_recv",
            Blame::Checkpoint => "checkpoint",
            Blame::Heal => "heal",
        }
    }
}

/// One step of the critical path, spanning `[from_time, to_time]` in
/// absolute virtual seconds. Steps are reported in forward (chronological)
/// order; adjacent steps share endpoints, so their durations telescope to
/// the attempt span.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// The rank the step ends on (`None` only for the synthetic head/tail
    /// segments closing the path onto the attempt brackets).
    pub rank: Option<u32>,
    /// Absolute virtual time the step starts.
    pub from_time: f64,
    /// Absolute virtual time the step ends.
    pub to_time: f64,
    /// Category charged for this span.
    pub blame: Blame,
    /// `kind_name` of the event the step ends at (`"attempt_end"` for the
    /// synthetic tail).
    pub kind: &'static str,
    /// Whether the step arrived over a cross-rank message edge.
    pub cross: bool,
}

impl PathStep {
    /// The step's duration, virtual seconds.
    pub fn duration(&self) -> f64 {
        self.to_time - self.from_time
    }
}

/// Per-rank blame partition of one attempt, from exact event brackets.
#[derive(Debug, Clone, PartialEq)]
pub struct RankBlame {
    /// Physical rank.
    pub rank: u32,
    /// Busy time outside checkpoint brackets: `RankFinish.busy` minus the
    /// charged checkpoint write costs (clamped at zero).
    pub compute: f64,
    /// Communication time outside checkpoint brackets: `RankFinish.comm`
    /// minus the barrier share of the rank's commit spans (clamped at
    /// zero).
    pub blocked_on_recv: f64,
    /// Sum of the rank's own `CheckpointBegin → CheckpointCommit` spans
    /// (write cost plus commit barrier).
    pub checkpoint: f64,
    /// The attempt's deduped respawn-stall seconds (every rank quiesces
    /// through a heal cycle, so the stall is charged to each).
    pub heal: f64,
}

impl RankBlame {
    /// Everything the rank's clock advanced through, virtual seconds.
    pub fn total(&self) -> f64 {
        self.compute + self.blocked_on_recv + self.checkpoint + self.heal
    }

    /// The rank's blocked share of compute-plus-blocked time — the
    /// measured communication-to-computation ratio α of the paper's Eq. 1,
    /// with checkpoint and heal overheads carved out.
    pub fn alpha(&self) -> f64 {
        let active = self.compute + self.blocked_on_recv;
        if active > 0.0 {
            self.blocked_on_recv / active
        } else {
            0.0
        }
    }
}

/// The critical path of one attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptPath {
    /// Attempt number.
    pub attempt: u64,
    /// Whether the attempt completed.
    pub completed: bool,
    /// Absolute virtual time of the attempt's `AttemptEnd` event,
    /// carried verbatim.
    pub end: f64,
    /// The executor's exact relative end (`AttemptEnd.rel_end`), verbatim.
    pub rel_end: f64,
    /// The longest chain, chronological order, telescoping from the
    /// attempt start to its end.
    pub steps: Vec<PathStep>,
    /// Per-rank blame partition, ranks ascending.
    pub ranks: Vec<RankBlame>,
}

impl AttemptPath {
    /// Seconds of path time per category, in
    /// `[compute, blocked_on_recv, checkpoint, heal]` order.
    pub fn path_blame(&self) -> [f64; 4] {
        let mut out = [0.0f64; 4];
        for s in &self.steps {
            let i = match s.blame {
                Blame::Compute => 0,
                Blame::BlockedOnRecv => 1,
                Blame::Checkpoint => 2,
                Blame::Heal => 3,
            };
            out[i] += s.duration();
        }
        out
    }
}

/// The whole trace's critical-path analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// One path per attempt, execution order.
    pub attempts: Vec<AttemptPath>,
    /// The final completed attempt's absolute end time, verbatim from its
    /// `AttemptEnd` event — bit-equal to the producing run's
    /// `ExecutionReport::total_virtual_time` (see module docs). Zero when
    /// no attempt completed.
    pub total_virtual_time: f64,
}

impl CriticalPath {
    /// Builds the critical path of every attempt in `analysis`.
    pub fn analyze(analysis: &Analysis) -> CriticalPath {
        let attempts: Vec<AttemptPath> = analysis.attempts.iter().map(attempt_path).collect();
        let total_virtual_time =
            analysis.attempts.last().filter(|a| a.completed).map_or(0.0, |a| a.end);
        CriticalPath { attempts, total_virtual_time }
    }

    /// The blocked-share α over the final completed attempt, weighted by
    /// each rank's compute-plus-blocked time — the trace-measured α the
    /// model-validation report feeds into the paper's Eq. 1 alongside the
    /// `RankFinish`-derived per-rank values.
    pub fn blame_alpha(&self) -> Option<f64> {
        let last = self.attempts.last().filter(|a| a.completed)?;
        let (mut blocked, mut active) = (0.0f64, 0.0f64);
        for r in &last.ranks {
            blocked += r.blocked_on_recv;
            active += r.compute + r.blocked_on_recv;
        }
        (active > 0.0).then(|| blocked / active)
    }
}

/// Whether an event lies on its rank's program order — i.e. its timestamp
/// is the rank's virtual clock at a point the rank actually reached.
/// Driver-side records *about* a rank are excluded: the failure schedule
/// (`Injected`) is stamped at the scheduled death time, which may never
/// fire and can lie far past the attempt's end, and the detector's
/// suspicion deadline (`HeartbeatMiss`) is a modeled time on a rank whose
/// clock already stopped at its `Death` event.
fn on_rank_clock(e: &Event) -> bool {
    !matches!(e.kind, EventKind::Injected { .. } | EventKind::HeartbeatMiss { .. })
}

/// Builds one attempt's critical path and per-rank blame from its summary.
fn attempt_path(a: &AttemptSummary) -> AttemptPath {
    // Per-rank event streams in collection order. A rank's recorder is
    // sequential in virtual time, so each stream is time-nondecreasing —
    // including across heal relaunches, which resume past the boundary.
    let mut per_rank: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, e) in a.events.iter().enumerate() {
        if let Some(r) = e.rank {
            if on_rank_clock(e) {
                per_rank.entry(r).or_default().push(i);
            }
        }
    }

    // FIFO send→recv matching per (sender, receiver) pair:
    // cross_pred[recv event index] = matching send event index.
    let mut queues: BTreeMap<(u32, u32), VecDeque<usize>> = BTreeMap::new();
    let mut cross_pred: BTreeMap<usize, usize> = BTreeMap::new();
    for (i, e) in a.events.iter().enumerate() {
        match (&e.kind, e.rank) {
            (EventKind::Send { to, .. }, Some(from)) => {
                queues.entry((from, *to)).or_default().push_back(i);
            }
            (EventKind::Recv { from, .. }, Some(to)) => {
                if let Some(s) = queues.entry((*from, to)).or_default().pop_front() {
                    cross_pred.insert(i, s);
                }
            }
            _ => {}
        }
    }

    // Position of each event within its rank's stream, for O(1) program
    // predecessors.
    let mut pos_in_rank: BTreeMap<usize, usize> = BTreeMap::new();
    for stream in per_rank.values() {
        for (p, &i) in stream.iter().enumerate() {
            pos_in_rank.insert(i, p);
        }
    }

    // Terminal: the latest rank event (ties broken toward the later
    // collection index — the one drained last). The attempt's end is
    // pinned by the maximum rank clock, so this is the event the end
    // waited on.
    let terminal = a
        .events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.rank.is_some() && on_rank_clock(e))
        .max_by(|(i, x), (j, y)| x.time.total_cmp(&y.time).then(i.cmp(j)));

    let mut steps: Vec<PathStep> = Vec::new();
    if let Some((mut cur, _)) = terminal {
        // Synthetic tail: from the terminal event to the attempt bracket.
        let last = &a.events[cur];
        if a.end > last.time {
            steps.push(PathStep {
                rank: None,
                from_time: last.time,
                to_time: a.end,
                blame: Blame::Compute,
                kind: "attempt_end",
                cross: false,
            });
        }
        loop {
            let e = &a.events[cur];
            let rank = e.rank.expect("path events are rank events");
            let prog = pos_in_rank[&cur].checked_sub(1).map(|p| per_rank[&rank][p]);
            let cross = cross_pred.get(&cur).copied();
            // The binding predecessor is the later of the two; on a tie
            // the message edge wins (the local rank was already there —
            // the data was the constraint).
            let (pred, is_cross) = match (prog, cross) {
                (Some(p), Some(c)) => {
                    if a.events[c].time >= a.events[p].time {
                        (Some(c), true)
                    } else {
                        (Some(p), false)
                    }
                }
                (Some(p), None) => (Some(p), false),
                (None, Some(c)) => (Some(c), true),
                (None, None) => (None, false),
            };
            let from_time = pred.map_or(a.start, |p| a.events[p].time);
            let blame = if is_cross {
                Blame::BlockedOnRecv
            } else {
                match &e.kind {
                    EventKind::CheckpointCommit { .. } => Blame::Checkpoint,
                    EventKind::RespawnCommit { .. } | EventKind::RejoinVote { .. } => Blame::Heal,
                    _ => Blame::Compute,
                }
            };
            steps.push(PathStep {
                rank: Some(rank),
                from_time,
                to_time: e.time,
                blame,
                kind: e.kind_name(),
                cross: is_cross,
            });
            match pred {
                Some(p) => cur = p,
                None => break,
            }
        }
        steps.reverse();
    }

    AttemptPath {
        attempt: a.attempt,
        completed: a.completed,
        end: a.end,
        rel_end: a.rel_end,
        steps,
        ranks: rank_blame(a),
    }
}

/// Per-rank blame partition from exact event brackets (see module docs).
fn rank_blame(a: &AttemptSummary) -> Vec<RankBlame> {
    // (rank, busy, comm) aggregated across the rank's RankFinish events
    // (one per segment under heal relaunches).
    let mut splits: BTreeMap<u32, (f64, f64)> = BTreeMap::new();
    // Open CheckpointBegin brackets: (rank, seq, time).
    let mut begins: Vec<(u32, u64, f64)> = Vec::new();
    // Per-rank checkpoint span and charged write cost.
    let mut ckpt: BTreeMap<u32, (f64, f64)> = BTreeMap::new();
    for e in &a.events {
        match (&e.kind, e.rank) {
            (EventKind::RankFinish { busy, comm }, Some(r)) => {
                let s = splits.entry(r).or_insert((0.0, 0.0));
                s.0 += busy;
                s.1 += comm;
            }
            (EventKind::CheckpointBegin { seq }, Some(r)) => begins.push((r, *seq, e.time)),
            (EventKind::CheckpointCommit { seq, cost, .. }, Some(r)) => {
                if let Some(i) = begins.iter().position(|&(br, bs, _)| br == r && bs == *seq) {
                    let span = e.time - begins.swap_remove(i).2;
                    let c = ckpt.entry(r).or_insert((0.0, 0.0));
                    c.0 += span;
                    c.1 += cost;
                }
            }
            _ => {}
        }
    }
    splits
        .into_iter()
        .map(|(rank, (busy, comm))| {
            let (span, cost) = ckpt.get(&rank).copied().unwrap_or((0.0, 0.0));
            // The commit bracket splits into the charged write cost
            // (advanced via compute) and the barrier share (advanced via
            // comm); carve each out of the matching RankFinish half.
            let barrier = (span - cost).max(0.0);
            RankBlame {
                rank,
                compute: (busy - cost).max(0.0),
                blocked_on_recv: (comm - barrier).max(0.0),
                checkpoint: span,
                heal: a.heal_stall_seconds,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Trace;

    fn ev(time: f64, rank: Option<u32>, kind: EventKind) -> Event {
        Event { time, rank, kind }
    }

    fn end(time: f64, attempt: u64, rel_end: f64) -> Event {
        ev(
            time,
            None,
            EventKind::AttemptEnd {
                attempt,
                completed: true,
                rel_end,
                rel_failure: f64::INFINITY,
                killer: None,
            },
        )
    }

    /// Rank 1 computes 1s, sends; rank 0 receives at 2.0 having been ready
    /// since 0.5 — the path must route through the message edge.
    #[test]
    fn path_routes_through_binding_send_edge() {
        let events = vec![
            ev(0.0, None, EventKind::AttemptStart { attempt: 0 }),
            ev(2.0, Some(1), EventKind::Send { to: 0, bytes: 8 }),
            ev(2.5, Some(0), EventKind::Recv { from: 1, bytes: 8 }),
            ev(3.0, Some(0), EventKind::RankFinish { busy: 1.0, comm: 2.0 }),
            ev(2.0, Some(1), EventKind::RankFinish { busy: 2.0, comm: 0.0 }),
            end(3.0, 0, 3.0),
        ];
        let analysis = Analysis::analyze(&Trace { events }).unwrap();
        let path = CriticalPath::analyze(&analysis);
        assert_eq!(path.attempts.len(), 1);
        let a = &path.attempts[0];
        // Forward order: rank 1's send (compute), the message edge
        // (blocked), rank 0's finish (compute).
        let crosses: Vec<bool> = a.steps.iter().map(|s| s.cross).collect();
        assert!(crosses.contains(&true), "path must use the send→recv edge");
        let blocked: f64 = a
            .steps
            .iter()
            .filter(|s| s.blame == Blame::BlockedOnRecv)
            .map(PathStep::duration)
            .sum();
        assert!((blocked - 0.5).abs() < 1e-12, "recv at 2.5 waited on the send at 2.0");
        // Steps telescope: adjacent endpoints meet, spanning start to end.
        for w in a.steps.windows(2) {
            assert_eq!(w[0].to_time.to_bits(), w[1].from_time.to_bits());
        }
        assert_eq!(a.steps.first().unwrap().from_time, 0.0);
        assert_eq!(a.steps.last().unwrap().to_time, 3.0);
        assert_eq!(path.total_virtual_time.to_bits(), 3.0f64.to_bits());
    }

    #[test]
    fn checkpoint_brackets_blamed_on_path_and_per_rank() {
        let events = vec![
            ev(0.0, None, EventKind::AttemptStart { attempt: 0 }),
            ev(1.0, Some(0), EventKind::CheckpointBegin { seq: 0 }),
            ev(1.5, Some(0), EventKind::CheckpointCommit { seq: 0, bytes: 64, cost: 0.3 }),
            ev(4.0, Some(0), EventKind::RankFinish { busy: 3.0, comm: 1.0 }),
            end(4.0, 0, 4.0),
        ];
        let analysis = Analysis::analyze(&Trace { events }).unwrap();
        let path = CriticalPath::analyze(&analysis);
        let a = &path.attempts[0];
        let [compute, blocked, ckpt, heal] = a.path_blame();
        assert!((ckpt - 0.5).abs() < 1e-12, "the begin→commit bracket is checkpoint time");
        assert!((compute + blocked + ckpt + heal - 4.0).abs() < 1e-12, "blame partitions the span");
        // Per-rank: span 0.5 charged to checkpoint, write cost 0.3 carved
        // out of busy, barrier share 0.2 carved out of comm.
        let r = &a.ranks[0];
        assert!((r.checkpoint - 0.5).abs() < 1e-12);
        assert!((r.compute - 2.7).abs() < 1e-12);
        assert!((r.blocked_on_recv - 0.8).abs() < 1e-12);
        assert_eq!(r.heal, 0.0);
        assert!((r.total() - 4.0).abs() < 1e-12, "partition reassembles busy + comm");
        assert!((r.alpha() - 0.8 / 3.5).abs() < 1e-12);
    }

    #[test]
    fn incomplete_final_attempt_yields_zero_total_and_no_alpha() {
        let events = vec![
            ev(0.0, None, EventKind::AttemptStart { attempt: 0 }),
            ev(1.0, Some(0), EventKind::RankFinish { busy: 1.0, comm: 0.0 }),
            ev(
                2.0,
                None,
                EventKind::AttemptEnd {
                    attempt: 0,
                    completed: false,
                    rel_end: 2.0,
                    rel_failure: 1.5,
                    killer: Some(0),
                },
            ),
        ];
        let analysis = Analysis::analyze(&Trace { events }).unwrap();
        let path = CriticalPath::analyze(&analysis);
        assert_eq!(path.total_virtual_time, 0.0);
        assert_eq!(path.blame_alpha(), None);
        assert!(!path.attempts[0].completed);
    }

    #[test]
    fn blame_alpha_weights_ranks_by_active_time() {
        let events = vec![
            ev(0.0, None, EventKind::AttemptStart { attempt: 0 }),
            ev(4.0, Some(0), EventKind::RankFinish { busy: 3.0, comm: 1.0 }),
            ev(4.0, Some(1), EventKind::RankFinish { busy: 1.0, comm: 3.0 }),
            end(4.0, 0, 4.0),
        ];
        let analysis = Analysis::analyze(&Trace { events }).unwrap();
        let path = CriticalPath::analyze(&analysis);
        // (1 + 3) blocked over (4 + 4) active.
        assert!((path.blame_alpha().unwrap() - 0.5).abs() < 1e-12);
    }
}
