//! Replays a [`Trace`] into per-attempt, per-rank timelines and derives
//! the paper's measured quantities from the events alone.
//!
//! The replay is **order-based**, not time-based: a trace is collected so
//! that every rank event of an attempt sits between that attempt's
//! `AttemptStart` and `AttemptEnd` (rank recorders are drained into the
//! collector at rank teardown, before the executor records the attempt
//! end). The analyzer therefore walks the event list sequentially and
//! brackets attempts by position. Within an attempt, per-rank timelines
//! can be re-sorted by time on demand ([`AttemptSummary::rank_timeline`]).
//!
//! The masked-death and degraded-time derivations reproduce the resilient
//! executor's accounting *bit for bit*: they use the same relative times
//! the executor compared (carried verbatim on [`EventKind::Injected`] and
//! [`EventKind::AttemptEnd`]) and accumulate in the same order, so
//! [`Analysis::totals`] can be asserted **exactly equal** to the
//! `ExecutionReport` counters of the run that produced the trace.

use std::fmt;

use crate::event::{Event, EventKind};
use crate::recorder::Trace;

/// Structural defects [`Analysis::analyze`] rejects (it never panics on a
/// malformed trace). Convertible into
/// [`TraceError`](crate::TraceError) for callers that mix parse and replay
/// errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalyzeError {
    /// The trace contains no events at all.
    EmptyTrace,
    /// An `AttemptStart` arrived while an earlier attempt was still open.
    NestedStart {
        /// The attempt still open.
        open: u64,
        /// The attempt that tried to start.
        attempt: u64,
    },
    /// An `AttemptEnd` arrived with no attempt open.
    UnmatchedEnd {
        /// The attempt the stray end named.
        attempt: u64,
    },
    /// An `AttemptEnd` named a different attempt than the open one.
    MismatchedEnd {
        /// The attempt that was open.
        open: u64,
        /// The attempt the end named.
        attempt: u64,
    },
    /// The trace ended with an attempt still open.
    NeverEnded {
        /// The attempt left open.
        attempt: u64,
    },
    /// Attempt numbers went backwards (they must strictly increase).
    OutOfOrder {
        /// The previously completed attempt.
        prev: u64,
        /// The attempt that started out of order.
        attempt: u64,
    },
    /// A rank emitted an event after its own `RankFinish` within the same
    /// attempt — rank streams are drained exactly once at teardown, so
    /// this can only come from a corrupted or hand-edited trace.
    EventAfterTeardown {
        /// The offending rank.
        rank: u32,
        /// The attempt it happened in.
        attempt: u64,
    },
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::EmptyTrace => write!(f, "trace has no events"),
            AnalyzeError::NestedStart { open, attempt } => {
                write!(f, "attempt {attempt} started while {open} still open")
            }
            AnalyzeError::UnmatchedEnd { attempt } => {
                write!(f, "attempt {attempt} ended without a start")
            }
            AnalyzeError::MismatchedEnd { open, attempt } => {
                write!(f, "attempt {attempt} ended while {open} was open")
            }
            AnalyzeError::NeverEnded { attempt } => {
                write!(f, "attempt {attempt} never ended")
            }
            AnalyzeError::OutOfOrder { prev, attempt } => {
                write!(f, "attempt {attempt} started after attempt {prev} (must increase)")
            }
            AnalyzeError::EventAfterTeardown { rank, attempt } => {
                write!(f, "rank {rank} emitted an event after its teardown in attempt {attempt}")
            }
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// The result of replaying one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Sphere membership: `spheres[v]` lists the physical ranks serving
    /// virtual rank `v` (from `Topology` events; empty if none recorded).
    pub spheres: Vec<Vec<u32>>,
    /// One summary per attempt, in execution order.
    pub attempts: Vec<AttemptSummary>,
}

/// Everything the analyzer derives about one execution attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptSummary {
    /// Attempt number (from the bracket events).
    pub attempt: u64,
    /// Absolute virtual time the attempt started.
    pub start: f64,
    /// Absolute virtual time the attempt ended.
    pub end: f64,
    /// Whether the application completed in this attempt.
    pub completed: bool,
    /// Attempt end relative to its start (the executor's `end_rel`).
    pub rel_end: f64,
    /// Planned job-failure time relative to the start (`INFINITY` when the
    /// schedule was failure-free).
    pub rel_failure: f64,
    /// The sphere whose last replica died, for failed attempts.
    pub killer: Option<u32>,
    /// Checkpoint sequence restored from at attempt start, if any.
    pub restored_from: Option<u64>,
    /// Scheduled fail-stops this attempt: `(physical rank, relative death
    /// time)`, finite only.
    pub injected: Vec<(u32, f64)>,
    /// Number of `Death` events actually observed by rank threads (a rank
    /// scheduled to die *after* the attempt ends never observes its death).
    pub deaths_observed: u64,
    /// Distinct checkpoint sequences committed during this attempt, sorted.
    pub committed_seqs: Vec<u64>,
    /// Per-rank, per-sequence checkpoint commit latency: virtual seconds
    /// from `CheckpointBegin` to the matching post-barrier
    /// `CheckpointCommit` on the same rank.
    pub commit_latencies: Vec<f64>,
    /// Per-rank observed communication fraction `(rank, α)` where
    /// `α = comm / (busy + comm)` from that rank's `RankFinish` split —
    /// the measured counterpart of the paper's communication-to-computation
    /// ratio (Eq. 1's α input).
    pub alphas: Vec<(u32, f64)>,
    /// Wildcard-receive leader failovers observed.
    pub failovers: u64,
    /// Receive-path votes taken.
    pub votes: u64,
    /// Masked process deaths attributed to this attempt, by the executor's
    /// exact rule (see [`Analysis::totals`]).
    pub masked: u64,
    /// Degraded-sphere seconds accrued this attempt: for each sphere that
    /// lost a member, the span from its first member death to its own death
    /// or the attempt end, whichever came first.
    pub degraded_seconds: f64,
    /// For failed attempts: virtual seconds of progress lost, i.e. from the
    /// last checkpoint commit of the attempt (or its start, if none
    /// committed) to the attempt end. Zero for completed attempts.
    pub lost_work: f64,
    /// Replicas respawned by heal cycles this attempt (one per
    /// `RespawnCommit` event).
    pub respawns: u64,
    /// Total heal latency (each respawned replica's death to its rejoin
    /// commit), summed in `RespawnCommit` emission order.
    pub heal_latency_seconds: f64,
    /// Heal commits as `(sphere, relative commit time)` in emission order,
    /// same-cycle duplicates collapsed — the analyzer-side mirror of the
    /// executor's commit list fed to [`crate::heal`].
    pub heal_commits: Vec<(u32, f64)>,
    /// Virtual seconds the attempt stalled inside heal cycles: deduped
    /// respawn-begin → respawn-commit spans, paired in order (a begin with
    /// no matching commit — a kill during transfer — contributes nothing).
    pub heal_stall_seconds: f64,
    /// Recovered voting-seconds: post-commit full-strength running time of
    /// healed spheres. Zero without heal commits.
    pub recovered_voting_seconds: f64,
    /// All rank-level events of the attempt, in collection order.
    pub events: Vec<Event>,
}

impl AttemptSummary {
    /// The events emitted by `rank` during this attempt, sorted by virtual
    /// time (stable, so equal-time events keep collection order).
    pub fn rank_timeline(&self, rank: u32) -> Vec<Event> {
        let mut out: Vec<Event> =
            self.events.iter().filter(|e| e.rank == Some(rank)).cloned().collect();
        out.sort_by(|a, b| a.time.total_cmp(&b.time));
        out
    }
}

/// Totals derived purely from the trace, field-for-field comparable with
/// the producing run's `ExecutionReport`.
#[derive(Debug, Clone, PartialEq)]
pub struct DerivedTotals {
    /// Number of attempts.
    pub attempts: u64,
    /// Number of failed (restarted) attempts.
    pub failures: u64,
    /// Process deaths masked by redundancy.
    pub masked_failures: u64,
    /// Checkpoints committed during the final (successful) attempt.
    pub checkpoints_committed: u64,
    /// Total degraded-sphere running time, virtual seconds.
    pub degraded_sphere_seconds: f64,
    /// Replicas respawned and rejoined by the self-healing layer.
    pub respawns: u64,
    /// Total heal latency, virtual seconds.
    pub heal_latency_seconds: f64,
    /// Recovered voting-seconds across all attempts.
    pub recovered_voting_seconds: f64,
}

impl Analysis {
    /// Replays `trace` into per-attempt summaries.
    ///
    /// # Errors
    ///
    /// Returns a typed [`AnalyzeError`] when the trace is structurally
    /// invalid: empty, broken attempt brackets (nested, unmatched,
    /// mismatched, never-ended or out-of-order), or a rank event after
    /// that rank's teardown. Malformed traces are rejected, never panicked
    /// on.
    pub fn analyze(trace: &Trace) -> Result<Analysis, AnalyzeError> {
        if trace.events.is_empty() {
            return Err(AnalyzeError::EmptyTrace);
        }
        let mut spheres: Vec<Vec<u32>> = Vec::new();
        let mut attempts: Vec<AttemptSummary> = Vec::new();
        // (attempt number, start time, bracketed events)
        let mut open: Option<(u64, f64, Vec<Event>)> = None;
        let mut last_attempt: Option<u64> = None;
        // Ranks whose RankFinish was seen in the open attempt: their
        // recorder was drained, so no further event of theirs may follow.
        let mut finished: Vec<u32> = Vec::new();

        for event in &trace.events {
            match &event.kind {
                EventKind::Topology { sphere, replica: _ } => {
                    let s = *sphere as usize;
                    if spheres.len() <= s {
                        spheres.resize(s + 1, Vec::new());
                    }
                    if let Some(rank) = event.rank {
                        spheres[s].push(rank);
                    }
                }
                EventKind::AttemptStart { attempt } => {
                    if let Some((prev, _, _)) = open {
                        return Err(AnalyzeError::NestedStart { open: prev, attempt: *attempt });
                    }
                    if let Some(prev) = last_attempt {
                        if *attempt <= prev {
                            return Err(AnalyzeError::OutOfOrder { prev, attempt: *attempt });
                        }
                    }
                    open = Some((*attempt, event.time, Vec::new()));
                    finished.clear();
                }
                EventKind::AttemptEnd { attempt, completed, rel_end, rel_failure, killer } => {
                    let Some((number, start, events)) = open.take() else {
                        return Err(AnalyzeError::UnmatchedEnd { attempt: *attempt });
                    };
                    if number != *attempt {
                        return Err(AnalyzeError::MismatchedEnd {
                            open: number,
                            attempt: *attempt,
                        });
                    }
                    last_attempt = Some(number);
                    attempts.push(summarize(
                        number,
                        start,
                        event.time,
                        *completed,
                        *rel_end,
                        *rel_failure,
                        *killer,
                        events,
                        &spheres,
                    ));
                }
                kind => {
                    if let Some((number, _, events)) = open.as_mut() {
                        if matches!(
                            kind,
                            EventKind::HeartbeatMiss { .. }
                                | EventKind::RespawnBegin { .. }
                                | EventKind::RespawnCommit { .. }
                                | EventKind::RejoinVote { .. }
                        ) {
                            // A heal cycle relaunches every rank mid-attempt,
                            // so earlier teardowns no longer terminate their
                            // event streams.
                            finished.clear();
                        }
                        if let Some(rank) = event.rank {
                            if finished.contains(&rank) {
                                return Err(AnalyzeError::EventAfterTeardown {
                                    rank,
                                    attempt: *number,
                                });
                            }
                            if matches!(kind, EventKind::RankFinish { .. }) {
                                finished.push(rank);
                            }
                        }
                        events.push(event.clone());
                    }
                }
            }
        }

        if let Some((number, _, _)) = open {
            return Err(AnalyzeError::NeverEnded { attempt: number });
        }
        Ok(Analysis { spheres, attempts })
    }

    /// The trace-derived totals, accumulated in the executor's order so
    /// every field (including the `f64` one) matches the producing run's
    /// `ExecutionReport` exactly.
    pub fn totals(&self) -> DerivedTotals {
        let mut masked = 0u64;
        let mut degraded = 0.0f64;
        let mut respawns = 0u64;
        let mut heal_latency = 0.0f64;
        let mut recovered = 0.0f64;
        for a in &self.attempts {
            masked += a.masked;
            degraded += a.degraded_seconds;
            respawns += a.respawns;
            heal_latency += a.heal_latency_seconds;
            recovered += a.recovered_voting_seconds;
        }
        DerivedTotals {
            attempts: self.attempts.len() as u64,
            failures: self.attempts.iter().filter(|a| !a.completed).count() as u64,
            masked_failures: masked,
            checkpoints_committed: self
                .attempts
                .last()
                .filter(|a| a.completed)
                .map_or(0, |a| a.committed_seqs.len() as u64),
            degraded_sphere_seconds: degraded,
            respawns,
            heal_latency_seconds: heal_latency,
            recovered_voting_seconds: recovered,
        }
    }
}

/// Builds one attempt's summary from its bracketed events.
#[allow(clippy::too_many_arguments)]
fn summarize(
    attempt: u64,
    start: f64,
    end: f64,
    completed: bool,
    rel_end: f64,
    rel_failure: f64,
    killer: Option<u32>,
    events: Vec<Event>,
    spheres: &[Vec<u32>],
) -> AttemptSummary {
    let mut injected: Vec<(u32, f64)> = Vec::new();
    let mut deaths_observed = 0u64;
    let mut committed_seqs: Vec<u64> = Vec::new();
    let mut begins: Vec<(u32, u64, f64)> = Vec::new();
    let mut commit_latencies: Vec<f64> = Vec::new();
    // Per-rank busy/comm splits: with heal relaunches a rank finishes once
    // per segment, so splits aggregate across its `RankFinish` events.
    let mut splits: Vec<(u32, f64, f64)> = Vec::new();
    let mut failovers = 0u64;
    let mut votes = 0u64;
    let mut restored_from: Option<u64> = None;
    let mut last_commit_time = f64::NEG_INFINITY;
    let mut respawns = 0u64;
    let mut heal_latency_seconds = 0.0f64;
    let mut heal_commits: Vec<(u32, f64)> = Vec::new();
    let mut heal_begin_times: Vec<f64> = Vec::new();
    let mut heal_commit_times: Vec<f64> = Vec::new();

    for e in &events {
        match &e.kind {
            EventKind::Injected { rel } => {
                if let Some(rank) = e.rank {
                    injected.push((rank, *rel));
                }
            }
            EventKind::Death => deaths_observed += 1,
            EventKind::CheckpointBegin { seq } => {
                if let Some(rank) = e.rank {
                    begins.push((rank, *seq, e.time));
                }
            }
            EventKind::CheckpointCommit { seq, .. } => {
                if let Err(at) = committed_seqs.binary_search(seq) {
                    committed_seqs.insert(at, *seq);
                }
                if let Some(rank) = e.rank {
                    if let Some(i) = begins.iter().position(|&(r, s, _)| r == rank && s == *seq) {
                        commit_latencies.push(e.time - begins.swap_remove(i).2);
                    }
                }
                last_commit_time = last_commit_time.max(e.time);
            }
            EventKind::Restore { seq, .. } => {
                restored_from = Some(restored_from.map_or(*seq, |r| r.max(*seq)));
            }
            EventKind::RankFinish { busy, comm } => {
                if let Some(rank) = e.rank {
                    if let Some(s) = splits.iter_mut().find(|s| s.0 == rank) {
                        s.1 += busy;
                        s.2 += comm;
                    } else {
                        splits.push((rank, *busy, *comm));
                    }
                }
            }
            EventKind::Failover { .. } => failovers += 1,
            EventKind::Vote { .. } => votes += 1,
            EventKind::RespawnBegin { .. } if !heal_begin_times.contains(&e.time) => {
                heal_begin_times.push(e.time);
            }
            EventKind::RespawnCommit { sphere, rel, latency } => {
                respawns += 1;
                heal_latency_seconds += latency;
                let key = (*sphere, *rel);
                if !heal_commits.contains(&key) {
                    heal_commits.push(key);
                }
                if !heal_commit_times.contains(&e.time) {
                    heal_commit_times.push(e.time);
                }
            }
            _ => {}
        }
    }
    let mut alphas: Vec<(u32, f64)> = splits
        .iter()
        .map(|&(rank, busy, comm)| {
            let total = busy + comm;
            (rank, if total > 0.0 { comm / total } else { 0.0 })
        })
        .collect();
    alphas.sort_by_key(|&(rank, _)| rank);
    let heal_stall_seconds = heal_commit_times
        .iter()
        .zip(&heal_begin_times)
        .map(|(c, b)| c - b)
        .fold(0.0f64, |acc, s| acc + s);

    // Masked deaths, by the executor's exact rule: on a completed attempt
    // every scheduled death with `rel <= rel_end` was masked; on a failed
    // attempt, every death up to the job failure minus the killer sphere's
    // own members.
    let masked = if completed {
        injected.iter().filter(|&&(_, rel)| rel <= rel_end).count() as u64
    } else if rel_failure.is_finite() {
        let dead = injected.iter().filter(|&&(_, rel)| rel <= rel_failure).count();
        let fatal = killer.map_or(0, |k| spheres.get(k as usize).map_or(0, Vec::len));
        dead.saturating_sub(fatal) as u64
    } else {
        0
    };

    // Degraded-sphere time, by the executor's exact rule. Without heal
    // commits: per sphere, the span from its first member death to its
    // last (a member that never dies holds the sphere's death at
    // INFINITY), clipped to the attempt; iteration order (spheres
    // ascending, then f64 min/max over members) matches the executor, so
    // the floating-point sum does too. With commits, executor and analyzer
    // both call the shared [`crate::heal`] sweep over the same inputs.
    let (degraded_seconds, recovered_voting_seconds) = if heal_commits.is_empty() {
        let mut degraded = 0.0f64;
        for members in spheres {
            let times = members.iter().map(|&m| {
                injected.iter().find(|&&(rank, _)| rank == m).map_or(f64::INFINITY, |&(_, rel)| rel)
            });
            let first = times.clone().fold(f64::INFINITY, f64::min);
            if first.is_finite() && first < rel_end {
                let last = times.fold(f64::NEG_INFINITY, f64::max);
                degraded += last.min(rel_end) - first;
            }
        }
        (degraded, 0.0)
    } else {
        (
            crate::heal::degraded_seconds(spheres, &injected, &heal_commits, rel_end),
            crate::heal::recovered_seconds(spheres, &injected, &heal_commits, rel_end),
        )
    };

    let lost_work = if completed { 0.0 } else { end - last_commit_time.max(start) };

    AttemptSummary {
        attempt,
        start,
        end,
        completed,
        rel_end,
        rel_failure,
        killer,
        restored_from,
        injected,
        deaths_observed,
        committed_seqs,
        commit_latencies,
        alphas,
        failovers,
        votes,
        masked,
        degraded_seconds,
        lost_work,
        respawns,
        heal_latency_seconds,
        heal_commits,
        heal_stall_seconds,
        recovered_voting_seconds,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, rank: Option<u32>, kind: EventKind) -> Event {
        Event { time, rank, kind }
    }

    /// 2 spheres × 2 replicas: sphere 0 = ranks {0, 2}, sphere 1 = {1, 3}.
    fn topology() -> Vec<Event> {
        vec![
            ev(0.0, Some(0), EventKind::Topology { sphere: 0, replica: 0 }),
            ev(0.0, Some(1), EventKind::Topology { sphere: 1, replica: 0 }),
            ev(0.0, Some(2), EventKind::Topology { sphere: 0, replica: 1 }),
            ev(0.0, Some(3), EventKind::Topology { sphere: 1, replica: 1 }),
        ]
    }

    #[test]
    fn failed_then_completed_attempt_accounting() {
        let mut events = topology();
        // Attempt 0: ranks 0 and 2 both die (sphere 0 exhausted at t=4),
        // rank 1's death at rel 2.0 is masked. Job fails at rel 4.0.
        events.extend([
            ev(0.0, None, EventKind::AttemptStart { attempt: 0 }),
            ev(2.0, Some(1), EventKind::Injected { rel: 2.0 }),
            ev(3.0, Some(0), EventKind::Injected { rel: 3.0 }),
            ev(4.0, Some(2), EventKind::Injected { rel: 4.0 }),
            ev(1.0, Some(0), EventKind::CheckpointBegin { seq: 0 }),
            ev(1.5, Some(0), EventKind::CheckpointCommit { seq: 0, bytes: 100, cost: 0.5 }),
            ev(2.0, Some(1), EventKind::Death),
            ev(3.0, Some(0), EventKind::Death),
            ev(4.0, Some(2), EventKind::Death),
            ev(
                4.5,
                None,
                EventKind::AttemptEnd {
                    attempt: 0,
                    completed: false,
                    rel_end: 4.5,
                    rel_failure: 4.0,
                    killer: Some(0),
                },
            ),
        ]);
        // Attempt 1: restores from seq 0, rank 3 dies at rel 1.0 (masked),
        // completes at rel 6.0 with one more checkpoint.
        events.extend([
            ev(4.5, None, EventKind::AttemptStart { attempt: 1 }),
            ev(5.5, Some(3), EventKind::Injected { rel: 1.0 }),
            ev(4.5, Some(0), EventKind::Restore { seq: 0, cut: 1.5 }),
            ev(5.5, Some(3), EventKind::Death),
            ev(7.0, Some(0), EventKind::CheckpointBegin { seq: 1 }),
            ev(7.25, Some(0), EventKind::CheckpointCommit { seq: 1, bytes: 100, cost: 0.25 }),
            ev(9.0, Some(0), EventKind::RankFinish { busy: 3.0, comm: 1.0 }),
            ev(
                10.5,
                None,
                EventKind::AttemptEnd {
                    attempt: 1,
                    completed: true,
                    rel_end: 6.0,
                    rel_failure: f64::INFINITY,
                    killer: None,
                },
            ),
        ]);

        let analysis = Analysis::analyze(&Trace { events }).unwrap();
        assert_eq!(analysis.spheres, vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(analysis.attempts.len(), 2);

        let a0 = &analysis.attempts[0];
        // 3 dead by rel_failure, minus the killer sphere's 2 members.
        assert_eq!(a0.masked, 1);
        assert_eq!(a0.committed_seqs, vec![0]);
        assert_eq!(a0.commit_latencies, vec![0.5]);
        assert_eq!(a0.deaths_observed, 3);
        // Sphere 0 degraded from 3.0 to 4.0; sphere 1 from 2.0 to rel_end.
        assert!((a0.degraded_seconds - (1.0 + 2.5)).abs() < 1e-12);
        // Lost work: end 4.5 minus last commit at 1.5.
        assert!((a0.lost_work - 3.0).abs() < 1e-12);

        let a1 = &analysis.attempts[1];
        assert_eq!(a1.masked, 1, "rank 3's death was masked");
        assert_eq!(a1.restored_from, Some(0));
        assert_eq!(a1.alphas, vec![(0, 0.25)]);
        assert_eq!(a1.lost_work, 0.0);
        // Sphere 1 degraded from rel 1.0 to rel_end 6.0 (rank 1 never dies
        // this attempt, so the sphere survives past the end).
        assert!((a1.degraded_seconds - 5.0).abs() < 1e-12);

        let totals = analysis.totals();
        assert_eq!(totals.attempts, 2);
        assert_eq!(totals.failures, 1);
        assert_eq!(totals.masked_failures, 2);
        // Only the final attempt's commits count.
        assert_eq!(totals.checkpoints_committed, 1);
        assert!((totals.degraded_sphere_seconds - 8.5).abs() < 1e-12);
    }

    #[test]
    fn death_after_attempt_end_not_masked() {
        let mut events = topology();
        events.extend([
            ev(0.0, None, EventKind::AttemptStart { attempt: 0 }),
            ev(9.0, Some(2), EventKind::Injected { rel: 9.0 }),
            ev(
                5.0,
                None,
                EventKind::AttemptEnd {
                    attempt: 0,
                    completed: true,
                    rel_end: 5.0,
                    rel_failure: f64::INFINITY,
                    killer: None,
                },
            ),
        ]);
        let analysis = Analysis::analyze(&Trace { events }).unwrap();
        assert_eq!(analysis.attempts[0].masked, 0);
        assert_eq!(analysis.attempts[0].degraded_seconds, 0.0);
        assert_eq!(analysis.totals().masked_failures, 0);
    }

    #[test]
    fn rank_timeline_sorted_by_time() {
        let events = vec![
            ev(0.0, None, EventKind::AttemptStart { attempt: 0 }),
            ev(2.0, Some(0), EventKind::Send { to: 1, bytes: 8 }),
            ev(1.0, Some(0), EventKind::Recv { from: 1, bytes: 8 }),
            ev(1.5, Some(1), EventKind::Send { to: 0, bytes: 8 }),
            ev(
                3.0,
                None,
                EventKind::AttemptEnd {
                    attempt: 0,
                    completed: true,
                    rel_end: 3.0,
                    rel_failure: f64::INFINITY,
                    killer: None,
                },
            ),
        ];
        let analysis = Analysis::analyze(&Trace { events }).unwrap();
        let timeline = analysis.attempts[0].rank_timeline(0);
        assert_eq!(timeline.len(), 2);
        assert!(matches!(timeline[0].kind, EventKind::Recv { .. }));
        assert!(matches!(timeline[1].kind, EventKind::Send { .. }));
    }

    fn end(time: f64, attempt: u64) -> Event {
        ev(
            time,
            None,
            EventKind::AttemptEnd {
                attempt,
                completed: true,
                rel_end: time,
                rel_failure: f64::INFINITY,
                killer: None,
            },
        )
    }

    #[test]
    fn malformed_brackets_rejected() {
        let err = Analysis::analyze(&Trace { events: vec![end(1.0, 0)] }).unwrap_err();
        assert_eq!(err, AnalyzeError::UnmatchedEnd { attempt: 0 });

        let start = ev(0.0, None, EventKind::AttemptStart { attempt: 0 });
        let err = Analysis::analyze(&Trace { events: vec![start.clone()] }).unwrap_err();
        assert_eq!(err, AnalyzeError::NeverEnded { attempt: 0 });

        let nested = ev(0.5, None, EventKind::AttemptStart { attempt: 1 });
        let err = Analysis::analyze(&Trace { events: vec![start.clone(), nested] }).unwrap_err();
        assert_eq!(err, AnalyzeError::NestedStart { open: 0, attempt: 1 });

        let err = Analysis::analyze(&Trace { events: vec![start, end(1.0, 7)] }).unwrap_err();
        assert_eq!(err, AnalyzeError::MismatchedEnd { open: 0, attempt: 7 });
    }

    #[test]
    fn empty_trace_rejected() {
        let err = Analysis::analyze(&Trace { events: vec![] }).unwrap_err();
        assert_eq!(err, AnalyzeError::EmptyTrace);
        assert_eq!(err.to_string(), "trace has no events");
    }

    #[test]
    fn out_of_order_attempts_rejected() {
        let events = vec![
            ev(0.0, None, EventKind::AttemptStart { attempt: 2 }),
            end(1.0, 2),
            ev(1.0, None, EventKind::AttemptStart { attempt: 1 }),
            end(2.0, 1),
        ];
        let err = Analysis::analyze(&Trace { events }).unwrap_err();
        assert_eq!(err, AnalyzeError::OutOfOrder { prev: 2, attempt: 1 });

        // A repeated attempt number is also out of order.
        let events = vec![
            ev(0.0, None, EventKind::AttemptStart { attempt: 0 }),
            end(1.0, 0),
            ev(1.0, None, EventKind::AttemptStart { attempt: 0 }),
            end(2.0, 0),
        ];
        let err = Analysis::analyze(&Trace { events }).unwrap_err();
        assert_eq!(err, AnalyzeError::OutOfOrder { prev: 0, attempt: 0 });
    }

    #[test]
    fn event_after_rank_teardown_rejected() {
        let events = vec![
            ev(0.0, None, EventKind::AttemptStart { attempt: 0 }),
            ev(1.0, Some(0), EventKind::RankFinish { busy: 1.0, comm: 0.0 }),
            ev(1.5, Some(0), EventKind::Send { to: 1, bytes: 8 }),
            end(2.0, 0),
        ];
        let err = Analysis::analyze(&Trace { events }).unwrap_err();
        assert_eq!(err, AnalyzeError::EventAfterTeardown { rank: 0, attempt: 0 });

        // A *different* rank is still free to emit after rank 0 finishes,
        // and a fresh attempt resets the teardown set.
        let events = vec![
            ev(0.0, None, EventKind::AttemptStart { attempt: 0 }),
            ev(1.0, Some(0), EventKind::RankFinish { busy: 1.0, comm: 0.0 }),
            ev(1.5, Some(1), EventKind::RankFinish { busy: 1.5, comm: 0.0 }),
            end(2.0, 0),
            ev(2.0, None, EventKind::AttemptStart { attempt: 1 }),
            ev(3.0, Some(0), EventKind::Send { to: 1, bytes: 8 }),
            ev(3.5, Some(0), EventKind::RankFinish { busy: 1.0, comm: 0.5 }),
            end(4.0, 1),
        ];
        let analysis = Analysis::analyze(&Trace { events }).unwrap();
        assert_eq!(analysis.attempts.len(), 2);
    }

    #[test]
    fn analyze_error_converts_into_trace_error() {
        let e: crate::TraceError = AnalyzeError::EmptyTrace.into();
        assert!(matches!(e, crate::TraceError::Analyze(AnalyzeError::EmptyTrace)));
        assert_eq!(e.to_string(), "malformed trace: trace has no events");
    }
}
