//! Shared heal-aware accounting: the exact arithmetic behind
//! `degraded_sphere_seconds` and `recovered_voting_seconds` once respawns
//! enter the picture.
//!
//! The resilient executor and the trace [`analyzer`](crate::analyzer) must
//! agree on these totals **bit for bit** (the cross-check suite asserts
//! exact equality), so both call the same pure functions over the same
//! inputs in the same order:
//!
//! * `deaths` — every scheduled fail-stop of the attempt, including the
//!   re-sampled deaths of respawned incarnations, as `(physical rank,
//!   time relative to the attempt start)` in **emission order** (the order
//!   `Injected` events appear in the trace: the initial schedule in rank
//!   order, then each heal cycle's fresh samples in suspect order).
//! * `commits` — one `(sphere, relative commit time)` entry per healed
//!   sphere per heal cycle, in emission order with same-cycle duplicates
//!   collapsed (a cycle healing two replicas of one sphere commits that
//!   sphere once).
//!
//! A sphere's degraded interval opens at its first member death from full
//! strength and closes either at a heal commit (back to `r` live copies)
//! or at the sphere's own death; the residual tail is clipped to the
//! attempt end, exactly like the legacy accounting. With zero commits the
//! caller must use the legacy first-to-last-death formula instead — that
//! path is pinned bit-for-bit by the determinism gate and is *not*
//! re-derived here.

/// Per-sphere degraded intervals, in sphere order then chronological
/// order, each clipped to `rel_end` (the attempt end relative to its
/// start). The caller sums them with a left fold (see
/// [`degraded_seconds`]) and may also feed each span to the
/// degraded-interval histogram.
pub fn degraded_spans(
    spheres: &[Vec<u32>],
    deaths: &[(u32, f64)],
    commits: &[(u32, f64)],
    rel_end: f64,
) -> Vec<f64> {
    let mut spans = Vec::new();
    for (v, members) in spheres.iter().enumerate() {
        let full = members.len();
        if full == 0 {
            continue;
        }
        // Merge this sphere's member deaths and heal commits into one
        // chronological sweep; at equal times the death sorts first (a
        // commit can only answer a death that already happened).
        let mut events: Vec<(f64, bool)> = deaths
            .iter()
            .filter(|(r, _)| members.contains(r))
            .map(|&(_, t)| (t, false))
            .chain(commits.iter().filter(|&&(s, _)| s as usize == v).map(|&(_, t)| (t, true)))
            .collect();
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        let mut live = full;
        let mut open: Option<f64> = None;
        let mut dead = false;
        for (t, is_commit) in events {
            if t > rel_end {
                break;
            }
            if is_commit {
                if let Some(o) = open.take() {
                    spans.push(t - o);
                }
                live = full;
            } else {
                if live == full {
                    open = Some(t);
                }
                live = live.saturating_sub(1);
                if live == 0 {
                    // Sphere death: the degraded interval ends with it.
                    if let Some(o) = open.take() {
                        spans.push(t - o);
                    }
                    dead = true;
                    break;
                }
            }
        }
        if !dead {
            if let Some(o) = open {
                spans.push(rel_end - o);
            }
        }
    }
    spans
}

/// Total degraded-sphere seconds: the left fold of [`degraded_spans`].
/// Executor and analyzer both call this, so the floating-point sum is
/// formed in one canonical order.
pub fn degraded_seconds(
    spheres: &[Vec<u32>],
    deaths: &[(u32, f64)],
    commits: &[(u32, f64)],
    rel_end: f64,
) -> f64 {
    degraded_spans(spheres, deaths, commits, rel_end).iter().fold(0.0f64, |acc, &s| acc + s)
}

/// Recovered voting-seconds: for each heal commit, the span the healed
/// sphere subsequently ran at full voting strength — from the commit to
/// the sphere's next member death (a fresh incarnation sample after the
/// commit) or the attempt end, whichever comes first. Summed in commit
/// emission order.
pub fn recovered_seconds(
    spheres: &[Vec<u32>],
    deaths: &[(u32, f64)],
    commits: &[(u32, f64)],
    rel_end: f64,
) -> f64 {
    let mut total = 0.0f64;
    for &(s, c) in commits {
        let Some(members) = spheres.get(s as usize) else {
            continue;
        };
        let next = deaths
            .iter()
            .filter(|(r, t)| members.contains(r) && *t > c)
            .map(|&(_, t)| t)
            .fold(f64::INFINITY, f64::min);
        let upto = next.min(rel_end);
        if upto > c {
            total += upto - c;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2 spheres × 2 replicas: sphere 0 = {0, 2}, sphere 1 = {1, 3}.
    fn spheres() -> Vec<Vec<u32>> {
        vec![vec![0, 2], vec![1, 3]]
    }

    #[test]
    fn commit_closes_degraded_interval() {
        // Rank 0 dies at 2, its sphere heals at 5, attempt ends at 10.
        let deaths = [(0, 2.0)];
        let commits = [(0, 5.0)];
        let spans = degraded_spans(&spheres(), &deaths, &commits, 10.0);
        assert_eq!(spans, vec![3.0]);
        assert_eq!(degraded_seconds(&spheres(), &deaths, &commits, 10.0), 3.0);
    }

    #[test]
    fn unhealed_interval_runs_to_attempt_end() {
        let deaths = [(0, 2.0), (1, 4.0)];
        let commits = [(0, 5.0)];
        // Sphere 0: 2→5 healed. Sphere 1: 4→end (never healed).
        let spans = degraded_spans(&spheres(), &deaths, &commits, 10.0);
        assert_eq!(spans, vec![3.0, 6.0]);
    }

    #[test]
    fn redeath_after_heal_reopens_interval() {
        // Rank 0 dies at 2, heals at 5, its incarnation dies again at 7.
        let deaths = [(0, 2.0), (0, 7.0)];
        let commits = [(0, 5.0)];
        let spans = degraded_spans(&spheres(), &deaths, &commits, 10.0);
        assert_eq!(spans, vec![3.0, 3.0]);
        // Recovered: commit 5 → next death 7.
        assert_eq!(recovered_seconds(&spheres(), &deaths, &commits, 10.0), 2.0);
    }

    #[test]
    fn sphere_death_closes_interval_without_tail() {
        // Both members of sphere 0 die: the interval is death-to-death,
        // no residual to rel_end.
        let deaths = [(0, 2.0), (2, 6.0)];
        let spans = degraded_spans(&spheres(), &deaths, &[], 10.0);
        assert_eq!(spans, vec![4.0]);
    }

    #[test]
    fn events_past_attempt_end_ignored() {
        let deaths = [(0, 12.0)];
        assert!(degraded_spans(&spheres(), &deaths, &[], 10.0).is_empty());
        // A commit past the end leaves the interval clipped at rel_end.
        let deaths = [(0, 2.0)];
        let commits = [(0, 11.0)];
        assert_eq!(degraded_spans(&spheres(), &deaths, &commits, 10.0), vec![8.0]);
    }

    #[test]
    fn recovered_clips_to_attempt_end() {
        let deaths = [(0, 2.0)];
        let commits = [(0, 5.0)];
        assert_eq!(recovered_seconds(&spheres(), &deaths, &commits, 10.0), 5.0);
        // Unknown sphere entries are skipped, not panicked on.
        assert_eq!(recovered_seconds(&spheres(), &deaths, &[(9, 5.0)], 10.0), 0.0);
    }
}
