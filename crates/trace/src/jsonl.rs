//! JSONL export and import of traces.
//!
//! The workspace vendors no JSON library, so the line format is written and
//! parsed by hand: one flat JSON object per event, no nesting, no string
//! escapes beyond what the fixed `ev` discriminators need. Finite `f64`s
//! are written with Rust's shortest round-trip `Display`; non-finite values
//! (only `rel_failure` can legitimately be `INFINITY`) are written as
//! `null` and read back as `INFINITY`, so a parsed trace analyzes
//! identically to the in-memory one.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::event::{Event, EventKind};
use crate::recorder::Trace;

/// Errors from parsing or replaying a trace.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceError {
    /// A JSONL line did not parse as an event.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        what: String,
    },
    /// The event stream is structurally invalid (e.g. an `AttemptEnd`
    /// without a matching `AttemptStart`).
    Malformed {
        /// What went wrong.
        what: String,
    },
    /// The trace parsed but failed structural replay (see
    /// [`AnalyzeError`](crate::analyzer::AnalyzeError)).
    Analyze(crate::analyzer::AnalyzeError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse { line, what } => write!(f, "trace line {line}: {what}"),
            TraceError::Malformed { what } => write!(f, "malformed trace: {what}"),
            TraceError::Analyze(e) => write!(f, "malformed trace: {e}"),
        }
    }
}

impl Error for TraceError {}

impl From<crate::analyzer::AnalyzeError> for TraceError {
    fn from(e: crate::analyzer::AnalyzeError) -> Self {
        TraceError::Analyze(e)
    }
}

/// Writes a finite float with round-trip `Display`, non-finite as `null`.
fn push_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

impl Trace {
    /// Serializes the trace as JSONL: one event object per line, in
    /// collection order (the order matters — see [`crate::analyzer`]).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for e in &self.events {
            out.push_str("{\"t\":");
            push_f64(&mut out, e.time);
            out.push_str(",\"rank\":");
            match e.rank {
                Some(r) => {
                    let _ = write!(out, "{r}");
                }
                None => out.push_str("null"),
            }
            let _ = write!(out, ",\"ev\":\"{}\"", e.kind_name());
            match &e.kind {
                EventKind::Send { to, bytes } => {
                    let _ = write!(out, ",\"to\":{to},\"bytes\":{bytes}");
                }
                EventKind::Recv { from, bytes } => {
                    let _ = write!(out, ",\"from\":{from},\"bytes\":{bytes}");
                }
                EventKind::Death => {}
                EventKind::Vote { copies, unanimous, corrected } => {
                    let _ = write!(
                        out,
                        ",\"copies\":{copies},\"unanimous\":{unanimous},\"corrected\":{corrected}"
                    );
                }
                EventKind::Failover { sphere } => {
                    let _ = write!(out, ",\"sphere\":{sphere}");
                }
                EventKind::CheckpointBegin { seq } => {
                    let _ = write!(out, ",\"seq\":{seq}");
                }
                EventKind::CheckpointCommit { seq, bytes, cost } => {
                    let _ = write!(out, ",\"seq\":{seq},\"bytes\":{bytes},\"cost\":");
                    push_f64(&mut out, *cost);
                }
                EventKind::Restore { seq, cut } => {
                    let _ = write!(out, ",\"seq\":{seq},\"cut\":");
                    push_f64(&mut out, *cut);
                }
                EventKind::RankFinish { busy, comm } => {
                    out.push_str(",\"busy\":");
                    push_f64(&mut out, *busy);
                    out.push_str(",\"comm\":");
                    push_f64(&mut out, *comm);
                }
                EventKind::Topology { sphere, replica } => {
                    let _ = write!(out, ",\"sphere\":{sphere},\"replica\":{replica}");
                }
                EventKind::AttemptStart { attempt } => {
                    let _ = write!(out, ",\"attempt\":{attempt}");
                }
                EventKind::Injected { rel } => {
                    out.push_str(",\"rel\":");
                    push_f64(&mut out, *rel);
                }
                EventKind::HeartbeatMiss { sphere } => {
                    let _ = write!(out, ",\"sphere\":{sphere}");
                }
                EventKind::RespawnBegin { sphere } => {
                    let _ = write!(out, ",\"sphere\":{sphere}");
                }
                EventKind::RespawnCommit { sphere, rel, latency } => {
                    let _ = write!(out, ",\"sphere\":{sphere},\"rel\":");
                    push_f64(&mut out, *rel);
                    out.push_str(",\"latency\":");
                    push_f64(&mut out, *latency);
                }
                EventKind::RejoinVote { sphere, copies } => {
                    let _ = write!(out, ",\"sphere\":{sphere},\"copies\":{copies}");
                }
                EventKind::AttemptEnd { attempt, completed, rel_end, rel_failure, killer } => {
                    let _ = write!(out, ",\"attempt\":{attempt},\"completed\":{completed}");
                    out.push_str(",\"rel_end\":");
                    push_f64(&mut out, *rel_end);
                    out.push_str(",\"rel_failure\":");
                    push_f64(&mut out, *rel_failure);
                    out.push_str(",\"killer\":");
                    match killer {
                        Some(k) => {
                            let _ = write!(out, "{k}");
                        }
                        None => out.push_str("null"),
                    }
                }
            }
            out.push_str("}\n");
        }
        out
    }

    /// Parses a JSONL trace written by [`to_jsonl`](Trace::to_jsonl).
    /// Blank lines are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Parse`] with the offending 1-based line number
    /// on any syntax or schema violation.
    pub fn from_jsonl(s: &str) -> Result<Trace, TraceError> {
        let mut events = Vec::new();
        for (i, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let fields =
                parse_object(line).map_err(|what| TraceError::Parse { line: i + 1, what })?;
            let event = event_from_fields(&fields)
                .map_err(|what| TraceError::Parse { line: i + 1, what })?;
            events.push(event);
        }
        Ok(Trace { events })
    }
}

/// A parsed flat-JSON value.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Num(f64),
    Bool(bool),
    Null,
    Str(String),
}

/// Field accessors over one parsed object.
struct Fields(Vec<(String, Val)>);

impl Fields {
    fn get(&self, key: &str) -> Option<&Val> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A required numeric field; `null` decodes as `INFINITY` (the writer's
    /// encoding for non-finite floats).
    fn num(&self, key: &str) -> Result<f64, String> {
        match self.get(key) {
            Some(Val::Num(x)) => Ok(*x),
            Some(Val::Null) => Ok(f64::INFINITY),
            Some(v) => Err(format!("field {key:?}: expected number, got {v:?}")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    /// A required integer field (rejects `null`).
    fn int(&self, key: &str) -> Result<u64, String> {
        match self.get(key) {
            Some(Val::Num(x)) if *x >= 0.0 && x.fract() == 0.0 => Ok(*x as u64),
            Some(v) => Err(format!("field {key:?}: expected integer, got {v:?}")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    /// A required nullable integer field.
    fn opt_int(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            Some(Val::Null) => Ok(None),
            _ => self.int(key).map(Some),
        }
    }

    fn boolean(&self, key: &str) -> Result<bool, String> {
        match self.get(key) {
            Some(Val::Bool(b)) => Ok(*b),
            Some(v) => Err(format!("field {key:?}: expected bool, got {v:?}")),
            None => Err(format!("missing field {key:?}")),
        }
    }

    fn string(&self, key: &str) -> Result<&str, String> {
        match self.get(key) {
            Some(Val::Str(s)) => Ok(s),
            Some(v) => Err(format!("field {key:?}: expected string, got {v:?}")),
            None => Err(format!("missing field {key:?}")),
        }
    }
}

/// Parses one flat JSON object (`{"k":v,...}`) into its fields.
fn parse_object(line: &str) -> Result<Fields, String> {
    let mut sc = Scanner { bytes: line.as_bytes(), pos: 0 };
    sc.skip_ws();
    sc.expect(b'{')?;
    let mut fields = Vec::new();
    sc.skip_ws();
    if sc.peek() == Some(b'}') {
        sc.next();
    } else {
        loop {
            sc.skip_ws();
            let key = sc.parse_string()?;
            sc.skip_ws();
            sc.expect(b':')?;
            sc.skip_ws();
            let val = sc.parse_value()?;
            fields.push((key, val));
            sc.skip_ws();
            match sc.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    sc.skip_ws();
    if sc.pos != sc.bytes.len() {
        return Err("trailing characters after object".into());
    }
    Ok(Fields(fields))
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Scanner<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.next() {
            Some(got) if got == b => Ok(()),
            got => Err(format!("expected {:?}, got {got:?}", b as char)),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(c) => out.push(c as char),
                    None => return Err("unterminated escape".into()),
                },
                Some(c) => out.push(c as char),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn parse_keyword(&mut self, word: &str, val: Val) -> Result<Val, String> {
        for expected in word.bytes() {
            if self.next() != Some(expected) {
                return Err(format!("invalid literal (expected {word:?})"));
            }
        }
        Ok(val)
    }

    fn parse_value(&mut self) -> Result<Val, String> {
        match self.peek() {
            Some(b'"') => self.parse_string().map(Val::Str),
            Some(b't') => self.parse_keyword("true", Val::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Val::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Val::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "non-utf8 number".to_string())?;
                text.parse::<f64>().map(Val::Num).map_err(|e| format!("bad number {text:?}: {e}"))
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }
}

fn event_from_fields(fields: &Fields) -> Result<Event, String> {
    let time = fields.num("t")?;
    let rank = fields.opt_int("rank")?.map(|r| r as u32);
    let kind = match fields.string("ev")? {
        "send" => EventKind::Send { to: fields.int("to")? as u32, bytes: fields.int("bytes")? },
        "recv" => EventKind::Recv { from: fields.int("from")? as u32, bytes: fields.int("bytes")? },
        "death" => EventKind::Death,
        "vote" => EventKind::Vote {
            copies: fields.int("copies")? as u32,
            unanimous: fields.boolean("unanimous")?,
            corrected: fields.boolean("corrected")?,
        },
        "failover" => EventKind::Failover { sphere: fields.int("sphere")? as u32 },
        "ckpt_begin" => EventKind::CheckpointBegin { seq: fields.int("seq")? },
        "ckpt_commit" => EventKind::CheckpointCommit {
            seq: fields.int("seq")?,
            bytes: fields.int("bytes")?,
            cost: fields.num("cost")?,
        },
        "restore" => EventKind::Restore { seq: fields.int("seq")?, cut: fields.num("cut")? },
        "rank_finish" => {
            EventKind::RankFinish { busy: fields.num("busy")?, comm: fields.num("comm")? }
        }
        "topology" => EventKind::Topology {
            sphere: fields.int("sphere")? as u32,
            replica: fields.int("replica")? as u32,
        },
        "attempt_start" => EventKind::AttemptStart { attempt: fields.int("attempt")? },
        "injected" => EventKind::Injected { rel: fields.num("rel")? },
        "heartbeat_miss" => EventKind::HeartbeatMiss { sphere: fields.int("sphere")? as u32 },
        "respawn_begin" => EventKind::RespawnBegin { sphere: fields.int("sphere")? as u32 },
        "respawn_commit" => EventKind::RespawnCommit {
            sphere: fields.int("sphere")? as u32,
            rel: fields.num("rel")?,
            latency: fields.num("latency")?,
        },
        "rejoin_vote" => EventKind::RejoinVote {
            sphere: fields.int("sphere")? as u32,
            copies: fields.int("copies")? as u32,
        },
        "attempt_end" => EventKind::AttemptEnd {
            attempt: fields.int("attempt")?,
            completed: fields.boolean("completed")?,
            rel_end: fields.num("rel_end")?,
            rel_failure: fields.num("rel_failure")?,
            killer: fields.opt_int("killer")?.map(|k| k as u32),
        },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(Event { time, rank, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                Event {
                    time: 0.0,
                    rank: Some(0),
                    kind: EventKind::Topology { sphere: 0, replica: 0 },
                },
                Event { time: 0.0, rank: None, kind: EventKind::AttemptStart { attempt: 0 } },
                Event { time: 3.75, rank: Some(1), kind: EventKind::Injected { rel: 3.75 } },
                Event { time: 0.5, rank: Some(0), kind: EventKind::Send { to: 1, bytes: 64 } },
                Event { time: 0.75, rank: Some(1), kind: EventKind::Recv { from: 0, bytes: 64 } },
                Event {
                    time: 0.75,
                    rank: Some(1),
                    kind: EventKind::Vote { copies: 2, unanimous: true, corrected: false },
                },
                Event { time: 3.75, rank: Some(1), kind: EventKind::Death },
                Event { time: 3.8, rank: Some(0), kind: EventKind::Failover { sphere: 0 } },
                Event { time: 4.0, rank: Some(0), kind: EventKind::CheckpointBegin { seq: 0 } },
                Event {
                    time: 4.25,
                    rank: Some(0),
                    kind: EventKind::CheckpointCommit { seq: 0, bytes: 1024, cost: 0.1 },
                },
                Event { time: 5.0, rank: Some(0), kind: EventKind::Restore { seq: 0, cut: 4.1 } },
                Event { time: 5.25, rank: Some(1), kind: EventKind::HeartbeatMiss { sphere: 0 } },
                Event { time: 5.3, rank: Some(1), kind: EventKind::RespawnBegin { sphere: 0 } },
                Event {
                    time: 5.5,
                    rank: Some(1),
                    kind: EventKind::RespawnCommit { sphere: 0, rel: 5.5, latency: 1.75 },
                },
                Event {
                    time: 5.5,
                    rank: Some(1),
                    kind: EventKind::RejoinVote { sphere: 0, copies: 2 },
                },
                Event {
                    time: 6.0,
                    rank: Some(0),
                    kind: EventKind::RankFinish { busy: 5.0, comm: 1.0 },
                },
                Event {
                    time: 6.0,
                    rank: None,
                    kind: EventKind::AttemptEnd {
                        attempt: 0,
                        completed: true,
                        rel_end: 6.0,
                        rel_failure: f64::INFINITY,
                        killer: None,
                    },
                },
            ],
        }
    }

    #[test]
    fn jsonl_round_trips_every_kind() {
        let trace = sample_trace();
        let text = trace.to_jsonl();
        assert_eq!(text.lines().count(), trace.len());
        let parsed = Trace::from_jsonl(&text).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn infinity_round_trips_as_null() {
        let trace = Trace {
            events: vec![Event {
                time: 1.0,
                rank: None,
                kind: EventKind::AttemptEnd {
                    attempt: 2,
                    completed: false,
                    rel_end: 1.5,
                    rel_failure: f64::INFINITY,
                    killer: Some(3),
                },
            }],
        };
        let text = trace.to_jsonl();
        assert!(text.contains("\"rel_failure\":null"), "{text}");
        let parsed = Trace::from_jsonl(&text).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn extreme_floats_round_trip_exactly() {
        let values = [1e-300, 1.0 / 3.0, 123_456_789.123_456_78, f64::MAX, 5e-324];
        for v in values {
            let trace =
                Trace { events: vec![Event { time: v, rank: Some(0), kind: EventKind::Death }] };
            let parsed = Trace::from_jsonl(&trace.to_jsonl()).unwrap();
            assert_eq!(parsed.events[0].time.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err =
            Trace::from_jsonl("{\"t\":0,\"rank\":null,\"ev\":\"death\"}\nnot json\n").unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }), "{err}");
        let err = Trace::from_jsonl("{\"t\":0,\"rank\":0,\"ev\":\"warp\"}\n").unwrap_err();
        assert!(err.to_string().contains("warp"), "{err}");
        let err = Trace::from_jsonl("{\"t\":0,\"ev\":\"send\",\"rank\":0,\"to\":1}\n").unwrap_err();
        assert!(err.to_string().contains("bytes"), "{err}");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let parsed = Trace::from_jsonl(
            "\n{\"t\":0,\"rank\":null,\"ev\":\"attempt_start\",\"attempt\":0}\n\n",
        )
        .unwrap();
        assert_eq!(parsed.len(), 1);
    }
}
