//! The sinks: a rank-thread-local [`Recorder`], a world-shared
//! [`Collector`], and the final [`Trace`].

use std::cell::RefCell;
use std::fmt;

use parking_lot::Mutex;

use crate::event::{Event, EventKind};

/// A per-rank event sink. Like the replication layer's `ReplicationStats`,
/// a `Recorder` lives on one rank's thread (it is `Send` but not `Sync`)
/// and costs one `Vec` push per event — no locking on the hot path. At
/// rank teardown its events are drained into the world's [`Collector`].
#[derive(Debug)]
pub struct Recorder {
    rank: u32,
    events: RefCell<Vec<Event>>,
}

impl Recorder {
    /// A fresh recorder for physical rank `rank`.
    pub fn new(rank: u32) -> Self {
        Recorder { rank, events: RefCell::new(Vec::new()) }
    }

    /// The physical rank this recorder belongs to.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Records `kind` at virtual time `time`, attributed to this rank.
    pub fn record(&self, time: f64, kind: EventKind) {
        self.events.borrow_mut().push(Event { time, rank: Some(self.rank), kind });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether no event has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Takes all recorded events, leaving the recorder empty.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.borrow_mut())
    }
}

/// The world-shared sink rank recorders merge into. Executor-level events
/// (attempt brackets, injected deaths) are recorded directly; rank events
/// arrive in bulk via [`absorb`](Collector::absorb) at rank teardown, so
/// the collection order brackets each attempt's rank events between its
/// `AttemptStart` and `AttemptEnd` — the property the analyzer's replay
/// relies on.
#[derive(Default)]
pub struct Collector {
    events: Mutex<Vec<Event>>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Records one event directly (executor-level emission).
    pub fn record(&self, time: f64, rank: Option<u32>, kind: EventKind) {
        self.events.lock().push(Event { time, rank, kind });
    }

    /// Merges a drained per-rank event batch (rank teardown).
    pub fn absorb(&self, events: Vec<Event>) {
        self.events.lock().extend(events);
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been collected yet.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Takes everything collected so far as a [`Trace`], leaving the
    /// collector empty.
    pub fn take(&self) -> Trace {
        Trace { events: std::mem::take(&mut *self.events.lock()) }
    }

    /// A copy of everything collected so far as a [`Trace`].
    pub fn snapshot(&self) -> Trace {
        Trace { events: self.events.lock().clone() }
    }
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector").field("len", &self.len()).finish()
    }
}

/// A completed flight-recorder trace: events in collection order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The events, in collection order (see [`Collector`]).
    pub events: Vec<Event>,
}

impl Trace {
    /// Number of events in the trace.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_attributes_rank_and_drains() {
        let rec = Recorder::new(3);
        assert!(rec.is_empty());
        rec.record(1.0, EventKind::Death);
        rec.record(2.0, EventKind::Send { to: 0, bytes: 8 });
        assert_eq!(rec.len(), 2);
        let events = rec.drain();
        assert!(rec.is_empty());
        assert_eq!(events[0].rank, Some(3));
        assert_eq!(events[1].kind, EventKind::Send { to: 0, bytes: 8 });
    }

    #[test]
    fn collector_keeps_collection_order() {
        let col = Collector::new();
        col.record(0.0, None, EventKind::AttemptStart { attempt: 0 });
        let rec = Recorder::new(1);
        rec.record(0.5, EventKind::Recv { from: 0, bytes: 4 });
        col.absorb(rec.drain());
        col.record(
            1.0,
            None,
            EventKind::AttemptEnd {
                attempt: 0,
                completed: true,
                rel_end: 1.0,
                rel_failure: f64::INFINITY,
                killer: None,
            },
        );
        let trace = col.take();
        assert!(col.is_empty());
        assert_eq!(trace.len(), 3);
        assert!(matches!(trace.events[0].kind, EventKind::AttemptStart { .. }));
        assert!(matches!(trace.events[1].kind, EventKind::Recv { .. }));
        assert!(matches!(trace.events[2].kind, EventKind::AttemptEnd { .. }));
    }

    #[test]
    fn collector_is_shareable_across_threads() {
        let col = std::sync::Arc::new(Collector::new());
        std::thread::scope(|s| {
            for rank in 0..4u32 {
                let col = std::sync::Arc::clone(&col);
                s.spawn(move || {
                    let rec = Recorder::new(rank);
                    rec.record(rank as f64, EventKind::Death);
                    col.absorb(rec.drain());
                });
            }
        });
        assert_eq!(col.len(), 4);
    }
}
