//! The event schema: one variant per observable action in the stack.

/// One recorded flight-recorder event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Absolute virtual time of the event, seconds.
    pub time: f64,
    /// Physical rank that emitted the event; `None` for executor-level
    /// events that are not tied to a single rank (attempt brackets,
    /// topology is per-rank but injected by the executor with a rank).
    pub rank: Option<u32>,
    /// What happened.
    pub kind: EventKind,
}

/// The observable actions recorded across the stack.
///
/// Emitters by layer: `Send`/`Recv`/`Death`/`RankFinish` come from the
/// message runtime, `Vote`/`Failover` from the replication layer,
/// `CheckpointBegin`/`CheckpointCommit`/`Restore` from the checkpoint
/// coordinator, and `Topology`/`AttemptStart`/`Injected`/`AttemptEnd` from
/// the resilient executor.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EventKind {
    /// A physical point-to-point message was injected.
    Send {
        /// Destination physical (world) rank.
        to: u32,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A physical message was consumed from the transport.
    Recv {
        /// Source physical (world) rank.
        from: u32,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// The emitting rank observed its own fail-stop. The event time is the
    /// sampled death time, recorded exactly once per rank per run.
    Death,
    /// A receive-path vote over the redundant copies of one virtual
    /// message.
    Vote {
        /// Number of copies that participated (live sender replicas).
        copies: u32,
        /// Whether every copy agreed bit-for-bit.
        unanimous: bool,
        /// Whether a majority existed despite a mismatch (SDC corrected).
        corrected: bool,
    },
    /// The emitting replica became the acting leader of a wildcard receive
    /// because every lower-indexed replica of its sphere had died.
    Failover {
        /// The sphere (virtual rank) whose leadership moved.
        sphere: u32,
    },
    /// Coordinated checkpoint `seq` started on this rank (quiesce begins).
    CheckpointBegin {
        /// Checkpoint sequence number.
        seq: u64,
    },
    /// Checkpoint `seq` committed on this rank — recorded **after** the
    /// commit barrier, so a rank that dies mid-checkpoint never emits one.
    CheckpointCommit {
        /// Checkpoint sequence number.
        seq: u64,
        /// Stored image size in bytes.
        bytes: u64,
        /// Virtual-time write cost charged, seconds.
        cost: f64,
    },
    /// State restored from checkpoint `seq` at the start of an attempt.
    Restore {
        /// Checkpoint sequence number restored from.
        seq: u64,
        /// Virtual time at which the restored cut was originally taken.
        cut: f64,
    },
    /// Rank teardown: the rank's cumulative busy/comm split, for deriving
    /// its observed communication fraction `α = comm / (busy + comm)`.
    RankFinish {
        /// Seconds attributed to computation.
        busy: f64,
        /// Seconds attributed to communication.
        comm: f64,
    },
    /// Executor: sphere membership of one physical rank (emitted once per
    /// run, before the first attempt).
    Topology {
        /// The sphere (virtual rank) this physical rank serves.
        sphere: u32,
        /// Replica index within the sphere (0 = primary).
        replica: u32,
    },
    /// Executor: an attempt started (time = absolute attempt start).
    AttemptStart {
        /// Attempt number (0-based, as planned by the injector).
        attempt: u64,
    },
    /// Executor: a fail-stop was scheduled for the event's rank this
    /// attempt. The event time is absolute; `rel` is the schedule's
    /// relative death time — the exact value the executor's masked-death
    /// accounting compares. Only finite (i.e. actually scheduled) deaths
    /// are recorded.
    Injected {
        /// Death time relative to the attempt start, seconds.
        rel: f64,
    },
    /// Executor: the failure detector's suspicion deadline for the event's
    /// (dead) rank elapsed with no heartbeat. The event time is the
    /// modeled suspicion time (last heartbeat before the death plus the
    /// suspicion timeout); the decision itself is taken at the next agreed
    /// step boundary (see [`RespawnBegin`](Self::RespawnBegin)).
    HeartbeatMiss {
        /// The sphere (virtual rank) of the suspected replica.
        sphere: u32,
    },
    /// Executor: a respawn-and-rejoin cycle started for the event's rank.
    /// The event time is the agreed step boundary at which the heal
    /// decision was taken (state transfer from a surviving replica starts
    /// here). A `RespawnBegin` without a matching
    /// [`RespawnCommit`](Self::RespawnCommit) means the donor sphere died
    /// mid-transfer and the attempt failed instead.
    RespawnBegin {
        /// The sphere being healed.
        sphere: u32,
    },
    /// Executor: the respawned replica committed its rejoin (time = the
    /// boundary plus the modeled respawn and transfer costs). Carries the
    /// exact relative values the executor's heal accounting uses, so the
    /// analyzer reproduces the repair totals bit-for-bit.
    RespawnCommit {
        /// The sphere that was healed.
        sphere: u32,
        /// Commit time relative to the attempt start, seconds.
        rel: f64,
        /// Heal latency: seconds from the replica's death to this commit.
        latency: f64,
    },
    /// Executor: the healed sphere votes at full strength again (same time
    /// as the commit; recorded separately so voting-strength transitions
    /// are visible without joining against topology).
    RejoinVote {
        /// The sphere whose voting strength recovered.
        sphere: u32,
        /// Live copies after the rejoin (the sphere's full replica count).
        copies: u32,
    },
    /// Executor: an attempt ended.
    AttemptEnd {
        /// Attempt number (matches the opening `AttemptStart`).
        attempt: u64,
        /// Whether the application completed (vs a sphere death restart).
        completed: bool,
        /// End of the attempt relative to its start, seconds (clamped
        /// non-negative) — the executor's `end_rel`.
        rel_end: f64,
        /// Planned job-failure time relative to the attempt start
        /// (`INFINITY` when the attempt was planned failure-free) — the
        /// executor's `rel_failure`.
        rel_failure: f64,
        /// The sphere whose last replica died, for failed attempts.
        killer: Option<u32>,
    },
}

impl Event {
    /// The JSONL discriminator string of this event's kind.
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            EventKind::Send { .. } => "send",
            EventKind::Recv { .. } => "recv",
            EventKind::Death => "death",
            EventKind::Vote { .. } => "vote",
            EventKind::Failover { .. } => "failover",
            EventKind::CheckpointBegin { .. } => "ckpt_begin",
            EventKind::CheckpointCommit { .. } => "ckpt_commit",
            EventKind::Restore { .. } => "restore",
            EventKind::RankFinish { .. } => "rank_finish",
            EventKind::Topology { .. } => "topology",
            EventKind::AttemptStart { .. } => "attempt_start",
            EventKind::Injected { .. } => "injected",
            EventKind::HeartbeatMiss { .. } => "heartbeat_miss",
            EventKind::RespawnBegin { .. } => "respawn_begin",
            EventKind::RespawnCommit { .. } => "respawn_commit",
            EventKind::RejoinVote { .. } => "rejoin_vote",
            EventKind::AttemptEnd { .. } => "attempt_end",
        }
    }
}
