//! Pareto-frontier extraction over the planner's three objectives:
//! wallclock (minimize), node-hours (minimize), completion rate
//! (maximize) — the paper's "redundancy is a tuning knob" trade-off made
//! queryable.
//!
//! A scenario is on the frontier iff no other scenario is at least as good
//! on all three objectives and strictly better on one. Divergent
//! scenarios (no finite wallclock) can never be on the frontier.

use crate::engine::SweepEntry;

/// One frontier point, referencing its sweep entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Index into the sweep report's `entries`.
    pub entry_index: usize,
    /// Wallclock, hours.
    pub total_time_hours: f64,
    /// Resource usage, node-hours.
    pub node_hours: f64,
    /// Completion rate.
    pub completion_rate: f64,
}

/// `a` dominates `b`: no worse on every objective, strictly better on one.
fn dominates(a: &ParetoPoint, b: &ParetoPoint) -> bool {
    let no_worse = a.total_time_hours <= b.total_time_hours
        && a.node_hours <= b.node_hours
        && a.completion_rate >= b.completion_rate;
    let strictly_better = a.total_time_hours < b.total_time_hours
        || a.node_hours < b.node_hours
        || a.completion_rate > b.completion_rate;
    no_worse && strictly_better
}

/// Extracts the Pareto frontier of `entries`, sorted by ascending
/// wallclock (ties: ascending node-hours, then entry index) for a
/// deterministic, render-ready order.
pub fn frontier(entries: &[SweepEntry]) -> Vec<ParetoPoint> {
    let candidates: Vec<ParetoPoint> = entries
        .iter()
        .enumerate()
        .filter_map(|(i, e)| {
            let t = e.result.total_time_hours?;
            let nh = e.result.node_hours?;
            Some(ParetoPoint {
                entry_index: i,
                total_time_hours: t,
                node_hours: nh,
                completion_rate: e.result.completion_rate,
            })
        })
        .collect();
    let mut front: Vec<ParetoPoint> = candidates
        .iter()
        .filter(|p| !candidates.iter().any(|q| dominates(q, p)))
        .copied()
        .collect();
    front.sort_by(|a, b| {
        a.total_time_hours
            .total_cmp(&b.total_time_hours)
            .then(a.node_hours.total_cmp(&b.node_hours))
            .then(a.entry_index.cmp(&b.entry_index))
    });
    front
}

/// A Pareto frontier restricted to one scenario group (same backend,
/// scale, policy, MTBF, workload — only the redundancy knob varies; see
/// [`ScenarioSpec::group_hash`](crate::spec::ScenarioSpec::group_hash)).
///
/// A global frontier across heterogeneous workloads is dominated by the
/// shortest job and says nothing about tuning; the per-group frontiers
/// answer the planner's actual question: *at my scale and failure rate,
/// which redundancy degrees are worth considering?*
#[derive(Debug, Clone, PartialEq)]
pub struct GroupFrontier {
    /// The group hash shared by the member entries.
    pub group: u64,
    /// Entry index of the group's first submission (deterministic label).
    pub first_entry_index: usize,
    /// The group's non-dominated points, sorted as in [`frontier`].
    pub points: Vec<ParetoPoint>,
}

/// Extracts one Pareto frontier per scenario group, in order of each
/// group's first appearance in `entries`.
pub fn grouped_frontiers(entries: &[SweepEntry]) -> Vec<GroupFrontier> {
    let mut order: Vec<u64> = Vec::new();
    let mut members: std::collections::BTreeMap<u64, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, e) in entries.iter().enumerate() {
        let g = e.spec.group_hash();
        members
            .entry(g)
            .or_insert_with(|| {
                order.push(g);
                Vec::new()
            })
            .push(i);
    }
    order
        .into_iter()
        .map(|group| {
            let idxs = &members[&group];
            // Frontier over the group's members, then map the
            // group-relative indices back to entry indices.
            let subset: Vec<SweepEntry> = idxs.iter().map(|&i| entries[i]).collect();
            let mut points = frontier(&subset);
            for p in &mut points {
                p.entry_index = idxs[p.entry_index];
            }
            GroupFrontier { group, first_entry_index: idxs[0], points }
        })
        .collect()
}

/// Canonical JSON array for a frontier (fixed key order, round-trip float
/// formatting).
pub fn render_json(front: &[ParetoPoint]) -> String {
    let mut out = String::from("[");
    for (i, p) in front.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"entry_index\":{},\"total_time_hours\":{},\"node_hours\":{},\
             \"completion_rate\":{}}}",
            p.entry_index, p.total_time_hours, p.node_hours, p.completion_rate
        ));
    }
    out.push(']');
    out
}

/// Canonical JSON array for grouped frontiers: one object per group with
/// its 16-hex group hash and the group's frontier points.
pub fn render_groups_json(groups: &[GroupFrontier]) -> String {
    let mut out = String::from("[");
    for (i, g) in groups.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"group\":\"{:016x}\",\"points\":{}}}",
            g.group,
            render_json(&g.points)
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ScenarioResult;
    use crate::spec::{Backend, ScenarioSpec, SpecPolicy, Workload};

    fn entry(t: Option<f64>, nh: Option<f64>, cr: f64) -> SweepEntry {
        entry_at(1.0, 1.0, t, nh, cr)
    }

    fn entry_at(degree: f64, mtbf: f64, t: Option<f64>, nh: Option<f64>, cr: f64) -> SweepEntry {
        let spec = ScenarioSpec {
            backend: Backend::Model,
            n_virtual: 1,
            degree,
            policy: SpecPolicy::Daly,
            node_mtbf_hours: mtbf,
            workload: Workload {
                base_time_hours: 1.0,
                alpha: 0.0,
                checkpoint_cost_hours: 0.1,
                restart_cost_hours: 0.1,
            },
            seeds: 0,
        };
        SweepEntry {
            spec,
            hash: spec.hash(),
            multiplicity: 1,
            cache_hit: false,
            result: ScenarioResult {
                total_time_hours: t,
                node_hours: nh,
                completion_rate: cr,
                mean_failures: 0.0,
                mean_masked_failures: 0.0,
                mean_checkpoints: 0.0,
                mean_attempts: 1.0,
            },
        }
    }

    #[test]
    fn dominated_points_are_dropped() {
        let entries = [
            entry(Some(10.0), Some(100.0), 1.0), // fast but expensive
            entry(Some(20.0), Some(50.0), 1.0),  // slow but cheap
            entry(Some(25.0), Some(120.0), 1.0), // dominated by both
        ];
        let f = frontier(&entries);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].entry_index, 0);
        assert_eq!(f[1].entry_index, 1);
    }

    #[test]
    fn divergent_entries_never_make_the_frontier() {
        let entries = [entry(None, None, 0.0), entry(Some(10.0), Some(10.0), 0.9)];
        let f = frontier(&entries);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].entry_index, 1);
    }

    #[test]
    fn completion_rate_is_a_real_objective() {
        // Same time and cost, higher completion rate dominates.
        let entries = [
            entry(Some(10.0), Some(10.0), 0.5),
            entry(Some(10.0), Some(10.0), 1.0),
            // Slower and dearer but the only one that always finishes? No —
            // entry 1 already has cr 1.0, so this is dominated.
            entry(Some(12.0), Some(12.0), 1.0),
        ];
        let f = frontier(&entries);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].entry_index, 1);
    }

    #[test]
    fn identical_points_both_survive() {
        // Neither strictly betters the other: both stay (deterministically
        // ordered by entry index).
        let entries = [entry(Some(10.0), Some(10.0), 1.0), entry(Some(10.0), Some(10.0), 1.0)];
        let f = frontier(&entries);
        assert_eq!(f.len(), 2);
        assert_eq!((f[0].entry_index, f[1].entry_index), (0, 1));
    }

    #[test]
    fn frontier_is_sorted_by_time() {
        let entries = [
            entry(Some(30.0), Some(10.0), 1.0),
            entry(Some(10.0), Some(90.0), 1.0),
            entry(Some(20.0), Some(40.0), 1.0),
        ];
        let f = frontier(&entries);
        assert_eq!(f.len(), 3);
        assert!(f.windows(2).all(|w| w[0].total_time_hours <= w[1].total_time_hours));
    }

    #[test]
    fn grouped_frontiers_split_by_knob_family() {
        // Two MTBF families; within each, one point dominates the other.
        // Across families the short-job family would dominate globally,
        // but grouping keeps both surfaces.
        let entries = [
            entry_at(1.0, 6.0, Some(1.0), Some(1.0), 1.0),
            entry_at(2.0, 6.0, Some(2.0), Some(4.0), 1.0), // dominated in-group
            entry_at(1.0, 12.0, Some(10.0), Some(10.0), 1.0),
            entry_at(2.0, 12.0, Some(9.0), Some(20.0), 1.0),
        ];
        let groups = grouped_frontiers(&entries);
        assert_eq!(groups.len(), 2);
        // Groups appear in first-submission order.
        assert_eq!(groups[0].first_entry_index, 0);
        assert_eq!(groups[1].first_entry_index, 2);
        assert_eq!(groups[0].points.len(), 1);
        assert_eq!(groups[0].points[0].entry_index, 0);
        // Both MTBF-12 points are in-group incomparable: both survive.
        assert_eq!(groups[1].points.len(), 2);
        let idxs: Vec<usize> = groups[1].points.iter().map(|p| p.entry_index).collect();
        assert_eq!(idxs, vec![3, 2]); // sorted by wallclock
    }

    #[test]
    fn grouped_frontier_indices_reference_the_full_entry_slice() {
        let entries = [
            entry_at(1.0, 6.0, Some(1.0), Some(1.0), 1.0),
            entry_at(1.0, 12.0, Some(5.0), Some(5.0), 1.0),
            entry_at(2.0, 12.0, Some(4.0), Some(4.0), 1.0), // dominates entry 1
        ];
        let groups = grouped_frontiers(&entries);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[1].points.len(), 1);
        assert_eq!(groups[1].points[0].entry_index, 2, "index maps back to the full slice");
    }

    #[test]
    fn groups_json_renders_deterministically() {
        let entries = [entry_at(1.0, 6.0, Some(1.5), Some(3.0), 1.0)];
        let groups = grouped_frontiers(&entries);
        let s = render_groups_json(&groups);
        let expect = format!(
            "[{{\"group\":\"{:016x}\",\"points\":[{{\"entry_index\":0,\
             \"total_time_hours\":1.5,\"node_hours\":3,\"completion_rate\":1}}]}}]",
            entries[0].spec.group_hash()
        );
        assert_eq!(s, expect);
    }

    #[test]
    fn json_renders_deterministically() {
        let entries = [entry(Some(10.5), Some(21.0), 1.0)];
        let f = frontier(&entries);
        let s = render_json(&f);
        assert_eq!(
            s,
            "[{\"entry_index\":0,\"total_time_hours\":10.5,\"node_hours\":21,\
             \"completion_rate\":1}]"
        );
    }
}
