//! Canonical scenario specification: the cache key of the capacity planner.
//!
//! A [`ScenarioSpec`] pins down *everything* that determines a sweep
//! point's result — backend, scale, redundancy degree, checkpoint policy,
//! failure rate, workload shape, and Monte-Carlo seed count. Two specs
//! that encode to the same canonical bytes are the same scenario: the
//! dedup front-end collapses them and the result cache serves one answer
//! for both.
//!
//! The canonical encoding is versioned, fixed-width, and byte-exact
//! (floats are encoded as their IEEE-754 bit patterns, big-endian), so the
//! 64-bit FNV-1a hash over it is stable across runs, platforms, and
//! process layouts. Nothing wall-clock or environment-dependent may ever
//! leak into it.

use redcr_model::combined::{CombinedConfig, IntervalPolicy};
use redcr_model::Result as ModelResult;

/// Version byte prefixed to the canonical encoding. Bump it whenever the
/// meaning of a scenario changes (new field, changed simulator semantics)
/// so every stale cache entry misses instead of serving wrong answers.
pub const SPEC_ENCODING_VERSION: u8 = 1;

/// Which evaluation engine answers the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Closed-form combined model (Eqs. 1, 9–15): one evaluation,
    /// `seeds` is ignored.
    Model,
    /// Discrete-event cluster simulator: `seeds` Monte-Carlo runs with
    /// deterministic seed assignment `0..seeds`.
    Simulator,
}

impl Backend {
    fn tag(self) -> u8 {
        match self {
            Backend::Model => 0,
            Backend::Simulator => 1,
        }
    }

    /// Canonical lowercase name (used in JSON).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Model => "model",
            Backend::Simulator => "simulator",
        }
    }

    /// Parses [`Backend::name`] back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "model" => Some(Backend::Model),
            "simulator" => Some(Backend::Simulator),
            _ => None,
        }
    }
}

/// Checkpoint-interval policy of a scenario (mirror of
/// [`IntervalPolicy`] with a stable encoding).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpecPolicy {
    /// Daly's higher-order interval (the paper's choice).
    Daly,
    /// Young's first-order interval.
    Young,
    /// A fixed interval in hours.
    Fixed(f64),
    /// Numerical minimization of Eq. 14.
    Optimal,
}

impl SpecPolicy {
    fn tag(self) -> (u8, f64) {
        match self {
            SpecPolicy::Daly => (0, 0.0),
            SpecPolicy::Young => (1, 0.0),
            SpecPolicy::Fixed(h) => (2, h),
            SpecPolicy::Optimal => (3, 0.0),
        }
    }

    /// The model-crate policy this stands for.
    pub fn to_interval_policy(self) -> IntervalPolicy {
        match self {
            SpecPolicy::Daly => IntervalPolicy::Daly,
            SpecPolicy::Young => IntervalPolicy::Young,
            SpecPolicy::Fixed(h) => IntervalPolicy::Fixed(h),
            SpecPolicy::Optimal => IntervalPolicy::Optimal,
        }
    }

    /// Canonical string form (used in JSON): `daly`, `young`, `optimal`,
    /// or `fixed:<hours>`.
    pub fn render(self) -> String {
        match self {
            SpecPolicy::Daly => "daly".into(),
            SpecPolicy::Young => "young".into(),
            SpecPolicy::Optimal => "optimal".into(),
            SpecPolicy::Fixed(h) => format!("fixed:{h}"),
        }
    }

    /// Parses [`SpecPolicy::render`] back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "daly" => Some(SpecPolicy::Daly),
            "young" => Some(SpecPolicy::Young),
            "optimal" => Some(SpecPolicy::Optimal),
            _ => {
                let h = s.strip_prefix("fixed:")?;
                h.parse().ok().map(SpecPolicy::Fixed)
            }
        }
    }
}

/// Workload shape: the application-side inputs of the combined model.
/// All durations in hours.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Failure-free base execution time without redundancy.
    pub base_time_hours: f64,
    /// Communication/computation ratio `α ∈ [0, 1]`.
    pub alpha: f64,
    /// Coordinated checkpoint cost `c`.
    pub checkpoint_cost_hours: f64,
    /// Restart overhead `R`.
    pub restart_cost_hours: f64,
}

/// One point of a capacity-planning sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioSpec {
    /// Evaluation engine.
    pub backend: Backend,
    /// `N`: virtual (application-visible) process count.
    pub n_virtual: u64,
    /// `r`: redundancy degree.
    pub degree: f64,
    /// Checkpoint-interval policy.
    pub policy: SpecPolicy,
    /// `θ`: per-node MTBF, hours.
    pub node_mtbf_hours: f64,
    /// Application workload shape.
    pub workload: Workload,
    /// Monte-Carlo runs for the simulator backend (ignored by the model).
    pub seeds: u32,
}

/// 64-bit FNV-1a over `bytes` (offset basis / prime per the reference
/// parameters).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ScenarioSpec {
    /// The versioned, fixed-width canonical encoding. Field order and
    /// widths are frozen per [`SPEC_ENCODING_VERSION`]; floats contribute
    /// their exact IEEE-754 bit patterns, so `-0.0` and `0.0` are
    /// *different* scenarios (they are different inputs to the model).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        self.canonical_bytes_with_degree_bits(self.degree.to_bits())
    }

    fn canonical_bytes_with_degree_bits(&self, degree_bits: u64) -> Vec<u8> {
        let (ptag, pval) = self.policy.tag();
        let mut out = Vec::with_capacity(64);
        out.push(SPEC_ENCODING_VERSION);
        out.push(self.backend.tag());
        out.extend_from_slice(&self.n_virtual.to_be_bytes());
        out.extend_from_slice(&degree_bits.to_be_bytes());
        out.push(ptag);
        out.extend_from_slice(&pval.to_bits().to_be_bytes());
        out.extend_from_slice(&self.node_mtbf_hours.to_bits().to_be_bytes());
        out.extend_from_slice(&self.workload.base_time_hours.to_bits().to_be_bytes());
        out.extend_from_slice(&self.workload.alpha.to_bits().to_be_bytes());
        out.extend_from_slice(&self.workload.checkpoint_cost_hours.to_bits().to_be_bytes());
        out.extend_from_slice(&self.workload.restart_cost_hours.to_bits().to_be_bytes());
        // The model backend evaluates a closed form: its answer does not
        // depend on the Monte-Carlo budget, so `seeds` is canonicalized to
        // 0 there — submitting the same model point with different seed
        // counts must dedup/cache-hit to one entry.
        let seeds = match self.backend {
            Backend::Model => 0,
            Backend::Simulator => self.seeds,
        };
        out.extend_from_slice(&seeds.to_be_bytes());
        out
    }

    /// The scenario's FNV-1a hash over [`ScenarioSpec::canonical_bytes`].
    pub fn hash(&self) -> u64 {
        fnv1a(&self.canonical_bytes())
    }

    /// The *group* hash: the scenario hash with the redundancy degree
    /// replaced by a sentinel. Scenarios sharing a group ask the same
    /// question (same backend, scale, policy, MTBF, workload, seeds) with
    /// different settings of the tuning knob `r` — the population a Pareto
    /// frontier meaningfully compares.
    pub fn group_hash(&self) -> u64 {
        // NaN bits are unreachable as a real degree (validation rejects
        // NaN), so they cannot collide with any scenario's own encoding.
        fnv1a(&self.canonical_bytes_with_degree_bits(f64::NAN.to_bits()))
    }

    /// The hash as the fixed-width hex key used in the JSONL cache.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.hash())
    }

    /// Builds the combined-model configuration this scenario evaluates.
    ///
    /// # Errors
    ///
    /// Propagates model domain errors (invalid degree, α, costs, …).
    pub fn to_config(&self) -> ModelResult<CombinedConfig> {
        CombinedConfig::builder()
            .virtual_processes(self.n_virtual)
            .degree(self.degree)
            .base_time_hours(self.workload.base_time_hours)
            .node_mtbf_hours(self.node_mtbf_hours)
            .comm_fraction(self.workload.alpha)
            .checkpoint_cost_hours(self.workload.checkpoint_cost_hours)
            .restart_cost_hours(self.workload.restart_cost_hours)
            .interval_policy(self.policy.to_interval_policy())
            .build()
    }

    /// Canonical JSON object for this spec: fixed key order, shortest
    /// round-trip float formatting — byte-stable across runs.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"backend\":\"{}\",\"n_virtual\":{},\"degree\":{},\"policy\":\"{}\",\
             \"mtbf_hours\":{},\"base_time_hours\":{},\"alpha\":{},\
             \"checkpoint_cost_hours\":{},\"restart_cost_hours\":{},\"seeds\":{}}}",
            self.backend.name(),
            self.n_virtual,
            self.degree,
            self.policy.render(),
            self.node_mtbf_hours,
            self.workload.base_time_hours,
            self.workload.alpha,
            self.workload.checkpoint_cost_hours,
            self.workload.restart_cost_hours,
            self.seeds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_spec() -> ScenarioSpec {
        ScenarioSpec {
            backend: Backend::Simulator,
            n_virtual: 128,
            degree: 2.0,
            policy: SpecPolicy::Daly,
            node_mtbf_hours: 12.0,
            workload: Workload {
                base_time_hours: 46.0 / 60.0,
                alpha: 0.2,
                checkpoint_cost_hours: 120.0 / 3600.0,
                restart_cost_hours: 500.0 / 3600.0,
            },
            seeds: 32,
        }
    }

    #[test]
    fn hash_is_stable_across_calls() {
        let s = base_spec();
        assert_eq!(s.hash(), s.hash());
        assert_eq!(s.hash_hex().len(), 16);
    }

    #[test]
    fn fnv_reference_vector() {
        // Known FNV-1a 64 test vector: "a" -> 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn every_field_changes_the_hash() {
        let s = base_spec();
        let h = s.hash();
        let variants = [
            ScenarioSpec { backend: Backend::Model, ..s },
            ScenarioSpec { n_virtual: 129, ..s },
            ScenarioSpec { degree: 2.5, ..s },
            ScenarioSpec { policy: SpecPolicy::Young, ..s },
            ScenarioSpec { policy: SpecPolicy::Fixed(1.0), ..s },
            ScenarioSpec { node_mtbf_hours: 13.0, ..s },
            ScenarioSpec { workload: Workload { base_time_hours: 1.0, ..s.workload }, ..s },
            ScenarioSpec { workload: Workload { alpha: 0.3, ..s.workload }, ..s },
            ScenarioSpec { workload: Workload { checkpoint_cost_hours: 0.5, ..s.workload }, ..s },
            ScenarioSpec { workload: Workload { restart_cost_hours: 0.5, ..s.workload }, ..s },
            ScenarioSpec { seeds: 33, ..s },
        ];
        for v in variants {
            assert_ne!(v.hash(), h, "variant must hash differently: {v:?}");
        }
    }

    #[test]
    fn group_hash_ignores_degree_only() {
        let s = base_spec();
        let other_degree = ScenarioSpec { degree: 3.0, ..s };
        assert_eq!(s.group_hash(), other_degree.group_hash(), "degree is the knob");
        let other_mtbf = ScenarioSpec { node_mtbf_hours: 24.0, ..s };
        assert_ne!(s.group_hash(), other_mtbf.group_hash(), "environment splits groups");
        let other_backend = ScenarioSpec { backend: Backend::Model, ..s };
        assert_ne!(s.group_hash(), other_backend.group_hash());
    }

    #[test]
    fn model_backend_ignores_seed_count() {
        let a = ScenarioSpec { backend: Backend::Model, seeds: 1, ..base_spec() };
        let b = ScenarioSpec { backend: Backend::Model, seeds: 99, ..base_spec() };
        assert_eq!(a.hash(), b.hash(), "closed-form answer is seed-free");
    }

    #[test]
    fn fixed_policies_with_different_intervals_differ() {
        let a = ScenarioSpec { policy: SpecPolicy::Fixed(1.0), ..base_spec() };
        let b = ScenarioSpec { policy: SpecPolicy::Fixed(2.0), ..base_spec() };
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn policy_round_trips() {
        for p in [
            SpecPolicy::Daly,
            SpecPolicy::Young,
            SpecPolicy::Optimal,
            SpecPolicy::Fixed(1.5),
            SpecPolicy::Fixed(0.012345678901234567),
        ] {
            assert_eq!(SpecPolicy::parse(&p.render()), Some(p));
        }
        assert_eq!(SpecPolicy::parse("nonsense"), None);
        assert_eq!(Backend::parse("model"), Some(Backend::Model));
        assert_eq!(Backend::parse("simulator"), Some(Backend::Simulator));
        assert_eq!(Backend::parse("x"), None);
    }

    #[test]
    fn to_config_matches_fields() {
        let cfg = base_spec().to_config().unwrap();
        assert_eq!(cfg.n_virtual, 128);
        assert_eq!(cfg.degree, 2.0);
        assert_eq!(cfg.node_mtbf, 12.0);
        assert_eq!(cfg.alpha, 0.2);
    }

    #[test]
    fn render_json_is_deterministic() {
        let s = base_spec();
        assert_eq!(s.render_json(), s.render_json());
        assert!(s.render_json().starts_with("{\"backend\":\"simulator\""));
    }
}
