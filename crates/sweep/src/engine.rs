//! Batch execution engine: dedup → cache lookup → multi-core cold-miss
//! evaluation → cache append.
//!
//! The engine is the serving core of the capacity planner. A submitted
//! batch is deduplicated by canonical hash, warm scenarios are answered
//! straight from the [`ResultCache`], and the cold remainder is drained by
//! a work queue across worker threads. Determinism contract: the report —
//! and the bytes appended to the cache — depend only on the submitted
//! specs and prior cache contents, never on thread count or scheduling
//! (every simulator scenario draws its Monte-Carlo seeds as `0..seeds`,
//! and results land in per-scenario slots).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use redcr_prof::{ProfScope, Profiler, SpanKey};

use redcr_cluster::combined::simulate_combined;
use redcr_cluster::job::FailureExposure;
use redcr_cluster::sweep::monte_carlo;
use redcr_cluster::SimError;
use redcr_model::ModelError;

use crate::cache::{ResultCache, ScenarioResult};
use crate::dedup::{dedup, DedupedBatch};
use crate::spec::{Backend, ScenarioSpec};

/// Errors a sweep can abort with. Divergent scenarios are *results*
/// (completion rate 0), not errors; these are real faults: invalid specs,
/// backend failures, cache I/O.
#[derive(Debug)]
pub enum SweepError {
    /// A spec failed model-domain validation or the model errored.
    Model(ModelError),
    /// The cluster simulator failed (not divergence, which is aggregated).
    Sim(SimError),
    /// The result cache could not be read or appended.
    Io(std::io::Error),
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::Model(e) => write!(f, "model error: {e}"),
            SweepError::Sim(e) => write!(f, "simulation error: {e}"),
            SweepError::Io(e) => write!(f, "cache I/O error: {e}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<ModelError> for SweepError {
    fn from(e: ModelError) -> Self {
        SweepError::Model(e)
    }
}

impl From<SimError> for SweepError {
    fn from(e: SimError) -> Self {
        SweepError::Sim(e)
    }
}

impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError::Io(e)
    }
}

/// One answered scenario of a sweep report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepEntry {
    /// The scenario.
    pub spec: ScenarioSpec,
    /// Its canonical hash.
    pub hash: u64,
    /// How many submitted points collapsed into this entry.
    pub multiplicity: usize,
    /// Whether the result came from the cache (warm) or a backend (cold).
    pub cache_hit: bool,
    /// The outcome.
    pub result: ScenarioResult,
}

/// Batch-level accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// Points submitted (before dedup).
    pub submitted: usize,
    /// Unique scenarios after dedup.
    pub unique: usize,
    /// Unique scenarios answered from the cache.
    pub cache_hits: usize,
    /// Unique scenarios evaluated by a backend this run.
    pub cold_misses: usize,
}

impl SweepStats {
    /// Whether every unique scenario was served warm.
    pub fn all_warm(&self) -> bool {
        self.cold_misses == 0
    }
}

/// The result of one batch submission: entries in first-submission order
/// plus accounting.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// One entry per unique scenario, in first-submission order.
    pub entries: Vec<SweepEntry>,
    /// Hit/miss accounting.
    pub stats: SweepStats,
}

/// Evaluates one scenario on its backend. Divergence becomes a
/// zero-completion result; only genuine faults error.
///
/// # Errors
///
/// Invalid specs and non-divergence backend failures.
pub fn evaluate(spec: &ScenarioSpec) -> Result<ScenarioResult, SweepError> {
    let cfg = spec.to_config()?;
    match spec.backend {
        Backend::Model => match cfg.evaluate() {
            Ok(o) => {
                // Expected process deaths over the run; the unmasked share
                // is Eq. 11's failure count, the rest were absorbed by
                // redundancy.
                let deaths = o.total_physical as f64 * o.total_time / cfg.node_mtbf;
                Ok(ScenarioResult {
                    total_time_hours: Some(o.total_time),
                    node_hours: Some(o.node_hours),
                    completion_rate: 1.0,
                    mean_failures: o.expected_failures,
                    mean_masked_failures: (deaths - o.expected_failures).max(0.0),
                    mean_checkpoints: o.expected_checkpoints,
                    mean_attempts: 1.0 + o.expected_failures,
                })
            }
            Err(ModelError::Diverged { .. }) => Ok(divergent_result()),
            Err(e) => Err(e.into()),
        },
        Backend::Simulator => {
            let runs = spec.seeds as usize;
            // Parallelism lives at the scenario level (the engine's work
            // queue); each scenario runs its seeds serially so the seed
            // assignment 0..runs is trivially deterministic.
            let agg = monte_carlo(runs, 1, |seed| {
                simulate_combined(&cfg, FailureExposure::AllTime, seed)
            })?;
            if agg.completed == 0 {
                return Ok(divergent_result());
            }
            let total_physical = cfg.partition()?.total_physical();
            Ok(ScenarioResult {
                total_time_hours: Some(agg.mean_total_time),
                node_hours: Some(total_physical as f64 * agg.mean_total_time),
                completion_rate: agg.completion_rate(),
                mean_failures: agg.mean_counts.failures,
                mean_masked_failures: agg.mean_counts.masked_failures,
                mean_checkpoints: agg.mean_counts.checkpoints,
                mean_attempts: agg.mean_counts.attempts,
            })
        }
    }
}

fn divergent_result() -> ScenarioResult {
    ScenarioResult {
        total_time_hours: None,
        node_hours: None,
        completion_rate: 0.0,
        mean_failures: 0.0,
        mean_masked_failures: 0.0,
        mean_checkpoints: 0.0,
        mean_attempts: 0.0,
    }
}

/// Runs a batch: dedup, serve warm scenarios from `cache`, evaluate cold
/// ones on up to `threads` worker threads, append the cold results to the
/// cache (in submission order), and return the report.
///
/// # Errors
///
/// The first backend/spec error encountered (by submission order), or a
/// cache-append I/O error.
pub fn run_sweep(
    submitted: &[ScenarioSpec],
    threads: usize,
    cache: &mut ResultCache,
) -> Result<SweepReport, SweepError> {
    run_sweep_profiled(submitted, threads, cache, None)
}

/// [`run_sweep`] with an optional wall-clock [`Profiler`]: each worker
/// thread keeps a `ProfScope::Worker(w)` shard, wraps every cold
/// evaluation in a `sweep.scenario` span and drains the shard into the
/// profiler at worker exit. `None` costs one branch per cold scenario; the
/// report, cache bytes and entry order are identical either way (the
/// profiler reads the host clock only and every result is slotted by queue
/// index).
///
/// # Errors
///
/// Same as [`run_sweep`].
pub fn run_sweep_profiled(
    submitted: &[ScenarioSpec],
    threads: usize,
    cache: &mut ResultCache,
    profiler: Option<&Profiler>,
) -> Result<SweepReport, SweepError> {
    let batch: DedupedBatch = dedup(submitted);
    let threads = threads.max(1);

    // Partition warm/cold without evaluating anything.
    let mut warm: Vec<Option<ScenarioResult>> = Vec::with_capacity(batch.unique.len());
    let mut hits: Vec<bool> = Vec::with_capacity(batch.unique.len());
    let mut cold_indices: Vec<usize> = Vec::new();
    for (i, spec) in batch.unique.iter().enumerate() {
        match cache.get(spec.hash()) {
            Some(r) => {
                warm.push(Some(*r));
                hits.push(true);
            }
            None => {
                warm.push(None);
                hits.push(false);
                cold_indices.push(i);
            }
        }
    }

    // Drain the cold queue across workers; slot results by queue index so
    // the outcome is independent of which worker ran what.
    let mut cold_results: Vec<Option<Result<ScenarioResult, SweepError>>> =
        (0..cold_indices.len()).map(|_| None).collect();
    if !cold_indices.is_empty() {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<ScenarioResult, SweepError>)>();
        let unique = &batch.unique;
        let cold = &cold_indices;
        std::thread::scope(|scope| {
            for w in 0..threads.min(cold.len()) {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || {
                    let shard = profiler.map(|p| p.shard());
                    loop {
                        let qi = next.fetch_add(1, Ordering::SeqCst);
                        if qi >= cold.len() {
                            break;
                        }
                        let span = shard.as_ref().map(|s| s.span(SpanKey::SweepScenario));
                        let outcome = evaluate(&unique[cold[qi]]);
                        drop(span);
                        if tx.send((qi, outcome)).is_err() {
                            break;
                        }
                    }
                    if let (Some(p), Some(shard)) = (profiler, shard) {
                        p.absorb(ProfScope::Worker(w as u32), shard.drain());
                    }
                });
            }
            drop(tx);
            for (qi, outcome) in rx {
                cold_results[qi] = Some(outcome);
            }
        });
    }

    // Surface errors deterministically: first failing scenario by
    // submission order, regardless of completion order.
    let mut appended: Vec<(ScenarioSpec, ScenarioResult)> = Vec::with_capacity(cold_indices.len());
    let mut resolved: Vec<Option<ScenarioResult>> = warm;
    for (qi, &ui) in cold_indices.iter().enumerate() {
        let outcome = cold_results[qi].take().expect("cold slot filled")?;
        appended.push((batch.unique[ui], outcome));
        resolved[ui] = Some(outcome);
    }
    cache.append_batch(&appended)?;

    let entries: Vec<SweepEntry> = batch
        .unique
        .iter()
        .enumerate()
        .map(|(i, spec)| SweepEntry {
            spec: *spec,
            hash: spec.hash(),
            multiplicity: batch.multiplicity[i],
            cache_hit: hits[i],
            result: resolved[i].expect("every scenario resolved"),
        })
        .collect();
    let stats = SweepStats {
        submitted: batch.submitted,
        unique: batch.unique.len(),
        cache_hits: batch.unique.len() - cold_indices.len(),
        cold_misses: cold_indices.len(),
    };
    Ok(SweepReport { entries, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{SpecPolicy, Workload};

    fn paper_workload() -> Workload {
        Workload {
            base_time_hours: 46.0 / 60.0,
            alpha: 0.2,
            checkpoint_cost_hours: 120.0 / 3600.0,
            restart_cost_hours: 500.0 / 3600.0,
        }
    }

    fn model_spec(n: u64, degree: f64) -> ScenarioSpec {
        ScenarioSpec {
            backend: Backend::Model,
            n_virtual: n,
            degree,
            policy: SpecPolicy::Daly,
            node_mtbf_hours: 12.0,
            workload: paper_workload(),
            seeds: 0,
        }
    }

    fn sim_spec(degree: f64, seeds: u32) -> ScenarioSpec {
        ScenarioSpec { backend: Backend::Simulator, seeds, ..model_spec(128, degree) }
    }

    #[test]
    fn model_and_simulator_agree_roughly() {
        let m = evaluate(&model_spec(128, 2.0)).unwrap();
        let s = evaluate(&sim_spec(2.0, 32)).unwrap();
        let (mt, st) = (m.total_time_hours.unwrap(), s.total_time_hours.unwrap());
        let rel = (mt - st).abs() / mt;
        assert!(rel < 0.2, "model {mt} vs simulated {st} (rel {rel})");
        assert_eq!(s.completion_rate, 1.0);
        assert!(s.mean_checkpoints > 0.0);
    }

    #[test]
    fn cold_then_warm_is_identical_and_all_hits() {
        let specs: Vec<ScenarioSpec> = [1.0, 1.5, 2.0].iter().map(|&d| sim_spec(d, 8)).collect();
        let mut cache = ResultCache::in_memory();
        let cold = run_sweep(&specs, 4, &mut cache).unwrap();
        assert_eq!(cold.stats.cold_misses, 3);
        assert_eq!(cold.stats.cache_hits, 0);
        let warm = run_sweep(&specs, 4, &mut cache).unwrap();
        assert_eq!(warm.stats.cold_misses, 0);
        assert_eq!(warm.stats.cache_hits, 3);
        assert!(warm.stats.all_warm());
        for (c, w) in cold.entries.iter().zip(&warm.entries) {
            assert_eq!(c.result, w.result);
            assert!(!c.cache_hit);
            assert!(w.cache_hit);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let specs: Vec<ScenarioSpec> =
            [1.0, 1.25, 1.5, 2.0, 2.5, 3.0].iter().map(|&d| sim_spec(d, 8)).collect();
        let a = run_sweep(&specs, 1, &mut ResultCache::in_memory()).unwrap();
        let b = run_sweep(&specs, 8, &mut ResultCache::in_memory()).unwrap();
        assert_eq!(a.entries.len(), b.entries.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.result, y.result, "thread count must not matter");
        }
    }

    #[test]
    fn profiled_sweep_matches_unprofiled_and_records_spans() {
        let specs: Vec<ScenarioSpec> = [1.0, 1.5, 2.0].iter().map(|&d| sim_spec(d, 8)).collect();
        let plain = run_sweep(&specs, 2, &mut ResultCache::in_memory()).unwrap();
        let profiler = Profiler::new();
        let profiled =
            run_sweep_profiled(&specs, 2, &mut ResultCache::in_memory(), Some(&profiler)).unwrap();
        for (a, b) in plain.entries.iter().zip(&profiled.entries) {
            assert_eq!(a.result, b.result, "profiling must not change results");
        }
        let report = profiler.report();
        let stat = report.total_span(SpanKey::SweepScenario);
        assert_eq!(stat.count, 3, "one span per cold scenario");
        assert!(report.scopes().iter().all(|s| s.label().starts_with("worker")));
    }

    #[test]
    fn duplicates_collapse_and_multiplicity_survives() {
        let s = model_spec(1000, 2.0);
        let report = run_sweep(&[s, s, s], 2, &mut ResultCache::in_memory()).unwrap();
        assert_eq!(report.stats.submitted, 3);
        assert_eq!(report.stats.unique, 1);
        assert_eq!(report.entries[0].multiplicity, 3);
    }

    #[test]
    fn divergent_scenario_is_a_result_not_an_error() {
        // 1x at huge scale with a day-long node MTBF: Eq. 14 blows up.
        let mut spec = model_spec(1_000_000, 1.0);
        spec.node_mtbf_hours = 24.0;
        spec.workload.base_time_hours = 128.0;
        let r = evaluate(&spec).unwrap();
        assert_eq!(r.total_time_hours, None);
        assert_eq!(r.completion_rate, 0.0);
    }

    #[test]
    fn invalid_spec_is_an_error() {
        let mut spec = model_spec(128, 2.0);
        spec.workload.alpha = 2.0;
        assert!(matches!(evaluate(&spec), Err(SweepError::Model(_))));
        let mut cache = ResultCache::in_memory();
        assert!(run_sweep(&[spec], 2, &mut cache).is_err());
    }

    #[test]
    fn model_masked_failures_exceed_unmasked_at_high_redundancy() {
        let r = evaluate(&model_spec(128, 3.0)).unwrap();
        assert!(
            r.mean_masked_failures > r.mean_failures,
            "triple redundancy masks most deaths: {r:?}"
        );
    }
}
