//! Persistent JSONL result cache keyed by scenario hash.
//!
//! One line per scenario: `{"hash":"<16 hex>","spec":{…},"result":{…}}`.
//! Warm lookups serve results without touching a backend; cold misses are
//! appended after the batch completes, in deterministic submission order.
//! The `spec` object is stored for auditability (a cache line is
//! self-describing); lookups go through the hash alone.
//!
//! The file format is append-only and tolerant: unparsable lines are
//! counted and skipped, never served. A later line for the same hash wins
//! (re-appends after a version bump of the encoding simply shadow).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

use crate::spec::ScenarioSpec;

/// The outcome of one scenario, as cached and as returned by the engine.
///
/// Count means are **fractional** (expected values), never rounded: a rare
/// event with true mean 0.2 must report 0.2, not 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioResult {
    /// Expected wallclock, hours; `None` when the scenario diverges
    /// (model Eq. 14 blow-up, or no simulated run completed).
    pub total_time_hours: Option<f64>,
    /// Expected resource usage `N_physical × T_total`, node-hours;
    /// `None` when divergent.
    pub node_hours: Option<f64>,
    /// Fraction of runs that completed (model: 1.0 or 0.0).
    pub completion_rate: f64,
    /// Mean unmasked failures per run.
    pub mean_failures: f64,
    /// Mean masked (redundancy-absorbed) process deaths per run.
    pub mean_masked_failures: f64,
    /// Mean checkpoints committed per run.
    pub mean_checkpoints: f64,
    /// Mean attempts per run (1 = failure-free).
    pub mean_attempts: f64,
}

impl ScenarioResult {
    /// Canonical JSON object: fixed key order, shortest round-trip float
    /// formatting, `null` for divergent wallclock/resources.
    pub fn render_json(&self) -> String {
        let opt = |v: Option<f64>| match v {
            Some(x) if x.is_finite() => format!("{x}"),
            _ => "null".into(),
        };
        format!(
            "{{\"total_time_hours\":{},\"node_hours\":{},\"completion_rate\":{},\
             \"mean_failures\":{},\"mean_masked_failures\":{},\"mean_checkpoints\":{},\
             \"mean_attempts\":{}}}",
            opt(self.total_time_hours),
            opt(self.node_hours),
            self.completion_rate,
            self.mean_failures,
            self.mean_masked_failures,
            self.mean_checkpoints,
            self.mean_attempts,
        )
    }
}

/// Renders one full cache line (no trailing newline).
pub fn render_line(spec: &ScenarioSpec, result: &ScenarioResult) -> String {
    let mut out = String::with_capacity(256);
    let _ = write!(
        out,
        "{{\"hash\":\"{}\",\"spec\":{},\"result\":{}}}",
        spec.hash_hex(),
        spec.render_json(),
        result.render_json()
    );
    out
}

/// Parses the `"hash"` and `"result"` fields of a cache line.
pub fn parse_line(line: &str) -> Option<(u64, ScenarioResult)> {
    let hash_str = str_field(line, "hash")?;
    if hash_str.len() != 16 {
        return None;
    }
    let hash = u64::from_str_radix(hash_str, 16).ok()?;
    let marker = "\"result\":{";
    let start = line.find(marker)? + marker.len();
    let body = &line[start..line.len().checked_sub(1)?];
    let result = ScenarioResult {
        total_time_hours: opt_number_field(body, "total_time_hours")?,
        node_hours: opt_number_field(body, "node_hours")?,
        completion_rate: opt_number_field(body, "completion_rate")??,
        mean_failures: opt_number_field(body, "mean_failures")??,
        mean_masked_failures: opt_number_field(body, "mean_masked_failures")??,
        mean_checkpoints: opt_number_field(body, "mean_checkpoints")??,
        mean_attempts: opt_number_field(body, "mean_attempts")??,
    };
    Some((hash, result))
}

fn str_field<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\":\"");
    let start = doc.find(&marker)? + marker.len();
    let rest = &doc[start..];
    Some(&rest[..rest.find('"')?])
}

/// `Some(Some(v))` for a number, `Some(None)` for `null`, `None` when the
/// key is missing or malformed.
fn opt_number_field(body: &str, key: &str) -> Option<Option<f64>> {
    let marker = format!("\"{key}\":");
    let start = body.find(&marker)? + marker.len();
    let rest = &body[start..];
    if let Some(stripped) = rest.strip_prefix("null") {
        // Guard against a key that merely *starts* like null (e.g. a
        // string value): the next char must terminate the field.
        if stripped.is_empty() || stripped.starts_with([',', '}']) {
            return Some(None);
        }
        return None;
    }
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok().map(Some)
}

/// The persistent scenario-result store.
#[derive(Debug)]
pub struct ResultCache {
    path: Option<PathBuf>,
    entries: BTreeMap<u64, ScenarioResult>,
    malformed: usize,
}

impl ResultCache {
    /// An ephemeral cache that never touches disk (tests, one-shot runs).
    pub fn in_memory() -> Self {
        Self { path: None, entries: BTreeMap::new(), malformed: 0 }
    }

    /// Opens (or lazily creates) the JSONL cache at `path`, loading every
    /// parsable line. A missing file is an empty cache, not an error.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than "not found".
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut entries = BTreeMap::new();
        let mut malformed = 0usize;
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                for line in text.lines() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match parse_line(line) {
                        Some((hash, result)) => {
                            entries.insert(hash, result);
                        }
                        None => malformed += 1,
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Self { path: Some(path), entries, malformed })
    }

    /// Number of cached scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lines that failed to parse when the cache was opened.
    pub fn malformed_lines(&self) -> usize {
        self.malformed
    }

    /// Looks up a scenario hash.
    pub fn get(&self, hash: u64) -> Option<&ScenarioResult> {
        self.entries.get(&hash)
    }

    /// Inserts `batch` and appends the new lines to the backing file in
    /// the given (deterministic) order.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the in-memory view is updated regardless, so
    /// a failed append degrades to a warm-for-this-process cache.
    pub fn append_batch(&mut self, batch: &[(ScenarioSpec, ScenarioResult)]) -> io::Result<()> {
        let mut text = String::new();
        for (spec, result) in batch {
            let _ = writeln!(text, "{}", render_line(spec, result));
            self.entries.insert(spec.hash(), *result);
        }
        if let Some(path) = &self.path {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir)?;
                }
            }
            use std::io::Write as _;
            let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
            file.write_all(text.as_bytes())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Backend, SpecPolicy, Workload};

    fn spec() -> ScenarioSpec {
        ScenarioSpec {
            backend: Backend::Model,
            n_virtual: 1000,
            degree: 2.0,
            policy: SpecPolicy::Daly,
            node_mtbf_hours: 43_800.0,
            workload: Workload {
                base_time_hours: 128.0,
                alpha: 0.24,
                checkpoint_cost_hours: 1.0 / 6.0,
                restart_cost_hours: 0.5,
            },
            seeds: 0,
        }
    }

    fn result() -> ScenarioResult {
        ScenarioResult {
            total_time_hours: Some(130.25),
            node_hours: Some(260_500.0),
            completion_rate: 1.0,
            mean_failures: 0.0625,
            mean_masked_failures: 1.5,
            mean_checkpoints: 12.0,
            mean_attempts: 1.0625,
        }
    }

    #[test]
    fn line_round_trips() {
        let line = render_line(&spec(), &result());
        let (hash, parsed) = parse_line(&line).expect("parses");
        assert_eq!(hash, spec().hash());
        assert_eq!(parsed, result());
    }

    #[test]
    fn divergent_round_trips_as_null() {
        let r = ScenarioResult {
            total_time_hours: None,
            node_hours: None,
            completion_rate: 0.0,
            mean_failures: 0.0,
            mean_masked_failures: 0.0,
            mean_checkpoints: 0.0,
            mean_attempts: 0.0,
        };
        let line = render_line(&spec(), &r);
        assert!(line.contains("\"total_time_hours\":null"));
        let (_, parsed) = parse_line(&line).expect("parses");
        assert_eq!(parsed, r);
    }

    #[test]
    fn rendering_is_byte_stable_through_a_parse_cycle() {
        // Warm runs re-render parsed results; Display → parse → Display
        // must be the identity for the output to stay byte-identical.
        let line = render_line(&spec(), &result());
        let (_, parsed) = parse_line(&line).expect("parses");
        assert_eq!(render_line(&spec(), &parsed), line);
    }

    #[test]
    fn persistent_cache_round_trips() {
        let dir =
            std::env::temp_dir().join(format!("redcr_sweep_cache_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("cache.jsonl");

        let mut cache = ResultCache::open(&path).expect("open missing file");
        assert!(cache.is_empty());
        cache.append_batch(&[(spec(), result())]).expect("append");

        let reopened = ResultCache::open(&path).expect("reopen");
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.malformed_lines(), 0);
        assert_eq!(reopened.get(spec().hash()), Some(&result()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_are_skipped_not_served() {
        let dir = std::env::temp_dir()
            .join(format!("redcr_sweep_cache_malformed_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.jsonl");
        let good = render_line(&spec(), &result());
        std::fs::write(&path, format!("not json\n{good}\n{{\"hash\":\"zz\"}}\n")).unwrap();
        let cache = ResultCache::open(&path).expect("open");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.malformed_lines(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_cache_never_persists() {
        let mut cache = ResultCache::in_memory();
        cache.append_batch(&[(spec(), result())]).expect("append");
        assert_eq!(cache.get(spec().hash()), Some(&result()));
    }
}
