//! # redcr-sweep — the scenario-sweep capacity planner
//!
//! The paper's practical payoff (Figures 9–14) is a *sweep*: evaluate a
//! grid of (redundancy degree, checkpoint policy, node count, MTBF,
//! workload) points and read off the trade-off between wallclock and
//! resources. This crate turns that one-off experiment into a serving
//! layer — a batch engine that answers thousands of what-if queries
//! against a persistent result cache, with the closed-form model and the
//! discrete-event cluster simulator as cold-miss backends.
//!
//! Pipeline:
//!
//! 1. [`spec`] — a canonical [`ScenarioSpec`] with a
//!    versioned byte encoding and stable 64-bit FNV-1a hash;
//! 2. [`dedup`](mod@dedup) — identical submitted points collapse to one
//!    query;
//! 3. [`cache`] — a JSONL store keyed by scenario hash: warm hits skip
//!    evaluation entirely, cold results are appended deterministically;
//! 4. [`engine`] — a work queue draining cold misses across worker
//!    threads, with results independent of thread count and scheduling;
//! 5. [`pareto`] — the non-dominated (wallclock, node-hours, completion
//!    rate) frontier of a finished sweep, globally and per knob family
//!    (scenarios differing only in the redundancy degree).
//!
//! Determinism contract: a repeated submission of the same batch against
//! the same cache is a 100% hit rate and a byte-identical report — the
//! cache layer inherits the workspace's reproducibility gate.
//!
//! # Example
//!
//! ```
//! use redcr_sweep::cache::ResultCache;
//! use redcr_sweep::engine::run_sweep;
//! use redcr_sweep::pareto;
//! use redcr_sweep::spec::{Backend, ScenarioSpec, SpecPolicy, Workload};
//!
//! let workload = Workload {
//!     base_time_hours: 128.0,
//!     alpha: 0.24,
//!     checkpoint_cost_hours: 1.0 / 6.0,
//!     restart_cost_hours: 0.5,
//! };
//! let specs: Vec<ScenarioSpec> = [1.0, 2.0, 3.0]
//!     .iter()
//!     .map(|&degree| ScenarioSpec {
//!         backend: Backend::Model,
//!         n_virtual: 50_000,
//!         degree,
//!         policy: SpecPolicy::Daly,
//!         node_mtbf_hours: 43_800.0,
//!         workload,
//!         seeds: 0,
//!     })
//!     .collect();
//! let mut cache = ResultCache::in_memory();
//! let report = run_sweep(&specs, 4, &mut cache).expect("sweep runs");
//! let front = pareto::frontier(&report.entries);
//! assert!(!front.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dedup;
pub mod engine;
pub mod pareto;
pub mod spec;

pub use cache::{ResultCache, ScenarioResult};
pub use dedup::{dedup, DedupedBatch};
pub use engine::{run_sweep, run_sweep_profiled, SweepEntry, SweepError, SweepReport, SweepStats};
pub use pareto::{frontier, grouped_frontiers, GroupFrontier, ParetoPoint};
pub use spec::{Backend, ScenarioSpec, SpecPolicy, Workload};
