//! Dedup front-end: collapses identical submitted scenario points before
//! they reach the cache or a backend.
//!
//! Batch submitters routinely overlap (two figures sharing their low-N
//! grid rows, retried queries, fan-in from many users asking the same
//! what-if). Deduplication keys on the canonical scenario hash, keeps the
//! *first* submission order (so output stays deterministic and
//! submission-shaped), and records multiplicity so callers can still
//! answer every submitted point.

use std::collections::BTreeMap;

use crate::spec::ScenarioSpec;

/// A deduplicated batch.
#[derive(Debug, Clone)]
pub struct DedupedBatch {
    /// Unique scenarios in first-submission order.
    pub unique: Vec<ScenarioSpec>,
    /// How many submitted points collapsed into each unique scenario
    /// (parallel to `unique`; sums to `submitted`).
    pub multiplicity: Vec<usize>,
    /// Index into `unique` for every submitted point, in submission order.
    pub assignment: Vec<usize>,
    /// Number of points submitted.
    pub submitted: usize,
}

impl DedupedBatch {
    /// Submitted points that were collapsed away.
    pub fn duplicates(&self) -> usize {
        self.submitted - self.unique.len()
    }
}

/// Collapses `submitted` by canonical scenario hash.
pub fn dedup(submitted: &[ScenarioSpec]) -> DedupedBatch {
    let mut by_hash: BTreeMap<u64, usize> = BTreeMap::new();
    let mut unique = Vec::new();
    let mut multiplicity = Vec::new();
    let mut assignment = Vec::with_capacity(submitted.len());
    for spec in submitted {
        let hash = spec.hash();
        let idx = *by_hash.entry(hash).or_insert_with(|| {
            unique.push(*spec);
            multiplicity.push(0);
            unique.len() - 1
        });
        debug_assert_eq!(
            unique[idx].canonical_bytes(),
            spec.canonical_bytes(),
            "FNV-64 collision between distinct scenarios"
        );
        multiplicity[idx] += 1;
        assignment.push(idx);
    }
    DedupedBatch { unique, multiplicity, assignment, submitted: submitted.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Backend, SpecPolicy, Workload};

    fn spec(n: u64, degree: f64) -> ScenarioSpec {
        ScenarioSpec {
            backend: Backend::Model,
            n_virtual: n,
            degree,
            policy: SpecPolicy::Daly,
            node_mtbf_hours: 43_800.0,
            workload: Workload {
                base_time_hours: 128.0,
                alpha: 0.24,
                checkpoint_cost_hours: 1.0 / 6.0,
                restart_cost_hours: 0.5,
            },
            seeds: 0,
        }
    }

    #[test]
    fn collapses_identical_points_preserving_order() {
        let batch = [spec(100, 1.0), spec(200, 2.0), spec(100, 1.0), spec(100, 1.0)];
        let d = dedup(&batch);
        assert_eq!(d.submitted, 4);
        assert_eq!(d.unique.len(), 2);
        assert_eq!(d.duplicates(), 2);
        assert_eq!(d.unique[0], spec(100, 1.0));
        assert_eq!(d.unique[1], spec(200, 2.0));
        assert_eq!(d.multiplicity, vec![3, 1]);
        assert_eq!(d.assignment, vec![0, 1, 0, 0]);
    }

    #[test]
    fn distinct_points_pass_through() {
        let batch = [spec(100, 1.0), spec(100, 1.5), spec(100, 2.0)];
        let d = dedup(&batch);
        assert_eq!(d.unique.len(), 3);
        assert_eq!(d.duplicates(), 0);
        assert_eq!(d.multiplicity, vec![1, 1, 1]);
    }

    #[test]
    fn empty_batch() {
        let d = dedup(&[]);
        assert_eq!(d.submitted, 0);
        assert!(d.unique.is_empty());
    }

    #[test]
    fn model_seed_count_is_not_an_identity() {
        // The closed-form backend canonicalizes seeds away: the same model
        // point submitted with different Monte-Carlo budgets is one query.
        let a = ScenarioSpec { seeds: 4, ..spec(100, 1.0) };
        let b = ScenarioSpec { seeds: 64, ..spec(100, 1.0) };
        let d = dedup(&[a, b]);
        assert_eq!(d.unique.len(), 1);
        assert_eq!(d.multiplicity, vec![2]);
    }
}
