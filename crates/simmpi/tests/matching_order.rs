//! Regression suite for MPI matching-order semantics.
//!
//! Pins the rule the channel-indexed mailbox must preserve bit-for-bit:
//! `ANY_SOURCE`/`ANY_TAG` receives select the **globally oldest arrival**
//! among matching messages, while specific-source/specific-tag receives
//! are FIFO within their (source, tag) channel and never disturb the
//! global order seen by wildcards.
//!
//! Arrival order into a mailbox is physical push order, which for threads
//! is wall-clock dependent — so every test below forces a deterministic
//! arrival order through happens-before token chains: a sender only
//! releases the next sender once its own message is already buffered at
//! the receiver. This file was written against the flat pre-swap mailbox
//! and runs unchanged against the channel-indexed one.

use bytes::Bytes;
use redcr_mpi::{Communicator, Rank, RankSelector, Tag, TagSelector, World};

const R0: Rank = Rank::new(0);
const R1: Rank = Rank::new(1);
const R2: Rank = Rank::new(2);
const R3: Rank = Rank::new(3);

const DATA_TAG: Tag = Tag::new(10);
const TOKEN_TAG: Tag = Tag::new(99);

fn payload(b: u8) -> Bytes {
    Bytes::from(vec![b])
}

/// ANY_SOURCE must take the globally-oldest arrival even when a
/// younger message from a lower-numbered rank is also buffered.
#[test]
fn any_source_selects_globally_oldest_across_sources() {
    let results = World::builder(3)
        .run(|comm| {
            match comm.rank().index() {
                0 => {
                    // Both messages are buffered before rank 0 receives:
                    // rank 2's arrived first (it released rank 1's token).
                    comm.recv(RankSelector::Rank(R1), TagSelector::Tag(TOKEN_TAG))?;
                    let mut order = Vec::new();
                    for _ in 0..2 {
                        let (data, st) =
                            comm.recv(RankSelector::Any, TagSelector::Tag(DATA_TAG))?;
                        order.push((st.source.index(), data[0]));
                    }
                    Ok(order)
                }
                1 => {
                    // Wait for rank 2's token: rank 2's data message is
                    // already in rank 0's mailbox when ours goes out.
                    comm.recv(RankSelector::Rank(R2), TagSelector::Tag(TOKEN_TAG))?;
                    comm.send_bytes(R0, DATA_TAG, payload(1))?;
                    comm.send_bytes(R0, TOKEN_TAG, payload(0))?;
                    Ok(vec![])
                }
                _ => {
                    comm.send_bytes(R0, DATA_TAG, payload(2))?;
                    comm.send_bytes(R1, TOKEN_TAG, payload(0))?;
                    Ok(vec![])
                }
            }
        })
        .expect("world")
        .into_results()
        .expect("ranks");
    // Rank 2 pushed first, so the first wildcard receive must return its
    // message even though rank 1 < rank 2 in any per-source index order.
    assert_eq!(results[0], vec![(2, 2), (1, 1)]);
}

/// ANY_TAG from a fixed source must follow that source's program order
/// (same-source sends arrive in order), not tag-value order.
#[test]
fn any_tag_follows_arrival_order_not_tag_order() {
    let results = World::builder(2)
        .run(|comm| {
            if comm.rank().index() == 0 {
                let mut tags = Vec::new();
                for _ in 0..3 {
                    let (_, st) = comm.recv(RankSelector::Rank(R1), TagSelector::Any)?;
                    tags.push(st.tag.value());
                }
                Ok(tags)
            } else {
                for t in [7u64, 3, 5] {
                    comm.send_bytes(R0, Tag::new(t), payload(t as u8))?;
                }
                Ok(vec![])
            }
        })
        .expect("world")
        .into_results()
        .expect("ranks");
    assert_eq!(results[0], vec![7, 3, 5]);
}

/// A specific receive drains its channel without disturbing the global
/// order a later wildcard observes.
#[test]
fn specific_recv_interleaved_with_wildcard_preserves_global_order() {
    let results = World::builder(4)
        .run(|comm| {
            match comm.rank().index() {
                0 => {
                    comm.recv(RankSelector::Rank(R1), TagSelector::Tag(TOKEN_TAG))?;
                    // Buffered order is now: r3 (oldest), r2, r1 (newest).
                    // Take rank 2's message by specific receive first...
                    let (data, st) =
                        comm.recv(RankSelector::Rank(R2), TagSelector::Tag(DATA_TAG))?;
                    assert_eq!((st.source, data[0]), (R2, 2));
                    // ...then the wildcards must still see r3 before r1.
                    let mut order = Vec::new();
                    for _ in 0..2 {
                        let (data, st) = comm.recv(RankSelector::Any, TagSelector::Any)?;
                        order.push((st.source.index(), data[0]));
                    }
                    Ok(order)
                }
                1 => {
                    comm.recv(RankSelector::Rank(R2), TagSelector::Tag(TOKEN_TAG))?;
                    comm.send_bytes(R0, DATA_TAG, payload(1))?;
                    comm.send_bytes(R0, TOKEN_TAG, payload(0))?;
                    Ok(vec![])
                }
                2 => {
                    comm.recv(RankSelector::Rank(R3), TagSelector::Tag(TOKEN_TAG))?;
                    comm.send_bytes(R0, DATA_TAG, payload(2))?;
                    comm.send_bytes(R1, TOKEN_TAG, payload(0))?;
                    Ok(vec![])
                }
                _ => {
                    comm.send_bytes(R0, DATA_TAG, payload(3))?;
                    comm.send_bytes(R2, TOKEN_TAG, payload(0))?;
                    Ok(vec![])
                }
            }
        })
        .expect("world")
        .into_results()
        .expect("ranks");
    assert_eq!(results[0], vec![(3, 3), (1, 1)]);
}

/// Same (source, tag) channel is FIFO: payloads come back in send order.
#[test]
fn same_channel_is_fifo() {
    let results = World::builder(2)
        .run(|comm| {
            if comm.rank().index() == 0 {
                let mut seen = Vec::new();
                for _ in 0..5 {
                    let (data, _) =
                        comm.recv(RankSelector::Rank(R1), TagSelector::Tag(DATA_TAG))?;
                    seen.push(data[0]);
                }
                Ok(seen)
            } else {
                for b in 0..5u8 {
                    comm.send_bytes(R0, DATA_TAG, payload(b))?;
                }
                Ok(vec![])
            }
        })
        .expect("world")
        .into_results()
        .expect("ranks");
    assert_eq!(results[0], vec![0, 1, 2, 3, 4]);
}

/// Wildcard-tag receives skip non-matching (other-source) traffic that is
/// older: selection is oldest *among matches*, not oldest overall.
#[test]
fn wildcard_selects_oldest_matching_not_oldest_overall() {
    let results = World::builder(3)
        .run(|comm| {
            match comm.rank().index() {
                0 => {
                    comm.recv(RankSelector::Rank(R1), TagSelector::Tag(TOKEN_TAG))?;
                    // Buffered: r2's message (older), then r1's. A receive
                    // restricted to source r1 must skip r2's older message.
                    let (data, st) = comm.recv(RankSelector::Rank(R1), TagSelector::Any)?;
                    assert_eq!((st.source, data[0]), (R1, 1));
                    // The skipped r2 message is still there for a wildcard.
                    let (data, st) = comm.recv(RankSelector::Any, TagSelector::Any)?;
                    Ok(vec![(st.source.index(), data[0])])
                }
                1 => {
                    comm.recv(RankSelector::Rank(R2), TagSelector::Tag(TOKEN_TAG))?;
                    comm.send_bytes(R0, DATA_TAG, payload(1))?;
                    comm.send_bytes(R0, TOKEN_TAG, payload(0))?;
                    Ok(vec![])
                }
                _ => {
                    comm.send_bytes(R0, DATA_TAG, payload(2))?;
                    comm.send_bytes(R1, TOKEN_TAG, payload(0))?;
                    Ok(vec![])
                }
            }
        })
        .expect("world")
        .into_results()
        .expect("ranks");
    assert_eq!(results[0], vec![(2, 2)]);
}

/// iprobe on a buffered wildcard match reports the globally-oldest
/// arrival's metadata, consistent with what recv would return.
#[test]
fn probe_reports_globally_oldest_match() {
    let results = World::builder(3)
        .run(|comm| match comm.rank().index() {
            0 => {
                comm.recv(RankSelector::Rank(R1), TagSelector::Tag(TOKEN_TAG))?;
                let st = comm
                    .iprobe(RankSelector::Any, TagSelector::Tag(DATA_TAG))?
                    .expect("both messages buffered");
                let (data, rst) = comm.recv(RankSelector::Any, TagSelector::Tag(DATA_TAG))?;
                assert_eq!(st.source, rst.source);
                assert_eq!(st.len, data.len());
                Ok(vec![(rst.source.index(), data[0])])
            }
            1 => {
                comm.recv(RankSelector::Rank(R2), TagSelector::Tag(TOKEN_TAG))?;
                comm.send_bytes(R0, DATA_TAG, payload(1))?;
                comm.send_bytes(R0, TOKEN_TAG, payload(0))?;
                Ok(vec![])
            }
            _ => {
                comm.send_bytes(R0, DATA_TAG, Bytes::from(vec![2, 2]))?;
                comm.send_bytes(R1, TOKEN_TAG, payload(0))?;
                Ok(vec![])
            }
        })
        .expect("world")
        .into_results()
        .expect("ranks");
    assert_eq!(results[0], vec![(2, 2)]);
}
