//! Integration tests for the message-passing runtime: functional semantics,
//! collectives, virtual-time accounting, sub-communicators and aborts.

use bytes::Bytes;
use redcr_mpi::collectives::ReduceOp;
use redcr_mpi::{Communicator, CostModel, MpiError, Rank, RankSelector, Tag, TagSelector, World};

fn tag(v: u64) -> Tag {
    Tag::new(v)
}

#[test]
fn ring_pass_around() {
    let n = 8;
    let report = World::builder(n)
        .cost_model(CostModel::zero())
        .run(|comm| {
            let me = comm.rank();
            let next = me.offset(1, comm.size());
            let prev = me.offset(-1, comm.size());
            comm.send_u64s(next, tag(1), &[me.as_u32() as u64])?;
            let (vals, status) = comm.recv_u64s(prev.into(), tag(1).into())?;
            assert_eq!(status.source, prev);
            Ok(vals[0])
        })
        .unwrap();
    let got = report.into_results().unwrap();
    for (i, v) in got.iter().enumerate() {
        assert_eq!(*v, ((i + 7) % 8) as u64);
    }
}

#[test]
fn messages_match_by_tag_not_arrival_order() {
    let report = World::builder(2)
        .cost_model(CostModel::zero())
        .run(|comm| {
            if comm.rank().index() == 0 {
                comm.send(Rank::new(1), tag(10), b"ten")?;
                comm.send(Rank::new(1), tag(20), b"twenty")?;
                Ok(Vec::new())
            } else {
                // Receive in the opposite order from sending.
                let (b20, _) = comm.recv(Rank::new(0).into(), tag(20).into())?;
                let (b10, _) = comm.recv(Rank::new(0).into(), tag(10).into())?;
                Ok(vec![b20.to_vec(), b10.to_vec()])
            }
        })
        .unwrap();
    let results = report.into_results().unwrap();
    assert_eq!(results[1], vec![b"twenty".to_vec(), b"ten".to_vec()]);
}

#[test]
fn wildcard_source_and_tag() {
    let n = 4;
    let report = World::builder(n)
        .cost_model(CostModel::zero())
        .run(|comm| {
            if comm.rank().index() == 0 {
                let mut sources = Vec::new();
                for _ in 0..3 {
                    let (_, status) = comm.recv(RankSelector::Any, TagSelector::Any)?;
                    sources.push(status.source.index());
                }
                sources.sort_unstable();
                Ok(sources)
            } else {
                comm.send(Rank::new(0), tag(comm.rank().as_u32() as u64), b"x")?;
                Ok(Vec::new())
            }
        })
        .unwrap();
    assert_eq!(report.into_results().unwrap()[0], vec![1, 2, 3]);
}

#[test]
fn nonblocking_post_then_waitall() {
    let report = World::builder(3)
        .cost_model(CostModel::zero())
        .run(|comm| {
            if comm.rank().index() == 0 {
                let r1 = comm.irecv(Rank::new(1).into(), tag(1).into())?;
                let r2 = comm.irecv(Rank::new(2).into(), tag(2).into())?;
                let done = comm.waitall([r1, r2])?;
                let a = done[0].as_ref().unwrap().0.to_vec();
                let b = done[1].as_ref().unwrap().0.to_vec();
                Ok((a, b))
            } else {
                let t = tag(comm.rank().as_u32() as u64);
                let req =
                    comm.isend(Rank::new(0), t, Bytes::from(vec![comm.rank().as_u32() as u8]))?;
                comm.wait(req)?;
                Ok((Vec::new(), Vec::new()))
            }
        })
        .unwrap();
    let (a, b) = report.into_results().unwrap().remove(0);
    assert_eq!(a, vec![1]);
    assert_eq!(b, vec![2]);
}

#[test]
fn probe_reports_without_consuming() {
    let report = World::builder(2)
        .cost_model(CostModel::zero())
        .run(|comm| {
            if comm.rank().index() == 0 {
                comm.send(Rank::new(1), tag(5), b"abc")?;
                Ok(0)
            } else {
                let status = comm.probe(Rank::new(0).into(), tag(5).into())?;
                assert_eq!(status.len, 3);
                // Message still available after probing.
                let (bytes, _) = comm.recv(Rank::new(0).into(), tag(5).into())?;
                assert_eq!(&bytes[..], b"abc");
                Ok(1)
            }
        })
        .unwrap();
    assert_eq!(report.into_results().unwrap(), vec![0, 1]);
}

#[test]
fn iprobe_none_when_empty() {
    World::builder(1)
        .cost_model(CostModel::zero())
        .run(|comm| {
            assert!(comm.iprobe(RankSelector::Any, TagSelector::Any)?.is_none());
            Ok(())
        })
        .unwrap()
        .into_results()
        .unwrap();
}

#[test]
fn barrier_synchronizes_virtual_clocks() {
    let cost = CostModel { latency: 1.0, byte_time: 0.0, msg_overhead: 0.0 };
    let report = World::builder(4)
        .cost_model(cost)
        .run(|comm| {
            // Rank i computes i seconds, then all ranks barrier.
            comm.compute(comm.rank().index() as f64)?;
            comm.barrier()?;
            Ok(comm.now())
        })
        .unwrap();
    let times = report.into_results().unwrap();
    // After the barrier no rank's clock can be earlier than the slowest
    // rank's pre-barrier time (3.0), and every rank other than the slowest
    // waited at least one message latency past it.
    for (i, t) in times.iter().enumerate() {
        assert!(*t >= 3.0, "rank {i} clock {t} too early");
        if i != 3 {
            assert!(*t >= 4.0, "rank {i} clock {t} did not see rank 3's delay");
        }
    }
}

#[test]
fn bcast_delivers_to_all_from_any_root() {
    for root in 0..5u32 {
        let report = World::builder(5)
            .cost_model(CostModel::zero())
            .run(|comm| {
                let data = if comm.rank().as_u32() == root {
                    Bytes::from_static(b"payload")
                } else {
                    Bytes::new()
                };
                let out = comm.bcast(Rank::new(root), data)?;
                Ok(out.to_vec())
            })
            .unwrap();
        for r in report.into_results().unwrap() {
            assert_eq!(r, b"payload".to_vec(), "root {root}");
        }
    }
}

#[test]
fn reduce_and_allreduce_sum() {
    let n = 7;
    let report = World::builder(n)
        .cost_model(CostModel::zero())
        .run(|comm| {
            let me = comm.rank().index() as f64;
            let reduced = comm.reduce_f64(Rank::new(0), &[me, 1.0], ReduceOp::Sum)?;
            if comm.rank().index() == 0 {
                let r = reduced.expect("root gets the result");
                assert_eq!(r, vec![21.0, 7.0]);
            } else {
                assert!(reduced.is_none());
            }
            let all = comm.allreduce_f64(&[me], ReduceOp::Max)?;
            Ok(all[0])
        })
        .unwrap();
    for v in report.into_results().unwrap() {
        assert_eq!(v, 6.0);
    }
}

#[test]
fn allreduce_is_bitwise_identical_across_ranks() {
    // Deterministic tree => identical floating-point result on every rank,
    // which the replication layer's voting relies on.
    let vals: Vec<f64> = (0..64).map(|i| (i as f64) * 0.1 + 0.01).collect();
    let report = World::builder(16)
        .cost_model(CostModel::zero())
        .run(|comm| {
            let contribution = vec![vals[comm.rank().index() * 4]; 8];
            let out = comm.allreduce_f64(&contribution, ReduceOp::Sum)?;
            Ok(out.iter().map(|v| v.to_bits()).collect::<Vec<_>>())
        })
        .unwrap();
    let results = report.into_results().unwrap();
    for r in &results[1..] {
        assert_eq!(r, &results[0]);
    }
}

#[test]
fn allreduce_u64_min_max() {
    let report = World::builder(5)
        .cost_model(CostModel::zero())
        .run(|comm| {
            let me = comm.rank().index() as u64;
            let min = comm.allreduce_u64(&[me + 10], ReduceOp::Min)?;
            let max = comm.allreduce_u64(&[me + 10], ReduceOp::Max)?;
            let sum = comm.allreduce_u64(&[1], ReduceOp::Sum)?;
            Ok((min[0], max[0], sum[0]))
        })
        .unwrap();
    for (min, max, sum) in report.into_results().unwrap() {
        assert_eq!((min, max, sum), (10, 14, 5));
    }
}

#[test]
fn gather_scatter_round_trip() {
    let n = 6;
    let report = World::builder(n)
        .cost_model(CostModel::zero())
        .run(|comm| {
            let me = comm.rank().index() as u8;
            let gathered = comm.gather(Rank::new(2), Bytes::from(vec![me, me]))?;
            let parts = if comm.rank().index() == 2 {
                let parts = gathered.expect("root sees parts");
                assert_eq!(parts.len(), n);
                for (i, p) in parts.iter().enumerate() {
                    assert_eq!(&p[..], &[i as u8, i as u8]);
                }
                Some(parts)
            } else {
                assert!(gathered.is_none());
                None
            };
            let mine = comm.scatter(Rank::new(2), parts)?;
            Ok(mine.to_vec())
        })
        .unwrap();
    for (i, part) in report.into_results().unwrap().into_iter().enumerate() {
        assert_eq!(part, vec![i as u8, i as u8]);
    }
}

#[test]
fn allgather_returns_rank_ordered_parts() {
    let n = 5;
    let report = World::builder(n)
        .cost_model(CostModel::zero())
        .run(|comm| {
            let me = comm.rank().index() as u8;
            let parts = comm.allgather(Bytes::from(vec![me]))?;
            Ok(parts.iter().map(|p| p[0]).collect::<Vec<u8>>())
        })
        .unwrap();
    for r in report.into_results().unwrap() {
        assert_eq!(r, vec![0, 1, 2, 3, 4]);
    }
}

#[test]
fn alltoall_personalized_exchange() {
    let n = 4;
    let report = World::builder(n)
        .cost_model(CostModel::zero())
        .run(|comm| {
            let me = comm.rank().index() as u8;
            let parts: Vec<Bytes> = (0..n).map(|d| Bytes::from(vec![me, d as u8])).collect();
            let got = comm.alltoall(parts)?;
            for (src, p) in got.iter().enumerate() {
                assert_eq!(&p[..], &[src as u8, me]);
            }
            Ok(())
        })
        .unwrap();
    report.into_results().unwrap();
}

#[test]
fn scan_prefix_sums() {
    let n = 6;
    let report = World::builder(n)
        .cost_model(CostModel::zero())
        .run(|comm| {
            let me = comm.rank().index() as f64;
            let s = comm.scan_f64(&[me], ReduceOp::Sum)?;
            Ok(s[0])
        })
        .unwrap();
    let expect: Vec<f64> = (0..6).map(|i| (0..=i).map(|j| j as f64).sum()).collect();
    assert_eq!(report.into_results().unwrap(), expect);
}

#[test]
fn virtual_time_includes_latency_and_bandwidth() {
    let cost = CostModel { latency: 2.0, byte_time: 0.5, msg_overhead: 0.25 };
    let report = World::builder(2)
        .cost_model(cost)
        .run(|comm| {
            if comm.rank().index() == 0 {
                comm.send(Rank::new(1), tag(1), &[0u8; 4])?; // 4 bytes
                Ok(comm.now())
            } else {
                let (_, status) = comm.recv(Rank::new(0).into(), tag(1).into())?;
                Ok(status.completed_at)
            }
        })
        .unwrap();
    let times = report.into_results().unwrap();
    // Sender: one message overhead.
    assert!((times[0] - 0.25).abs() < 1e-12);
    // Receiver: send_time (0.25) + latency (2.0) + 4 bytes * 0.5 (2.0)
    // + receive overhead (0.25) = 4.5.
    assert!((times[1] - 4.5).abs() < 1e-12, "got {}", times[1]);
}

#[test]
fn virtual_time_receiver_not_delayed_when_late() {
    let cost = CostModel { latency: 1.0, byte_time: 0.0, msg_overhead: 0.0 };
    let report = World::builder(2)
        .cost_model(cost)
        .run(|comm| {
            if comm.rank().index() == 0 {
                comm.send(Rank::new(1), tag(1), b"x")?;
                Ok(0.0)
            } else {
                comm.compute(100.0)?; // receiver is late; message long since available
                let (_, status) = comm.recv(Rank::new(0).into(), tag(1).into())?;
                Ok(status.completed_at)
            }
        })
        .unwrap();
    let times = report.into_results().unwrap();
    assert!((times[1] - 100.0).abs() < 1e-12, "got {}", times[1]);
}

#[test]
fn comm_fraction_tracks_alpha() {
    let cost = CostModel { latency: 0.0, byte_time: 0.0, msg_overhead: 0.5 };
    let report = World::builder(2)
        .cost_model(cost)
        .run(|comm| {
            // 8 seconds compute + 4 messages of 0.5 s overhead each = 2 s comm.
            for _ in 0..4 {
                comm.compute(2.0)?;
                let peer = comm.rank().offset(1, 2);
                comm.send(peer, tag(3), b"")?;
                comm.recv(peer.into(), tag(3).into())?;
            }
            Ok(())
        })
        .unwrap();
    // alpha = comm / (comm + busy); comm >= 4 msgs * (0.5 send + 0.5 recv)... wait
    // sender pays 0.5 per send, receiver 0.5 per recv: 4 sends + 4 recvs = 4.0 s.
    let alpha = report.mean_comm_fraction();
    assert!((alpha - 4.0 / 12.0).abs() < 0.05, "alpha = {alpha}");
}

#[test]
fn abort_horizon_interrupts_blocked_receiver() {
    let report = World::builder(2)
        .cost_model(CostModel::zero())
        .abort_horizon(5.0)
        .run(|comm| {
            if comm.rank().index() == 0 {
                // Never sends; crosses the horizon by computing.
                comm.compute(10.0)?;
                Ok(())
            } else {
                // Blocks forever waiting for a message that never comes;
                // must be woken by the abort.
                comm.recv(Rank::new(0).into(), tag(1).into())?;
                Ok(())
            }
        })
        .unwrap();
    assert!(report.aborted);
    assert!(matches!(report.results[0], Err(MpiError::Aborted { .. })));
    assert!(matches!(report.results[1], Err(MpiError::Aborted { .. })));
}

#[test]
fn app_error_aborts_peers() {
    let report = World::builder(2)
        .cost_model(CostModel::zero())
        .run(|comm| {
            if comm.rank().index() == 0 {
                Err(MpiError::DecodeError { what: "synthetic app failure" })
            } else {
                comm.recv(Rank::new(0).into(), tag(1).into())?;
                Ok(())
            }
        })
        .unwrap();
    assert!(report.aborted);
    assert!(report.results[1].is_err());
}

#[test]
fn split_isolates_groups_and_renumbers() {
    let report = World::builder(6)
        .cost_model(CostModel::zero())
        .run(|comm| {
            let color = (comm.rank().index() % 2) as u64; // evens, odds
            let sub = comm.split(color, comm.rank().index() as u64)?;
            assert_eq!(sub.size(), 3);
            // Sum of world ranks within the subgroup.
            let sum = sub.allreduce_u64(&[comm.rank().index() as u64], ReduceOp::Sum)?;
            Ok((sub.rank().index(), sum[0]))
        })
        .unwrap();
    let results = report.into_results().unwrap();
    for (world, (sub_rank, sum)) in results.iter().enumerate() {
        assert_eq!(*sub_rank, world / 2);
        let expect = if world % 2 == 0 { 2 + 4 } else { 1 + 3 + 5 };
        assert_eq!(*sum, expect, "world rank {world}");
    }
}

#[test]
fn split_key_reorders_ranks() {
    let report = World::builder(4)
        .cost_model(CostModel::zero())
        .run(|comm| {
            // Same color, key reversing the order.
            let key = (comm.size() - comm.rank().index()) as u64;
            let sub = comm.split(0, key)?;
            Ok(sub.rank().index())
        })
        .unwrap();
    assert_eq!(report.into_results().unwrap(), vec![3, 2, 1, 0]);
}

#[test]
fn dup_isolates_tag_space() {
    let report = World::builder(2)
        .cost_model(CostModel::zero())
        .run(|comm| {
            let dup = comm.dup()?;
            if comm.rank().index() == 0 {
                // Same tag on both communicators; receivers must not cross.
                comm.send(Rank::new(1), tag(9), b"world")?;
                dup.send(Rank::new(1), tag(9), b"dup")?;
                Ok((Vec::new(), Vec::new()))
            } else {
                let (from_dup, _) = dup.recv(Rank::new(0).into(), tag(9).into())?;
                let (from_world, _) = comm.recv(Rank::new(0).into(), tag(9).into())?;
                Ok((from_world.to_vec(), from_dup.to_vec()))
            }
        })
        .unwrap();
    let results = report.into_results().unwrap();
    assert_eq!(results[1].0, b"world".to_vec());
    assert_eq!(results[1].1, b"dup".to_vec());
}

#[test]
fn message_statistics_counted() {
    let report = World::builder(2)
        .cost_model(CostModel::zero())
        .run(|comm| {
            if comm.rank().index() == 0 {
                comm.send(Rank::new(1), tag(1), &[0u8; 100])?;
            } else {
                comm.recv(Rank::new(0).into(), tag(1).into())?;
            }
            Ok(())
        })
        .unwrap();
    assert_eq!(report.messages_sent, 1);
    assert_eq!(report.bytes_sent, 100);
}

#[test]
fn deterministic_virtual_time_across_runs() {
    let run = || {
        World::builder(8)
            .run(|comm| {
                let me = comm.rank().index();
                comm.compute(0.001 * (me + 1) as f64)?;
                let next = comm.rank().offset(1, comm.size());
                let prev = comm.rank().offset(-1, comm.size());
                comm.send_f64s(next, tag(2), &[me as f64; 128])?;
                comm.recv_f64s(prev.into(), tag(2).into())?;
                let s = comm.allreduce_f64(&[me as f64], ReduceOp::Sum)?;
                assert_eq!(s[0], 28.0);
                comm.barrier()?;
                Ok(())
            })
            .unwrap()
            .max_virtual_time
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "virtual time must be deterministic");
    assert!(a > 0.0);
}

#[test]
fn large_world_smoke() {
    // 128 ranks, the paper's experimental scale.
    let report = World::builder(128)
        .run(|comm| {
            let s = comm.allreduce_f64(&[1.0], ReduceOp::Sum)?;
            assert_eq!(s[0], 128.0);
            comm.barrier()?;
            Ok(())
        })
        .unwrap();
    report.into_results().unwrap();
}

#[test]
fn test_reports_pending_then_completed() {
    use redcr_mpi::TestOutcome;
    World::builder(2)
        .cost_model(CostModel::zero())
        .run(|comm| {
            if comm.rank().index() == 0 {
                // Nothing sent yet: request must be pending.
                let req = comm.irecv(Rank::new(1).into(), tag(5).into())?;
                let req = match comm.test(req)? {
                    TestOutcome::Pending(r) => r,
                    TestOutcome::Completed(_) => panic!("nothing was sent yet"),
                };
                // Ask for the message, then poll until it lands.
                comm.send(Rank::new(1), tag(4), b"go")?;
                let mut req = req;
                let payload = loop {
                    match comm.test(req)? {
                        TestOutcome::Completed(Some((bytes, status))) => {
                            assert_eq!(status.source.index(), 1);
                            break bytes;
                        }
                        TestOutcome::Completed(None) => panic!("recv yields payload"),
                        TestOutcome::Pending(r) => {
                            req = r;
                            redcr_mpi::yield_now();
                        }
                    }
                };
                assert_eq!(&payload[..], b"answer");
            } else {
                comm.recv(Rank::new(0).into(), tag(4).into())?;
                comm.send(Rank::new(0), tag(5), b"answer")?;
            }
            Ok(())
        })
        .unwrap()
        .into_results()
        .unwrap();
}

#[test]
fn send_requests_test_complete_immediately() {
    World::builder(2)
        .cost_model(CostModel::zero())
        .run(|comm| {
            if comm.rank().index() == 0 {
                let req = comm.isend(Rank::new(1), tag(1), Bytes::from_static(b"x"))?;
                assert!(comm.test(req)?.is_completed());
            } else {
                comm.recv(Rank::new(0).into(), tag(1).into())?;
            }
            Ok(())
        })
        .unwrap()
        .into_results()
        .unwrap();
}

#[test]
fn waitany_returns_the_ready_request() {
    World::builder(3)
        .cost_model(CostModel::zero())
        .run(|comm| {
            if comm.rank().index() == 0 {
                // Rank 2 sends promptly; rank 1 only replies after we ack
                // rank 2's message — so waitany must pick index 1 first.
                let r1 = comm.irecv(Rank::new(1).into(), tag(1).into())?;
                let r2 = comm.irecv(Rank::new(2).into(), tag(2).into())?;
                let (idx, out, rest) = comm.waitany(vec![r1, r2])?;
                assert_eq!(idx, 1, "rank 2's message arrives first");
                assert_eq!(&out.unwrap().0[..], b"fast");
                assert_eq!(rest.len(), 1);
                comm.send(Rank::new(1), tag(9), b"ack")?;
                let (idx2, out2, rest2) = comm.waitany(rest)?;
                assert_eq!(idx2, 0);
                assert_eq!(&out2.unwrap().0[..], b"slow");
                assert!(rest2.is_empty());
            } else if comm.rank().index() == 1 {
                comm.recv(Rank::new(0).into(), tag(9).into())?;
                comm.send(Rank::new(0), tag(1), b"slow")?;
            } else {
                comm.send(Rank::new(0), tag(2), b"fast")?;
            }
            Ok(())
        })
        .unwrap()
        .into_results()
        .unwrap();
}
