//! Per-rank mailboxes: unbounded buffered delivery with predicate matching.
//!
//! Sends are *eager*: the sender deposits the envelope into the receiver's
//! mailbox and continues (never blocks). Receives scan the mailbox for the
//! first envelope matching a predicate — per-(source, tag) arrival order is
//! the sender's send order, so matching is FIFO per channel like MPI — and
//! block on a condition variable until a match arrives or the world aborts.

use std::collections::VecDeque;

use parking_lot::{Condvar, Mutex};

use crate::message::Envelope;

/// A rank's incoming-message buffer.
#[derive(Debug, Default)]
pub struct Mailbox {
    inner: Mutex<VecDeque<Envelope>>,
    cond: Condvar,
}

/// Outcome of a blocking matched receive.
#[derive(Debug)]
pub enum RecvOutcome {
    /// A matching envelope was found and removed.
    Matched(Envelope),
    /// The world aborted while waiting.
    Aborted,
    /// The awaited sender fail-stopped without a matching message buffered:
    /// nothing matching can ever arrive. Carries the dead sender's rank.
    SourceDead(crate::rank::Rank),
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposits an envelope and wakes any waiting receiver.
    pub fn push(&self, env: Envelope) {
        let mut q = self.inner.lock();
        q.push_back(env);
        drop(q);
        self.cond.notify_all();
    }

    /// Removes and returns the first envelope matching `pred`, blocking
    /// until one arrives. `is_aborted` is polled on every wake-up; when it
    /// returns true the wait ends with [`RecvOutcome::Aborted`]. `dead_src`
    /// is polled likewise: when it reports the awaited (specific) sender as
    /// dead and nothing matching is buffered, the wait ends with
    /// [`RecvOutcome::SourceDead`] — a dead rank has already deposited
    /// everything it will ever send, so no match can arrive later.
    pub fn recv_match(
        &self,
        mut pred: impl FnMut(&Envelope) -> bool,
        is_aborted: impl Fn() -> bool,
        dead_src: impl Fn() -> Option<crate::rank::Rank>,
    ) -> RecvOutcome {
        let mut q = self.inner.lock();
        loop {
            if let Some(pos) = q.iter().position(&mut pred) {
                let env = q.remove(pos).expect("position just found");
                return RecvOutcome::Matched(env);
            }
            if is_aborted() {
                return RecvOutcome::Aborted;
            }
            if let Some(peer) = dead_src() {
                return RecvOutcome::SourceDead(peer);
            }
            self.cond.wait(&mut q);
        }
    }

    /// Non-blocking variant of [`recv_match`](Self::recv_match): removes and
    /// returns the first match, or `None` if no envelope currently matches.
    pub fn try_recv_match(&self, mut pred: impl FnMut(&Envelope) -> bool) -> Option<Envelope> {
        let mut q = self.inner.lock();
        let pos = q.iter().position(&mut pred)?;
        q.remove(pos)
    }

    /// Blocking probe: waits until an envelope matches `pred` and returns a
    /// *clone* of it without removing it from the mailbox. Unblocks like
    /// [`recv_match`](Self::recv_match) when the world aborts or the
    /// awaited sender is dead.
    pub fn probe_match(
        &self,
        mut pred: impl FnMut(&Envelope) -> bool,
        is_aborted: impl Fn() -> bool,
        dead_src: impl Fn() -> Option<crate::rank::Rank>,
    ) -> RecvOutcome {
        let mut q = self.inner.lock();
        loop {
            if let Some(env) = q.iter().find(|e| pred(e)) {
                return RecvOutcome::Matched(env.clone());
            }
            if is_aborted() {
                return RecvOutcome::Aborted;
            }
            if let Some(peer) = dead_src() {
                return RecvOutcome::SourceDead(peer);
            }
            self.cond.wait(&mut q);
        }
    }

    /// Non-blocking probe: clone of the first matching envelope, if any.
    pub fn try_probe_match(&self, mut pred: impl FnMut(&Envelope) -> bool) -> Option<Envelope> {
        let q = self.inner.lock();
        q.iter().find(|e| pred(e)).cloned()
    }

    /// Wakes all waiters (used when the world aborts).
    pub fn notify_all(&self) {
        self.cond.notify_all();
    }

    /// Number of buffered envelopes (diagnostics / quiesce checks).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the mailbox is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Drops all buffered envelopes (used between restart attempts).
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::Rank;
    use crate::tag::{Namespace, Tag};
    use bytes::Bytes;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn env(src: u32, tag: u64, data: &'static [u8]) -> Envelope {
        Envelope {
            src: Rank::new(src),
            wire_tag: Tag::new(tag).wire(0, Namespace::User),
            payload: Bytes::from_static(data),
            send_time: 0.0,
        }
    }

    #[test]
    fn fifo_per_matching_predicate() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, b"first"));
        mb.push(env(0, 1, b"second"));
        let got = mb.try_recv_match(|e| e.src == Rank::new(0)).unwrap();
        assert_eq!(&got.payload[..], b"first");
        let got = mb.try_recv_match(|e| e.src == Rank::new(0)).unwrap();
        assert_eq!(&got.payload[..], b"second");
        assert!(mb.try_recv_match(|_| true).is_none());
    }

    #[test]
    fn matching_skips_non_matching_messages() {
        let mb = Mailbox::new();
        mb.push(env(1, 9, b"other"));
        mb.push(env(0, 1, b"wanted"));
        let got = mb.try_recv_match(|e| e.wire_tag.value() == 1).unwrap();
        assert_eq!(&got.payload[..], b"wanted");
        assert_eq!(mb.len(), 1, "non-matching message stays queued");
    }

    #[test]
    fn probe_does_not_remove() {
        let mb = Mailbox::new();
        mb.push(env(2, 3, b"x"));
        assert!(mb.try_probe_match(|_| true).is_some());
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn blocking_recv_wakes_on_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || {
            match mb2.recv_match(|e| e.wire_tag.value() == 5, || false, || None) {
                RecvOutcome::Matched(e) => e.payload,
                other => panic!("unexpected outcome {other:?}"),
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.push(env(0, 5, b"late"));
        assert_eq!(&handle.join().unwrap()[..], b"late");
    }

    #[test]
    fn blocking_recv_wakes_on_abort() {
        let mb = Arc::new(Mailbox::new());
        let aborted = Arc::new(AtomicBool::new(false));
        let (mb2, ab2) = (Arc::clone(&mb), Arc::clone(&aborted));
        let handle = std::thread::spawn(move || {
            matches!(
                mb2.recv_match(|_| true, || ab2.load(Ordering::SeqCst), || None),
                RecvOutcome::Aborted
            )
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        aborted.store(true, Ordering::SeqCst);
        mb.notify_all();
        assert!(handle.join().unwrap());
    }

    #[test]
    fn blocking_recv_wakes_on_dead_source() {
        let mb = Arc::new(Mailbox::new());
        let dead = Arc::new(AtomicBool::new(false));
        let (mb2, dead2) = (Arc::clone(&mb), Arc::clone(&dead));
        let handle = std::thread::spawn(move || {
            let dead_src = || if dead2.load(Ordering::SeqCst) { Some(Rank::new(7)) } else { None };
            matches!(
                mb2.recv_match(|e| e.src == Rank::new(7), || false, dead_src),
                RecvOutcome::SourceDead(peer) if peer == Rank::new(7)
            )
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        dead.store(true, Ordering::SeqCst);
        mb.notify_all();
        assert!(handle.join().unwrap());
    }

    #[test]
    fn buffered_message_beats_dead_source() {
        // A message deposited before the sender died must still be
        // delivered; only an *empty* channel from a dead sender errors.
        let mb = Mailbox::new();
        mb.push(env(7, 1, b"pre-death"));
        let outcome = mb.recv_match(|e| e.src == Rank::new(7), || false, || Some(Rank::new(7)));
        match outcome {
            RecvOutcome::Matched(e) => assert_eq!(&e.payload[..], b"pre-death"),
            other => panic!("unexpected outcome {other:?}"),
        }
        // Nothing buffered any more: now the dead source surfaces.
        let outcome = mb.recv_match(|e| e.src == Rank::new(7), || false, || Some(Rank::new(7)));
        assert!(matches!(outcome, RecvOutcome::SourceDead(_)));
    }

    #[test]
    fn clear_empties() {
        let mb = Mailbox::new();
        mb.push(env(0, 0, b""));
        assert!(!mb.is_empty());
        mb.clear();
        assert!(mb.is_empty());
    }
}
