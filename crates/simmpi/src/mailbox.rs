//! Per-rank mailboxes: unbounded buffered delivery with channel-indexed
//! matching.
//!
//! Sends are *eager*: the sender deposits the envelope into the receiver's
//! mailbox and continues (never blocks). Envelopes are stored in
//! per-(source, wire-tag) FIFO queues, each entry stamped with a global
//! arrival sequence number:
//!
//! * a **specific-source/specific-tag** receive (the dominant case in CG,
//!   collectives, and replica voting) pops the front of exactly one
//!   channel — O(1), no scan;
//! * a **wildcard** receive (`ANY_SOURCE` and/or `ANY_TAG`) inspects only
//!   the *fronts* of the matching channels and takes the smallest arrival
//!   sequence number. Because every envelope within one channel is
//!   match-equivalent, this selects exactly the globally-oldest matching
//!   arrival — bit-for-bit the same envelope the old flat-queue scan
//!   returned.
//!
//! Blocking receives have two regimes. When the receiver runs as an M:N
//! scheduler task (the simulator's normal mode — see `redcr-sched`), a
//! missing match registers an *interest* (which source/tag it waits for)
//! together with the task's [`redcr_sched::Waker`] and immediately
//! *parks the coroutine*: the worker thread moves on to runnable rank
//! tasks, and the matching push marks the task runnable again on the
//! scheduler's run-queue. No OS-level spin, park, or context switch
//! happens at all. When the receiver is a plain OS thread (mailbox unit
//! tests, the `REDCR_EXEC=threads` fallback backend), the pre-M:N
//! behavior remains: a bounded *yield-spin* first, then a condvar park
//! with the same registered interest.
//!
//! Either way the push side wakes only when the deposited envelope can
//! satisfy the parked interest, and skips notification entirely when no
//! receiver is parked — no thundering herd. A generation counter records
//! every notification actually sent, so tests can assert the
//! no-spurious-wakeup property.
//!
//! # Abort finality
//!
//! World runs attach a [`Quiesce`] to every mailbox: a blocked wait then
//! resolves to [`Outcome::Aborted`] only once the abort is **final** —
//! every rank has either finished or parked with no committed wake
//! outstanding, so the mailbox state can never change again. This is
//! what makes physical message counts bit-identical run-to-run on both
//! execution backends even when a run ends in an abort; see the
//! [`Quiesce`] docs for the token protocol.
//!
//! # Lock order
//!
//! The mailbox owns exactly one lock: `Mailbox::inner`
//! (`parking_lot::Mutex<Inner>`, paired with the `cond` condvar). It is a
//! **leaf lock**: every acquisition in this module either completes
//! within a single statement or is dropped before any other lock in the
//! workspace can be touched — a parked receiver waits on `cond` with
//! `inner` (atomically) released, never while holding anything else.
//!
//! This is verified, not aspirational: `detlint`'s R5 lock-order pass
//! (run by `tests/detlint_clean.rs` and the CI `detlint` job) extracts
//! every acquisition site in the workspace and builds the inter-crate
//! lock graph. The graph's classes — `simmpi::inner` (this file),
//! `checkpoint::images` (`MemoryStorage`), `metrics::inner`
//! (`MetricsRegistry`), `trace::events`
//! ([`Recorder`](redcr_trace::Recorder)), and the `redcr-sched`
//! run-queue/injector/idle locks — carry **zero nested acquisitions**,
//! so it is trivially acyclic. In particular the scheduler wake a push
//! triggers happens strictly *after* `inner` is dropped (the waker is
//! cloned under the lock, invoked outside it), so `inner` never nests
//! with a run-queue lock. Code that needs to hold `inner` together with
//! any other lock must pick an order, document it here, and will then
//! show up as an edge in detlint's graph where a cycle fails the build.
//!
//! # Iteration order
//!
//! `Inner::channels` is a `HashMap` (FxHash, carrying detlint R2
//! allows): the wildcard path never depends on map iteration order
//! because it minimizes over globally-unique arrival sequence numbers,
//! and `clear()` discards all entries. Any new use of this map must
//! preserve that order-independence — or switch the index to `BTreeMap`
//! and eat the lookup cost.

// detlint::allow(R2, reason = "keyed O(1) channel index; the only iteration (best_channel, clear) is order-independent — see the lock-order & iteration notes below")
use std::collections::{HashMap, VecDeque};
use std::hash::BuildHasherDefault;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};

use parking_lot::{Condvar, Mutex};
use redcr_prof::{CounterKey, RankProf, SpanKey, TrackKey};

use crate::message::Envelope;
use crate::rank::{Rank, RankSelector};
use crate::tag::{Namespace, TagSelector, WireTag};

/// Cap on pooled drained channel queues (collective tags create a fresh
/// channel key per collective; pooling stops that from allocating a new
/// `VecDeque` every time).
const POOL_CAP: usize = 64;

/// How many times a blocking receive on a *plain OS thread* yields its
/// timeslice and re-checks before parking on the condition variable. Each
/// yield hands the CPU to the ranks this receiver is waiting on, so on an
/// oversubscribed host the matching send usually lands within a few
/// yields; parking stays as the bounded fallback, so there is no
/// unbounded busy-wait. Scheduler tasks skip the spin phase entirely —
/// yielding the coroutine back to the worker *is* the way to let the
/// sender run.
const SPIN_YIELDS: u32 = 2;

/// Cheap multiply-rotate hasher for the fixed-width `(Rank, WireTag)`
/// channel keys. The std `HashMap` default (SipHash) costs more than the
/// entire matched pop on the receive hot path; channel keys are internal
/// simulation state with no attacker-controlled collisions to defend
/// against, so a fast non-cryptographic mix is the right trade.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
}

// detlint::allow(R2, reason = "wildcard scans take the min over globally-unique arrival seqs and clear() discards everything, so no observable state depends on map iteration order")
type ChannelMap = HashMap<(Rank, WireTag), VecDeque<(u64, Envelope)>, BuildHasherDefault<FxHasher>>;

/// What a receive is looking for, structurally — replaces the opaque
/// predicate closures of the flat mailbox so matching can be indexed.
#[derive(Clone, Copy)]
pub struct MatchSpec<'a> {
    /// Communicator id the receive is posted on.
    pub comm_id: u16,
    /// Namespace the receive is posted in.
    pub ns: Namespace,
    /// Source selector (world ranks).
    pub src: RankSelector,
    /// Tag selector.
    pub tag: TagSelector,
    /// Membership filter for `ANY_SOURCE` on sub-communicators: a source
    /// outside the group never matches. Irrelevant (and skipped) for
    /// specific-source receives, whose source is pre-validated.
    pub member: Option<&'a dyn Fn(Rank) -> bool>,
}

impl MatchSpec<'_> {
    /// Whether envelopes in the channel `(src, wire)` match this spec.
    fn matches_channel(&self, src: Rank, wire: WireTag) -> bool {
        if wire.comm_id() != self.comm_id || wire.namespace() != self.ns as u64 {
            return false;
        }
        let tag_ok = match self.tag {
            TagSelector::Tag(t) => wire.value() == t.value(),
            TagSelector::Any => true,
        };
        tag_ok && self.src.matches(src) && self.member.is_none_or(|f| f(src))
    }

    /// The unique channel key when both source and tag are specific.
    fn exact_key(&self) -> Option<(Rank, WireTag)> {
        match (self.src, self.tag) {
            (RankSelector::Rank(src), TagSelector::Tag(tag)) => {
                Some((src, tag.wire(self.comm_id, self.ns)))
            }
            _ => None,
        }
    }
}

/// The interest a parked receiver registers so pushes can decide whether
/// to wake it. Deliberately coarser than [`MatchSpec`]: a false-positive
/// wakeup only costs a re-check and re-park, while matching here must be
/// cheap and allocation-free on the push path.
#[derive(Debug, Clone, Copy)]
struct Interest {
    /// Wake only on pushes from this source (`None`: any source).
    src: Option<Rank>,
    /// Wake only on pushes with this exact wire tag (`None`: any tag).
    wire: Option<WireTag>,
}

impl Interest {
    fn from_spec(spec: &MatchSpec<'_>) -> Self {
        let src = match spec.src {
            RankSelector::Rank(r) => Some(r),
            RankSelector::Any => None,
        };
        let wire = match (spec.src, spec.tag) {
            // Only pin the wire tag when the source is also specific; a
            // wildcard-source receive may be satisfied by several comm
            // ids' tags and coarse matching keeps the push check exact
            // enough (same tag value check below would be wrong across
            // communicators — keep it simple and wake on any push).
            (RankSelector::Rank(_), TagSelector::Tag(t)) => Some(t.wire(spec.comm_id, spec.ns)),
            _ => None,
        };
        Interest { src, wire }
    }

    fn wants(&self, src: Rank, wire: WireTag) -> bool {
        self.src.is_none_or(|s| s == src) && self.wire.is_none_or(|w| w == wire)
    }

    /// Whether the death of `rank` can unblock this waiter (only
    /// specific-source receives ever end in `SourceDead`).
    fn wants_death(&self, rank: Rank) -> bool {
        self.src == Some(rank)
    }
}

/// The registered state of a blocked receiver: what it waits for, plus
/// how to wake it. A scheduler task carries its waker (the push side
/// marks the task runnable); a plain OS thread leaves `waker` empty and
/// is notified through the mailbox condvar instead. `tokened` records
/// whether a wake already transferred the rank's "live" token back (see
/// [`Quiesce`]) — set at most once per registration, under `inner`.
#[derive(Debug)]
struct Waiter {
    interest: Interest,
    waker: Option<redcr_sched::Waker>,
    tokened: bool,
}

/// Live-rank accounting that makes a world abort observable only once it
/// is **final**, so the abort edge never cuts a run at a physically-timed
/// point.
///
/// The world-abort flag is raised at a *physical* instant (whichever rank
/// escalates first). If running ranks polled it, each would stop after a
/// host-timing-dependent number of operations and physical message counts
/// would vary run-to-run — the exact `REDCR_EXEC=threads` noise this type
/// exists to remove. Instead:
///
/// * **running ranks never observe the flag** — they stop only through
///   deterministic, virtual-time-driven exits (own death, `DeadPeer` /
///   `SphereDead` escalation, the abort horizon, or normal completion);
/// * **parked ranks** return [`Outcome::Aborted`] only once the abort is
///   final, tracked by this counter: `live` counts ranks that can still
///   deposit an envelope — every rank not yet finished and not currently
///   asleep, plus parked ranks whose wake has been committed (the waker
///   transfers the token via `Waiter::tokened` *before* issuing the
///   wake). A receiver gives its token up strictly after registering its
///   waiter and strictly before sleeping. The first decrement to zero
///   with the abort flag set therefore proves a frozen system — nobody
///   is executing and no committed wake is outstanding, so no further
///   push can ever occur — and flips the sticky `finality` flag, then
///   wakes every mailbox once so all parked ranks drain out `Aborted`
///   against a bit-deterministic final mailbox state.
///
/// Standalone mailboxes (unit tests) carry no `Quiesce` and keep the
/// immediate abort-on-flag behavior.
///
/// Liveness contract: with the flag raised but not yet final, every
/// still-running rank must either terminate on its own or reach a
/// blocking mailbox wait (true for the simulation closures, whose only
/// unbounded waits are receives); each then retires, and the last one
/// finalizes the abort and releases everyone.
#[derive(Debug)]
pub(crate) struct Quiesce {
    /// Ranks that can still deposit an envelope (see type-level doc).
    live: AtomicUsize,
    /// Sticky: set by the decrement that took `live` to zero while the
    /// world was aborted. From then on the mailboxes are frozen and
    /// blocked waits resolve to [`Outcome::Aborted`].
    finality: AtomicBool,
    /// The world's mailboxes, for the one-shot finality broadcast. Weak:
    /// each `Mailbox` holds an `Arc<Quiesce>`, so a strong pointer here
    /// would leak the cycle.
    mailboxes: OnceLock<Weak<Vec<Mailbox>>>,
}

impl Quiesce {
    /// Accounting for a world of `n` ranks, all initially live.
    pub(crate) fn new(n: usize) -> Self {
        Quiesce {
            live: AtomicUsize::new(n),
            finality: AtomicBool::new(false),
            mailboxes: OnceLock::new(),
        }
    }

    /// Registers the mailboxes to broadcast to when the abort finalizes.
    pub(crate) fn attach(&self, mailboxes: &Arc<Vec<Mailbox>>) {
        let _ = self.mailboxes.set(Arc::downgrade(mailboxes));
    }

    /// Counts one rank live again (token transfer on a committed wake, or
    /// a self-resume after a wake that carried no token).
    fn resume(&self) {
        self.live.fetch_add(1, Ordering::SeqCst);
    }

    /// Gives up one rank's live token: called just before a rank sleeps
    /// and once when it finishes. `aborted` is the world-abort flag at
    /// retire time; the first retire that empties the counter with it set
    /// finalizes the abort and wakes every mailbox exactly once.
    ///
    /// The finality broadcast runs with **no mailbox lock held** (callers
    /// drop `inner` before retiring), preserving the leaf-lock property.
    pub(crate) fn retire(&self, aborted: bool) {
        let prev = self.live.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "live-rank counter underflow");
        if prev == 1 && aborted && !self.finality.swap(true, Ordering::SeqCst) {
            if let Some(mailboxes) = self.mailboxes.get().and_then(Weak::upgrade) {
                for mb in mailboxes.iter() {
                    mb.wake_all();
                }
            }
        }
    }

    /// Whether the abort has been finalized (no live rank remained).
    fn is_final(&self) -> bool {
        self.finality.load(Ordering::SeqCst)
    }
}

/// Probe metadata: everything a probe reports, without cloning payload
/// bytes out of the mailbox.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeekInfo {
    /// Sender's world rank.
    pub src: Rank,
    /// Full wire tag of the buffered envelope.
    pub wire_tag: WireTag,
    /// Payload length in bytes.
    pub len: usize,
    /// Sender's virtual clock at deposit, seconds.
    pub send_time: f64,
}

impl PeekInfo {
    fn of(env: &Envelope) -> Self {
        PeekInfo {
            src: env.src,
            wire_tag: env.wire_tag,
            len: env.payload.len(),
            send_time: env.send_time,
        }
    }
}

/// Outcome of a blocking matched receive or probe.
#[derive(Debug)]
pub enum Outcome<T> {
    /// A matching envelope was found (and, for receives, removed).
    Matched(T),
    /// The world aborted while waiting.
    Aborted,
    /// The awaited sender fail-stopped without a matching message buffered:
    /// nothing matching can ever arrive. Carries the dead sender's rank.
    SourceDead(Rank),
}

/// Outcome of a blocking matched receive.
pub type RecvOutcome = Outcome<Envelope>;

/// Outcome of a blocking probe.
pub type PeekOutcome = Outcome<PeekInfo>;

#[derive(Debug, Default)]
struct Inner {
    /// Per-(source, wire-tag) FIFO queues of `(arrival_seq, envelope)`.
    /// Invariant: no empty queue is ever stored.
    channels: ChannelMap,
    /// Next global arrival sequence number.
    seq: u64,
    /// Total buffered envelopes across all channels.
    len: usize,
    /// Drained queues kept for reuse (capped at [`POOL_CAP`]).
    pool: Vec<VecDeque<(u64, Envelope)>>,
    /// The (single) parked receiver, if any. A mailbox is only ever
    /// received from by its own rank's task.
    waiter: Option<Waiter>,
    /// Generation counter: notifications actually sent. Pushes that can't
    /// satisfy the parked interest (or find nobody parked) don't bump it.
    wakeups: u64,
}

impl Inner {
    fn push_env(&mut self, env: Envelope) {
        let key = (env.src, env.wire_tag);
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        self.channels
            .entry(key)
            .or_insert_with(|| self.pool.pop().unwrap_or_default())
            .push_back((seq, env));
    }

    /// Pops the front of `key`'s channel, recycling the queue when it
    /// empties (keeps the no-empty-queue invariant).
    fn pop_channel(&mut self, key: &(Rank, WireTag)) -> Option<Envelope> {
        // Entry API: one hash for the pop *and* the empty-queue removal.
        let std::collections::hash_map::Entry::Occupied(mut e) = self.channels.entry(*key) else {
            return None;
        };
        // detlint::allow(R4, reason = "invariant: no empty queue is ever stored (pop_channel removes emptied queues); an empty front here is mailbox corruption, unreachable from any input")
        let (_, env) = e.get_mut().pop_front().expect("channels never store empty queues");
        if e.get().is_empty() {
            let q = e.remove();
            if self.pool.len() < POOL_CAP {
                self.pool.push(q);
            }
        }
        self.len -= 1;
        Some(env)
    }

    /// The key of the channel holding the globally-oldest envelope
    /// matching `spec`, considering only channel fronts (sufficient: all
    /// envelopes in one channel are match-equivalent).
    fn best_channel(&self, spec: &MatchSpec<'_>) -> Option<(Rank, WireTag)> {
        if let Some(key) = spec.exact_key() {
            return self.channels.contains_key(&key).then_some(key);
        }
        let mut best: Option<(u64, (Rank, WireTag))> = None;
        for (&key, q) in &self.channels {
            if !spec.matches_channel(key.0, key.1) {
                continue;
            }
            // detlint::allow(R4, reason = "invariant: no empty queue is ever stored, so every channel has a front")
            let front = q.front().expect("channels never store empty queues").0;
            if best.is_none_or(|(s, _)| front < s) {
                best = Some((front, key));
            }
        }
        best.map(|(_, key)| key)
    }

    fn take_match(&mut self, spec: &MatchSpec<'_>) -> Option<Envelope> {
        let key = self.best_channel(spec)?;
        self.pop_channel(&key)
    }

    fn peek_match(&self, spec: &MatchSpec<'_>) -> Option<PeekInfo> {
        let key = self.best_channel(spec)?;
        // detlint::allow(R4, reason = "invariant: best_channel only returns keys of stored (hence non-empty) channels")
        let (_, env) = self.channels[&key].front().expect("channels never store empty queues");
        Some(PeekInfo::of(env))
    }
}

/// A rank's incoming-message buffer.
#[derive(Default)]
pub struct Mailbox {
    inner: Mutex<Inner>,
    cond: Condvar,
    /// Live-rank accounting shared by the whole world (None for
    /// standalone mailboxes, which keep immediate abort-on-flag waits).
    quiesce: Option<Arc<Quiesce>>,
}

impl std::fmt::Debug for Mailbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mailbox").finish_non_exhaustive()
    }
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty mailbox participating in the world's live-rank
    /// accounting (see [`Quiesce`]).
    pub(crate) fn with_quiesce(quiesce: Arc<Quiesce>) -> Self {
        Mailbox { quiesce: Some(quiesce), ..Self::default() }
    }

    /// Transfers the live token to the registered waiter: the wake being
    /// issued commits the parked rank to resume, so it counts as live
    /// again from this instant. At most once per registration; must run
    /// under `inner` (callers hold it).
    fn grant_token(&self, inner: &mut Inner) {
        if let (Some(q), Some(w)) = (&self.quiesce, inner.waiter.as_mut()) {
            if !w.tokened {
                w.tokened = true;
                q.resume();
            }
        }
    }

    /// Gives up this rank's live token just before it sleeps. Must be
    /// called with `inner` released *after* the waiter was registered:
    /// any wake from that point on transfers the token back, and a
    /// finality broadcast triggered here must take the mailbox locks
    /// itself.
    fn retire(&self, is_aborted: &impl Fn() -> bool) {
        if let Some(q) = &self.quiesce {
            q.retire(is_aborted());
        }
    }

    /// Re-acquires liveness after a sleep. A tokened waiter was already
    /// counted live by whoever committed the wake; an untokened one means
    /// the sleep ended without a committed wake (e.g. a spurious condvar
    /// wake, or a scheduler notify left over from an earlier wait), so
    /// the rank re-counts itself. Clears the registration either way.
    fn settle(&self, inner: &mut Inner) {
        let Some(q) = &self.quiesce else {
            return;
        };
        if let Some(w) = inner.waiter.take() {
            if !w.tokened {
                q.resume();
            }
        }
    }

    /// Deposits an envelope, waking the parked receiver only when the
    /// envelope can satisfy its registered interest.
    pub fn push(&self, env: Envelope) {
        self.push_prof(env, None);
    }

    /// [`push`](Self::push) with an optional wall-clock profiling shard
    /// (the *sender's*). When present it times the push, counts the
    /// notify decision, and samples the post-push queue depth; profiling
    /// reads the host clock only and never touches virtual time, so the
    /// deposited envelope is bit-identical either way.
    pub fn push_prof(&self, env: Envelope, prof: Option<&RankProf>) {
        let _send = prof.map(|p| p.span(SpanKey::MailboxSend));
        let mut inner = self.inner.lock();
        let (src, wire) = (env.src, env.wire_tag);
        inner.push_env(env);
        let depth = inner.len;
        let notified = inner.waiter.as_ref().is_some_and(|w| w.interest.wants(src, wire));
        let mut task = None;
        if notified {
            inner.wakeups += 1;
            task = inner.waiter.as_ref().and_then(|w| w.waker.clone());
            self.grant_token(&mut inner);
        }
        // Preserve the leaf-lock property: the scheduler wake (and the
        // condvar notify) happen strictly after `inner` is released.
        drop(inner);
        if notified {
            match &task {
                Some(w) => w.wake(),
                None => self.cond.notify_one(),
            }
        }
        if let Some(p) = prof {
            p.count(CounterKey::Sends);
            if notified {
                p.count(CounterKey::Notifies);
                if task.is_some() {
                    p.count(CounterKey::TaskWakes);
                }
            }
            p.sample(TrackKey::QueueDepth, depth as f64);
        }
    }

    /// The shared blocking wait loop. On a scheduler task a missing match
    /// registers interest + waker and parks the coroutine (the worker
    /// runs other ranks; the matching push requeues us). On a plain OS
    /// thread it spin-yields a bounded number of times, then registers
    /// interest and parks on the condvar. `grab` extracts the result once
    /// a match exists.
    fn wait_match<T>(
        &self,
        spec: &MatchSpec<'_>,
        is_aborted: impl Fn() -> bool,
        dead_src: impl Fn() -> Option<Rank>,
        prof: Option<&RankProf>,
        mut grab: impl FnMut(&mut Inner) -> Option<T>,
    ) -> Outcome<T> {
        let _wait = prof.map(|p| p.span(SpanKey::MailboxRecvWait));
        let task = redcr_sched::current_waker();
        let mut spins = 0u32;
        let mut parked = false;
        let mut inner = self.inner.lock();
        loop {
            // detlint::allow(R7, reason = "grab is a caller-supplied matcher over the queue snapshot; the wait_match contract requires it to be a pure predicate (every call site passes a closure that only inspects `inner`), so it cannot park")
            if let Some(v) = grab(&mut inner) {
                inner.waiter = None;
                if let Some(p) = prof {
                    p.count(if parked {
                        CounterKey::ParkResolved
                    } else {
                        CounterKey::SpinResolved
                    });
                }
                return Outcome::Matched(v);
            }
            // With live-rank accounting attached (world runs), the abort
            // flag alone never ends a wait: running ranks may still
            // deposit a matching send, and bailing out on the raw flag
            // would cut the run at a physically-timed point. Only a
            // *final* abort (no rank can ever push again — see
            // [`Quiesce`]) resolves to `Aborted`. Standalone mailboxes
            // keep the immediate behavior.
            // detlint::allow(R7, reason = "is_aborted is a caller-supplied flag read (an AtomicBool load at every call site); the wait_match contract requires it side-effect-free, so it cannot park")
            if is_aborted() && self.quiesce.as_deref().is_none_or(Quiesce::is_final) {
                inner.waiter = None;
                return Outcome::Aborted;
            }
            // detlint::allow(R7, reason = "dead_src is a caller-supplied liveness probe (reads shared death records, never parks) per the wait_match contract")
            if let Some(peer) = dead_src() {
                inner.waiter = None;
                return Outcome::SourceDead(peer);
            }
            if let Some(w) = &task {
                // Scheduler task: hand the worker to whoever should be
                // sending. The waker registration and the RUNNING →
                // NOTIFIED state machine in redcr-sched close the race
                // between dropping `inner` and the coroutine freezing.
                // The live token is given up strictly after the waiter is
                // registered (wakes from here on transfer it back) and
                // strictly before the coroutine freezes.
                inner.waiter = Some(Waiter {
                    interest: Interest::from_spec(spec),
                    waker: Some(w.clone()),
                    tokened: false,
                });
                parked = true;
                drop(inner);
                self.retire(&is_aborted);
                if let Some(p) = prof {
                    p.count(CounterKey::Parks);
                    p.sample(TrackKey::Parks, p.counter(CounterKey::Parks) as f64);
                    let _park = p.span(SpanKey::MailboxPark);
                    redcr_sched::park_current();
                    p.count(CounterKey::Wakes);
                } else {
                    redcr_sched::park_current();
                }
                inner = self.inner.lock();
                self.settle(&mut inner);
            } else if spins < SPIN_YIELDS {
                // Donate the timeslice to whoever should be sending; no
                // interest is registered, so the matching push stays
                // notification-free (the common fast path). The rank
                // stays live: a yield is not a sleep.
                spins += 1;
                drop(inner);
                // detlint::allow(R8, reason = "bounded spin donation on the OS-thread path: at most SPIN_YIELDS timeslice donations before registering interest and sleeping; the coro backend parks via the waker instead of reaching this arm")
                std::thread::yield_now();
                inner = self.inner.lock();
            } else if self.quiesce.is_some() {
                // OS-thread backend with live-rank accounting: same
                // retire-before-sleep ordering as the coroutine path,
                // done without ever holding `inner` across another
                // mailbox's lock (a finality broadcast inside `retire`
                // takes each in turn): register, unlock, retire, relock.
                // A wake landing inside that window commits the token,
                // which the re-check below observes — and committing one
                // requires `inner`, which `cond.wait` releases
                // atomically, so there is no lost-wake window.
                inner.waiter = Some(Waiter {
                    interest: Interest::from_spec(spec),
                    waker: None,
                    tokened: false,
                });
                parked = true;
                drop(inner);
                self.retire(&is_aborted);
                inner = self.inner.lock();
                if !inner.waiter.as_ref().is_none_or(|w| w.tokened) {
                    if let Some(p) = prof {
                        p.count(CounterKey::Parks);
                        p.sample(TrackKey::Parks, p.counter(CounterKey::Parks) as f64);
                        let _park = p.span(SpanKey::MailboxPark);
                        // detlint::allow(R8, reason = "threads-backend park: under REDCR_EXEC=threads each rank owns an OS thread and the condvar wait IS the intended suspension; the coro backend takes the waker branch above")
                        self.cond.wait(&mut inner);
                        p.count(CounterKey::Wakes);
                    } else {
                        // detlint::allow(R8, reason = "threads-backend park (unprofiled arm): same intended OS-thread suspension as the profiled branch")
                        self.cond.wait(&mut inner);
                    }
                }
                self.settle(&mut inner);
            } else {
                // Standalone mailbox on a plain OS thread (unit tests):
                // the original atomic register-and-wait under one lock
                // hold.
                inner.waiter = Some(Waiter {
                    interest: Interest::from_spec(spec),
                    waker: None,
                    tokened: false,
                });
                parked = true;
                if let Some(p) = prof {
                    p.count(CounterKey::Parks);
                    p.sample(TrackKey::Parks, p.counter(CounterKey::Parks) as f64);
                    let _park = p.span(SpanKey::MailboxPark);
                    // detlint::allow(R8, reason = "standalone-mailbox park: a mailbox used from a plain OS thread (unit tests) blocks that thread by design; world runs route through the quiesce arm above")
                    self.cond.wait(&mut inner);
                    p.count(CounterKey::Wakes);
                } else {
                    // detlint::allow(R8, reason = "standalone-mailbox park (unprofiled arm): same plain-OS-thread suspension as the profiled branch")
                    self.cond.wait(&mut inner);
                }
            }
        }
    }

    /// Removes and returns the oldest envelope matching `spec`, blocking
    /// until one arrives. `is_aborted` is polled on every wake-up; when it
    /// returns true the wait ends with [`Outcome::Aborted`]. `dead_src`
    /// is polled likewise: when it reports the awaited (specific) sender
    /// as dead and nothing matching is buffered, the wait ends with
    /// [`Outcome::SourceDead`] — a dead rank has already deposited
    /// everything it will ever send, so no match can arrive later.
    pub fn recv_match(
        &self,
        spec: &MatchSpec<'_>,
        is_aborted: impl Fn() -> bool,
        dead_src: impl Fn() -> Option<Rank>,
    ) -> RecvOutcome {
        self.recv_match_prof(spec, is_aborted, dead_src, None)
    }

    /// [`recv_match`](Self::recv_match) with an optional wall-clock
    /// profiling shard: times the whole wait (spin phase included) and
    /// each condvar park, and classifies the wait as spin- or
    /// park-resolved. Profiling never changes what is matched or when.
    pub fn recv_match_prof(
        &self,
        spec: &MatchSpec<'_>,
        is_aborted: impl Fn() -> bool,
        dead_src: impl Fn() -> Option<Rank>,
        prof: Option<&RankProf>,
    ) -> RecvOutcome {
        let out = self.wait_match(spec, is_aborted, dead_src, prof, |inner| inner.take_match(spec));
        if let (Some(p), Outcome::Matched(_)) = (prof, &out) {
            p.count(CounterKey::Recvs);
        }
        out
    }

    /// Non-blocking variant of [`recv_match`](Self::recv_match): removes
    /// and returns the oldest match, or `None` if nothing matches now.
    pub fn try_recv_match(&self, spec: &MatchSpec<'_>) -> Option<Envelope> {
        self.inner.lock().take_match(spec)
    }

    /// Blocking probe: waits until an envelope matches `spec` and returns
    /// its metadata without removing it (and without cloning payload
    /// bytes). Unblocks like [`recv_match`](Self::recv_match) when the
    /// world aborts or the awaited sender is dead.
    pub fn peek_match(
        &self,
        spec: &MatchSpec<'_>,
        is_aborted: impl Fn() -> bool,
        dead_src: impl Fn() -> Option<Rank>,
    ) -> PeekOutcome {
        self.peek_match_prof(spec, is_aborted, dead_src, None)
    }

    /// [`peek_match`](Self::peek_match) with an optional wall-clock
    /// profiling shard (see
    /// [`recv_match_prof`](Self::recv_match_prof)).
    pub fn peek_match_prof(
        &self,
        spec: &MatchSpec<'_>,
        is_aborted: impl Fn() -> bool,
        dead_src: impl Fn() -> Option<Rank>,
        prof: Option<&RankProf>,
    ) -> PeekOutcome {
        self.wait_match(spec, is_aborted, dead_src, prof, |inner| inner.peek_match(spec))
    }

    /// Non-blocking probe: metadata of the oldest matching envelope, if
    /// any, without cloning it.
    pub fn try_peek_match(&self, spec: &MatchSpec<'_>) -> Option<PeekInfo> {
        self.inner.lock().peek_match(spec)
    }

    /// Wakes the parked receiver unconditionally (world abort).
    pub fn wake_all(&self) {
        let mut inner = self.inner.lock();
        let waiting = inner.waiter.is_some();
        let task = inner.waiter.as_ref().and_then(|w| w.waker.clone());
        if waiting {
            inner.wakeups += 1;
            self.grant_token(&mut inner);
        }
        drop(inner);
        if let Some(w) = task {
            w.wake();
        }
        self.cond.notify_all();
    }

    /// Wakes the parked receiver only if the death of `rank` can unblock
    /// it, i.e. it waits on that specific source. Wildcard waiters never
    /// resolve to `SourceDead` and are left parked.
    pub fn wake_for_death(&self, rank: Rank) {
        let mut inner = self.inner.lock();
        if inner.waiter.as_ref().is_some_and(|w| w.interest.wants_death(rank)) {
            inner.wakeups += 1;
            let task = inner.waiter.as_ref().and_then(|w| w.waker.clone());
            self.grant_token(&mut inner);
            drop(inner);
            match task {
                Some(w) => w.wake(),
                None => self.cond.notify_one(),
            }
        }
    }

    /// Notifications sent to this mailbox's receiver so far (generation
    /// counter; used to assert the no-spurious-wakeup property in tests).
    pub fn wakeups(&self) -> u64 {
        self.inner.lock().wakeups
    }

    /// Number of buffered envelopes (diagnostics / quiesce checks).
    pub fn len(&self) -> usize {
        self.inner.lock().len
    }

    /// Whether the mailbox is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all buffered envelopes (used between restart attempts).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let keys: Vec<_> = inner.channels.keys().copied().collect();
        for key in keys {
            // detlint::allow(R4, reason = "infallible: key was collected from this map one statement earlier under the same lock")
            let mut q = inner.channels.remove(&key).expect("key just listed");
            q.clear();
            if inner.pool.len() < POOL_CAP {
                inner.pool.push(q);
            }
        }
        inner.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::{Namespace, Tag};
    use bytes::Bytes;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    fn env(src: u32, tag: u64, data: &'static [u8]) -> Envelope {
        Envelope {
            src: Rank::new(src),
            wire_tag: Tag::new(tag).wire(0, Namespace::User),
            payload: Bytes::from_static(data),
            send_time: 0.0,
        }
    }

    fn spec(src: RankSelector, tag: TagSelector) -> MatchSpec<'static> {
        MatchSpec { comm_id: 0, ns: Namespace::User, src, tag, member: None }
    }

    fn from_rank(src: u32) -> MatchSpec<'static> {
        spec(RankSelector::Rank(Rank::new(src)), TagSelector::Any)
    }

    fn exact(src: u32, tag: u64) -> MatchSpec<'static> {
        spec(RankSelector::Rank(Rank::new(src)), TagSelector::Tag(Tag::new(tag)))
    }

    fn any() -> MatchSpec<'static> {
        spec(RankSelector::Any, TagSelector::Any)
    }

    #[test]
    fn fifo_within_channel() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, b"first"));
        mb.push(env(0, 1, b"second"));
        let got = mb.try_recv_match(&exact(0, 1)).unwrap();
        assert_eq!(&got.payload[..], b"first");
        let got = mb.try_recv_match(&from_rank(0)).unwrap();
        assert_eq!(&got.payload[..], b"second");
        assert!(mb.try_recv_match(&any()).is_none());
    }

    #[test]
    fn matching_skips_non_matching_messages() {
        let mb = Mailbox::new();
        mb.push(env(1, 9, b"other"));
        mb.push(env(0, 1, b"wanted"));
        let got =
            mb.try_recv_match(&spec(RankSelector::Any, TagSelector::Tag(Tag::new(1)))).unwrap();
        assert_eq!(&got.payload[..], b"wanted");
        assert_eq!(mb.len(), 1, "non-matching message stays queued");
    }

    #[test]
    fn wildcard_takes_globally_oldest_across_channels() {
        let mb = Mailbox::new();
        mb.push(env(2, 5, b"oldest"));
        mb.push(env(0, 1, b"newer"));
        mb.push(env(1, 3, b"newest"));
        let got = mb.try_recv_match(&any()).unwrap();
        assert_eq!(&got.payload[..], b"oldest");
        let got = mb.try_recv_match(&any()).unwrap();
        assert_eq!(&got.payload[..], b"newer");
        let got = mb.try_recv_match(&any()).unwrap();
        assert_eq!(&got.payload[..], b"newest");
    }

    #[test]
    fn specific_pop_preserves_global_order_for_wildcards() {
        let mb = Mailbox::new();
        mb.push(env(2, 5, b"a"));
        mb.push(env(1, 1, b"b"));
        mb.push(env(3, 7, b"c"));
        // Drain the middle channel by exact match first.
        let got = mb.try_recv_match(&exact(1, 1)).unwrap();
        assert_eq!(&got.payload[..], b"b");
        // Wildcards still see a before c.
        assert_eq!(&mb.try_recv_match(&any()).unwrap().payload[..], b"a");
        assert_eq!(&mb.try_recv_match(&any()).unwrap().payload[..], b"c");
    }

    #[test]
    fn peek_does_not_remove_or_clone_payload() {
        let mb = Mailbox::new();
        mb.push(env(2, 3, b"xy"));
        let info = mb.try_peek_match(&any()).unwrap();
        assert_eq!(info.src, Rank::new(2));
        assert_eq!(info.len, 2);
        assert_eq!(info.wire_tag.value(), 3);
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn blocking_recv_wakes_on_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle = std::thread::spawn(move || {
            match mb2.recv_match(
                &spec(RankSelector::Any, TagSelector::Tag(Tag::new(5))),
                || false,
                || None,
            ) {
                Outcome::Matched(e) => e.payload,
                other => panic!("unexpected outcome {other:?}"),
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.push(env(0, 5, b"late"));
        assert_eq!(&handle.join().unwrap()[..], b"late");
    }

    #[test]
    fn blocking_recv_wakes_on_abort() {
        let mb = Arc::new(Mailbox::new());
        let aborted = Arc::new(AtomicBool::new(false));
        let (mb2, ab2) = (Arc::clone(&mb), Arc::clone(&aborted));
        let handle = std::thread::spawn(move || {
            matches!(
                mb2.recv_match(&any(), || ab2.load(Ordering::SeqCst), || None),
                Outcome::Aborted
            )
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        aborted.store(true, Ordering::SeqCst);
        mb.wake_all();
        assert!(handle.join().unwrap());
    }

    #[test]
    fn blocking_recv_wakes_on_dead_source() {
        let mb = Arc::new(Mailbox::new());
        let dead = Arc::new(AtomicBool::new(false));
        let (mb2, dead2) = (Arc::clone(&mb), Arc::clone(&dead));
        let handle = std::thread::spawn(move || {
            let dead_src = || if dead2.load(Ordering::SeqCst) { Some(Rank::new(7)) } else { None };
            matches!(
                mb2.recv_match(&from_rank(7), || false, dead_src),
                Outcome::SourceDead(peer) if peer == Rank::new(7)
            )
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        dead.store(true, Ordering::SeqCst);
        mb.wake_for_death(Rank::new(7));
        assert!(handle.join().unwrap());
    }

    #[test]
    fn buffered_message_beats_dead_source() {
        // A message deposited before the sender died must still be
        // delivered; only an *empty* channel from a dead sender errors.
        let mb = Mailbox::new();
        mb.push(env(7, 1, b"pre-death"));
        let outcome = mb.recv_match(&from_rank(7), || false, || Some(Rank::new(7)));
        match outcome {
            Outcome::Matched(e) => assert_eq!(&e.payload[..], b"pre-death"),
            other => panic!("unexpected outcome {other:?}"),
        }
        // Nothing buffered any more: now the dead source surfaces.
        let outcome = mb.recv_match(&from_rank(7), || false, || Some(Rank::new(7)));
        assert!(matches!(outcome, Outcome::SourceDead(_)));
    }

    #[test]
    fn push_without_parked_receiver_sends_no_wakeup() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, b"a"));
        mb.push(env(1, 2, b"b"));
        assert_eq!(mb.wakeups(), 0, "no receiver parked: no notifications");
    }

    #[test]
    fn push_of_non_matching_message_does_not_wake_parked_receiver() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let handle =
            std::thread::spawn(move || match mb2.recv_match(&exact(3, 5), || false, || None) {
                Outcome::Matched(e) => e.payload,
                other => panic!("unexpected outcome {other:?}"),
            });
        // Let the receiver park (register its interest), then push traffic
        // the waiter is NOT interested in.
        std::thread::sleep(std::time::Duration::from_millis(20));
        for _ in 0..4 {
            mb.push(env(0, 9, b"noise"));
        }
        assert_eq!(mb.wakeups(), 0, "non-matching pushes must not notify");
        mb.push(env(3, 5, b"signal"));
        assert_eq!(&handle.join().unwrap()[..], b"signal");
        assert_eq!(mb.wakeups(), 1, "exactly the matching push notified");
    }

    #[test]
    fn death_of_unrelated_rank_does_not_wake_specific_waiter() {
        let mb = Mailbox::new();
        // No waiter parked at all: wake_for_death is a no-op.
        mb.wake_for_death(Rank::new(4));
        assert_eq!(mb.wakeups(), 0);
    }

    #[test]
    fn clear_empties() {
        let mb = Mailbox::new();
        mb.push(env(0, 0, b""));
        assert!(!mb.is_empty());
        mb.clear();
        assert!(mb.is_empty());
        assert!(mb.try_recv_match(&any()).is_none());
    }

    #[test]
    fn channel_queues_are_pooled_after_drain() {
        let mb = Mailbox::new();
        for round in 0..3 {
            for tag in 0..8u64 {
                mb.push(env(0, 100 + round * 8 + tag, b"x"));
            }
            for tag in 0..8u64 {
                assert!(mb.try_recv_match(&exact(0, 100 + round * 8 + tag)).is_some());
            }
        }
        assert!(mb.is_empty());
    }
}
