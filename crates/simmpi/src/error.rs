use std::error::Error;
use std::fmt;

use crate::rank::Rank;

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, MpiError>;

/// Errors produced by the message-passing runtime.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MpiError {
    /// The run crossed its abort horizon (fail-stop injection): the rank
    /// observed a virtual time at or past the horizon, or was woken from a
    /// blocking call because another rank aborted.
    Aborted {
        /// The rank that observed the abort.
        rank: Rank,
        /// The rank's virtual time when the abort was observed, seconds.
        at: f64,
    },
    /// This rank reached its own sampled death time (per-rank fail-stop
    /// injection): it must stop executing immediately. Unlike
    /// [`Aborted`](MpiError::Aborted), the death of one rank does **not**
    /// stop its peers — survivors observe it per-operation as
    /// [`DeadPeer`](MpiError::DeadPeer).
    Dead {
        /// The rank that died (world rank).
        rank: Rank,
        /// The sampled death time, virtual seconds.
        at: f64,
    },
    /// A point-to-point operation targeted a peer that has fail-stopped.
    /// Sends observe this when the destination's death time has passed;
    /// receives observe it when the awaited sender died without having sent
    /// a matching message.
    DeadPeer {
        /// The dead peer (world rank).
        peer: Rank,
        /// This rank's virtual time when the death was observed, seconds.
        at: f64,
    },
    /// Every replica of a virtual peer is dead: the replica sphere — and
    /// with it the job — cannot make progress. Raised by interposition
    /// layers that map several physical ranks onto one logical peer.
    SphereDead {
        /// The virtual rank whose sphere died.
        virtual_rank: Rank,
        /// Virtual time when the sphere death was observed, seconds.
        at: f64,
    },
    /// A rank index was outside the communicator.
    InvalidRank {
        /// The offending rank index.
        rank: usize,
        /// Size of the communicator.
        size: usize,
    },
    /// A tag outside the user-allowed range was supplied.
    InvalidTag {
        /// The offending tag value.
        tag: u64,
    },
    /// A payload failed typed decoding (length not a multiple of the item
    /// size, or trailing bytes).
    DecodeError {
        /// What was being decoded.
        what: &'static str,
    },
    /// The application closure of another rank panicked or the runtime
    /// state was poisoned.
    RankPanicked {
        /// The rank whose closure panicked.
        rank: usize,
    },
    /// A collective was invoked with inconsistent arguments across ranks
    /// (e.g. mismatched reduce lengths).
    CollectiveMismatch {
        /// Description of the inconsistency.
        what: &'static str,
    },
    /// An application- or service-level failure surfaced through the
    /// runtime (e.g. a checkpoint service error inside a rank closure).
    App {
        /// Human-readable description.
        what: String,
    },
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::Aborted { rank, at } => {
                write!(f, "run aborted at virtual time {at:.6}s (observed by rank {rank})")
            }
            MpiError::Dead { rank, at } => {
                write!(f, "rank {rank} fail-stopped at virtual time {at:.6}s")
            }
            MpiError::DeadPeer { peer, at } => {
                write!(f, "peer rank {peer} is dead (observed at virtual time {at:.6}s)")
            }
            MpiError::SphereDead { virtual_rank, at } => {
                write!(
                    f,
                    "all replicas of virtual rank {virtual_rank} are dead \
                     (observed at virtual time {at:.6}s)"
                )
            }
            MpiError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            MpiError::InvalidTag { tag } => write!(f, "tag {tag} outside the user tag range"),
            MpiError::DecodeError { what } => write!(f, "failed to decode payload as {what}"),
            MpiError::RankPanicked { rank } => write!(f, "rank {rank} panicked"),
            MpiError::CollectiveMismatch { what } => {
                write!(f, "collective argument mismatch: {what}")
            }
            MpiError::App { what } => write!(f, "application failure: {what}"),
        }
    }
}

impl MpiError {
    /// Whether this error is a planned fail-stop outcome — an injected
    /// death or its downstream observation — rather than a genuine
    /// application or runtime error. Restart-driving layers use this to
    /// separate "the failure we injected" from real bugs.
    pub fn is_fail_stop(&self) -> bool {
        matches!(
            self,
            MpiError::Aborted { .. }
                | MpiError::Dead { .. }
                | MpiError::DeadPeer { .. }
                | MpiError::SphereDead { .. }
        )
    }
}

impl Error for MpiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_fields() {
        let e = MpiError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = MpiError::Aborted { rank: Rank::new(2), at: 1.5 };
        assert!(e.to_string().contains("aborted"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + 'static>() {}
        check::<MpiError>();
    }
}
