use std::error::Error;
use std::fmt;

use crate::rank::Rank;

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, MpiError>;

/// Errors produced by the message-passing runtime.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MpiError {
    /// The run crossed its abort horizon (fail-stop injection): the rank
    /// observed a virtual time at or past the horizon, or was woken from a
    /// blocking call because another rank aborted.
    Aborted {
        /// The rank that observed the abort.
        rank: Rank,
        /// The rank's virtual time when the abort was observed, seconds.
        at: f64,
    },
    /// A rank index was outside the communicator.
    InvalidRank {
        /// The offending rank index.
        rank: usize,
        /// Size of the communicator.
        size: usize,
    },
    /// A tag outside the user-allowed range was supplied.
    InvalidTag {
        /// The offending tag value.
        tag: u64,
    },
    /// A payload failed typed decoding (length not a multiple of the item
    /// size, or trailing bytes).
    DecodeError {
        /// What was being decoded.
        what: &'static str,
    },
    /// The application closure of another rank panicked or the runtime
    /// state was poisoned.
    RankPanicked {
        /// The rank whose closure panicked.
        rank: usize,
    },
    /// A collective was invoked with inconsistent arguments across ranks
    /// (e.g. mismatched reduce lengths).
    CollectiveMismatch {
        /// Description of the inconsistency.
        what: &'static str,
    },
    /// An application- or service-level failure surfaced through the
    /// runtime (e.g. a checkpoint service error inside a rank closure).
    App {
        /// Human-readable description.
        what: String,
    },
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::Aborted { rank, at } => {
                write!(f, "run aborted at virtual time {at:.6}s (observed by rank {rank})")
            }
            MpiError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            MpiError::InvalidTag { tag } => write!(f, "tag {tag} outside the user tag range"),
            MpiError::DecodeError { what } => write!(f, "failed to decode payload as {what}"),
            MpiError::RankPanicked { rank } => write!(f, "rank {rank} panicked"),
            MpiError::CollectiveMismatch { what } => {
                write!(f, "collective argument mismatch: {what}")
            }
            MpiError::App { what } => write!(f, "application failure: {what}"),
        }
    }
}

impl Error for MpiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_fields() {
        let e = MpiError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = MpiError::Aborted { rank: Rank::new(2), at: 1.5 };
        assert!(e.to_string().contains("aborted"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + 'static>() {}
        check::<MpiError>();
    }
}
