//! Concrete communicators: the world communicator [`Comm`] and derived
//! sub-communicators [`SubComm`].

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

use bytes::Bytes;
use redcr_metrics::{CounterKey, HistKey, RankMetrics};
use redcr_prof::RankProf;
use redcr_trace::{EventKind, Recorder};

use crate::communicator::Communicator;
use crate::error::{MpiError, Result};
use crate::mailbox::{MatchSpec, Outcome, PeekInfo};
use crate::message::{Envelope, Status};
use crate::rank::{Rank, RankSelector};
use crate::request::{Request, RequestKind};
use crate::tag::{Namespace, Tag, TagSelector};
use crate::time::VirtualClock;
use crate::world::Shared;

/// Rank-local send totals, merged into the world-shared counters when the
/// rank's last communicator handle drops. The totals are only read after
/// every rank has joined, so batching them here keeps atomic read-modify-
/// write traffic off the per-send hot path.
#[derive(Debug)]
pub(crate) struct SendCounters {
    msgs: Cell<u64>,
    bytes: Cell<u64>,
    shared: Arc<Shared>,
}

impl SendCounters {
    fn new(shared: Arc<Shared>) -> Self {
        SendCounters { msgs: Cell::new(0), bytes: Cell::new(0), shared }
    }

    fn record(&self, bytes: u64) {
        self.msgs.set(self.msgs.get() + 1);
        self.bytes.set(self.bytes.get() + bytes);
    }
}

impl Drop for SendCounters {
    fn drop(&mut self) {
        // SeqCst: the flush happens once per rank at teardown, so the
        // stronger ordering costs nothing on the send hot path and makes
        // the totals well-defined for any reader, not just post-join ones.
        use std::sync::atomic::Ordering::SeqCst;
        self.shared.msgs_sent.fetch_add(self.msgs.get(), SeqCst);
        self.shared.bytes_sent.fetch_add(self.bytes.get(), SeqCst);
    }
}

/// The world communicator of one rank: every rank's closure receives one.
///
/// `Comm` is `Send` (it can be created on the rank's own thread) but not
/// `Sync`: a rank's communicator belongs to that rank's thread alone, like
/// an `MPI_COMM_WORLD` handle.
#[derive(Debug)]
pub struct Comm {
    shared: Arc<Shared>,
    rank: Rank,
    clock: Rc<VirtualClock>,
    coll_seq: Cell<u64>,
    next_comm_id: Rc<Cell<u16>>,
    counters: Rc<SendCounters>,
    recorder: Option<Rc<Recorder>>,
    metrics: Option<Rc<RankMetrics>>,
    prof: Option<Rc<RankProf>>,
}

impl Comm {
    pub(crate) fn new(
        shared: Arc<Shared>,
        rank: u32,
        start_time: f64,
        recorder: Option<Rc<Recorder>>,
        metrics: Option<Rc<RankMetrics>>,
        prof: Option<Rc<RankProf>>,
    ) -> Self {
        let counters = Rc::new(SendCounters::new(Arc::clone(&shared)));
        Comm {
            shared,
            rank: Rank::new(rank),
            clock: Rc::new(VirtualClock::starting_at(start_time)),
            coll_seq: Cell::new(0),
            next_comm_id: Rc::new(Cell::new(1)),
            counters,
            recorder,
            metrics,
            prof,
        }
    }

    pub(crate) fn shared(&self) -> &Shared {
        &self.shared
    }

    pub(crate) fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Splits the world into sub-communicators by `color`; ranks with equal
    /// color form one group, ordered by `(key, world rank)`. Collective over
    /// the world communicator.
    ///
    /// # Errors
    ///
    /// Returns an error if the run aborted.
    pub fn split(&self, color: u64, key: u64) -> Result<SubComm> {
        let my = crate::datatype::encode_u64s(&[color, key, self.rank.as_u32() as u64]);
        let all = self.allgather(Bytes::from(my))?;
        let mut members: Vec<(u64, u32)> = Vec::new();
        for part in &all {
            let vals = crate::datatype::decode_u64s(part)?;
            if vals.len() != 3 {
                return Err(MpiError::CollectiveMismatch { what: "split exchange payload" });
            }
            if vals[0] == color {
                members.push((vals[1], vals[2] as u32));
            }
        }
        members.sort_unstable();
        let world_ranks: Vec<Rank> = members.iter().map(|&(_, r)| Rank::new(r)).collect();
        let comm_id = self.allocate_comm_id();
        SubComm::derive(self, world_ranks, comm_id)
    }

    /// Duplicates the world communicator into an isolated tag space.
    /// Collective over the world communicator.
    ///
    /// # Errors
    ///
    /// Returns an error if the run aborted.
    pub fn dup(&self) -> Result<SubComm> {
        // Synchronize so every rank allocates the same comm id at the same
        // point in its collective sequence.
        self.barrier()?;
        let world_ranks: Vec<Rank> = (0..self.size()).map(|i| Rank::new(i as u32)).collect();
        let comm_id = self.allocate_comm_id();
        SubComm::derive(self, world_ranks, comm_id)
    }

    fn allocate_comm_id(&self) -> u16 {
        let id = self.next_comm_id.get();
        // detlint::allow(R4, reason = "deterministic resource-exhaustion bug (65535 derives), not a runtime race; making every derive fallible for it would poison the whole API for an unreachable case")
        self.next_comm_id.set(id.checked_add(1).expect("communicator id space exhausted"));
        id
    }

    /// Observed communication fraction α of this rank so far.
    pub fn comm_fraction(&self) -> f64 {
        self.clock.comm_fraction()
    }

    /// Charges `seconds` of communication-side overhead to this rank's
    /// clock (used by interposition layers for work they add on the message
    /// path, e.g. redundant-copy comparison).
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::Aborted`] if the clock crosses the abort horizon.
    pub fn charge_comm(&self, seconds: f64) -> Result<()> {
        self.check_abort()?;
        self.clock.advance_comm(seconds);
        self.check_abort()
    }

    fn check_abort(&self) -> Result<()> {
        check_abort(
            &self.shared,
            &self.clock,
            self.rank,
            self.rank,
            self.recorder.as_deref(),
            self.metrics.as_deref(),
        )
    }

    /// Marks the whole job aborted (fail-stop escalation) and wakes every
    /// blocked rank. Used by interposition layers when a failure can no
    /// longer be masked (e.g. the last replica of a sphere died).
    pub fn abort_job(&self) {
        self.shared.trigger_abort();
    }

    /// Whether `peer`'s sampled death time is at or before this rank's
    /// current virtual time — the deterministic "is that rank dead from my
    /// point of view" test used on send paths.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is out of range.
    pub fn peer_dead_by_now(&self, peer: Rank) -> bool {
        self.shared.death_time(peer) <= self.clock.now()
    }
}

fn check_abort(
    shared: &Shared,
    clock: &VirtualClock,
    comm_rank: Rank,
    world_rank: Rank,
    recorder: Option<&Recorder>,
    metrics: Option<&RankMetrics>,
) -> Result<()> {
    let now = clock.now();
    let death = shared.death_time(world_rank);
    if now >= death {
        // This rank's own fail-stop: flag it (waking receivers blocked on
        // it) and stop executing. Deliberately *not* a world abort — peers
        // keep running and observe the death per-operation.
        if shared.mark_dead(world_rank) {
            if let Some(rec) = recorder {
                rec.record(death, EventKind::Death);
            }
            if let Some(m) = metrics {
                m.inc(CounterKey::Deaths, death);
            }
        }
        return Err(MpiError::Dead { rank: world_rank, at: death });
    }
    if now >= shared.abort_horizon {
        shared.trigger_abort();
        return Err(MpiError::Aborted { rank: comm_rank, at: now });
    }
    // Deliberately NOT polled here: the world-abort flag. It is raised at
    // a *physical* instant (whichever rank escalates first), so a running
    // rank observing it would stop after a host-timing-dependent number
    // of operations and make message counts run-to-run noisy. Running
    // ranks stop only through deterministic virtual-time exits — own
    // death, DeadPeer/SphereDead escalation, the horizon — and *parked*
    // ranks return Aborted once the abort is final (no rank can ever
    // push again). See `mailbox::Quiesce`.
    Ok(())
}

/// Shared implementation of the point-to-point primitives, parameterized by
/// the rank translation of the communicator.
struct Endpoint<'a> {
    shared: &'a Shared,
    clock: &'a VirtualClock,
    /// This rank's world rank.
    world_rank: Rank,
    /// This rank's communicator-level rank (for error reporting).
    comm_rank: Rank,
    comm_id: u16,
    counters: &'a SendCounters,
    recorder: Option<&'a Recorder>,
    metrics: Option<&'a RankMetrics>,
    prof: Option<&'a RankProf>,
}

impl Endpoint<'_> {
    fn check_abort(&self) -> Result<()> {
        check_abort(
            self.shared,
            self.clock,
            self.comm_rank,
            self.world_rank,
            self.recorder,
            self.metrics,
        )
    }

    /// Returns the awaited world rank if `src` names a specific sender that
    /// has fail-stopped (receives use this to stop waiting: a dead rank has
    /// already deposited everything it will ever send).
    fn dead_source(&self, src: RankSelector) -> Option<Rank> {
        match src {
            RankSelector::Rank(r) if self.shared.is_dead(r) => Some(r),
            _ => None,
        }
    }

    fn send(&self, world_dest: Rank, tag: Tag, data: Bytes, ns: Namespace) -> Result<()> {
        self.check_abort()?;
        if world_dest.index() >= self.shared.n {
            return Err(MpiError::InvalidRank { rank: world_dest.index(), size: self.shared.n });
        }
        // Deterministic dead-peer detection: the destination is dead from
        // this rank's point of view once its sampled death time is at or
        // before this rank's clock. (Delivery to a peer that dies *later*
        // in virtual time stays valid: the message is either consumed
        // before the peer's death or sits unread in its mailbox.)
        if self.shared.death_time(world_dest) <= self.clock.now() {
            return Err(MpiError::DeadPeer { peer: world_dest, at: self.clock.now() });
        }
        self.clock.advance_comm(self.shared.cost.msg_overhead);
        let bytes = data.len() as u64;
        self.counters.record(bytes);
        self.shared.mailboxes[world_dest.index()].push_prof(
            Envelope {
                src: self.world_rank,
                wire_tag: tag.wire(self.comm_id, ns),
                payload: data,
                send_time: self.clock.now(),
            },
            self.prof,
        );
        if let Some(rec) = self.recorder {
            rec.record(self.clock.now(), EventKind::Send { to: world_dest.as_u32(), bytes });
        }
        if let Some(m) = self.metrics {
            let now = self.clock.now();
            m.inc(CounterKey::Sends, now);
            m.add(CounterKey::BytesSent, bytes, now);
            m.observe(HistKey::PayloadSize, bytes as f64);
        }
        Ok(())
    }

    /// The structural match specification for a receive or probe posted on
    /// this endpoint's communicator.
    fn spec<'a>(
        &self,
        src: RankSelector,
        tag: TagSelector,
        ns: Namespace,
        member_filter: Option<&'a dyn Fn(Rank) -> bool>,
    ) -> MatchSpec<'a> {
        MatchSpec { comm_id: self.comm_id, ns, src, tag, member: member_filter }
    }

    /// Receives with `src` given as a *world-rank* selector plus an optional
    /// membership filter for `ANY_SOURCE` in sub-communicators.
    fn recv(
        &self,
        src: RankSelector,
        tag: TagSelector,
        ns: Namespace,
        member_filter: Option<&dyn Fn(Rank) -> bool>,
    ) -> Result<Envelope> {
        self.check_abort()?;
        let spec = self.spec(src, tag, ns, member_filter);
        let mailbox = &self.shared.mailboxes[self.world_rank.index()];
        match mailbox.recv_match_prof(
            &spec,
            || self.shared.is_aborted(),
            || self.dead_source(src),
            self.prof,
        ) {
            Outcome::Matched(env) => {
                let avail = self.shared.cost.availability(env.send_time, env.len());
                self.clock.sync_to(avail);
                self.clock.advance_comm(self.shared.cost.msg_overhead);
                self.check_abort()?;
                self.record_recv(&env);
                Ok(env)
            }
            Outcome::Aborted => {
                Err(MpiError::Aborted { rank: self.comm_rank, at: self.clock.now() })
            }
            Outcome::SourceDead(peer) => Err(MpiError::DeadPeer { peer, at: self.clock.now() }),
        }
    }

    fn record_recv(&self, env: &Envelope) {
        if let Some(rec) = self.recorder {
            rec.record(
                self.clock.now(),
                EventKind::Recv { from: env.src.as_u32(), bytes: env.payload.len() as u64 },
            );
        }
        if let Some(m) = self.metrics {
            let now = self.clock.now();
            m.inc(CounterKey::Recvs, now);
            m.add(CounterKey::BytesReceived, env.payload.len() as u64, now);
            m.observe(HistKey::MessageLatency, now - env.send_time);
        }
    }

    fn iprobe(
        &self,
        src: RankSelector,
        tag: TagSelector,
        ns: Namespace,
        member_filter: Option<&dyn Fn(Rank) -> bool>,
    ) -> Result<Option<PeekInfo>> {
        self.check_abort()?;
        let spec = self.spec(src, tag, ns, member_filter);
        let mailbox = &self.shared.mailboxes[self.world_rank.index()];
        if let Some(info) = mailbox.try_peek_match(&spec) {
            let avail = self.shared.cost.availability(info.send_time, info.len);
            self.clock.sync_to(avail);
            Ok(Some(info))
        } else {
            Ok(None)
        }
    }

    /// Non-blocking matched receive: consumes and returns the first
    /// matching envelope if one is buffered.
    fn try_recv(
        &self,
        src: RankSelector,
        tag: TagSelector,
        ns: Namespace,
        member_filter: Option<&dyn Fn(Rank) -> bool>,
    ) -> Result<Option<Envelope>> {
        self.check_abort()?;
        let spec = self.spec(src, tag, ns, member_filter);
        let mailbox = &self.shared.mailboxes[self.world_rank.index()];
        match mailbox.try_recv_match(&spec) {
            Some(env) => {
                let avail = self.shared.cost.availability(env.send_time, env.len());
                self.clock.sync_to(avail);
                self.clock.advance_comm(self.shared.cost.msg_overhead);
                self.check_abort()?;
                self.record_recv(&env);
                Ok(Some(env))
            }
            None => Ok(None),
        }
    }

    fn probe(
        &self,
        src: RankSelector,
        tag: TagSelector,
        ns: Namespace,
        member_filter: Option<&dyn Fn(Rank) -> bool>,
    ) -> Result<PeekInfo> {
        self.check_abort()?;
        let spec = self.spec(src, tag, ns, member_filter);
        let mailbox = &self.shared.mailboxes[self.world_rank.index()];
        match mailbox.peek_match_prof(
            &spec,
            || self.shared.is_aborted(),
            || self.dead_source(src),
            self.prof,
        ) {
            Outcome::Matched(info) => {
                let avail = self.shared.cost.availability(info.send_time, info.len);
                self.clock.sync_to(avail);
                self.check_abort()?;
                Ok(info)
            }
            Outcome::Aborted => {
                Err(MpiError::Aborted { rank: self.comm_rank, at: self.clock.now() })
            }
            Outcome::SourceDead(peer) => Err(MpiError::DeadPeer { peer, at: self.clock.now() }),
        }
    }
}

impl Communicator for Comm {
    type Request = Request;

    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.shared.n
    }

    fn now(&self) -> f64 {
        self.clock.now()
    }

    fn compute(&self, seconds: f64) -> Result<()> {
        self.check_abort()?;
        self.clock.advance_compute(seconds);
        self.check_abort()
    }

    fn send_ns(&self, dest: Rank, tag: Tag, data: Bytes, ns: Namespace) -> Result<()> {
        self.endpoint().send(dest, tag, data, ns)
    }

    fn recv_ns(
        &self,
        src: RankSelector,
        tag: TagSelector,
        ns: Namespace,
    ) -> Result<(Bytes, Status)> {
        let env = self.endpoint().recv(src, tag, ns, None)?;
        Ok(self.envelope_to_result(env))
    }

    fn isend(&self, dest: Rank, tag: Tag, data: Bytes) -> Result<Self::Request> {
        self.send_ns(dest, tag, data, Namespace::User)?;
        Ok(Request(RequestKind::Send))
    }

    fn irecv(&self, src: RankSelector, tag: TagSelector) -> Result<Self::Request> {
        self.check_abort()?;
        Ok(Request(RequestKind::Recv { src, tag }))
    }

    fn wait(&self, req: Self::Request) -> Result<Option<(Bytes, Status)>> {
        match req.0 {
            RequestKind::Send => Ok(None),
            RequestKind::Recv { src, tag } => {
                let (bytes, status) = self.recv_ns(src, tag, Namespace::User)?;
                Ok(Some((bytes, status)))
            }
        }
    }

    fn iprobe(&self, src: RankSelector, tag: TagSelector) -> Result<Option<Status>> {
        let info = self.endpoint().iprobe(src, tag, Namespace::User, None)?;
        Ok(info.map(|i| self.peek_to_status(i)))
    }

    fn probe(&self, src: RankSelector, tag: TagSelector) -> Result<Status> {
        let info = self.endpoint().probe(src, tag, Namespace::User, None)?;
        Ok(self.peek_to_status(info))
    }

    fn test(&self, req: Self::Request) -> Result<crate::TestOutcome<Self::Request>> {
        match req.0 {
            RequestKind::Send => Ok(crate::TestOutcome::Completed(None)),
            RequestKind::Recv { src, tag } => {
                match self.endpoint().try_recv(src, tag, Namespace::User, None)? {
                    Some(env) => {
                        Ok(crate::TestOutcome::Completed(Some(self.envelope_to_result(env))))
                    }
                    None => {
                        Ok(crate::TestOutcome::Pending(Request(RequestKind::Recv { src, tag })))
                    }
                }
            }
        }
    }

    fn next_collective_seq(&self) -> u64 {
        let s = self.coll_seq.get();
        self.coll_seq.set(s + 1);
        s
    }

    fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_deref()
    }

    fn metrics(&self) -> Option<&RankMetrics> {
        self.metrics.as_deref()
    }

    fn prof(&self) -> Option<&RankProf> {
        self.prof.as_deref()
    }
}

impl Comm {
    fn endpoint(&self) -> Endpoint<'_> {
        Endpoint {
            shared: &self.shared,
            clock: &self.clock,
            world_rank: self.rank,
            comm_rank: self.rank,
            comm_id: 0,
            counters: &self.counters,
            recorder: self.recorder.as_deref(),
            metrics: self.metrics.as_deref(),
            prof: self.prof.as_deref(),
        }
    }

    fn envelope_to_result(&self, env: Envelope) -> (Bytes, Status) {
        let status = Status {
            source: env.src,
            tag: env.wire_tag.user_tag(),
            len: env.payload.len(),
            completed_at: self.clock.now(),
        };
        (env.payload, status)
    }

    fn peek_to_status(&self, info: PeekInfo) -> Status {
        Status {
            source: info.src,
            tag: info.wire_tag.user_tag(),
            len: info.len,
            completed_at: self.clock.now(),
        }
    }
}

/// A communicator derived from the world by [`Comm::split`] or
/// [`Comm::dup`]: a subset of world ranks with renumbered ranks and an
/// isolated tag space.
#[derive(Debug)]
pub struct SubComm {
    shared: Arc<Shared>,
    clock: Rc<VirtualClock>,
    coll_seq: Cell<u64>,
    comm_id: u16,
    /// Members in sub-rank order (world ranks).
    members: Vec<Rank>,
    /// Reverse map: world rank index → sub rank.
    reverse: Vec<Option<u32>>,
    my_sub_rank: Rank,
    my_world_rank: Rank,
    counters: Rc<SendCounters>,
    recorder: Option<Rc<Recorder>>,
    metrics: Option<Rc<RankMetrics>>,
    prof: Option<Rc<RankProf>>,
}

impl SubComm {
    fn derive(parent: &Comm, members: Vec<Rank>, comm_id: u16) -> Result<Self> {
        let mut reverse = vec![None; parent.shared.n];
        for (i, wr) in members.iter().enumerate() {
            reverse[wr.index()] = Some(i as u32);
        }
        let my_sub_rank = reverse[parent.rank.index()]
            .map(Rank::new)
            .ok_or(MpiError::InvalidRank { rank: parent.rank.index(), size: members.len() })?;
        Ok(SubComm {
            shared: Arc::clone(&parent.shared),
            clock: Rc::clone(&parent.clock),
            coll_seq: Cell::new(0),
            comm_id,
            members,
            reverse,
            my_sub_rank,
            my_world_rank: parent.rank,
            counters: Rc::clone(&parent.counters),
            recorder: parent.recorder.clone(),
            metrics: parent.metrics.clone(),
            prof: parent.prof.clone(),
        })
    }

    /// The world ranks of the members, in sub-rank order.
    pub fn members(&self) -> &[Rank] {
        &self.members
    }

    fn endpoint(&self) -> Endpoint<'_> {
        Endpoint {
            shared: &self.shared,
            clock: &self.clock,
            world_rank: self.my_world_rank,
            comm_rank: self.my_sub_rank,
            comm_id: self.comm_id,
            counters: &self.counters,
            recorder: self.recorder.as_deref(),
            metrics: self.metrics.as_deref(),
            prof: self.prof.as_deref(),
        }
    }

    fn to_world(&self, sub: Rank) -> Result<Rank> {
        self.members
            .get(sub.index())
            .copied()
            .ok_or(MpiError::InvalidRank { rank: sub.index(), size: self.members.len() })
    }

    fn to_sub(&self, world: Rank) -> Rank {
        // detlint::allow(R4, reason = "invariant: callers only translate ranks already validated against the sub-communicator membership")
        Rank::new(self.reverse[world.index()].expect("sender is a member"))
    }

    fn translate_selector(&self, src: RankSelector) -> Result<RankSelector> {
        Ok(match src {
            RankSelector::Rank(r) => RankSelector::Rank(self.to_world(r)?),
            RankSelector::Any => RankSelector::Any,
        })
    }

    fn envelope_to_result(&self, env: Envelope) -> (Bytes, Status) {
        let status = Status {
            source: self.to_sub(env.src),
            tag: env.wire_tag.user_tag(),
            len: env.payload.len(),
            completed_at: self.clock.now(),
        };
        (env.payload, status)
    }

    fn peek_to_status(&self, info: PeekInfo) -> Status {
        Status {
            source: self.to_sub(info.src),
            tag: info.wire_tag.user_tag(),
            len: info.len,
            completed_at: self.clock.now(),
        }
    }

    fn member_filter(&self) -> impl Fn(Rank) -> bool + '_ {
        move |world: Rank| self.reverse[world.index()].is_some()
    }

    fn check_abort(&self) -> Result<()> {
        check_abort(
            &self.shared,
            &self.clock,
            self.my_sub_rank,
            self.my_world_rank,
            self.recorder.as_deref(),
            self.metrics.as_deref(),
        )
    }
}

impl Communicator for SubComm {
    type Request = Request;

    fn rank(&self) -> Rank {
        self.my_sub_rank
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn now(&self) -> f64 {
        self.clock.now()
    }

    fn compute(&self, seconds: f64) -> Result<()> {
        self.check_abort()?;
        self.clock.advance_compute(seconds);
        self.check_abort()
    }

    fn send_ns(&self, dest: Rank, tag: Tag, data: Bytes, ns: Namespace) -> Result<()> {
        let world_dest = self.to_world(dest)?;
        self.endpoint().send(world_dest, tag, data, ns)
    }

    fn recv_ns(
        &self,
        src: RankSelector,
        tag: TagSelector,
        ns: Namespace,
    ) -> Result<(Bytes, Status)> {
        let world_src = self.translate_selector(src)?;
        let filter = self.member_filter();
        let env = self.endpoint().recv(world_src, tag, ns, Some(&filter))?;
        Ok(self.envelope_to_result(env))
    }

    fn isend(&self, dest: Rank, tag: Tag, data: Bytes) -> Result<Self::Request> {
        self.send_ns(dest, tag, data, Namespace::User)?;
        Ok(Request(RequestKind::Send))
    }

    fn irecv(&self, src: RankSelector, tag: TagSelector) -> Result<Self::Request> {
        self.check_abort()?;
        Ok(Request(RequestKind::Recv { src, tag }))
    }

    fn wait(&self, req: Self::Request) -> Result<Option<(Bytes, Status)>> {
        match req.0 {
            RequestKind::Send => Ok(None),
            RequestKind::Recv { src, tag } => {
                let (bytes, status) = self.recv_ns(src, tag, Namespace::User)?;
                Ok(Some((bytes, status)))
            }
        }
    }

    fn iprobe(&self, src: RankSelector, tag: TagSelector) -> Result<Option<Status>> {
        let world_src = self.translate_selector(src)?;
        let filter = self.member_filter();
        let info = self.endpoint().iprobe(world_src, tag, Namespace::User, Some(&filter))?;
        Ok(info.map(|i| self.peek_to_status(i)))
    }

    fn probe(&self, src: RankSelector, tag: TagSelector) -> Result<Status> {
        let world_src = self.translate_selector(src)?;
        let filter = self.member_filter();
        let info = self.endpoint().probe(world_src, tag, Namespace::User, Some(&filter))?;
        Ok(self.peek_to_status(info))
    }

    fn test(&self, req: Self::Request) -> Result<crate::TestOutcome<Self::Request>> {
        match req.0 {
            RequestKind::Send => Ok(crate::TestOutcome::Completed(None)),
            RequestKind::Recv { src, tag } => {
                let world_src = self.translate_selector(src)?;
                let filter = self.member_filter();
                match self.endpoint().try_recv(world_src, tag, Namespace::User, Some(&filter))? {
                    Some(env) => {
                        Ok(crate::TestOutcome::Completed(Some(self.envelope_to_result(env))))
                    }
                    None => {
                        Ok(crate::TestOutcome::Pending(Request(RequestKind::Recv { src, tag })))
                    }
                }
            }
        }
    }

    fn next_collective_seq(&self) -> u64 {
        let s = self.coll_seq.get();
        self.coll_seq.set(s + 1);
        s
    }

    fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_deref()
    }

    fn metrics(&self) -> Option<&RankMetrics> {
        self.metrics.as_deref()
    }

    fn prof(&self) -> Option<&RankProf> {
        self.prof.as_deref()
    }
}
