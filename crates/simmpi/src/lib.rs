//! # redcr-mpi — a deterministic in-process message-passing runtime
//!
//! This crate is the MPI substrate of the `redcr` reproduction of *Combining
//! Partial Redundancy and Checkpointing for HPC* (ICDCS 2012). It provides
//! the call surface the paper's RedMPI layer interposes on — blocking and
//! non-blocking point-to-point messaging, wildcard receives
//! (`MPI_ANY_SOURCE`), and collectives built *over* point-to-point messages
//! (matching the paper's assumption that "all collective communication in
//! MPI is based on point-to-point MPI messages") — but runs every rank as an
//! OS thread inside one process and accounts time on a **virtual clock**
//! instead of wallclock.
//!
//! ## Virtual time
//!
//! Each rank carries its own clock ([`time::VirtualClock`]). Computation
//! advances it explicitly via [`Communicator::compute`]; message delivery
//! advances the receiver to
//! `max(local, send_time + latency + len·byte_time) + msg_overhead`
//! (a LogP-style model, [`time::CostModel`]). The simulated wallclock of a
//! run is the maximum clock over all ranks at finalize. This is what lets a
//! "46-minute" NPB-CG execution finish in milliseconds while preserving the
//! communication/computation ratio `α` that drives the paper's model.
//!
//! ## Determinism
//!
//! Sends are eager and buffered (they never block), receives match
//! per-(source, tag) in FIFO order, and collectives use fixed deterministic
//! trees — so a deterministic application produces bitwise-identical results
//! and virtual times on every run. Wildcard receives match in arrival order,
//! which is scheduler-dependent, exactly as in real MPI.
//!
//! ## Aborts
//!
//! A run can be given an **abort horizon** (virtual time at which the job is
//! considered killed by the failure injector). Every runtime call checks the
//! local clock against the horizon and returns [`MpiError::Aborted`] once
//! crossed; ranks blocked in receives are woken and aborted too. The
//! resilient executor in `redcr-core` uses this to emulate fail-stop
//! whole-job failure followed by restart from the last checkpoint, the same
//! procedure as the paper's fault injector.
//!
//! # Example
//!
//! ```
//! use redcr_mpi::{World, Communicator, RankSelector, TagSelector};
//!
//! let report = World::builder(2)
//!     .run(|comm| {
//!         if comm.rank().index() == 0 {
//!             comm.send(1u32.into(), 7u64.into(), b"ping")?;
//!         } else {
//!             let (msg, status) = comm.recv(RankSelector::Any, TagSelector::Tag(7u64.into()))?;
//!             assert_eq!(&msg[..], b"ping");
//!             assert_eq!(status.source.index(), 0);
//!         }
//!         Ok(())
//!     })
//!     .expect("run failed");
//! assert!(report.max_virtual_time > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collectives;
pub mod datatype;
pub mod mailbox;
pub mod message;
pub mod rank;
pub mod request;
pub mod tag;
pub mod time;
pub mod world;

mod comm;
mod communicator;
mod error;

/// The flight-recorder layer (re-exported from `redcr-trace`): enable it
/// with [`WorldBuilder::trace`], pull events out of the
/// [`trace::Collector`] afterwards.
pub use redcr_trace as trace;

/// The metrics layer (re-exported from `redcr-metrics`): enable it with
/// [`WorldBuilder::metrics`], pull totals and the virtual-time series out of
/// the [`metrics::MetricsRegistry`] afterwards.
pub use redcr_metrics as metrics;

/// The wall-clock self-profiling layer (re-exported from `redcr-prof`):
/// enable it with [`WorldBuilder::profiler`], pull the span/counter report
/// out of the [`prof::Profiler`] afterwards. Profiling watches the
/// *simulator* (host clock), never the simulated machine, and a run with
/// it off is bit-identical to one without it compiled in at all.
pub use redcr_prof as prof;

pub use comm::{Comm, SubComm};
pub use communicator::Communicator;
pub use error::{MpiError, Result};
pub use message::Status;
pub use rank::{Rank, RankSelector};
pub use request::{Request, TestOutcome};
pub use tag::{Tag, TagSelector};
pub use time::CostModel;
pub use world::{RunReport, World, WorldBuilder};

/// Cooperative yield for rank code that busy-polls (e.g. a `test` loop on
/// a nonblocking request). Inside a scheduler task this parks the current
/// coroutine at the back of its run queue so other ranks can run; on a
/// plain OS thread it degrades to [`std::thread::yield_now`]. Rank
/// closures must call this — not `std::thread::yield_now` — in any spin
/// loop: under the M:N executor a raw thread yield never releases the
/// worker, which livelocks a single-worker pool.
pub use redcr_sched::yield_now;
