//! Typed payload encoding.
//!
//! Messages travel as raw bytes; this module provides the little-endian
//! encode/decode helpers used by the typed convenience methods on
//! [`Communicator`](crate::Communicator) and by the reduction collectives.
//! Encoding is fixed little-endian so that replicated processes produce
//! bitwise-identical messages regardless of host (a prerequisite for the
//! replication layer's message voting).

use bytes::Bytes;

use crate::error::{MpiError, Result};

/// Slices of up to this many 8-byte words encode through a stack buffer
/// straight into an inline [`Bytes`] — no heap allocation. Matches
/// [`bytes::INLINE_CAP`]; the scalar payloads of reduction collectives
/// (dot products, norms, counters) all fit.
const INLINE_WORDS: usize = bytes::INLINE_CAP / 8;

/// Encodes a slice of `f64` directly as a message payload. Small slices
/// (≤ `INLINE_WORDS`) take an allocation-free inline path.
pub fn f64s_to_bytes(values: &[f64]) -> Bytes {
    if values.len() <= INLINE_WORDS {
        let mut buf = [0u8; INLINE_WORDS * 8];
        for (chunk, v) in buf.chunks_exact_mut(8).zip(values) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        Bytes::copy_from_slice(&buf[..values.len() * 8])
    } else {
        Bytes::from(encode_f64s(values))
    }
}

/// Encodes a slice of `u64` directly as a message payload. Small slices
/// (≤ `INLINE_WORDS`) take an allocation-free inline path.
pub fn u64s_to_bytes(values: &[u64]) -> Bytes {
    if values.len() <= INLINE_WORDS {
        let mut buf = [0u8; INLINE_WORDS * 8];
        for (chunk, v) in buf.chunks_exact_mut(8).zip(values) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        Bytes::copy_from_slice(&buf[..values.len() * 8])
    } else {
        Bytes::from(encode_u64s(values))
    }
}

/// Encodes a slice of `f64` as little-endian bytes.
pub fn encode_f64s(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes little-endian bytes as `f64` values.
///
/// # Errors
///
/// Returns [`MpiError::DecodeError`] if the length is not a multiple of 8.
pub fn decode_f64s(bytes: &[u8]) -> Result<Vec<f64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(MpiError::DecodeError { what: "f64 slice" });
    }
    Ok(bytes
        .chunks_exact(8)
        // detlint::allow(R4, reason = "infallible: chunks_exact(8) yields exactly 8-byte slices")
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

/// Encodes a slice of `u64` as little-endian bytes.
pub fn encode_u64s(values: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes little-endian bytes as `u64` values.
///
/// # Errors
///
/// Returns [`MpiError::DecodeError`] if the length is not a multiple of 8.
pub fn decode_u64s(bytes: &[u8]) -> Result<Vec<u64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(MpiError::DecodeError { what: "u64 slice" });
    }
    Ok(bytes
        .chunks_exact(8)
        // detlint::allow(R4, reason = "infallible: chunks_exact(8) yields exactly 8-byte slices")
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

/// Encodes a slice of `i64` as little-endian bytes.
pub fn encode_i64s(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes little-endian bytes as `i64` values.
///
/// # Errors
///
/// Returns [`MpiError::DecodeError`] if the length is not a multiple of 8.
pub fn decode_i64s(bytes: &[u8]) -> Result<Vec<i64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(MpiError::DecodeError { what: "i64 slice" });
    }
    Ok(bytes
        .chunks_exact(8)
        // detlint::allow(R4, reason = "infallible: chunks_exact(8) yields exactly 8-byte slices")
        .map(|c| i64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

/// Encodes a single `f64`.
pub fn encode_f64(value: f64) -> Vec<u8> {
    value.to_le_bytes().to_vec()
}

/// Decodes a single `f64`.
///
/// # Errors
///
/// Returns [`MpiError::DecodeError`] unless the payload is exactly 8 bytes.
pub fn decode_f64(bytes: &[u8]) -> Result<f64> {
    let arr: [u8; 8] =
        bytes.try_into().map_err(|_| MpiError::DecodeError { what: "f64 scalar" })?;
    Ok(f64::from_le_bytes(arr))
}

/// Encodes a single `u64`.
pub fn encode_u64(value: u64) -> Vec<u8> {
    value.to_le_bytes().to_vec()
}

/// Decodes a single `u64`.
///
/// # Errors
///
/// Returns [`MpiError::DecodeError`] unless the payload is exactly 8 bytes.
pub fn decode_u64(bytes: &[u8]) -> Result<u64> {
    let arr: [u8; 8] =
        bytes.try_into().map_err(|_| MpiError::DecodeError { what: "u64 scalar" })?;
    Ok(u64::from_le_bytes(arr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trip() {
        let xs = vec![0.0, -1.5, f64::MAX, f64::MIN_POSITIVE, std::f64::consts::PI];
        assert_eq!(decode_f64s(&encode_f64s(&xs)).unwrap(), xs);
    }

    #[test]
    fn u64_round_trip() {
        let xs = vec![0, 1, u64::MAX, 42];
        assert_eq!(decode_u64s(&encode_u64s(&xs)).unwrap(), xs);
    }

    #[test]
    fn i64_round_trip() {
        let xs = vec![0, -1, i64::MIN, i64::MAX];
        assert_eq!(decode_i64s(&encode_i64s(&xs)).unwrap(), xs);
    }

    #[test]
    fn scalar_round_trip() {
        assert_eq!(decode_f64(&encode_f64(2.5)).unwrap(), 2.5);
        assert_eq!(decode_u64(&encode_u64(99)).unwrap(), 99);
    }

    #[test]
    fn misaligned_length_rejected() {
        assert!(decode_f64s(&[0u8; 7]).is_err());
        assert!(decode_u64s(&[0u8; 9]).is_err());
        assert!(decode_f64(&[0u8; 4]).is_err());
        assert!(decode_u64(&[0u8; 16]).is_err());
    }

    #[test]
    fn empty_slices_ok() {
        assert!(decode_f64s(&[]).unwrap().is_empty());
        assert!(encode_f64s(&[]).is_empty());
    }

    #[test]
    fn to_bytes_matches_encode() {
        // Inline-path (small) and heap-path (large) payloads must be
        // byte-identical to the Vec encoders: voting compares raw bytes.
        let small = [1.5f64, -2.25, 3.0];
        assert_eq!(&f64s_to_bytes(&small)[..], encode_f64s(&small).as_slice());
        let large: Vec<f64> = (0..64).map(f64::from).collect();
        assert_eq!(&f64s_to_bytes(&large)[..], encode_f64s(&large).as_slice());
        let us = [7u64, u64::MAX];
        assert_eq!(&u64s_to_bytes(&us)[..], encode_u64s(&us).as_slice());
        let ul: Vec<u64> = (0..64).collect();
        assert_eq!(&u64s_to_bytes(&ul)[..], encode_u64s(&ul).as_slice());
    }

    #[test]
    fn nan_payloads_preserve_bits() {
        // Voting compares raw bytes; NaN payloads must round-trip bitwise.
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let enc = encode_f64s(&[nan]);
        let dec = decode_f64s(&enc).unwrap();
        assert_eq!(dec[0].to_bits(), nan.to_bits());
    }
}
