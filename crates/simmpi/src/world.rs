//! The world: shared runtime state, the rank-task runner, and run reports.
//!
//! Rank bodies execute as lightweight tasks on the `redcr-sched` M:N
//! work-stealing pool (stackful coroutines multiplexed onto a few worker
//! threads), not as one OS thread per rank. A rank that blocks in a
//! mailbox receive parks its *coroutine*; the matching send requeues it.
//! Worker count comes from [`WorldBuilder::workers`], the `REDCR_WORKERS`
//! environment variable, or `available_parallelism()`, in that order, and
//! never affects simulation results — the workspace determinism gates
//! prove bit-identical reports at 1, 2, and 8 workers.

use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use redcr_metrics::{GaugeKey, MetricsRegistry, RankMetrics};
use redcr_prof::{ProfScope, Profiler, RankProf};
use redcr_trace::{Collector, EventKind, Recorder};

use crate::comm::Comm;
use crate::error::Result;
use crate::mailbox::{Mailbox, Quiesce};
use crate::time::CostModel;

/// Entry point for configuring and running a simulated MPI world.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct World;

impl World {
    /// Starts building a world with `n` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn builder(n: usize) -> WorldBuilder {
        assert!(n > 0, "a world needs at least one rank");
        WorldBuilder {
            n,
            cost: CostModel::default(),
            abort_horizon: f64::INFINITY,
            start_time: 0.0,
            death_times: None,
            trace: None,
            metrics: None,
            profiler: None,
            workers: None,
        }
    }
}

/// Builder for a simulated world.
#[derive(Debug, Clone)]
pub struct WorldBuilder {
    n: usize,
    cost: CostModel,
    abort_horizon: f64,
    start_time: f64,
    death_times: Option<Vec<f64>>,
    trace: Option<Arc<Collector>>,
    metrics: Option<Arc<MetricsRegistry>>,
    profiler: Option<Arc<Profiler>>,
    workers: Option<usize>,
}

impl WorldBuilder {
    /// Sets the communication cost model (default:
    /// [`CostModel::infiniband_qdr`]).
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the abort horizon: once any rank's virtual clock reaches this
    /// time (seconds), the whole run aborts with
    /// [`MpiError::Aborted`](crate::MpiError::Aborted). Used by the failure
    /// injector to emulate whole-job fail-stop.
    pub fn abort_horizon(mut self, t: f64) -> Self {
        self.abort_horizon = t;
        self
    }

    /// Starts every rank's virtual clock at `t` seconds instead of zero
    /// (used when resuming a job from a checkpoint taken at virtual time
    /// `t`).
    pub fn start_time(mut self, t: f64) -> Self {
        self.start_time = t;
        self
    }

    /// Sets **per-rank fail-stop times** (absolute virtual seconds,
    /// `f64::INFINITY` = never dies). Unlike
    /// [`abort_horizon`](Self::abort_horizon), a rank's death does not stop
    /// the world: the dying rank's closure returns
    /// [`MpiError::Dead`](crate::MpiError::Dead) the first time its clock
    /// reaches its death time, while the remaining ranks keep running.
    /// Survivors observe the death per-operation: sends to a dead peer and
    /// receives whose (specific) sender died without a matching buffered
    /// message return [`MpiError::DeadPeer`](crate::MpiError::DeadPeer)
    /// instead of blocking or silently succeeding.
    ///
    /// # Panics
    ///
    /// Panics (in [`run`](Self::run)) if the vector length differs from the
    /// world size.
    pub fn death_times(mut self, times: Vec<f64>) -> Self {
        self.death_times = Some(times);
        self
    }

    /// Enables flight recording into `collector`: every rank gets a
    /// thread-local [`Recorder`] whose events (sends, receives, deaths,
    /// plus whatever interposition layers emit through
    /// [`Communicator::recorder`](crate::Communicator::recorder)) are
    /// merged into the collector at rank teardown, closed by one
    /// [`EventKind::RankFinish`] carrying the rank's busy/comm split.
    pub fn trace(mut self, collector: Arc<Collector>) -> Self {
        self.trace = Some(collector);
        self
    }

    /// Enables metrics collection into `registry`: every rank gets a
    /// thread-local [`RankMetrics`] shard (reachable through
    /// [`Communicator::metrics`](crate::Communicator::metrics)) whose
    /// counters, histograms and timestamped increments are absorbed into
    /// the registry at rank teardown, after stamping the rank's final
    /// virtual time into the [`GaugeKey::VirtualTime`] gauge. Metrics never
    /// advance a virtual clock, so enabling them does not change what the
    /// run computes.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Enables wall-clock self-profiling into `profiler`: every rank gets
    /// a thread-local [`RankProf`] shard (reachable through
    /// [`Communicator::prof`](crate::Communicator::prof)) timing the
    /// mailbox hot path — recv waits, condvar parks, pushes — absorbed
    /// into the profiler at rank teardown. The profiler reads the *host*
    /// clock only; it never advances a virtual clock, so profiled runs
    /// stay bit-identical to unprofiled ones.
    pub fn profiler(mut self, profiler: Arc<Profiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Sets the number of scheduler worker threads driving the rank
    /// tasks. Unset, `REDCR_WORKERS` and then `available_parallelism()`
    /// decide. Worker count never changes simulation results, only how
    /// the tasks are multiplexed onto the host.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Runs `f` once per rank as tasks on the M:N scheduler pool and
    /// collects every rank's outcome.
    ///
    /// `f` receives the rank's [`Comm`] handle. The returned report contains
    /// each rank's result and timing plus world-wide statistics.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any rank closure (the lowest-ranked one if
    /// several panicked).
    pub fn run<T, F>(self, f: F) -> Result<RunReport<T>>
    where
        T: Send,
        F: Fn(&Comm) -> Result<T> + Send + Sync,
    {
        let death_times = match self.death_times {
            Some(times) => {
                assert_eq!(times.len(), self.n, "death_times must list one time per rank");
                times
            }
            None => vec![f64::INFINITY; self.n],
        };
        let shared = Arc::new(Shared::new(self.n, self.cost, self.abort_horizon, death_times));
        let start_time = self.start_time;
        let trace = self.trace;
        let trace = trace.as_ref();
        let metrics = self.metrics;
        let metrics = metrics.as_ref();
        let profiler = self.profiler;
        let profiler = profiler.as_ref();
        let f = &f;
        type Slot<T> = (Result<T>, RankTiming, Option<Vec<redcr_trace::Event>>);

        let pool = redcr_sched::PoolConfig::resolve(self.workers, self.n);
        let shared_for_tasks = &shared;
        let batch = redcr_sched::run_batch(&pool, self.n, profiler.map(|p| p.as_ref()), {
            move |rank| -> Slot<T> {
                let shared = Arc::clone(shared_for_tasks);
                let recorder = trace.map(|_| Rc::new(Recorder::new(rank as u32)));
                let shard = metrics.map(|_| Rc::new(RankMetrics::new(rank as u32)));
                let prof: Option<Rc<RankProf>> = profiler.map(|p| Rc::new(p.shard()));
                let comm = Comm::new(
                    shared,
                    rank as u32,
                    start_time,
                    recorder.clone(),
                    shard.clone(),
                    prof.clone(),
                );
                let result =
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&comm))) {
                        Ok(r) => r,
                        Err(payload) => {
                            // A panicking rank must not leave peers parked
                            // forever: under the M:N pool there is no join
                            // loop to bail out of — the batch only ends when
                            // every task completes, so unblock them first,
                            // then let the pool capture the payload.
                            comm.shared().trigger_abort();
                            comm.shared().rank_finished();
                            std::panic::resume_unwind(payload);
                        }
                    };
                match &result {
                    // An injected per-rank death is survivable by
                    // design: peers detect it through the dead flag
                    // (set when the rank crossed its death time), so
                    // the world keeps running.
                    Err(crate::MpiError::Dead { .. }) => {}
                    // Any other failing rank (abort or app error) must
                    // not leave peers blocked in receives forever.
                    Err(_) => comm.shared().trigger_abort(),
                    Ok(_) => {}
                }
                // The closure is done: this rank can never push again.
                // Retire its live token (after the trigger above, so an
                // abort in flight is visible to the finality check).
                comm.shared().rank_finished();
                let timing = RankTiming {
                    finish: comm.clock().now(),
                    busy: comm.clock().busy_time(),
                    comm: comm.clock().comm_time(),
                };
                // Drain this rank's events but do NOT absorb them here:
                // task teardown order is scheduling dependent, so
                // absorbing after the batch (below, in rank order) is what
                // keeps the collected trace deterministic run-to-run.
                let events = if let Some(rec) = recorder.filter(|_| trace.is_some()) {
                    rec.record(
                        timing.finish,
                        EventKind::RankFinish { busy: timing.busy, comm: timing.comm },
                    );
                    Some(rec.drain())
                } else {
                    None
                };
                if let (Some(registry), Some(shard)) = (metrics, shard) {
                    shard.set_gauge(GaugeKey::VirtualTime, timing.finish, timing.finish);
                    registry.absorb(shard.drain());
                }
                if let (Some(p), Some(shard)) = (profiler, prof) {
                    p.absorb(ProfScope::Rank(rank as u32), shard.drain());
                }
                (result, timing, events)
            }
        });

        let mut results = Vec::with_capacity(self.n);
        let mut timings = Vec::with_capacity(self.n);
        for outcome in batch.results {
            match outcome {
                Ok((r, t, events)) => {
                    if let (Some(collector), Some(events)) = (trace, events) {
                        collector.absorb(events);
                    }
                    results.push(r);
                    timings.push(t);
                }
                // Propagate the lowest-ranked panic, after absorbing the
                // events of every earlier rank (mirrors the old join-order
                // semantics).
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        let max_virtual_time = timings.iter().map(|t| t.finish).fold(f64::NEG_INFINITY, f64::max);
        let dead_ranks =
            (0..self.n).filter(|&r| shared.is_dead(crate::Rank::new(r as u32))).collect();
        Ok(RunReport {
            results,
            timings,
            max_virtual_time,
            aborted: shared.is_aborted(),
            dead_ranks,
            // SeqCst to pair with the SeqCst teardown flush in
            // `SendCounters::drop`; this runs once per world run, after
            // every rank thread joined, so strength is free here.
            messages_sent: shared.msgs_sent.load(Ordering::SeqCst),
            bytes_sent: shared.bytes_sent.load(Ordering::SeqCst),
        })
    }
}

/// Per-rank timing extracted at finalize.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankTiming {
    /// The rank's virtual clock when its closure returned, seconds.
    pub finish: f64,
    /// Time attributed to computation, seconds.
    pub busy: f64,
    /// Time attributed to communication, seconds.
    pub comm: f64,
}

impl RankTiming {
    /// Observed communication fraction `α` for this rank.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.busy + self.comm;
        if total == 0.0 {
            0.0
        } else {
            self.comm / total
        }
    }
}

/// The outcome of a world run.
#[derive(Debug)]
pub struct RunReport<T> {
    /// Per-rank closure results, indexed by rank.
    pub results: Vec<Result<T>>,
    /// Per-rank timings, indexed by rank.
    pub timings: Vec<RankTiming>,
    /// Simulated wallclock: the maximum finish time over all ranks, seconds.
    pub max_virtual_time: f64,
    /// Whether the run crossed the abort horizon (or a rank failed).
    pub aborted: bool,
    /// Ranks that fail-stopped at their sampled death time during the run
    /// (ascending rank order). Empty unless
    /// [`WorldBuilder::death_times`] was used.
    pub dead_ranks: Vec<usize>,
    /// Total number of point-to-point messages injected.
    pub messages_sent: u64,
    /// Total payload bytes injected.
    pub bytes_sent: u64,
}

impl<T> RunReport<T> {
    /// Returns all rank results, or the first error encountered.
    ///
    /// # Errors
    ///
    /// Returns the lowest-ranked error if any rank failed.
    pub fn into_results(self) -> Result<Vec<T>> {
        self.results.into_iter().collect()
    }

    /// The mean observed communication fraction `α` across ranks.
    pub fn mean_comm_fraction(&self) -> f64 {
        if self.timings.is_empty() {
            return 0.0;
        }
        self.timings.iter().map(RankTiming::comm_fraction).sum::<f64>() / self.timings.len() as f64
    }
}

/// World state shared by all rank threads.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) n: usize,
    pub(crate) cost: CostModel,
    pub(crate) mailboxes: Arc<Vec<Mailbox>>,
    pub(crate) abort_horizon: f64,
    /// `death_times[r]`: absolute virtual time at which rank `r`
    /// fail-stops (INFINITY = never).
    pub(crate) death_times: Vec<f64>,
    /// `dead[r]` is set (by rank `r`'s own thread) once `r` observed its
    /// own death, i.e. all messages `r` will ever send are already in
    /// mailboxes. Receivers use this flag to stop waiting on `r`.
    dead: Vec<AtomicBool>,
    aborted: AtomicBool,
    /// Live-rank accounting: parked receivers observe an abort only once
    /// it is *final* (no rank can ever push again), so the abort edge
    /// never cuts a run at a physically-timed point. See
    /// [`Quiesce`](crate::mailbox::Quiesce).
    quiesce: Arc<Quiesce>,
    pub(crate) msgs_sent: AtomicU64,
    pub(crate) bytes_sent: AtomicU64,
}

impl Shared {
    fn new(n: usize, cost: CostModel, abort_horizon: f64, death_times: Vec<f64>) -> Self {
        let quiesce = Arc::new(Quiesce::new(n));
        let mailboxes =
            Arc::new((0..n).map(|_| Mailbox::with_quiesce(Arc::clone(&quiesce))).collect::<Vec<_>>());
        quiesce.attach(&mailboxes);
        Shared {
            n,
            cost,
            mailboxes,
            abort_horizon,
            death_times,
            dead: (0..n).map(|_| AtomicBool::new(false)).collect(),
            aborted: AtomicBool::new(false),
            quiesce,
            msgs_sent: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
        }
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// Gives up a finished rank's live token — called exactly once per
    /// rank task, after its closure can no longer deposit envelopes
    /// (panics included). The last retirement under a raised abort flag
    /// finalizes the abort and releases every parked receiver.
    pub(crate) fn rank_finished(&self) {
        self.quiesce.retire(self.is_aborted());
    }

    /// Marks the world aborted and wakes every blocked receiver.
    pub(crate) fn trigger_abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        for mb in self.mailboxes.iter() {
            mb.wake_all();
        }
    }

    /// The sampled death time of `rank`.
    pub(crate) fn death_time(&self, rank: crate::Rank) -> f64 {
        self.death_times[rank.index()]
    }

    /// Whether `rank` has observed its own death (its thread crossed its
    /// death time in program order).
    pub(crate) fn is_dead(&self, rank: crate::Rank) -> bool {
        self.dead[rank.index()].load(Ordering::SeqCst)
    }

    /// Marks `rank` dead (called by `rank`'s own thread) and wakes only
    /// the receivers parked on that specific source, so their waits
    /// re-evaluate to `SourceDead`. Receivers parked on other sources or
    /// on wildcards are left alone — a death can never unblock them.
    /// Returns `true` the first time the rank is marked (so the caller can
    /// record the death exactly once).
    pub(crate) fn mark_dead(&self, rank: crate::Rank) -> bool {
        if !self.dead[rank.index()].swap(true, Ordering::SeqCst) {
            for mb in self.mailboxes.iter() {
                mb.wake_for_death(rank);
            }
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::communicator::Communicator;

    #[test]
    fn single_rank_world_runs() {
        let report = World::builder(1)
            .cost_model(CostModel::zero())
            .run(|comm| {
                comm.compute(2.0)?;
                Ok(comm.rank().index())
            })
            .unwrap();
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.max_virtual_time, 2.0);
        assert!(!report.aborted);
        assert_eq!(report.into_results().unwrap(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = World::builder(0);
    }

    #[test]
    fn start_time_offsets_clocks() {
        let report = World::builder(2)
            .cost_model(CostModel::zero())
            .start_time(100.0)
            .run(|comm| {
                comm.compute(1.0)?;
                Ok(comm.now())
            })
            .unwrap();
        for r in report.into_results().unwrap() {
            assert_eq!(r, 101.0);
        }
    }

    #[test]
    fn abort_horizon_stops_compute() {
        let report = World::builder(1)
            .cost_model(CostModel::zero())
            .abort_horizon(5.0)
            .run(|comm| {
                for _ in 0..10 {
                    comm.compute(1.0)?;
                }
                Ok(())
            })
            .unwrap();
        assert!(report.aborted);
        assert!(report.results[0].is_err());
        // The rank stopped within one compute step of the horizon.
        assert!(report.max_virtual_time <= 6.0);
    }

    #[test]
    fn rank_death_does_not_abort_world() {
        let report = World::builder(3)
            .cost_model(CostModel::zero())
            .death_times(vec![f64::INFINITY, 5.0, f64::INFINITY])
            .run(|comm| {
                for _ in 0..10 {
                    comm.compute(1.0)?;
                }
                Ok(comm.rank().index())
            })
            .unwrap();
        assert!(!report.aborted, "a single rank death must not abort the world");
        assert_eq!(report.dead_ranks, vec![1]);
        assert!(matches!(
            report.results[1],
            Err(crate::MpiError::Dead { rank, at }) if rank == crate::Rank::new(1) && at == 5.0
        ));
        assert_eq!(*report.results[0].as_ref().unwrap(), 0);
        assert_eq!(*report.results[2].as_ref().unwrap(), 2);
    }

    #[test]
    fn send_to_dead_peer_reports_dead_peer() {
        let report = World::builder(2)
            .cost_model(CostModel::zero())
            .death_times(vec![f64::INFINITY, 1.0])
            .run(|comm| {
                if comm.rank().index() == 0 {
                    // Advance past the peer's death time, then try to send.
                    comm.compute(2.0)?;
                    match comm.send(crate::Rank::new(1), crate::Tag::new(0), b"hi") {
                        Err(crate::MpiError::DeadPeer { peer, .. }) => {
                            assert_eq!(peer, crate::Rank::new(1));
                            Ok(true)
                        }
                        other => panic!("expected DeadPeer, got {other:?}"),
                    }
                } else {
                    comm.compute(2.0)?; // dies at t=1.0
                    Ok(false)
                }
            })
            .unwrap();
        assert!(!report.aborted);
        assert!(report.results[0].as_ref().unwrap());
        assert!(matches!(report.results[1], Err(crate::MpiError::Dead { .. })));
    }

    #[test]
    fn recv_from_dead_sender_unblocks() {
        // Rank 1 dies before ever sending; rank 0's blocking receive must
        // unblock with DeadPeer instead of hanging forever.
        let report = World::builder(2)
            .cost_model(CostModel::zero())
            .death_times(vec![f64::INFINITY, 1.0])
            .run(|comm| {
                if comm.rank().index() == 0 {
                    match comm.recv(crate::Rank::new(1).into(), crate::Tag::new(0).into()) {
                        Err(crate::MpiError::DeadPeer { peer, .. }) => {
                            assert_eq!(peer, crate::Rank::new(1));
                            Ok(())
                        }
                        other => panic!("expected DeadPeer, got {other:?}"),
                    }
                } else {
                    comm.compute(5.0)?; // crosses death time, returns Dead
                    Ok(())
                }
            })
            .unwrap();
        assert!(!report.aborted);
        assert!(report.results[0].is_ok());
    }

    #[test]
    fn message_sent_before_death_still_delivered() {
        // Rank 1 sends, then dies. Rank 0 must receive the buffered message
        // even though the sender is long dead by the time it looks.
        let report = World::builder(2)
            .cost_model(CostModel::zero())
            .death_times(vec![f64::INFINITY, 2.0])
            .run(|comm| {
                if comm.rank().index() == 0 {
                    let (payload, _) =
                        comm.recv(crate::Rank::new(1).into(), crate::Tag::new(0).into())?;
                    assert_eq!(&payload[..], b"legacy");
                    Ok(())
                } else {
                    comm.compute(1.0)?;
                    comm.send(crate::Rank::new(0), crate::Tag::new(0), b"legacy")?;
                    comm.compute(5.0)?; // now cross the death time
                    Ok(())
                }
            })
            .unwrap();
        assert!(report.results[0].is_ok());
        assert!(matches!(report.results[1], Err(crate::MpiError::Dead { .. })));
    }

    #[test]
    fn rank_timing_comm_fraction() {
        let t = RankTiming { finish: 10.0, busy: 8.0, comm: 2.0 };
        assert!((t.comm_fraction() - 0.2).abs() < 1e-12);
        let idle = RankTiming { finish: 0.0, busy: 0.0, comm: 0.0 };
        assert_eq!(idle.comm_fraction(), 0.0);
    }
}
