//! The world: shared runtime state, the thread runner, and run reports.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::comm::Comm;
use crate::error::Result;
use crate::mailbox::Mailbox;
use crate::time::CostModel;

/// Entry point for configuring and running a simulated MPI world.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug)]
pub struct World;

impl World {
    /// Starts building a world with `n` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn builder(n: usize) -> WorldBuilder {
        assert!(n > 0, "a world needs at least one rank");
        WorldBuilder {
            n,
            cost: CostModel::default(),
            abort_horizon: f64::INFINITY,
            start_time: 0.0,
        }
    }
}

/// Builder for a simulated world.
#[derive(Debug, Clone)]
pub struct WorldBuilder {
    n: usize,
    cost: CostModel,
    abort_horizon: f64,
    start_time: f64,
}

impl WorldBuilder {
    /// Sets the communication cost model (default:
    /// [`CostModel::infiniband_qdr`]).
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the abort horizon: once any rank's virtual clock reaches this
    /// time (seconds), the whole run aborts with
    /// [`MpiError::Aborted`](crate::MpiError::Aborted). Used by the failure
    /// injector to emulate whole-job fail-stop.
    pub fn abort_horizon(mut self, t: f64) -> Self {
        self.abort_horizon = t;
        self
    }

    /// Starts every rank's virtual clock at `t` seconds instead of zero
    /// (used when resuming a job from a checkpoint taken at virtual time
    /// `t`).
    pub fn start_time(mut self, t: f64) -> Self {
        self.start_time = t;
        self
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Spawns one thread per rank, runs `f` on each, and joins them.
    ///
    /// `f` receives the rank's [`Comm`] handle. The returned report contains
    /// each rank's result and timing plus world-wide statistics.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any rank closure.
    pub fn run<T, F>(self, f: F) -> Result<RunReport<T>>
    where
        T: Send,
        F: Fn(&Comm) -> Result<T> + Send + Sync,
    {
        let shared = Arc::new(Shared::new(self.n, self.cost, self.abort_horizon));
        let start_time = self.start_time;
        let f = &f;
        let mut slots: Vec<Option<(Result<T>, RankTiming)>> = Vec::new();
        slots.resize_with(self.n, || None);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.n);
            for rank in 0..self.n {
                let shared = Arc::clone(&shared);
                handles.push(scope.spawn(move || {
                    let comm = Comm::new(shared, rank as u32, start_time);
                    let result = f(&comm);
                    if result.is_err() {
                        // A failing rank (abort or app error) must not leave
                        // peers blocked in receives forever.
                        comm.shared().trigger_abort();
                    }
                    let timing = RankTiming {
                        finish: comm.clock().now(),
                        busy: comm.clock().busy_time(),
                        comm: comm.clock().comm_time(),
                    };
                    (result, timing)
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(slot) => slots[rank] = Some(slot),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        let mut results = Vec::with_capacity(self.n);
        let mut timings = Vec::with_capacity(self.n);
        for slot in slots {
            let (r, t) = slot.expect("every rank joined");
            results.push(r);
            timings.push(t);
        }
        let max_virtual_time =
            timings.iter().map(|t| t.finish).fold(f64::NEG_INFINITY, f64::max);
        Ok(RunReport {
            results,
            timings,
            max_virtual_time,
            aborted: shared.is_aborted(),
            messages_sent: shared.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: shared.bytes_sent.load(Ordering::Relaxed),
        })
    }
}

/// Per-rank timing extracted at finalize.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankTiming {
    /// The rank's virtual clock when its closure returned, seconds.
    pub finish: f64,
    /// Time attributed to computation, seconds.
    pub busy: f64,
    /// Time attributed to communication, seconds.
    pub comm: f64,
}

impl RankTiming {
    /// Observed communication fraction `α` for this rank.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.busy + self.comm;
        if total == 0.0 {
            0.0
        } else {
            self.comm / total
        }
    }
}

/// The outcome of a world run.
#[derive(Debug)]
pub struct RunReport<T> {
    /// Per-rank closure results, indexed by rank.
    pub results: Vec<Result<T>>,
    /// Per-rank timings, indexed by rank.
    pub timings: Vec<RankTiming>,
    /// Simulated wallclock: the maximum finish time over all ranks, seconds.
    pub max_virtual_time: f64,
    /// Whether the run crossed the abort horizon (or a rank failed).
    pub aborted: bool,
    /// Total number of point-to-point messages injected.
    pub messages_sent: u64,
    /// Total payload bytes injected.
    pub bytes_sent: u64,
}

impl<T> RunReport<T> {
    /// Returns all rank results, or the first error encountered.
    ///
    /// # Errors
    ///
    /// Returns the lowest-ranked error if any rank failed.
    pub fn into_results(self) -> Result<Vec<T>> {
        self.results.into_iter().collect()
    }

    /// The mean observed communication fraction `α` across ranks.
    pub fn mean_comm_fraction(&self) -> f64 {
        if self.timings.is_empty() {
            return 0.0;
        }
        self.timings.iter().map(RankTiming::comm_fraction).sum::<f64>()
            / self.timings.len() as f64
    }
}

/// World state shared by all rank threads.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) n: usize,
    pub(crate) cost: CostModel,
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) abort_horizon: f64,
    aborted: AtomicBool,
    pub(crate) msgs_sent: AtomicU64,
    pub(crate) bytes_sent: AtomicU64,
}

impl Shared {
    fn new(n: usize, cost: CostModel, abort_horizon: f64) -> Self {
        Shared {
            n,
            cost,
            mailboxes: (0..n).map(|_| Mailbox::new()).collect(),
            abort_horizon,
            aborted: AtomicBool::new(false),
            msgs_sent: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
        }
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// Marks the world aborted and wakes every blocked receiver.
    pub(crate) fn trigger_abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        for mb in &self.mailboxes {
            mb.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::communicator::Communicator;

    #[test]
    fn single_rank_world_runs() {
        let report = World::builder(1)
            .cost_model(CostModel::zero())
            .run(|comm| {
                comm.compute(2.0)?;
                Ok(comm.rank().index())
            })
            .unwrap();
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.max_virtual_time, 2.0);
        assert!(!report.aborted);
        assert_eq!(report.into_results().unwrap(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        let _ = World::builder(0);
    }

    #[test]
    fn start_time_offsets_clocks() {
        let report = World::builder(2)
            .cost_model(CostModel::zero())
            .start_time(100.0)
            .run(|comm| {
                comm.compute(1.0)?;
                Ok(comm.now())
            })
            .unwrap();
        for r in report.into_results().unwrap() {
            assert_eq!(r, 101.0);
        }
    }

    #[test]
    fn abort_horizon_stops_compute() {
        let report = World::builder(1)
            .cost_model(CostModel::zero())
            .abort_horizon(5.0)
            .run(|comm| {
                for _ in 0..10 {
                    comm.compute(1.0)?;
                }
                Ok(())
            })
            .unwrap();
        assert!(report.aborted);
        assert!(report.results[0].is_err());
        // The rank stopped within one compute step of the horizon.
        assert!(report.max_virtual_time <= 6.0);
    }

    #[test]
    fn rank_timing_comm_fraction() {
        let t = RankTiming { finish: 10.0, busy: 8.0, comm: 2.0 };
        assert!((t.comm_fraction() - 0.2).abs() < 1e-12);
        let idle = RankTiming { finish: 0.0, busy: 0.0, comm: 0.0 };
        assert_eq!(idle.comm_fraction(), 0.0);
    }
}
