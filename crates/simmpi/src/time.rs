//! Virtual time: per-rank clocks and the LogP-style communication cost
//! model.
//!
//! Simulated durations are `f64` **seconds** of virtual time. The cost model
//! charges:
//!
//! * the **sender** `msg_overhead` per message (CPU injection cost `o_s`);
//! * the **receiver** `msg_overhead` plus the network delivery term: the
//!   message becomes available at `send_time + latency + len·byte_time`,
//!   and the receive completes at
//!   `max(receiver_clock, availability) + msg_overhead`.
//!
//! Replicating a process at degree `r` multiplies the number of physical
//! messages per virtual message by `r` on both sides, which is exactly the
//! mechanism behind the paper's Eq. 1 overhead `t_Red = (1−α)t + α·t·r`.

use std::cell::Cell;

/// Communication cost parameters (seconds and bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// One-way network latency per message, seconds.
    pub latency: f64,
    /// Transfer time per payload byte, seconds (1 / bandwidth).
    pub byte_time: f64,
    /// Per-message CPU overhead paid by both sender and receiver, seconds.
    pub msg_overhead: f64,
}

impl CostModel {
    /// A model calibrated to a QDR-InfiniBand-class cluster like the
    /// paper's testbed: ~1.5 µs latency, ~3.2 GB/s effective bandwidth,
    /// ~0.5 µs per-message CPU overhead.
    pub fn infiniband_qdr() -> Self {
        CostModel { latency: 1.5e-6, byte_time: 1.0 / 3.2e9, msg_overhead: 0.5e-6 }
    }

    /// A zero-cost model: messages are free and instantaneous. Useful for
    /// tests that only check functional behaviour.
    pub fn zero() -> Self {
        CostModel { latency: 0.0, byte_time: 0.0, msg_overhead: 0.0 }
    }

    /// The time at which a message of `len` bytes sent at `send_time`
    /// becomes available at the receiver.
    pub fn availability(&self, send_time: f64, len: usize) -> f64 {
        send_time + self.latency + len as f64 * self.byte_time
    }

    /// Pure network transfer time for `len` bytes (latency + serialization).
    pub fn transfer_time(&self, len: usize) -> f64 {
        self.latency + len as f64 * self.byte_time
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::infiniband_qdr()
    }
}

/// A rank-local virtual clock.
///
/// Owned by exactly one rank thread (it is `Send` but not `Sync`), so reads
/// and writes are unsynchronized `Cell` accesses. The clock is monotone:
/// all mutators only move it forward.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: Cell<f64>,
    busy: Cell<f64>,
    comm: Cell<f64>,
}

impl VirtualClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock starting at `start` seconds (used when resuming from a
    /// checkpointed execution prefix).
    pub fn starting_at(start: f64) -> Self {
        let c = Self::new();
        c.now.set(start);
        c
    }

    /// Current virtual time, seconds.
    pub fn now(&self) -> f64 {
        self.now.get()
    }

    /// Total time attributed to computation, seconds.
    pub fn busy_time(&self) -> f64 {
        self.busy.get()
    }

    /// Total time attributed to communication (overhead + waiting), seconds.
    pub fn comm_time(&self) -> f64 {
        self.comm.get()
    }

    /// Advances the clock by `seconds` of computation.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) on negative or non-finite durations.
    pub fn advance_compute(&self, seconds: f64) {
        debug_assert!(seconds.is_finite() && seconds >= 0.0, "bad duration {seconds}");
        self.now.set(self.now.get() + seconds);
        self.busy.set(self.busy.get() + seconds);
    }

    /// Advances the clock by `seconds` of communication overhead.
    pub fn advance_comm(&self, seconds: f64) {
        debug_assert!(seconds.is_finite() && seconds >= 0.0, "bad duration {seconds}");
        self.now.set(self.now.get() + seconds);
        self.comm.set(self.comm.get() + seconds);
    }

    /// Moves the clock forward to `t` if `t` is later, attributing the gap
    /// to communication (waiting for a message). Returns the new time.
    pub fn sync_to(&self, t: f64) -> f64 {
        let now = self.now.get();
        if t > now {
            self.comm.set(self.comm.get() + (t - now));
            self.now.set(t);
        }
        self.now.get()
    }

    /// The communication fraction α observed so far:
    /// `comm_time / (comm_time + busy_time)`, or 0 when idle.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.busy.get() + self.comm.get();
        if total == 0.0 {
            0.0
        } else {
            self.comm.get() / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_classifies() {
        let c = VirtualClock::new();
        c.advance_compute(2.0);
        c.advance_comm(1.0);
        assert_eq!(c.now(), 3.0);
        assert_eq!(c.busy_time(), 2.0);
        assert_eq!(c.comm_time(), 1.0);
        assert!((c.comm_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sync_to_only_moves_forward() {
        let c = VirtualClock::new();
        c.advance_compute(5.0);
        assert_eq!(c.sync_to(3.0), 5.0);
        assert_eq!(c.comm_time(), 0.0);
        assert_eq!(c.sync_to(8.0), 8.0);
        assert_eq!(c.comm_time(), 3.0);
    }

    #[test]
    fn starting_at_offsets_now_only() {
        let c = VirtualClock::starting_at(100.0);
        assert_eq!(c.now(), 100.0);
        assert_eq!(c.busy_time(), 0.0);
        assert_eq!(c.comm_fraction(), 0.0);
    }

    #[test]
    fn cost_model_availability() {
        let m = CostModel { latency: 1.0, byte_time: 0.5, msg_overhead: 0.1 };
        assert_eq!(m.availability(10.0, 4), 10.0 + 1.0 + 2.0);
        assert_eq!(m.transfer_time(2), 2.0);
    }

    #[test]
    fn zero_model_is_free() {
        let m = CostModel::zero();
        assert_eq!(m.availability(7.0, 1_000_000), 7.0);
    }

    #[test]
    fn default_is_infiniband() {
        assert_eq!(CostModel::default(), CostModel::infiniband_qdr());
    }
}
