//! The [`Communicator`] trait: the MPI-like call surface shared by the base
//! runtime ([`Comm`](crate::Comm), [`SubComm`](crate::SubComm)) and the
//! replication layer (`redcr_red::ReplicaComm`).
//!
//! Applications written against this trait run unchanged with or without
//! redundancy — the transparency property of the paper's RedMPI design.

use bytes::Bytes;

use crate::collectives::{frame_parts, unframe_parts, ReduceOp};
use crate::datatype;
use crate::error::Result;
use crate::message::Status;
use crate::rank::{Rank, RankSelector};
use crate::request::TestOutcome;
use crate::tag::{Namespace, Tag, TagSelector};

/// An MPI-like communicator.
///
/// # Required methods
///
/// Implementations provide point-to-point primitives (`send_ns`/`recv_ns`
/// plus the non-blocking trio), clock access, and a deterministic collective
/// sequence counter. Everything else — typed sends, send-receive, wait-all,
/// and all collectives — is provided on top, so an implementation that
/// interposes on the point-to-point primitives (like the replication layer)
/// automatically covers the collectives as well.
pub trait Communicator {
    /// Handle for a pending non-blocking operation.
    type Request;

    /// This process's rank within the communicator.
    fn rank(&self) -> Rank;

    /// Number of ranks in the communicator.
    fn size(&self) -> usize;

    /// Current virtual time of this rank, seconds.
    fn now(&self) -> f64;

    /// Advances this rank's virtual clock by `seconds` of computation.
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::Aborted`](crate::MpiError::Aborted) if the clock
    /// crosses the abort horizon.
    fn compute(&self, seconds: f64) -> Result<()>;

    /// Sends `data` to `dest` with `tag` in namespace `ns`.
    ///
    /// Sends are eager and never block. This is the single choke point all
    /// outgoing traffic (including collectives) flows through.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid destination or if the run aborted.
    fn send_ns(&self, dest: Rank, tag: Tag, data: Bytes, ns: Namespace) -> Result<()>;

    /// Receives the next message matching `src`/`tag` in namespace `ns`,
    /// blocking until one arrives. This is the single choke point all
    /// incoming traffic flows through.
    ///
    /// # Errors
    ///
    /// Returns an error if the run aborted while waiting.
    fn recv_ns(
        &self,
        src: RankSelector,
        tag: TagSelector,
        ns: Namespace,
    ) -> Result<(Bytes, Status)>;

    /// Starts a non-blocking send of user-namespace data.
    ///
    /// # Errors
    ///
    /// Same as [`send_ns`](Self::send_ns).
    fn isend(&self, dest: Rank, tag: Tag, data: Bytes) -> Result<Self::Request>;

    /// Posts a non-blocking user-namespace receive.
    ///
    /// # Errors
    ///
    /// Returns an error if the run aborted.
    fn irecv(&self, src: RankSelector, tag: TagSelector) -> Result<Self::Request>;

    /// Completes a non-blocking operation. Send requests yield `None`;
    /// receive requests yield the payload and status.
    ///
    /// # Errors
    ///
    /// Returns an error if the run aborted while waiting.
    fn wait(&self, req: Self::Request) -> Result<Option<(Bytes, Status)>>;

    /// Non-blocking probe for a matching user-namespace message.
    ///
    /// # Errors
    ///
    /// Returns an error if the run aborted.
    fn iprobe(&self, src: RankSelector, tag: TagSelector) -> Result<Option<Status>>;

    /// Blocking probe: waits until a matching user-namespace message is
    /// available and returns its status without consuming it.
    ///
    /// # Errors
    ///
    /// Returns an error if the run aborted while waiting.
    fn probe(&self, src: RankSelector, tag: TagSelector) -> Result<Status>;

    /// Non-blocking completion test, mirroring `MPI_Test`: completes the
    /// operation if it can finish promptly, otherwise hands the request
    /// back. Implementations may conservatively report
    /// [`TestOutcome::Pending`] for operations they cannot test cheaply
    /// (e.g. wildcard receives under replication).
    ///
    /// # Errors
    ///
    /// Returns an error if the run aborted.
    fn test(&self, req: Self::Request) -> Result<TestOutcome<Self::Request>>;

    /// Returns the next collective sequence number. Every rank calls
    /// collectives in the same order, so the sequence is identical across
    /// ranks and yields collision-free collective tags.
    fn next_collective_seq(&self) -> u64;

    /// This rank's flight recorder, when the world was built with tracing
    /// enabled (see `WorldBuilder::trace`). Interposition layers emit their
    /// own events (votes, failovers, checkpoint commits) through this hook;
    /// the default is no recorder, so tracing costs nothing unless enabled.
    fn recorder(&self) -> Option<&redcr_trace::Recorder> {
        None
    }

    /// This rank's metrics shard, when the world was built with metrics
    /// enabled (see `WorldBuilder::metrics`). Interposition layers count
    /// their own events (votes, failovers, checkpoint commits) through this
    /// hook; the default is no shard, so metrics cost one `Option` check
    /// unless enabled.
    fn metrics(&self) -> Option<&redcr_metrics::RankMetrics> {
        None
    }

    /// This rank's wall-clock profiling shard, when the world was built
    /// with profiling enabled (see `WorldBuilder::profiler`).
    /// Interposition layers time their own work (votes, checkpoint
    /// encode/commit) through this hook; the default is no shard, so
    /// profiling costs one `Option` check unless enabled. Profiling reads
    /// the host clock only and never advances virtual time.
    fn prof(&self) -> Option<&redcr_prof::RankProf> {
        None
    }

    // ------------------------------------------------------------------
    // Provided point-to-point conveniences
    // ------------------------------------------------------------------

    /// Blocking user-namespace send (copies `data`).
    ///
    /// # Errors
    ///
    /// See [`send_ns`](Self::send_ns).
    fn send(&self, dest: Rank, tag: Tag, data: &[u8]) -> Result<()> {
        self.send_ns(dest, tag, Bytes::copy_from_slice(data), Namespace::User)
    }

    /// Blocking user-namespace send of an owned buffer (no copy).
    ///
    /// # Errors
    ///
    /// See [`send_ns`](Self::send_ns).
    fn send_bytes(&self, dest: Rank, tag: Tag, data: Bytes) -> Result<()> {
        self.send_ns(dest, tag, data, Namespace::User)
    }

    /// Blocking user-namespace receive.
    ///
    /// # Errors
    ///
    /// See [`recv_ns`](Self::recv_ns).
    fn recv(&self, src: RankSelector, tag: TagSelector) -> Result<(Bytes, Status)> {
        self.recv_ns(src, tag, Namespace::User)
    }

    /// Combined send and receive (both complete before returning).
    ///
    /// # Errors
    ///
    /// See [`send_ns`](Self::send_ns) and [`recv_ns`](Self::recv_ns).
    fn sendrecv(
        &self,
        dest: Rank,
        send_tag: Tag,
        data: &[u8],
        src: RankSelector,
        recv_tag: TagSelector,
    ) -> Result<(Bytes, Status)> {
        self.send(dest, send_tag, data)?;
        self.recv(src, recv_tag)
    }

    /// Waits for *one* of the requests to complete, mirroring
    /// `MPI_Waitany`: polls with [`test`](Self::test) a bounded number of
    /// rounds, then blocks on the first remaining request. Returns the
    /// completed request's index (within the input order), its result, and
    /// the still-pending requests (in their original relative order).
    ///
    /// # Errors
    ///
    /// Returns the first error encountered.
    ///
    /// # Panics
    ///
    /// Panics if `reqs` is empty.
    #[allow(clippy::type_complexity)] // (index, recv payload, remaining) mirrors MPI_Waitany
    fn waitany(
        &self,
        reqs: Vec<Self::Request>,
    ) -> Result<(usize, Option<(Bytes, Status)>, Vec<Self::Request>)>
    where
        Self: Sized,
    {
        assert!(!reqs.is_empty(), "waitany needs at least one request");
        let mut slots: Vec<Option<Self::Request>> = reqs.into_iter().map(Some).collect();
        for _round in 0..64 {
            for i in 0..slots.len() {
                // detlint::allow(R4, reason = "invariant: a slot is refilled immediately unless its request completed, which returns from the loop")
                let req = slots[i].take().expect("slot filled until completed");
                match self.test(req)? {
                    TestOutcome::Completed(out) => {
                        let rest: Vec<Self::Request> = slots.into_iter().flatten().collect();
                        return Ok((i, out, rest));
                    }
                    TestOutcome::Pending(req) => slots[i] = Some(req),
                }
            }
            redcr_sched::yield_now();
        }
        // Nothing completed promptly: block on the first request.
        // detlint::allow(R4, reason = "invariant: the polling rounds above never leave a slot empty without returning")
        let first = slots[0].take().expect("first slot present");
        let out = self.wait(first)?;
        let rest: Vec<Self::Request> = slots.into_iter().flatten().collect();
        Ok((0, out, rest))
    }

    /// Waits for every request, returning results in request order.
    ///
    /// # Errors
    ///
    /// Returns the first error; remaining requests are abandoned.
    fn waitall(
        &self,
        reqs: impl IntoIterator<Item = Self::Request>,
    ) -> Result<Vec<Option<(Bytes, Status)>>>
    where
        Self: Sized,
    {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }

    // ------------------------------------------------------------------
    // Provided typed conveniences
    // ------------------------------------------------------------------

    /// Sends a slice of `f64` values.
    ///
    /// # Errors
    ///
    /// See [`send_ns`](Self::send_ns).
    fn send_f64s(&self, dest: Rank, tag: Tag, values: &[f64]) -> Result<()> {
        self.send_bytes(dest, tag, datatype::f64s_to_bytes(values))
    }

    /// Receives a slice of `f64` values.
    ///
    /// # Errors
    ///
    /// Decoding fails if the payload length is not a multiple of 8.
    fn recv_f64s(&self, src: RankSelector, tag: TagSelector) -> Result<(Vec<f64>, Status)> {
        let (bytes, status) = self.recv(src, tag)?;
        Ok((datatype::decode_f64s(&bytes)?, status))
    }

    /// Sends a slice of `u64` values.
    ///
    /// # Errors
    ///
    /// See [`send_ns`](Self::send_ns).
    fn send_u64s(&self, dest: Rank, tag: Tag, values: &[u64]) -> Result<()> {
        self.send_bytes(dest, tag, datatype::u64s_to_bytes(values))
    }

    /// Receives a slice of `u64` values.
    ///
    /// # Errors
    ///
    /// Decoding fails if the payload length is not a multiple of 8.
    fn recv_u64s(&self, src: RankSelector, tag: TagSelector) -> Result<(Vec<u64>, Status)> {
        let (bytes, status) = self.recv(src, tag)?;
        Ok((datatype::decode_u64s(&bytes)?, status))
    }

    // ------------------------------------------------------------------
    // Provided collectives (deterministic trees over point-to-point)
    // ------------------------------------------------------------------

    /// Synchronizes all ranks (dissemination barrier, ⌈log₂ n⌉ rounds).
    ///
    /// # Errors
    ///
    /// Returns an error if the run aborted.
    fn barrier(&self) -> Result<()>
    where
        Self: Sized,
    {
        let n = self.size();
        if n == 1 {
            return Ok(());
        }
        let seq = self.next_collective_seq();
        let me = self.rank();
        let mut round = 0u64;
        let mut dist = 1usize;
        while dist < n {
            let tag = coll_tag(seq, round);
            let to = me.offset(dist as i64, n);
            let from = me.offset(-(dist as i64), n);
            self.send_ns(to, tag, Bytes::new(), Namespace::Collective)?;
            self.recv_ns(RankSelector::Rank(from), TagSelector::Tag(tag), Namespace::Collective)?;
            dist <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Broadcasts `data` from `root` (binomial tree). Every rank returns the
    /// broadcast payload; non-roots pass `Bytes::new()` (ignored).
    ///
    /// # Errors
    ///
    /// Returns an error if the run aborted.
    fn bcast(&self, root: Rank, data: Bytes) -> Result<Bytes>
    where
        Self: Sized,
    {
        let n = self.size();
        let seq = self.next_collective_seq();
        let tag = coll_tag(seq, 0);
        if n == 1 {
            return Ok(data);
        }
        let me = self.rank().index();
        let relative = (me + n - root.index()) % n;
        let mut payload = data;

        // Receive phase: find the bit that identifies our parent.
        let mut mask = 1usize;
        while mask < n {
            if relative & mask != 0 {
                let src = Rank::new(((relative - mask + root.index()) % n) as u32);
                let (bytes, _) = self.recv_ns(
                    RankSelector::Rank(src),
                    TagSelector::Tag(tag),
                    Namespace::Collective,
                )?;
                payload = bytes;
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to children below our bit.
        mask >>= 1;
        // detlint::allow(R10, reason = "bounded binomial-tree fanout: mask halves every iteration (log2 n rounds) and sends are buffered mailbox pushes that never wait")
        while mask > 0 {
            if relative + mask < n {
                let dst = Rank::new(((relative + mask + root.index()) % n) as u32);
                self.send_ns(dst, tag, payload.clone(), Namespace::Collective)?;
            }
            mask >>= 1;
        }
        Ok(payload)
    }

    /// Reduces element-wise to `root` (binomial tree, fixed combine order).
    /// Returns `Some(result)` on the root, `None` elsewhere.
    ///
    /// # Errors
    ///
    /// Returns an error on abort or operand length mismatch.
    fn reduce_f64(&self, root: Rank, values: &[f64], op: ReduceOp) -> Result<Option<Vec<f64>>>
    where
        Self: Sized,
    {
        let n = self.size();
        let seq = self.next_collective_seq();
        let tag = coll_tag(seq, 0);
        let me = self.rank().index();
        let relative = (me + n - root.index()) % n;
        let mut acc = values.to_vec();

        let mut mask = 1usize;
        while mask < n {
            if relative & mask == 0 {
                let source = relative | mask;
                if source < n {
                    let src = Rank::new(((source + root.index()) % n) as u32);
                    let (bytes, _) = self.recv_ns(
                        RankSelector::Rank(src),
                        TagSelector::Tag(tag),
                        Namespace::Collective,
                    )?;
                    op.fold_f64_bytes(&mut acc, &bytes)?;
                }
            } else {
                let dest_rel = relative & !mask;
                let dst = Rank::new(((dest_rel + root.index()) % n) as u32);
                self.send_ns(dst, tag, datatype::f64s_to_bytes(&acc), Namespace::Collective)?;
                return Ok(None);
            }
            mask <<= 1;
        }
        Ok(Some(acc))
    }

    /// All-reduce: reduce to rank 0 then broadcast (every rank returns the
    /// reduced vector).
    ///
    /// # Errors
    ///
    /// Returns an error on abort or operand length mismatch.
    fn allreduce_f64(&self, values: &[f64], op: ReduceOp) -> Result<Vec<f64>>
    where
        Self: Sized,
    {
        let root = Rank::new(0);
        let reduced = self.reduce_f64(root, values, op)?;
        let payload = match reduced {
            Some(v) => datatype::f64s_to_bytes(&v),
            None => Bytes::new(),
        };
        let out = self.bcast(root, payload)?;
        datatype::decode_f64s(&out)
    }

    /// All-reduce for `u64` vectors (used by coordination protocols).
    ///
    /// # Errors
    ///
    /// Returns an error on abort or operand length mismatch.
    fn allreduce_u64(&self, values: &[u64], op: ReduceOp) -> Result<Vec<u64>>
    where
        Self: Sized,
    {
        let n = self.size();
        let seq = self.next_collective_seq();
        let tag = coll_tag(seq, 0);
        let me = self.rank().index();
        let mut acc = values.to_vec();
        // Reduce to rank 0 (binomial, root fixed at 0).
        let mut mask = 1usize;
        let mut is_root_holder = true;
        while mask < n {
            if me & mask == 0 {
                let source = me | mask;
                if source < n {
                    let (bytes, _) = self.recv_ns(
                        RankSelector::Rank(Rank::new(source as u32)),
                        TagSelector::Tag(tag),
                        Namespace::Collective,
                    )?;
                    op.fold_u64_bytes(&mut acc, &bytes)?;
                }
            } else {
                let dst = Rank::new((me & !mask) as u32);
                self.send_ns(dst, tag, datatype::u64s_to_bytes(&acc), Namespace::Collective)?;
                is_root_holder = false;
                break;
            }
            mask <<= 1;
        }
        let payload =
            if is_root_holder && me == 0 { datatype::u64s_to_bytes(&acc) } else { Bytes::new() };
        let out = self.bcast(Rank::new(0), payload)?;
        datatype::decode_u64s(&out)
    }

    /// Gathers every rank's `data` to `root` (linear). Returns
    /// `Some(parts_in_rank_order)` on the root, `None` elsewhere.
    ///
    /// # Errors
    ///
    /// Returns an error if the run aborted.
    fn gather(&self, root: Rank, data: Bytes) -> Result<Option<Vec<Bytes>>>
    where
        Self: Sized,
    {
        let n = self.size();
        let seq = self.next_collective_seq();
        let tag = coll_tag(seq, 0);
        if self.rank() == root {
            let mut parts = Vec::with_capacity(n);
            for i in 0..n {
                if i == root.index() {
                    parts.push(data.clone());
                } else {
                    let (bytes, _) = self.recv_ns(
                        RankSelector::Rank(Rank::new(i as u32)),
                        TagSelector::Tag(tag),
                        Namespace::Collective,
                    )?;
                    parts.push(bytes);
                }
            }
            Ok(Some(parts))
        } else {
            self.send_ns(root, tag, data, Namespace::Collective)?;
            Ok(None)
        }
    }

    /// All-gather: every rank returns all ranks' payloads in rank order
    /// (gather to 0 + broadcast of the framed parts).
    ///
    /// # Errors
    ///
    /// Returns an error if the run aborted.
    fn allgather(&self, data: Bytes) -> Result<Vec<Bytes>>
    where
        Self: Sized,
    {
        let root = Rank::new(0);
        let gathered = self.gather(root, data)?;
        let framed = match gathered {
            Some(parts) => frame_parts(&parts),
            None => Bytes::new(),
        };
        let out = self.bcast(root, framed)?;
        unframe_parts(&out)
    }

    /// Scatters `parts` from `root` (only the root's `parts` is consulted;
    /// it must contain exactly `size()` entries). Returns this rank's part.
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::CollectiveMismatch`](crate::MpiError::CollectiveMismatch)
    /// if the root's `parts` has the wrong length, or an abort error.
    fn scatter(&self, root: Rank, parts: Option<Vec<Bytes>>) -> Result<Bytes>
    where
        Self: Sized,
    {
        let n = self.size();
        let seq = self.next_collective_seq();
        let tag = coll_tag(seq, 0);
        if self.rank() == root {
            let parts = parts.ok_or(crate::MpiError::CollectiveMismatch {
                what: "scatter root must supply parts",
            })?;
            if parts.len() != n {
                return Err(crate::MpiError::CollectiveMismatch {
                    what: "scatter parts length != communicator size",
                });
            }
            let mut own = Bytes::new();
            for (i, part) in parts.into_iter().enumerate() {
                if i == root.index() {
                    own = part;
                } else {
                    self.send_ns(Rank::new(i as u32), tag, part, Namespace::Collective)?;
                }
            }
            Ok(own)
        } else {
            let (bytes, _) = self.recv_ns(
                RankSelector::Rank(root),
                TagSelector::Tag(tag),
                Namespace::Collective,
            )?;
            Ok(bytes)
        }
    }

    /// All-to-all personalized exchange: `parts[i]` goes to rank `i`;
    /// returns the parts received from each rank, in rank order.
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::CollectiveMismatch`](crate::MpiError::CollectiveMismatch)
    /// if `parts.len() != size()`, or an abort error.
    fn alltoall(&self, parts: Vec<Bytes>) -> Result<Vec<Bytes>>
    where
        Self: Sized,
    {
        let n = self.size();
        if parts.len() != n {
            return Err(crate::MpiError::CollectiveMismatch {
                what: "alltoall parts length != communicator size",
            });
        }
        let seq = self.next_collective_seq();
        let tag = coll_tag(seq, 0);
        let me = self.rank().index();
        let mut out: Vec<Option<Bytes>> = vec![None; n];
        // Eager sends never block, so send everything first.
        for (i, part) in parts.into_iter().enumerate() {
            if i == me {
                out[i] = Some(part);
            } else {
                self.send_ns(Rank::new(i as u32), tag, part, Namespace::Collective)?;
            }
        }
        for (i, slot) in out.iter_mut().enumerate() {
            if i != me {
                let (bytes, _) = self.recv_ns(
                    RankSelector::Rank(Rank::new(i as u32)),
                    TagSelector::Tag(tag),
                    Namespace::Collective,
                )?;
                *slot = Some(bytes);
            }
        }
        // detlint::allow(R4, reason = "invariant: the loop above filled every peer slot and `me` was filled before it")
        Ok(out.into_iter().map(|o| o.expect("all slots filled")).collect())
    }

    /// Inclusive prefix reduction (linear chain): rank `i` returns
    /// `op(values₀, …, valuesᵢ)` element-wise.
    ///
    /// # Errors
    ///
    /// Returns an error on abort or operand length mismatch.
    fn scan_f64(&self, values: &[f64], op: ReduceOp) -> Result<Vec<f64>>
    where
        Self: Sized,
    {
        let n = self.size();
        let seq = self.next_collective_seq();
        let tag = coll_tag(seq, 0);
        let me = self.rank().index();
        let mut acc = values.to_vec();
        if me > 0 {
            let (bytes, _) = self.recv_ns(
                RankSelector::Rank(Rank::new((me - 1) as u32)),
                TagSelector::Tag(tag),
                Namespace::Collective,
            )?;
            let prefix = datatype::decode_f64s(&bytes)?;
            // acc = op(prefix, mine) — fixed order for determinism.
            let mut combined = prefix;
            op.fold_f64(&mut combined, &acc)?;
            acc = combined;
        }
        if me + 1 < n {
            self.send_ns(
                Rank::new((me + 1) as u32),
                tag,
                datatype::f64s_to_bytes(&acc),
                Namespace::Collective,
            )?;
        }
        Ok(acc)
    }
}

/// Builds the collective wire tag for sequence `seq`, round `round`.
pub(crate) fn coll_tag(seq: u64, round: u64) -> Tag {
    debug_assert!(round < 64);
    Tag::new(((seq << 6) | round) & crate::tag::MAX_USER_TAG)
}
