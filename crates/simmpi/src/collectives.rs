//! Reduction operators and payload framing used by the collective
//! operations.
//!
//! All collectives are implemented *over point-to-point messages* with fixed
//! deterministic trees (see [`Communicator`](crate::Communicator)); this
//! matches the paper's observation that "all collective communication in MPI
//! is based on point-to-point MPI messages", which is what lets the
//! replication layer cover collectives by interposing only on point-to-point
//! calls.

use bytes::Bytes;

use crate::error::{MpiError, Result};

/// Commutative, associative reduction operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise product.
    Prod,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
}

impl ReduceOp {
    /// Combines two `f64` operands.
    pub fn combine_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Prod => a * b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// Combines two `u64` operands (saturating for sum/product).
    pub fn combine_u64(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a.saturating_add(b),
            ReduceOp::Prod => a.saturating_mul(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// Element-wise in-place combination `acc[i] = op(acc[i], x[i])`.
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::CollectiveMismatch`] when lengths differ.
    pub fn fold_f64(self, acc: &mut [f64], x: &[f64]) -> Result<()> {
        if acc.len() != x.len() {
            return Err(MpiError::CollectiveMismatch { what: "reduce operand lengths differ" });
        }
        for (a, b) in acc.iter_mut().zip(x) {
            *a = self.combine_f64(*a, *b);
        }
        Ok(())
    }

    /// Element-wise in-place combination for `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::CollectiveMismatch`] when lengths differ.
    pub fn fold_u64(self, acc: &mut [u64], x: &[u64]) -> Result<()> {
        if acc.len() != x.len() {
            return Err(MpiError::CollectiveMismatch { what: "reduce operand lengths differ" });
        }
        for (a, b) in acc.iter_mut().zip(x) {
            *a = self.combine_u64(*a, *b);
        }
        Ok(())
    }

    /// [`fold_f64`](Self::fold_f64) with the operand still in its
    /// little-endian wire encoding: combines element-by-element straight
    /// out of the receive buffer, skipping the intermediate decoded
    /// vector the reduction trees would otherwise allocate every round.
    /// Identical combine order, so results are bit-for-bit the same.
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::CollectiveMismatch`] when the encoded operand
    /// length differs from `acc`.
    pub fn fold_f64_bytes(self, acc: &mut [f64], bytes: &[u8]) -> Result<()> {
        if bytes.len() != acc.len() * 8 {
            return Err(MpiError::CollectiveMismatch { what: "reduce operand lengths differ" });
        }
        for (a, c) in acc.iter_mut().zip(bytes.chunks_exact(8)) {
            // detlint::allow(R4, reason = "infallible: chunks_exact(8) yields exactly 8-byte slices")
            *a = self.combine_f64(*a, f64::from_le_bytes(c.try_into().expect("chunk of 8")));
        }
        Ok(())
    }

    /// [`fold_u64`](Self::fold_u64) straight from the wire encoding.
    ///
    /// # Errors
    ///
    /// Returns [`MpiError::CollectiveMismatch`] when the encoded operand
    /// length differs from `acc`.
    pub fn fold_u64_bytes(self, acc: &mut [u64], bytes: &[u8]) -> Result<()> {
        if bytes.len() != acc.len() * 8 {
            return Err(MpiError::CollectiveMismatch { what: "reduce operand lengths differ" });
        }
        for (a, c) in acc.iter_mut().zip(bytes.chunks_exact(8)) {
            // detlint::allow(R4, reason = "infallible: chunks_exact(8) yields exactly 8-byte slices")
            *a = self.combine_u64(*a, u64::from_le_bytes(c.try_into().expect("chunk of 8")));
        }
        Ok(())
    }
}

/// Frames a list of byte chunks into one length-prefixed buffer
/// (used by allgather: gather to root, broadcast the framed buffer).
pub fn frame_parts(parts: &[Bytes]) -> Bytes {
    let total: usize = parts.iter().map(|p| 8 + p.len()).sum();
    let mut out = Vec::with_capacity(8 + total);
    out.extend_from_slice(&(parts.len() as u64).to_le_bytes());
    for p in parts {
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
        out.extend_from_slice(p);
    }
    Bytes::from(out)
}

/// Inverse of [`frame_parts`].
///
/// # Errors
///
/// Returns [`MpiError::DecodeError`] on malformed framing.
pub fn unframe_parts(buf: &Bytes) -> Result<Vec<Bytes>> {
    let err = || MpiError::DecodeError { what: "framed parts" };
    let mut offset = 0usize;
    let take8 = |offset: &mut usize| -> Result<u64> {
        let end = offset.checked_add(8).ok_or_else(err)?;
        if end > buf.len() {
            return Err(err());
        }
        // detlint::allow(R4, reason = "infallible: the slice is exactly 8 bytes, bounds-checked against buf.len() just above")
        let v = u64::from_le_bytes(buf[*offset..end].try_into().expect("8 bytes"));
        *offset = end;
        Ok(v)
    };
    let count = take8(&mut offset)? as usize;
    let mut parts = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let len = take8(&mut offset)? as usize;
        let end = offset.checked_add(len).ok_or_else(err)?;
        if end > buf.len() {
            return Err(err());
        }
        parts.push(buf.slice(offset..end));
        offset = end;
    }
    if offset != buf.len() {
        return Err(err());
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_f64_ops() {
        assert_eq!(ReduceOp::Sum.combine_f64(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Prod.combine_f64(2.0, 3.0), 6.0);
        assert_eq!(ReduceOp::Min.combine_f64(2.0, 3.0), 2.0);
        assert_eq!(ReduceOp::Max.combine_f64(2.0, 3.0), 3.0);
    }

    #[test]
    fn combine_u64_saturates() {
        assert_eq!(ReduceOp::Sum.combine_u64(u64::MAX, 1), u64::MAX);
        assert_eq!(ReduceOp::Prod.combine_u64(u64::MAX, 2), u64::MAX);
    }

    #[test]
    fn fold_checks_lengths() {
        let mut acc = vec![1.0, 2.0];
        assert!(ReduceOp::Sum.fold_f64(&mut acc, &[1.0]).is_err());
        ReduceOp::Sum.fold_f64(&mut acc, &[10.0, 20.0]).unwrap();
        assert_eq!(acc, vec![11.0, 22.0]);
    }

    #[test]
    fn frame_round_trip() {
        let parts = vec![Bytes::from_static(b"a"), Bytes::new(), Bytes::from_static(b"hello")];
        let framed = frame_parts(&parts);
        let back = unframe_parts(&framed).unwrap();
        assert_eq!(back, parts);
    }

    #[test]
    fn frame_empty_list() {
        let framed = frame_parts(&[]);
        assert!(unframe_parts(&framed).unwrap().is_empty());
    }

    #[test]
    fn unframe_rejects_garbage() {
        assert!(unframe_parts(&Bytes::from_static(b"abc")).is_err());
        // Count says 1 part but no length follows.
        let framed = Bytes::from(1u64.to_le_bytes().to_vec());
        assert!(unframe_parts(&framed).is_err());
        // Trailing junk.
        let mut buf = frame_parts(&[Bytes::from_static(b"x")]).to_vec();
        buf.push(0);
        assert!(unframe_parts(&Bytes::from(buf)).is_err());
    }
}
