//! Rank identifiers and receive-source selectors.

use std::fmt;

/// A process rank within a communicator.
///
/// A thin newtype over `u32` so that ranks cannot be confused with tags,
/// sizes or byte counts at API boundaries.
///
/// ```
/// use redcr_mpi::Rank;
/// let r = Rank::new(3);
/// assert_eq!(r.index(), 3);
/// let next = r.offset(1, 8); // ring neighbour in a communicator of size 8
/// assert_eq!(next.index(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rank(u32);

impl Rank {
    /// Creates a rank from its index.
    pub const fn new(index: u32) -> Self {
        Rank(index)
    }

    /// The rank's index as a `usize`, for indexing rank-ordered arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The rank's raw `u32` value.
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// The rank at `(self + delta) mod size` — ring arithmetic used by
    /// ring-based collectives and stencil neighbours.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn offset(self, delta: i64, size: usize) -> Rank {
        assert!(size > 0, "communicator size must be positive");
        let size = size as i64;
        let idx = (self.0 as i64 + delta).rem_euclid(size);
        Rank(idx as u32)
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Rank {
    fn from(v: u32) -> Self {
        Rank(v)
    }
}

impl From<Rank> for u32 {
    fn from(r: Rank) -> u32 {
        r.0
    }
}

/// Source selector for receive operations: a specific rank or the wildcard
/// (`MPI_ANY_SOURCE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankSelector {
    /// Match messages from this rank only.
    Rank(Rank),
    /// Match messages from any rank (`MPI_ANY_SOURCE`).
    Any,
}

impl RankSelector {
    /// Whether this selector matches messages from `src`.
    pub fn matches(self, src: Rank) -> bool {
        match self {
            RankSelector::Rank(r) => r == src,
            RankSelector::Any => true,
        }
    }

    /// The specific rank, if this is not a wildcard.
    pub fn rank(self) -> Option<Rank> {
        match self {
            RankSelector::Rank(r) => Some(r),
            RankSelector::Any => None,
        }
    }
}

impl From<Rank> for RankSelector {
    fn from(r: Rank) -> Self {
        RankSelector::Rank(r)
    }
}

impl From<u32> for RankSelector {
    fn from(v: u32) -> Self {
        RankSelector::Rank(Rank::new(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_round_trip() {
        let r = Rank::new(17);
        assert_eq!(r.index(), 17);
        assert_eq!(u32::from(r), 17);
        assert_eq!(Rank::from(17u32), r);
        assert_eq!(r.to_string(), "17");
    }

    #[test]
    fn ring_offset_wraps_both_ways() {
        assert_eq!(Rank::new(7).offset(1, 8).index(), 0);
        assert_eq!(Rank::new(0).offset(-1, 8).index(), 7);
        assert_eq!(Rank::new(3).offset(-11, 8).index(), 0);
        assert_eq!(Rank::new(3).offset(0, 8).index(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn offset_rejects_empty_comm() {
        let _ = Rank::new(0).offset(1, 0);
    }

    #[test]
    fn selector_matching() {
        assert!(RankSelector::Any.matches(Rank::new(5)));
        assert!(RankSelector::Rank(Rank::new(5)).matches(Rank::new(5)));
        assert!(!RankSelector::Rank(Rank::new(4)).matches(Rank::new(5)));
        assert_eq!(RankSelector::Any.rank(), None);
        assert_eq!(RankSelector::from(Rank::new(2)).rank(), Some(Rank::new(2)));
    }
}
