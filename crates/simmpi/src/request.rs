//! Non-blocking request handles.
//!
//! `isend` is eager (the message is already in flight when the call
//! returns), so a send request only carries the bookkeeping needed to report
//! completion. `irecv` defers matching to `wait`: the request records the
//! selectors, and the matching (plus the virtual-time arithmetic) happens
//! when the request is waited on. This mirrors how the paper's apps use
//! non-blocking MPI (post, then `MPI_Wait`/`MPI_Waitall`).

use bytes::Bytes;

use crate::message::Status;
use crate::rank::RankSelector;
use crate::tag::TagSelector;

/// Outcome of a non-blocking completion test
/// ([`Communicator::test`](crate::Communicator::test)).
#[derive(Debug)]
pub enum TestOutcome<R> {
    /// The operation completed; receives carry their payload.
    Completed(Option<(Bytes, Status)>),
    /// Not complete yet; the request is handed back for a later test or
    /// wait.
    Pending(R),
}

impl<R> TestOutcome<R> {
    /// Whether the operation completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, TestOutcome::Completed(_))
    }
}

/// A pending non-blocking operation on a base communicator.
///
/// Obtained from [`Communicator::isend`](crate::Communicator::isend) /
/// [`Communicator::irecv`](crate::Communicator::irecv); consumed by
/// [`Communicator::wait`](crate::Communicator::wait). Requests are not
/// `Clone`: each must be waited on exactly once (dropping one without
/// waiting is allowed and simply abandons the receive).
#[derive(Debug)]
pub struct Request(pub(crate) RequestKind);

#[derive(Debug)]
pub(crate) enum RequestKind {
    /// An eager send: already complete.
    Send,
    /// A deferred receive: matched at wait time.
    Recv {
        /// Source selector, already translated to world ranks.
        src: RankSelector,
        /// Tag selector (user namespace).
        tag: TagSelector,
    },
}

impl Request {
    /// Whether this is a send request (completes without producing data).
    pub fn is_send(&self) -> bool {
        matches!(self.0, RequestKind::Send)
    }

    /// Whether this is a receive request.
    pub fn is_recv(&self) -> bool {
        matches!(self.0, RequestKind::Recv { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::Rank;

    #[test]
    fn kind_predicates() {
        let s = Request(RequestKind::Send);
        assert!(s.is_send());
        assert!(!s.is_recv());
        let r = Request(RequestKind::Recv {
            src: RankSelector::Rank(Rank::new(0)),
            tag: TagSelector::Any,
        });
        assert!(r.is_recv());
    }
}
