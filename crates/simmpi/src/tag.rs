//! Message tags, tag selectors and the internal tag-space layout.
//!
//! The wire tag is a `u64` partitioned into namespaces so that user
//! messages, collective traffic, replication-protocol traffic and
//! checkpoint-protocol traffic can never be confused, and so that distinct
//! communicators (from `split`/`dup`) are isolated:
//!
//! ```text
//! bits 63..48   communicator id (16 bits)
//! bits 47..46   namespace: 0 = user, 1 = collective, 2 = protocol
//! bits 45..0    tag value (user tag or sequence number)
//! ```

use std::fmt;

/// Number of bits available to the in-namespace tag value.
pub const TAG_VALUE_BITS: u32 = 46;
/// Highest tag value a user may supply.
pub const MAX_USER_TAG: u64 = (1 << TAG_VALUE_BITS) - 1;

const NAMESPACE_SHIFT: u32 = TAG_VALUE_BITS;
const COMM_SHIFT: u32 = 48;

/// Internal tag namespaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum Namespace {
    /// Application-supplied tags.
    User = 0,
    /// Collectives implemented over point-to-point messages.
    Collective = 1,
    /// Runtime-internal protocols (replication control, checkpoint
    /// coordination).
    Protocol = 2,
}

/// A message tag.
///
/// User code constructs tags from small integers (`Tag::from(7u64)` or
/// `7.into()`); the runtime derives namespaced wire tags internally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag(u64);

impl Tag {
    /// Creates a user-namespace tag.
    ///
    /// # Panics
    ///
    /// Panics if `value > MAX_USER_TAG`. Use [`Tag::try_new`] to handle the
    /// error instead.
    pub const fn new(value: u64) -> Self {
        // detlint::allow(R4, reason = "documented constructor contract: fails at tag-construction in setup code, never mid-protocol; Tag::try_new is the fallible path")
        Self::try_new(value).expect("tag exceeds MAX_USER_TAG")
    }

    /// Creates a user-namespace tag, failing when out of range.
    pub const fn try_new(value: u64) -> Option<Self> {
        if value <= MAX_USER_TAG {
            Some(Tag(value))
        } else {
            None
        }
    }

    /// Builds a namespaced wire tag for communicator `comm_id`.
    pub(crate) fn wire(self, comm_id: u16, ns: Namespace) -> WireTag {
        WireTag(((comm_id as u64) << COMM_SHIFT) | ((ns as u64) << NAMESPACE_SHIFT) | self.0)
    }

    /// The raw in-namespace tag value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Tag {
    fn from(v: u64) -> Self {
        Tag::new(v)
    }
}

impl From<u32> for Tag {
    fn from(v: u32) -> Self {
        Tag(v as u64)
    }
}

/// A fully-resolved tag as it appears on the wire (communicator id +
/// namespace + value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WireTag(pub(crate) u64);

impl WireTag {
    /// The in-namespace tag value.
    pub fn value(self) -> u64 {
        self.0 & MAX_USER_TAG
    }

    /// Recovers the user-facing [`Tag`].
    pub fn user_tag(self) -> Tag {
        Tag(self.value())
    }

    /// The namespace bits.
    pub fn namespace(self) -> u64 {
        (self.0 >> NAMESPACE_SHIFT) & 0b11
    }

    /// The communicator id bits.
    pub fn comm_id(self) -> u16 {
        (self.0 >> COMM_SHIFT) as u16
    }
}

/// Tag selector for receive operations: a specific tag or the wildcard
/// (`MPI_ANY_TAG`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagSelector {
    /// Match messages with this tag only.
    Tag(Tag),
    /// Match any user tag (`MPI_ANY_TAG`). Only matches user-namespace
    /// messages — protocol and collective traffic is never visible to
    /// wildcard receives.
    Any,
}

impl TagSelector {
    /// Whether this selector matches wire tag `wt` within communicator
    /// `comm_id`. User-namespace messages only: protocol and collective
    /// traffic is never visible to user-level selectors.
    pub fn matches(self, wt: WireTag, comm_id: u16) -> bool {
        if wt.comm_id() != comm_id {
            return false;
        }
        match self {
            TagSelector::Tag(t) => {
                wt.namespace() == Namespace::User as u64 && wt.value() == t.value()
            }
            TagSelector::Any => wt.namespace() == Namespace::User as u64,
        }
    }
}

impl From<Tag> for TagSelector {
    fn from(t: Tag) -> Self {
        TagSelector::Tag(t)
    }
}

impl From<u64> for TagSelector {
    fn from(v: u64) -> Self {
        TagSelector::Tag(Tag::new(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_layout_round_trips() {
        let t = Tag::new(12345);
        let wt = t.wire(7, Namespace::Collective);
        assert_eq!(wt.value(), 12345);
        assert_eq!(wt.namespace(), Namespace::Collective as u64);
        assert_eq!(wt.comm_id(), 7);
        assert_eq!(wt.user_tag(), t);
    }

    #[test]
    fn max_user_tag_accepted_and_beyond_rejected() {
        assert!(Tag::try_new(MAX_USER_TAG).is_some());
        assert!(Tag::try_new(MAX_USER_TAG + 1).is_none());
    }

    #[test]
    #[should_panic(expected = "MAX_USER_TAG")]
    fn new_panics_beyond_range() {
        let _ = Tag::new(MAX_USER_TAG + 1);
    }

    #[test]
    fn selector_respects_namespace_and_comm() {
        let user = Tag::new(5).wire(1, Namespace::User);
        let coll = Tag::new(5).wire(1, Namespace::Collective);
        let other_comm = Tag::new(5).wire(2, Namespace::User);
        assert!(TagSelector::Tag(Tag::new(5)).matches(user, 1));
        assert!(!TagSelector::Tag(Tag::new(5)).matches(coll, 1));
        assert!(!TagSelector::Tag(Tag::new(5)).matches(other_comm, 1));
        assert!(TagSelector::Any.matches(user, 1));
        assert!(!TagSelector::Any.matches(coll, 1));
    }

    #[test]
    fn namespaces_are_disjoint_for_same_value() {
        let a = Tag::new(9).wire(0, Namespace::User);
        let b = Tag::new(9).wire(0, Namespace::Protocol);
        assert_ne!(a, b);
    }
}
