//! Message envelopes and receive status.

use bytes::Bytes;

use crate::rank::Rank;
use crate::tag::{Tag, WireTag};

/// A message as stored in a rank's mailbox.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending rank (world rank of the physical sender).
    pub src: Rank,
    /// Fully-namespaced wire tag.
    pub wire_tag: WireTag,
    /// Payload bytes (reference-counted; fan-out clones are cheap).
    pub payload: Bytes,
    /// Sender's virtual clock when the message was injected, seconds.
    pub send_time: f64,
}

impl Envelope {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

/// Completion information for a receive, mirroring `MPI_Status`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Status {
    /// The rank the message actually came from (resolves `ANY_SOURCE`).
    pub source: Rank,
    /// The user tag of the message (resolves `ANY_TAG`).
    pub tag: Tag,
    /// Payload length in bytes.
    pub len: usize,
    /// Receiver's virtual clock at completion, seconds.
    pub completed_at: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::Namespace;

    #[test]
    fn envelope_len() {
        let e = Envelope {
            src: Rank::new(1),
            wire_tag: Tag::new(3).wire(0, Namespace::User),
            payload: Bytes::from_static(b"abc"),
            send_time: 0.0,
        };
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
    }

    #[test]
    fn status_is_copy() {
        let s = Status { source: Rank::new(0), tag: Tag::new(1), len: 4, completed_at: 1.0 };
        let t = s;
        assert_eq!(s, t);
    }
}
