//! Silent-data-corruption (SDC) injection.
//!
//! RedMPI's purpose beyond fail-stop resilience is detecting processes that
//! "continue operating but propagate erroneous messages" (the paper's
//! Byzantine/soft-error class, which it explicitly delegates to RedMPI's
//! voting). This module injects such corruption *under* the replication
//! layer: with a configured probability, a physical copy of an outgoing
//! message has one byte flipped. With triple redundancy the receiver's vote
//! removes the corruption; with dual redundancy it is detected and flagged.
//!
//! Injection is deterministic: whether a given physical message is
//! corrupted depends only on the seed and a per-sender message counter, so
//! replicated runs remain reproducible.

use std::cell::Cell;

/// Deterministic SDC injector configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionModel {
    /// Probability that any single *physical* message copy is corrupted.
    pub rate: f64,
    /// Seed mixed into the per-message decision.
    pub seed: u64,
    /// Only corrupt copies sent by this replica index, if set — models one
    /// faulty node rather than uniformly unreliable hardware.
    pub only_replica: Option<usize>,
}

impl CorruptionModel {
    /// A model corrupting roughly `rate` of the physical copies sent by
    /// replica `only_replica` (or by everyone when `None`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1]`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability, got {rate}");
        CorruptionModel { rate, seed, only_replica: None }
    }

    /// Restricts corruption to one faulty replica index.
    pub fn only_replica(mut self, replica: usize) -> Self {
        self.only_replica = Some(replica);
        self
    }
}

/// Per-rank injector state (message counter).
#[derive(Debug)]
pub(crate) struct CorruptionInjector {
    model: CorruptionModel,
    counter: Cell<u64>,
    injected: Cell<u64>,
}

impl CorruptionInjector {
    pub(crate) fn new(model: CorruptionModel) -> Self {
        CorruptionInjector { model, counter: Cell::new(0), injected: Cell::new(0) }
    }

    /// Number of corruptions injected by this rank so far.
    pub(crate) fn injected(&self) -> u64 {
        self.injected.get()
    }

    /// Decides (deterministically) whether the next physical copy sent by
    /// `sender_replica` from physical rank `phys` should be corrupted; if
    /// so, returns the byte index to flip within a payload of `len` bytes.
    pub(crate) fn corrupt_at(&self, phys: u32, sender_replica: usize, len: usize) -> Option<usize> {
        let n = self.counter.get();
        self.counter.set(n + 1);
        if len == 0 || self.model.rate == 0.0 {
            return None;
        }
        if let Some(only) = self.model.only_replica {
            if sender_replica != only {
                return None;
            }
        }
        // SplitMix64 over (seed, phys, counter) → uniform u64.
        let mut x = self
            .model
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((phys as u64) << 32)
            .wrapping_add(n);
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.model.rate {
            self.injected.set(self.injected.get() + 1);
            Some((x % len as u64) as usize)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_corrupts() {
        let inj = CorruptionInjector::new(CorruptionModel::new(0.0, 1));
        for _ in 0..1000 {
            assert!(inj.corrupt_at(0, 0, 100).is_none());
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn full_rate_always_corrupts_in_range() {
        let inj = CorruptionInjector::new(CorruptionModel::new(1.0, 1));
        for _ in 0..100 {
            let at = inj.corrupt_at(3, 1, 17).expect("always corrupts");
            assert!(at < 17);
        }
        assert_eq!(inj.injected(), 100);
    }

    #[test]
    fn rate_roughly_respected() {
        let inj = CorruptionInjector::new(CorruptionModel::new(0.1, 42));
        let hits = (0..10_000).filter(|_| inj.corrupt_at(0, 0, 64).is_some()).count();
        assert!((800..1200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CorruptionInjector::new(CorruptionModel::new(0.3, 7));
        let b = CorruptionInjector::new(CorruptionModel::new(0.3, 7));
        for _ in 0..200 {
            assert_eq!(a.corrupt_at(1, 0, 32), b.corrupt_at(1, 0, 32));
        }
    }

    #[test]
    fn replica_filter() {
        let inj = CorruptionInjector::new(CorruptionModel::new(1.0, 1).only_replica(2));
        assert!(inj.corrupt_at(0, 0, 8).is_none());
        assert!(inj.corrupt_at(0, 1, 8).is_none());
        assert!(inj.corrupt_at(0, 2, 8).is_some());
    }

    #[test]
    fn empty_payload_untouched() {
        let inj = CorruptionInjector::new(CorruptionModel::new(1.0, 1));
        assert!(inj.corrupt_at(0, 0, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_rate_rejected() {
        let _ = CorruptionModel::new(1.5, 0);
    }
}
