//! # redcr-red — transparent process replication over `redcr-mpi`
//!
//! A reimplementation of the paper's **RedMPI** layer: applications written
//! against [`redcr_mpi::Communicator`] run unchanged while every *virtual*
//! process is backed by `r` *physical* replicas ("a sphere"). The layer
//! interposes on the two point-to-point choke points (`send_ns`/`recv_ns`),
//! which — because collectives in `redcr-mpi` are built over point-to-point
//! messages — transparently covers collectives too, exactly as the paper
//! argues.
//!
//! ## Semantics (paper Section 3)
//!
//! * Every replica of a virtual process executes the same program and
//!   receives exactly the same messages in the same order.
//! * A send from virtual `A` to virtual `B` becomes, in **All-to-all** mode,
//!   one physical message from *each* replica of `A` to *each* replica of
//!   `B` (so a 2x-replicated pair exchanges 4 physical messages — the
//!   paper's "up to four times the number of messages").
//! * In **Msg-PlusHash** mode each receiver replica receives one full
//!   payload and hashes from the other sender replicas, cutting bandwidth.
//! * Receives compare the redundant copies: with ≥3 replicas a corrupted
//!   copy is voted out (SDC detection); with 2 replicas a mismatch is
//!   detected and reported.
//! * Wildcard receives (`MPI_ANY_SOURCE`) use the envelope-forwarding
//!   protocol of Section 3: the lowest replica of the receiver matches
//!   first, forwards the resolved envelope (sender + tag) to its own
//!   replicas, and everyone then posts specific receives.
//!
//! ## Partial redundancy
//!
//! The degree `r` may be fractional (Eqs. 5–8, via
//! [`redcr_model::partition::RedundancyPartition`]); virtual processes are
//! then split between `⌊r⌋` and `⌈r⌉` replicas using the paper's
//! interleaved placement ("every even process has a replica" at 1.5x).
//!
//! # Example
//!
//! ```
//! use redcr_red::{ReplicatedWorld, VotingMode};
//! use redcr_mpi::{Communicator, Rank, Tag};
//!
//! // 4 virtual processes at 2x redundancy: 8 physical ranks underneath.
//! let report = ReplicatedWorld::builder(4, 2.0)
//!     .expect("valid degree")
//!     .voting_mode(VotingMode::AllToAll)
//!     .run(|comm| {
//!         // Plain MPI-style code; replication is invisible.
//!         let sum = comm.allreduce_f64(
//!             &[comm.rank().index() as f64],
//!             redcr_mpi::collectives::ReduceOp::Sum,
//!         )?;
//!         assert_eq!(sum[0], 6.0);
//!         Ok(())
//!     })
//!     .expect("run failed");
//! assert_eq!(report.n_physical, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corruption;
pub mod heartbeat;
pub mod stats;
pub mod vmap;
pub mod voting;

mod replica_comm;
mod world;

pub use corruption::CorruptionModel;
pub use heartbeat::{DetectorParams, FailureDetector, HealPolicy};
pub use replica_comm::{RedRequest, ReplicaComm};
pub use stats::ReplicationStats;
pub use vmap::VirtualMap;
pub use voting::{hash_payload, VoteCost, VoteOutcome, VotingMode};
pub use world::{ReplicatedReport, ReplicatedWorld, ReplicatedWorldBuilder};
