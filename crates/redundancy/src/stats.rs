//! Replication-layer statistics: message amplification and voting events.

use std::cell::Cell;

/// Counters maintained by one replica's [`ReplicaComm`](crate::ReplicaComm).
///
/// Rank-thread-local (like the communicator itself); aggregate across ranks
/// via [`ReplicationStats::merge`].
#[derive(Debug, Default, Clone)]
pub struct ReplicationStats {
    virtual_sends: Cell<u64>,
    physical_sends: Cell<u64>,
    virtual_recvs: Cell<u64>,
    physical_recvs: Cell<u64>,
    payload_bytes_sent: Cell<u64>,
    hash_messages_sent: Cell<u64>,
    votes: Cell<u64>,
    mismatches_detected: Cell<u64>,
    corrections: Cell<u64>,
    wildcard_protocols: Cell<u64>,
    dead_peer_sends: Cell<u64>,
    missing_copies: Cell<u64>,
}

impl ReplicationStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_virtual_send(&self) {
        self.virtual_sends.set(self.virtual_sends.get() + 1);
    }

    pub(crate) fn record_physical_send(&self, bytes: usize, is_hash: bool) {
        self.physical_sends.set(self.physical_sends.get() + 1);
        self.payload_bytes_sent.set(self.payload_bytes_sent.get() + bytes as u64);
        if is_hash {
            self.hash_messages_sent.set(self.hash_messages_sent.get() + 1);
        }
    }

    pub(crate) fn record_virtual_recv(&self, physical: usize) {
        self.virtual_recvs.set(self.virtual_recvs.get() + 1);
        self.physical_recvs.set(self.physical_recvs.get() + physical as u64);
    }

    pub(crate) fn record_vote(&self, unanimous: bool, corrected: bool) {
        self.votes.set(self.votes.get() + 1);
        if !unanimous {
            self.mismatches_detected.set(self.mismatches_detected.get() + 1);
            if corrected {
                self.corrections.set(self.corrections.get() + 1);
            }
        }
    }

    pub(crate) fn record_wildcard_protocol(&self) {
        self.wildcard_protocols.set(self.wildcard_protocols.get() + 1);
    }

    pub(crate) fn record_dead_peer_send(&self) {
        self.dead_peer_sends.set(self.dead_peer_sends.get() + 1);
    }

    pub(crate) fn record_missing_copy(&self) {
        self.missing_copies.set(self.missing_copies.get() + 1);
    }

    /// Number of application-level (virtual) sends.
    pub fn virtual_sends(&self) -> u64 {
        self.virtual_sends.get()
    }

    /// Number of physical messages injected on behalf of virtual sends.
    pub fn physical_sends(&self) -> u64 {
        self.physical_sends.get()
    }

    /// Number of application-level receives completed.
    pub fn virtual_recvs(&self) -> u64 {
        self.virtual_recvs.get()
    }

    /// Number of physical messages consumed by receives.
    pub fn physical_recvs(&self) -> u64 {
        self.physical_recvs.get()
    }

    /// Payload bytes injected (full payloads and hashes alike).
    pub fn payload_bytes_sent(&self) -> u64 {
        self.payload_bytes_sent.get()
    }

    /// Number of hash-only messages sent (Msg-PlusHash mode).
    pub fn hash_messages_sent(&self) -> u64 {
        self.hash_messages_sent.get()
    }

    /// Number of votes performed.
    pub fn votes(&self) -> u64 {
        self.votes.get()
    }

    /// Number of votes where at least one copy disagreed.
    pub fn mismatches_detected(&self) -> u64 {
        self.mismatches_detected.get()
    }

    /// Number of mismatches where a majority voted the corruption out.
    pub fn corrections(&self) -> u64 {
        self.corrections.get()
    }

    /// Number of wildcard (`ANY_SOURCE`) envelope protocols executed.
    pub fn wildcard_protocols(&self) -> u64 {
        self.wildcard_protocols.get()
    }

    /// Number of physical copies *not* sent because the receiving replica
    /// was already dead (live degradation on the send path).
    pub fn dead_peer_sends(&self) -> u64 {
        self.dead_peer_sends.get()
    }

    /// Number of redundant copies a receive went without because the
    /// sending replica was dead (live degradation on the receive path).
    pub fn missing_copies(&self) -> u64 {
        self.missing_copies.get()
    }

    /// Message amplification: physical sends per virtual send.
    pub fn send_amplification(&self) -> f64 {
        let v = self.virtual_sends.get();
        if v == 0 {
            0.0
        } else {
            self.physical_sends.get() as f64 / v as f64
        }
    }

    /// A snapshot with every counter summed with `other`'s.
    pub fn merge(&self, other: &ReplicationStats) -> ReplicationStats {
        let out = ReplicationStats::new();
        out.virtual_sends.set(self.virtual_sends.get() + other.virtual_sends.get());
        out.physical_sends.set(self.physical_sends.get() + other.physical_sends.get());
        out.virtual_recvs.set(self.virtual_recvs.get() + other.virtual_recvs.get());
        out.physical_recvs.set(self.physical_recvs.get() + other.physical_recvs.get());
        out.payload_bytes_sent.set(self.payload_bytes_sent.get() + other.payload_bytes_sent.get());
        out.hash_messages_sent.set(self.hash_messages_sent.get() + other.hash_messages_sent.get());
        out.votes.set(self.votes.get() + other.votes.get());
        out.mismatches_detected
            .set(self.mismatches_detected.get() + other.mismatches_detected.get());
        out.corrections.set(self.corrections.get() + other.corrections.get());
        out.wildcard_protocols.set(self.wildcard_protocols.get() + other.wildcard_protocols.get());
        out.dead_peer_sends.set(self.dead_peer_sends.get() + other.dead_peer_sends.get());
        out.missing_copies.set(self.missing_copies.get() + other.missing_copies.get());
        out
    }

    /// A plain-old-data snapshot for sending across threads.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            virtual_sends: self.virtual_sends.get(),
            physical_sends: self.physical_sends.get(),
            virtual_recvs: self.virtual_recvs.get(),
            physical_recvs: self.physical_recvs.get(),
            payload_bytes_sent: self.payload_bytes_sent.get(),
            hash_messages_sent: self.hash_messages_sent.get(),
            votes: self.votes.get(),
            mismatches_detected: self.mismatches_detected.get(),
            corrections: self.corrections.get(),
            wildcard_protocols: self.wildcard_protocols.get(),
            dead_peer_sends: self.dead_peer_sends.get(),
            missing_copies: self.missing_copies.get(),
        }
    }
}

/// Plain-data snapshot of [`ReplicationStats`] (Send + Sync).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Application-level sends.
    pub virtual_sends: u64,
    /// Physical messages injected.
    pub physical_sends: u64,
    /// Application-level receives.
    pub virtual_recvs: u64,
    /// Physical messages consumed.
    pub physical_recvs: u64,
    /// Bytes injected.
    pub payload_bytes_sent: u64,
    /// Hash-only messages (Msg-PlusHash).
    pub hash_messages_sent: u64,
    /// Votes performed.
    pub votes: u64,
    /// Votes with disagreement.
    pub mismatches_detected: u64,
    /// Mismatches corrected by majority.
    pub corrections: u64,
    /// Wildcard protocols executed.
    pub wildcard_protocols: u64,
    /// Physical copies skipped because the receiver replica was dead.
    pub dead_peer_sends: u64,
    /// Redundant copies missing because the sender replica was dead.
    pub missing_copies: u64,
}

impl StatsSnapshot {
    /// Element-wise sum.
    pub fn add(&self, other: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            virtual_sends: self.virtual_sends + other.virtual_sends,
            physical_sends: self.physical_sends + other.physical_sends,
            virtual_recvs: self.virtual_recvs + other.virtual_recvs,
            physical_recvs: self.physical_recvs + other.physical_recvs,
            payload_bytes_sent: self.payload_bytes_sent + other.payload_bytes_sent,
            hash_messages_sent: self.hash_messages_sent + other.hash_messages_sent,
            votes: self.votes + other.votes,
            mismatches_detected: self.mismatches_detected + other.mismatches_detected,
            corrections: self.corrections + other.corrections,
            wildcard_protocols: self.wildcard_protocols + other.wildcard_protocols,
            dead_peer_sends: self.dead_peer_sends + other.dead_peer_sends,
            missing_copies: self.missing_copies + other.missing_copies,
        }
    }

    /// Message amplification: physical sends per virtual send.
    pub fn send_amplification(&self) -> f64 {
        if self.virtual_sends == 0 {
            0.0
        } else {
            self.physical_sends as f64 / self.virtual_sends as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amplification_counts() {
        let s = ReplicationStats::new();
        s.record_virtual_send();
        s.record_physical_send(10, false);
        s.record_physical_send(10, false);
        s.record_physical_send(8, true);
        assert_eq!(s.send_amplification(), 3.0);
        assert_eq!(s.payload_bytes_sent(), 28);
        assert_eq!(s.hash_messages_sent(), 1);
    }

    #[test]
    fn vote_counters() {
        let s = ReplicationStats::new();
        s.record_vote(true, false);
        s.record_vote(false, true);
        s.record_vote(false, false);
        assert_eq!(s.votes(), 3);
        assert_eq!(s.mismatches_detected(), 2);
        assert_eq!(s.corrections(), 1);
    }

    #[test]
    fn merge_and_snapshot_agree() {
        let a = ReplicationStats::new();
        a.record_virtual_send();
        a.record_physical_send(4, false);
        let b = ReplicationStats::new();
        b.record_virtual_recv(2);
        let merged = a.merge(&b);
        let sum = a.snapshot().add(&b.snapshot());
        assert_eq!(merged.snapshot(), sum);
        assert_eq!(sum.virtual_sends, 1);
        assert_eq!(sum.physical_recvs, 2);
    }

    #[test]
    fn zero_division_guard() {
        assert_eq!(ReplicationStats::new().send_amplification(), 0.0);
        assert_eq!(StatsSnapshot::default().send_amplification(), 0.0);
    }
}
