//! The interposed communicator: presents a virtual world of `N` ranks while
//! running on a physical world of `N_total` replicas.

use std::cell::Cell;
use std::sync::Arc;

use bytes::Bytes;

use redcr_mpi::tag::Namespace;
use redcr_mpi::{
    datatype, Comm, Communicator, MpiError, Rank, RankSelector, Result, Status, Tag, TagSelector,
};

use crate::corruption::{CorruptionInjector, CorruptionModel};
use crate::stats::ReplicationStats;
use crate::vmap::VirtualMap;
use crate::voting::{hash_payload, vote_hashed, vote_present, VoteCost, VotingMode};

/// Stack capacity for per-receive copy buffers: spheres up to this degree
/// gather and vote without touching the allocator (the receive path runs
/// once per virtual message — with the old per-receive `Vec`s the malloc
/// traffic dominated the replicated hot path's user time).
const STACK_COPIES: usize = 8;

/// Base of the protocol-namespace tag subrange reserved for the replication
/// layer's wildcard envelope forwarding (bit 45 set). Other protocol users
/// (e.g. checkpoint coordination) must stay below this value.
pub const ENVELOPE_TAG_BASE: u64 = 1 << 45;

/// A replicated communicator: the RedMPI-style interposition layer.
///
/// Every physical replica executes the application; `ReplicaComm` presents
/// the *virtual* rank space (`rank()`/`size()` report virtual values) and
/// translates each virtual point-to-point operation into the physical
/// fan-out described in the paper's Section 3.
#[derive(Debug)]
pub struct ReplicaComm<'a> {
    base: &'a Comm,
    vmap: Arc<VirtualMap>,
    my_virtual: Rank,
    my_replica: usize,
    mode: VotingMode,
    vote_cost: VoteCost,
    corruption: Option<CorruptionInjector>,
    stats: ReplicationStats,
    wildcard_seq: Cell<u64>,
    coll_seq: Cell<u64>,
}

impl<'a> ReplicaComm<'a> {
    /// Wraps a physical world communicator. `base.size()` must equal the
    /// map's physical size.
    ///
    /// # Panics
    ///
    /// Panics if the base communicator size does not match the map.
    pub fn new(base: &'a Comm, vmap: Arc<VirtualMap>, mode: VotingMode) -> Self {
        Self::with_vote_cost(base, vmap, mode, VoteCost::default())
    }

    /// Like [`ReplicaComm::new`] with an explicit redundant-copy processing
    /// cost model.
    ///
    /// # Panics
    ///
    /// Panics if the base communicator size does not match the map.
    pub fn with_vote_cost(
        base: &'a Comm,
        vmap: Arc<VirtualMap>,
        mode: VotingMode,
        vote_cost: VoteCost,
    ) -> Self {
        assert_eq!(
            base.size(),
            vmap.n_physical(),
            "base world size must equal the virtual map's physical size"
        );
        let (my_virtual, my_replica) = vmap.owner_of(base.rank());
        ReplicaComm {
            base,
            vmap,
            my_virtual,
            my_replica,
            mode,
            vote_cost,
            corruption: None,
            stats: ReplicationStats::new(),
            wildcard_seq: Cell::new(0),
            coll_seq: Cell::new(0),
        }
    }

    /// Enables deterministic silent-data-corruption injection on this
    /// replica's outgoing physical copies (see
    /// [`CorruptionModel`](crate::CorruptionModel)). The receiver-side
    /// voting detects — and with three or more copies, corrects — the
    /// corrupted copies.
    pub fn with_corruption(mut self, model: CorruptionModel) -> Self {
        self.corruption = Some(CorruptionInjector::new(model));
        self
    }

    /// Number of corruptions this replica has injected (diagnostics).
    pub fn corruptions_injected(&self) -> u64 {
        self.corruption.as_ref().map_or(0, CorruptionInjector::injected)
    }

    /// Applies the SDC injector to one outgoing physical copy.
    fn maybe_corrupt(&self, data: Bytes) -> Bytes {
        let Some(injector) = &self.corruption else { return data };
        match injector.corrupt_at(self.base.rank().as_u32(), self.my_replica, data.len()) {
            Some(at) => {
                let mut owned = data.to_vec();
                owned[at] ^= 0x01; // a single flipped bit
                Bytes::from(owned)
            }
            None => data,
        }
    }

    /// This process's virtual rank (same as [`Communicator::rank`]).
    pub fn virtual_rank(&self) -> Rank {
        self.my_virtual
    }

    /// This process's replica index within its sphere (0 = primary).
    pub fn replica_index(&self) -> usize {
        self.my_replica
    }

    /// This process's physical world rank.
    pub fn physical_rank(&self) -> Rank {
        self.base.rank()
    }

    /// The virtual↔physical map.
    pub fn vmap(&self) -> &VirtualMap {
        &self.vmap
    }

    /// The voting mode in effect.
    pub fn voting_mode(&self) -> VotingMode {
        self.mode
    }

    /// Replication statistics collected by this replica.
    pub fn stats(&self) -> &ReplicationStats {
        &self.stats
    }

    /// The underlying physical communicator (for diagnostics).
    pub fn base(&self) -> &Comm {
        self.base
    }

    /// Records one vote outcome in the statistics and, when tracing or
    /// metrics are on, as a flight-recorder event / counter increment.
    fn record_vote(&self, copies: usize, unanimous: bool, corrected: bool) {
        self.stats.record_vote(unanimous, corrected);
        if let Some(rec) = self.base.recorder() {
            rec.record(
                self.base.now(),
                redcr_mpi::trace::EventKind::Vote { copies: copies as u32, unanimous, corrected },
            );
        }
        if let Some(m) = self.base.metrics() {
            m.inc(redcr_mpi::metrics::CounterKey::Votes, self.base.now());
        }
    }

    /// Whether sender replica `j` (of `r_send`) sends the full payload to
    /// receiver replica `i` (hash otherwise) in Msg-PlusHash mode. The
    /// pairing rule is shared by sender and receiver: receiver `i` gets the
    /// full copy from sender `i mod r_send`.
    fn pairs_full(j: usize, i: usize, r_send: usize) -> bool {
        i % r_send == j
    }

    /// Receives the `r_send` redundant physical copies of one virtual
    /// message from `src_v` with resolved user tag `tag`, skipping replica
    /// `already` (already consumed by a wildcard match, supplied as
    /// `copies[already]`), then votes and returns the winning payload.
    ///
    /// **Live degradation:** a sender replica that fail-stopped simply
    /// contributes no copy — the vote proceeds over the surviving copies
    /// (3 → 2 → 1). Only when *every* replica of the source sphere is dead
    /// does the receive escalate: the job cannot continue, so the whole run
    /// aborts and [`MpiError::SphereDead`] is returned.
    fn gather_copies_and_vote(
        &self,
        src_v: Rank,
        tag: Tag,
        ns: Namespace,
        pre_matched: Option<(usize, Bytes)>,
    ) -> Result<Bytes> {
        // Wall-clock span over the whole gather-and-vote: the redundant
        // copy receives plus the byte-wise comparison. Host clock only;
        // the virtual vote cost below is charged identically either way.
        let _vote_span = self.base.prof().map(|p| p.span(redcr_mpi::prof::SpanKey::Vote));
        let vote_t0 = self.base.now();
        let senders = self.vmap.replicas_of(src_v);
        let r_send = senders.len();
        // Copies live in a stack buffer (sparse: `None` = sender replica
        // dead) — the common degrees must not touch the allocator on the
        // per-virtual-message path.
        let mut stack: [Option<Bytes>; STACK_COPIES] = std::array::from_fn(|_| None);
        let mut heap: Vec<Option<Bytes>>;
        let raw: &mut [Option<Bytes>] = if r_send <= STACK_COPIES {
            &mut stack[..r_send]
        } else {
            heap = vec![None; r_send];
            &mut heap
        };
        if let Some((k, payload)) = pre_matched {
            raw[k] = Some(payload);
        }
        for (j, phys) in senders.iter().enumerate() {
            if raw[j].is_some() {
                continue;
            }
            match self.base.recv_ns(RankSelector::Rank(*phys), TagSelector::Tag(tag), ns) {
                Ok((bytes, _)) => raw[j] = Some(bytes),
                Err(MpiError::DeadPeer { .. }) => self.stats.record_missing_copy(),
                Err(e) => return Err(e),
            }
        }
        let present = raw.iter().flatten().count();
        if present == 0 {
            self.base.abort_job();
            return Err(MpiError::SphereDead { virtual_rank: src_v, at: self.base.now() });
        }
        self.stats.record_virtual_recv(present);
        // Processing the redundant copies (extra buffer handling plus the
        // byte-wise comparison) happens serially on the receive path.
        let payload_len = raw.iter().flatten().map(Bytes::len).max().unwrap_or(0);
        let processing = self.vote_cost.cost(present, payload_len);
        if processing > 0.0 {
            self.base.charge_comm(processing)?;
        }

        let payload = match self.mode {
            VotingMode::AllToAll => {
                let outcome = vote_present(raw);
                self.record_vote(present, outcome.unanimous, outcome.majority);
                // detlint::allow(R4, reason = "infallible: vote_present returns the index of a present copy by construction")
                raw[outcome.winner].take().expect("winner is present")
            }
            VotingMode::MsgPlusHash => {
                if r_send == 1 {
                    self.record_vote(1, true, false);
                    // detlint::allow(R4, reason = "invariant: with r_send == 1 delivery required the sole sender copy to be present")
                    raw[0].take().expect("present")
                } else {
                    // The pairing rule is fixed at sphere creation (senders
                    // cannot renegotiate it without communicating), so the
                    // designated full-copy sender does not change when
                    // replicas die. If that sender is dead, the surviving
                    // hashes cannot reconstruct the payload: this is the
                    // documented Msg-PlusHash degradation limit and the
                    // failure is unmaskable.
                    let full_idx = self.my_replica % r_send;
                    let Some(full) = raw[full_idx].take() else {
                        self.base.abort_job();
                        return Err(MpiError::DeadPeer {
                            peer: senders[full_idx],
                            at: self.base.now(),
                        });
                    };
                    // Vote over the *present* copies only, so dead replicas
                    // do not count against the majority. `raw[full_idx]` was
                    // just taken, so walk `raw` and keep the full copy's
                    // slot as the `None` hole `vote_hashed` expects.
                    let mut hash_stack: [Option<u64>; STACK_COPIES] = [None; STACK_COPIES];
                    let mut hash_heap: Vec<Option<u64>>;
                    let hashes: &mut [Option<u64>] = if r_send <= STACK_COPIES {
                        &mut hash_stack[..r_send]
                    } else {
                        hash_heap = vec![None; r_send];
                        &mut hash_heap
                    };
                    let mut full_pos = 0;
                    let mut filled = 0usize;
                    for (j, c) in raw.iter().enumerate() {
                        if j == full_idx {
                            full_pos = filled;
                            hashes[filled] = None;
                            filled += 1;
                        } else if let Some(bytes) = c {
                            hashes[filled] = Some(datatype::decode_u64(bytes)?);
                            filled += 1;
                        }
                    }
                    let outcome = vote_hashed(&full, full_pos, &hashes[..filled]);
                    self.record_vote(present, outcome.unanimous(), outcome.majority);
                    full
                }
            }
        };
        if let Some(m) = self.base.metrics() {
            m.observe(redcr_mpi::metrics::HistKey::VoteLatency, self.base.now() - vote_t0);
        }
        Ok(payload)
    }

    /// The wildcard (`ANY_SOURCE`) receive protocol of paper Section 3.
    fn recv_wildcard(&self, tag: TagSelector, ns: Namespace) -> Result<(Bytes, Status)> {
        if ns != Namespace::User {
            return Err(MpiError::CollectiveMismatch {
                what: "wildcard receives are only supported for user messages",
            });
        }
        self.stats.record_wildcard_protocol();
        let my_replicas = self.vmap.replicas_of(self.my_virtual).to_vec();
        let wseq = self.wildcard_seq.get();
        self.wildcard_seq.set(wseq + 1);
        let envelope_tag = Tag::new(ENVELOPE_TAG_BASE | (wseq & (ENVELOPE_TAG_BASE - 1)));

        // Leadership with failover: the acting leader is the lowest-indexed
        // *live* replica of this sphere. A non-zero replica tries to learn
        // the resolved envelope from each lower-indexed candidate in order;
        // a candidate that fail-stopped without forwarding yields DeadPeer
        // and the search moves on. If every lower candidate is dead, this
        // replica becomes the leader and resolves the wildcard itself.
        let mut learned: Option<(Rank, Tag)> = None;
        for &cand in &my_replicas[..self.my_replica] {
            match self.base.recv_ns(
                RankSelector::Rank(cand),
                TagSelector::Tag(envelope_tag),
                Namespace::Protocol,
            ) {
                Ok((bytes, _)) => {
                    let vals = datatype::decode_u64s(&bytes)?;
                    if vals.len() != 3 {
                        return Err(MpiError::DecodeError { what: "wildcard envelope" });
                    }
                    learned = Some((Rank::new(vals[0] as u32), Tag::new(vals[1])));
                    break;
                }
                Err(MpiError::DeadPeer { .. }) => continue,
                Err(e) => return Err(e),
            }
        }

        let (src_v, resolved_tag, pre_matched) = match learned {
            None => {
                // Acting leader (replica 0, or every lower replica is
                // dead): post the single wildcard receive.
                if self.my_replica > 0 {
                    // Leadership moved to this replica — every lower-indexed
                    // replica of the sphere died.
                    if let Some(rec) = self.base.recorder() {
                        rec.record(
                            self.base.now(),
                            redcr_mpi::trace::EventKind::Failover {
                                sphere: self.my_virtual.as_u32(),
                            },
                        );
                    }
                    if let Some(m) = self.base.metrics() {
                        m.inc(redcr_mpi::metrics::CounterKey::Failovers, self.base.now());
                    }
                }
                let (bytes, status) = self.base.recv_ns(RankSelector::Any, tag, ns)?;
                let (src_v, k) = self.vmap.owner_of(status.source);
                (src_v, status.tag, Some((k, bytes)))
            }
            Some((src_v, t)) => (src_v, t, None),
        };

        // Relay the resolved envelope to every higher-indexed replica —
        // even when we learned it ourselves. A leader (or relayer) can
        // fail-stop partway through its forwarding loop; unconditional
        // relaying guarantees that the lowest live replica's resolution
        // reaches every live replica above it, so the sphere never diverges
        // and never deadlocks waiting on a forward that will not come.
        // Encode once and fan the same shared buffer out to every replica
        // (a `Bytes` clone is a refcount bump, not a copy).
        let envelope = datatype::u64s_to_bytes(&[
            src_v.as_u32() as u64,
            resolved_tag.value(),
            pre_matched.as_ref().map_or(0, |(k, _)| *k as u64),
        ]);
        for replica in &my_replicas[self.my_replica + 1..] {
            match self.base.send_ns(*replica, envelope_tag, envelope.clone(), Namespace::Protocol) {
                Ok(()) | Err(MpiError::DeadPeer { .. }) => {}
                Err(e) => return Err(e),
            }
        }

        let payload = self.gather_copies_and_vote(src_v, resolved_tag, ns, pre_matched)?;
        let status = Status {
            source: src_v,
            tag: resolved_tag,
            len: payload.len(),
            completed_at: self.base.now(),
        };
        Ok((payload, status))
    }

    /// Specific-source receive: resolve the tag on the first replica if the
    /// tag is a wildcard, then gather all copies and vote.
    fn recv_specific(
        &self,
        src_v: Rank,
        tag: TagSelector,
        ns: Namespace,
    ) -> Result<(Bytes, Status)> {
        if src_v.index() >= self.vmap.n_virtual() {
            return Err(MpiError::InvalidRank { rank: src_v.index(), size: self.vmap.n_virtual() });
        }
        let (resolved_tag, pre_matched) = match tag {
            TagSelector::Tag(t) => (t, None),
            TagSelector::Any => {
                // Match one replica's copy with ANY_TAG to fix the tag,
                // then collect the rest with the resolved tag. Normally the
                // first replica resolves; if it fail-stopped without a
                // buffered copy, fail over to the next live sender replica.
                let senders = self.vmap.replicas_of(src_v);
                let mut resolved = None;
                for (k, phys) in senders.iter().enumerate() {
                    match self.base.recv_ns(RankSelector::Rank(*phys), TagSelector::Any, ns) {
                        Ok((bytes, status)) => {
                            resolved = Some((status.tag, Some((k, bytes))));
                            break;
                        }
                        Err(MpiError::DeadPeer { .. }) => continue,
                        Err(e) => return Err(e),
                    }
                }
                match resolved {
                    Some(r) => r,
                    None => {
                        self.base.abort_job();
                        return Err(MpiError::SphereDead {
                            virtual_rank: src_v,
                            at: self.base.now(),
                        });
                    }
                }
            }
        };
        let payload = self.gather_copies_and_vote(src_v, resolved_tag, ns, pre_matched)?;
        let status = Status {
            source: src_v,
            tag: resolved_tag,
            len: payload.len(),
            completed_at: self.base.now(),
        };
        Ok((payload, status))
    }
}

/// A pending non-blocking operation on a [`ReplicaComm`]. Wraps the set of
/// physical operations belonging to one virtual operation (the paper's
/// "set of request handles" with an identifying handle returned to the
/// application).
#[derive(Debug)]
pub struct RedRequest(RedRequestKind);

#[derive(Debug)]
enum RedRequestKind {
    /// All physical sends already injected (eager).
    Send,
    /// Deferred virtual receive.
    Recv { src: RankSelector, tag: TagSelector },
}

impl Communicator for ReplicaComm<'_> {
    type Request = RedRequest;

    fn rank(&self) -> Rank {
        self.my_virtual
    }

    fn size(&self) -> usize {
        self.vmap.n_virtual()
    }

    fn now(&self) -> f64 {
        self.base.now()
    }

    fn compute(&self, seconds: f64) -> Result<()> {
        self.base.compute(seconds)
    }

    fn send_ns(&self, dest: Rank, tag: Tag, data: Bytes, ns: Namespace) -> Result<()> {
        if dest.index() >= self.vmap.n_virtual() {
            return Err(MpiError::InvalidRank { rank: dest.index(), size: self.vmap.n_virtual() });
        }
        self.stats.record_virtual_send();
        let receivers = self.vmap.replicas_of(dest);
        let r_send = self.vmap.replica_count(self.my_virtual);
        // Live degradation: copies destined to a fail-stopped replica are
        // skipped (the runtime reports them as DeadPeer). The corruption
        // injector is still consulted for skipped copies so its counter
        // stream — and therefore the payloads delivered to survivors —
        // stays identical to the failure-free run. Only when *no* replica
        // of the destination sphere accepted a copy is the failure
        // unmaskable and escalated to a job abort.
        let mut delivered = 0usize;
        match self.mode {
            VotingMode::AllToAll => {
                for phys in receivers {
                    let copy = self.maybe_corrupt(data.clone());
                    match self.base.send_ns(*phys, tag, copy, ns) {
                        Ok(()) => {
                            self.stats.record_physical_send(data.len(), false);
                            delivered += 1;
                        }
                        Err(MpiError::DeadPeer { .. }) => self.stats.record_dead_peer_send(),
                        Err(e) => return Err(e),
                    }
                }
            }
            VotingMode::MsgPlusHash => {
                let hash = datatype::u64s_to_bytes(&[hash_payload(&data)]);
                for (i, phys) in receivers.iter().enumerate() {
                    if r_send == 1 || Self::pairs_full(self.my_replica, i, r_send) {
                        let copy = self.maybe_corrupt(data.clone());
                        match self.base.send_ns(*phys, tag, copy, ns) {
                            Ok(()) => {
                                self.stats.record_physical_send(data.len(), false);
                                delivered += 1;
                            }
                            Err(MpiError::DeadPeer { .. }) => self.stats.record_dead_peer_send(),
                            Err(e) => return Err(e),
                        }
                    } else {
                        match self.base.send_ns(*phys, tag, hash.clone(), ns) {
                            Ok(()) => {
                                self.stats.record_physical_send(hash.len(), true);
                                delivered += 1;
                            }
                            Err(MpiError::DeadPeer { .. }) => self.stats.record_dead_peer_send(),
                            Err(e) => return Err(e),
                        }
                    }
                }
            }
        }
        if delivered == 0 {
            self.base.abort_job();
            return Err(MpiError::SphereDead { virtual_rank: dest, at: self.base.now() });
        }
        Ok(())
    }

    fn recv_ns(
        &self,
        src: RankSelector,
        tag: TagSelector,
        ns: Namespace,
    ) -> Result<(Bytes, Status)> {
        match src {
            RankSelector::Rank(v) => self.recv_specific(v, tag, ns),
            RankSelector::Any => self.recv_wildcard(tag, ns),
        }
    }

    fn isend(&self, dest: Rank, tag: Tag, data: Bytes) -> Result<Self::Request> {
        self.send_ns(dest, tag, data, Namespace::User)?;
        Ok(RedRequest(RedRequestKind::Send))
    }

    fn irecv(&self, src: RankSelector, tag: TagSelector) -> Result<Self::Request> {
        Ok(RedRequest(RedRequestKind::Recv { src, tag }))
    }

    fn wait(&self, req: Self::Request) -> Result<Option<(Bytes, Status)>> {
        match req.0 {
            RedRequestKind::Send => Ok(None),
            RedRequestKind::Recv { src, tag } => {
                let (bytes, status) = self.recv_ns(src, tag, Namespace::User)?;
                Ok(Some((bytes, status)))
            }
        }
    }

    fn iprobe(&self, src: RankSelector, tag: TagSelector) -> Result<Option<Status>> {
        // Probe the primary replica of the (virtual) source, failing over
        // to the next replica when the probed one is dead with nothing
        // buffered. Note that, as in RedMPI, probe results are advisory:
        // replicas may observe different instantaneous states, so
        // applications must not let control flow diverge on iprobe
        // outcomes.
        let virtualize = |s: Status| {
            let (v, _) = self.vmap.owner_of(s.source);
            Status { source: v, ..s }
        };
        match src {
            RankSelector::Rank(v) => {
                if v.index() >= self.vmap.n_virtual() {
                    return Err(MpiError::InvalidRank {
                        rank: v.index(),
                        size: self.vmap.n_virtual(),
                    });
                }
                for phys in self.vmap.replicas_of(v) {
                    if let Some(s) = self.base.iprobe(RankSelector::Rank(*phys), tag)? {
                        return Ok(Some(virtualize(s)));
                    }
                    if !self.base.peer_dead_by_now(*phys) {
                        // Live replica with nothing buffered: the message
                        // has not arrived yet.
                        return Ok(None);
                    }
                    // Dead with nothing buffered: this replica will never
                    // deliver — consult the next one.
                }
                Ok(None)
            }
            RankSelector::Any => Ok(self.base.iprobe(RankSelector::Any, tag)?.map(virtualize)),
        }
    }

    fn probe(&self, src: RankSelector, tag: TagSelector) -> Result<Status> {
        match src {
            RankSelector::Rank(v) => {
                if v.index() >= self.vmap.n_virtual() {
                    return Err(MpiError::InvalidRank {
                        rank: v.index(),
                        size: self.vmap.n_virtual(),
                    });
                }
                // Blocking probe with replica failover, mirroring
                // `gather_copies_and_vote`'s degradation.
                for phys in self.vmap.replicas_of(v) {
                    match self.base.probe(RankSelector::Rank(*phys), tag) {
                        Ok(s) => {
                            let (v, _) = self.vmap.owner_of(s.source);
                            return Ok(Status { source: v, ..s });
                        }
                        Err(MpiError::DeadPeer { .. }) => continue,
                        Err(e) => return Err(e),
                    }
                }
                self.base.abort_job();
                Err(MpiError::SphereDead { virtual_rank: v, at: self.base.now() })
            }
            RankSelector::Any => {
                let s = self.base.probe(RankSelector::Any, tag)?;
                let (v, _) = self.vmap.owner_of(s.source);
                Ok(Status { source: v, ..s })
            }
        }
    }

    fn test(&self, req: Self::Request) -> Result<redcr_mpi::TestOutcome<Self::Request>> {
        match req.0 {
            RedRequestKind::Send => Ok(redcr_mpi::TestOutcome::Completed(None)),
            RedRequestKind::Recv { src: RankSelector::Rank(v), tag } => {
                // The primary copy's arrival is the completion signal; the
                // sibling copies are (at most) a short blocking receive away.
                if self.iprobe(RankSelector::Rank(v), tag)?.is_some() {
                    let out = self.recv_specific(v, tag, Namespace::User)?;
                    Ok(redcr_mpi::TestOutcome::Completed(Some(out)))
                } else {
                    Ok(redcr_mpi::TestOutcome::Pending(RedRequest(RedRequestKind::Recv {
                        src: RankSelector::Rank(v),
                        tag,
                    })))
                }
            }
            RedRequestKind::Recv { src: RankSelector::Any, tag } => {
                // Wildcard receives must run the envelope-forwarding
                // protocol on every replica in lock-step; testing them
                // non-blockingly could diverge across replicas, so they are
                // conservatively reported pending.
                Ok(redcr_mpi::TestOutcome::Pending(RedRequest(RedRequestKind::Recv {
                    src: RankSelector::Any,
                    tag,
                })))
            }
        }
    }

    fn next_collective_seq(&self) -> u64 {
        let s = self.coll_seq.get();
        self.coll_seq.set(s + 1);
        s
    }

    fn recorder(&self) -> Option<&redcr_mpi::trace::Recorder> {
        self.base.recorder()
    }

    fn metrics(&self) -> Option<&redcr_mpi::metrics::RankMetrics> {
        self.base.metrics()
    }

    fn prof(&self) -> Option<&redcr_mpi::prof::RankProf> {
        self.base.prof()
    }
}
