//! Launching a replicated world: spawns the physical ranks, constructs the
//! per-rank [`ReplicaComm`], and aggregates results per virtual process.

use std::sync::Arc;

use redcr_model::partition::{AssignmentStrategy, RedundancyPartition};
use redcr_mpi::metrics::MetricsRegistry;
use redcr_mpi::prof::Profiler;
use redcr_mpi::trace::Collector;
use redcr_mpi::{Comm, CostModel, MpiError, Result, World};

use crate::corruption::CorruptionModel;
use crate::replica_comm::ReplicaComm;
use crate::stats::StatsSnapshot;
use crate::vmap::VirtualMap;
use crate::voting::{VoteCost, VotingMode};

/// Entry point for running a replicated application.
#[derive(Debug)]
pub struct ReplicatedWorld;

impl ReplicatedWorld {
    /// Starts building a replicated world of `n_virtual` application
    /// processes at redundancy degree `degree` (possibly fractional).
    ///
    /// # Errors
    ///
    /// Returns an error if the degree is outside the supported range or
    /// `n_virtual == 0` (see
    /// [`RedundancyPartition::new`](redcr_model::partition::RedundancyPartition::new)).
    pub fn builder(
        n_virtual: u64,
        degree: f64,
    ) -> std::result::Result<ReplicatedWorldBuilder, redcr_model::ModelError> {
        let partition = RedundancyPartition::new(n_virtual, degree)?;
        Ok(ReplicatedWorldBuilder {
            partition,
            mode: VotingMode::default(),
            vote_cost: VoteCost::default(),
            corruption: None,
            cost: CostModel::default(),
            abort_horizon: f64::INFINITY,
            start_time: 0.0,
            death_times: None,
            trace: None,
            metrics: None,
            profiler: None,
            workers: None,
        })
    }
}

/// Builder for a replicated run.
#[derive(Debug, Clone)]
pub struct ReplicatedWorldBuilder {
    partition: RedundancyPartition,
    mode: VotingMode,
    vote_cost: VoteCost,
    corruption: Option<CorruptionModel>,
    cost: CostModel,
    abort_horizon: f64,
    start_time: f64,
    death_times: Option<Vec<f64>>,
    trace: Option<Arc<Collector>>,
    metrics: Option<Arc<MetricsRegistry>>,
    profiler: Option<Arc<Profiler>>,
    workers: Option<usize>,
}

impl ReplicatedWorldBuilder {
    /// Uses an explicit replica placement strategy (default: the paper's
    /// interleaved placement).
    ///
    /// # Errors
    ///
    /// Returns an error if the partition cannot be rebuilt (should not
    /// happen for parameters that already validated).
    pub fn strategy(
        mut self,
        strategy: AssignmentStrategy,
    ) -> std::result::Result<Self, redcr_model::ModelError> {
        self.partition = RedundancyPartition::with_strategy(
            self.partition.n_virtual(),
            self.partition.degree(),
            strategy,
        )?;
        Ok(self)
    }

    /// Sets the voting mode (default [`VotingMode::AllToAll`], as in the
    /// paper's experiments).
    pub fn voting_mode(mut self, mode: VotingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the communication cost model.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the redundant-copy processing (voting) cost model. Use
    /// [`VoteCost::zero`] for purely functional runs.
    pub fn vote_cost(mut self, vote_cost: VoteCost) -> Self {
        self.vote_cost = vote_cost;
        self
    }

    /// Enables deterministic silent-data-corruption injection on outgoing
    /// physical copies (RedMPI's SDC-detection scenario).
    pub fn corruption(mut self, model: CorruptionModel) -> Self {
        self.corruption = Some(model);
        self
    }

    /// Sets the fail-stop abort horizon in virtual seconds (see
    /// [`redcr_mpi::WorldBuilder::abort_horizon`]).
    pub fn abort_horizon(mut self, t: f64) -> Self {
        self.abort_horizon = t;
        self
    }

    /// Starts all clocks at `t` virtual seconds (checkpoint resume).
    pub fn start_time(mut self, t: f64) -> Self {
        self.start_time = t;
        self
    }

    /// Sets **per-physical-rank fail-stop times** (absolute virtual
    /// seconds, `f64::INFINITY` = never; indexed by physical rank, i.e.
    /// the virtual map's layout). A dead replica degrades its sphere live:
    /// surviving replicas keep the run going, voting over fewer copies,
    /// until the *last* replica of some sphere dies — only then does the
    /// job abort. See [`redcr_mpi::WorldBuilder::death_times`].
    pub fn death_times(mut self, times: Vec<f64>) -> Self {
        self.death_times = Some(times);
        self
    }

    /// Enables flight recording into `collector` (see
    /// [`redcr_mpi::WorldBuilder::trace`]). The replication layer adds its
    /// own events on top of the base runtime's: per-message vote outcomes
    /// and wildcard-receive leader failovers.
    pub fn trace(mut self, collector: Arc<Collector>) -> Self {
        self.trace = Some(collector);
        self
    }

    /// Enables metrics collection into `registry` (see
    /// [`redcr_mpi::WorldBuilder::metrics`]). The replication layer adds
    /// its own counters on top of the base runtime's: votes, wildcard
    /// leader failovers, and per-receive vote latency.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Enables wall-clock self-profiling into `profiler` (see
    /// [`redcr_mpi::WorldBuilder::profiler`]). The replication layer times
    /// its own receive-path voting on top of the base runtime's mailbox
    /// spans.
    pub fn profiler(mut self, profiler: Arc<Profiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Pins the scheduler worker count of the underlying physical world
    /// (see [`redcr_mpi::WorldBuilder::workers`]). A host-side throughput
    /// knob only: results are bit-identical at any worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Number of physical ranks this configuration will spawn.
    pub fn n_physical(&self) -> usize {
        self.partition.total_physical() as usize
    }

    /// Runs `f` on every physical replica. The closure sees the *virtual*
    /// world through its [`ReplicaComm`].
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying world fails to run. Per-replica
    /// application errors are reported in the returned
    /// [`ReplicatedReport::results`].
    pub fn run<T, F>(self, f: F) -> Result<ReplicatedReport<T>>
    where
        T: Send,
        F: Fn(&ReplicaComm) -> Result<T> + Send + Sync,
    {
        let vmap = Arc::new(VirtualMap::new(self.partition.clone()));
        let n_physical = vmap.n_physical();
        let mode = self.mode;
        let vote_cost = self.vote_cost;
        let corruption = self.corruption;
        let vmap_outer = Arc::clone(&vmap);
        let f = &f;
        let mut world = World::builder(n_physical)
            .cost_model(self.cost)
            .abort_horizon(self.abort_horizon)
            .start_time(self.start_time);
        if let Some(times) = self.death_times {
            world = world.death_times(times);
        }
        if let Some(collector) = self.trace {
            world = world.trace(collector);
        }
        if let Some(registry) = self.metrics {
            world = world.metrics(registry);
        }
        if let Some(profiler) = self.profiler {
            world = world.profiler(profiler);
        }
        if let Some(workers) = self.workers {
            world = world.workers(workers);
        }
        let report = world.run(move |base: &Comm| {
            let mut comm = ReplicaComm::with_vote_cost(base, Arc::clone(&vmap), mode, vote_cost);
            if let Some(model) = corruption {
                comm = comm.with_corruption(model);
            }
            let out = f(&comm)?;
            Ok((out, comm.stats().snapshot()))
        })?;

        let mut results = Vec::with_capacity(n_physical);
        let mut stats = StatsSnapshot::default();
        for r in report.results {
            match r {
                Ok((value, snap)) => {
                    stats = stats.add(&snap);
                    results.push(Ok(value));
                }
                Err(e) => results.push(Err(e)),
            }
        }
        Ok(ReplicatedReport {
            vmap: vmap_outer,
            results,
            stats,
            max_virtual_time: report.max_virtual_time,
            aborted: report.aborted,
            dead_ranks: report.dead_ranks,
            physical_messages: report.messages_sent,
            physical_bytes: report.bytes_sent,
            n_physical,
        })
    }
}

/// Outcome of a replicated run.
#[derive(Debug)]
pub struct ReplicatedReport<T> {
    vmap: Arc<VirtualMap>,
    /// Per-*physical*-rank results.
    pub results: Vec<Result<T>>,
    /// Aggregated replication statistics over all replicas.
    pub stats: StatsSnapshot,
    /// Simulated wallclock of the run, seconds.
    pub max_virtual_time: f64,
    /// Whether the run aborted (fail-stop horizon, sphere death, or rank
    /// error).
    pub aborted: bool,
    /// Physical ranks that fail-stopped at their injected death time
    /// during the run (ascending order).
    pub dead_ranks: Vec<usize>,
    /// Physical point-to-point messages injected (from the base runtime).
    pub physical_messages: u64,
    /// Physical payload bytes injected.
    pub physical_bytes: u64,
    /// Number of physical ranks that ran.
    pub n_physical: usize,
}

impl<T> ReplicatedReport<T> {
    /// The virtual↔physical map of the run.
    pub fn vmap(&self) -> &VirtualMap {
        &self.vmap
    }

    /// The result of virtual rank `v`'s primary replica (replica 0).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn primary_result(&self, v: u32) -> &Result<T> {
        let phys = self.vmap.replicas_of(redcr_mpi::Rank::new(v))[0];
        &self.results[phys.index()]
    }

    /// Results of every replica of virtual rank `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn replica_results(&self, v: u32) -> Vec<&Result<T>> {
        self.vmap
            .replicas_of(redcr_mpi::Rank::new(v))
            .iter()
            .map(|p| &self.results[p.index()])
            .collect()
    }

    /// Primary-replica results for all virtual ranks, or the first error.
    ///
    /// # Errors
    ///
    /// Returns the lowest-virtual-rank error if any primary failed.
    pub fn into_primary_results(mut self) -> Result<Vec<T>>
    where
        T: Default,
    {
        let mut out = Vec::with_capacity(self.vmap.n_virtual());
        for v in 0..self.vmap.n_virtual() {
            let phys = self.vmap.replicas_of(redcr_mpi::Rank::new(v as u32))[0];
            let slot = std::mem::replace(&mut self.results[phys.index()], Ok(T::default()));
            out.push(slot?);
        }
        Ok(out)
    }
}

// Keep MpiError in the public surface for doc links.
const _: Option<MpiError> = None;
