//! Virtual ↔ physical rank mapping under (partial) redundancy.
//!
//! The physical world of `N_total` ranks (Eq. 8) is laid out as:
//!
//! * physical ranks `0..N` are the **primary** replicas — physical rank `v`
//!   is replica 0 of virtual rank `v` (the paper's "active nodes");
//! * physical ranks `N..N_total` are **shadow** replicas, assigned to
//!   virtual ranks in ascending `(virtual rank, replica index)` order (the
//!   paper's "redundant nodes").
//!
//! This mirrors RedMPI's division of `MPI_COMM_WORLD` into active and
//! redundant partitions at `MPI_Init` time.

use redcr_model::partition::RedundancyPartition;
use redcr_mpi::Rank;

/// The bidirectional mapping between virtual processes and their physical
/// replicas.
#[derive(Debug, Clone)]
pub struct VirtualMap {
    partition: RedundancyPartition,
    /// `replicas[v]` = physical world ranks of virtual rank `v`, replica 0
    /// first.
    replicas: Vec<Vec<Rank>>,
    /// `owner[p]` = (virtual rank, replica index) of physical rank `p`.
    owner: Vec<(u32, u32)>,
}

impl VirtualMap {
    /// Builds the map from a partial-redundancy partition.
    pub fn new(partition: RedundancyPartition) -> Self {
        let n = partition.n_virtual() as usize;
        let total = partition.total_physical() as usize;
        let mut replicas: Vec<Vec<Rank>> = (0..n).map(|v| vec![Rank::new(v as u32)]).collect();
        let mut owner = vec![(0u32, 0u32); total];
        for (v, item) in owner.iter_mut().enumerate().take(n) {
            *item = (v as u32, 0);
        }
        let mut next_phys = n as u32;
        for v in 0..n as u64 {
            let count = partition.replicas_of(v);
            for k in 1..count {
                let p = Rank::new(next_phys);
                replicas[v as usize].push(p);
                owner[next_phys as usize] = (v as u32, k as u32);
                next_phys += 1;
            }
        }
        debug_assert_eq!(next_phys as usize, total);
        VirtualMap { partition, replicas, owner }
    }

    /// The underlying partition (degree, set sizes).
    pub fn partition(&self) -> &RedundancyPartition {
        &self.partition
    }

    /// Number of virtual processes `N`.
    pub fn n_virtual(&self) -> usize {
        self.partition.n_virtual() as usize
    }

    /// Number of physical processes `N_total` (Eq. 8).
    pub fn n_physical(&self) -> usize {
        self.owner.len()
    }

    /// Physical world ranks of virtual rank `v`'s replicas (replica 0 first).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn replicas_of(&self, v: Rank) -> &[Rank] {
        &self.replicas[v.index()]
    }

    /// Number of replicas of virtual rank `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn replica_count(&self, v: Rank) -> usize {
        self.replicas[v.index()].len()
    }

    /// The virtual rank and replica index of physical rank `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn owner_of(&self, p: Rank) -> (Rank, usize) {
        let (v, k) = self.owner[p.index()];
        (Rank::new(v), k as usize)
    }

    /// Iterates over `(virtual rank, replica slice)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Rank, &[Rank])> + '_ {
        self.replicas.iter().enumerate().map(|(v, r)| (Rank::new(v as u32), r.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(n: u64, r: f64) -> VirtualMap {
        VirtualMap::new(RedundancyPartition::new(n, r).unwrap())
    }

    #[test]
    fn identity_at_degree_one() {
        let m = map(4, 1.0);
        assert_eq!(m.n_physical(), 4);
        for v in 0..4u32 {
            assert_eq!(m.replicas_of(Rank::new(v)), &[Rank::new(v)]);
            assert_eq!(m.owner_of(Rank::new(v)), (Rank::new(v), 0));
        }
    }

    #[test]
    fn dual_redundancy_layout() {
        let m = map(3, 2.0);
        assert_eq!(m.n_physical(), 6);
        // Primaries are identity; shadows assigned in order.
        assert_eq!(m.replicas_of(Rank::new(0)), &[Rank::new(0), Rank::new(3)]);
        assert_eq!(m.replicas_of(Rank::new(1)), &[Rank::new(1), Rank::new(4)]);
        assert_eq!(m.replicas_of(Rank::new(2)), &[Rank::new(2), Rank::new(5)]);
        assert_eq!(m.owner_of(Rank::new(4)), (Rank::new(1), 1));
    }

    #[test]
    fn partial_degree_every_even_rank_replicated() {
        // 1.5x over 4 virtual ranks: ranks 0 and 2 get shadows.
        let m = map(4, 1.5);
        assert_eq!(m.n_physical(), 6);
        assert_eq!(m.replica_count(Rank::new(0)), 2);
        assert_eq!(m.replica_count(Rank::new(1)), 1);
        assert_eq!(m.replica_count(Rank::new(2)), 2);
        assert_eq!(m.replica_count(Rank::new(3)), 1);
        assert_eq!(m.replicas_of(Rank::new(0))[1], Rank::new(4));
        assert_eq!(m.replicas_of(Rank::new(2))[1], Rank::new(5));
    }

    #[test]
    fn owner_inverts_replicas() {
        for r in [1.0, 1.25, 1.5, 2.0, 2.75, 3.0] {
            let m = map(9, r);
            for (v, reps) in m.iter() {
                for (k, p) in reps.iter().enumerate() {
                    assert_eq!(m.owner_of(*p), (v, k), "r={r} v={v} k={k}");
                }
            }
        }
    }

    #[test]
    fn triple_redundancy_counts() {
        let m = map(5, 3.0);
        assert_eq!(m.n_physical(), 15);
        for v in 0..5u32 {
            assert_eq!(m.replica_count(Rank::new(v)), 3);
        }
    }
}
