//! Redundant-message comparison and voting.
//!
//! In **All-to-all** mode every receiver replica holds `r` full copies of
//! each virtual message; in **Msg-PlusHash** mode it holds one full copy
//! plus `r−1` hashes. Copies are compared byte-wise (payloads are produced
//! deterministically, so honest replicas agree bitwise); with three or more
//! copies a corrupted minority is voted out, mirroring RedMPI's silent-data-
//! corruption detection.

use bytes::Bytes;

/// Virtual-time cost of processing redundant copies at the receiver
/// (posting extra receives, copying buffers, byte-wise comparison). RedMPI
/// performs this work serially on the receive path; charging it is what
/// produces the super-linear failure-free overhead the paper measures in
/// Table 5 / Figure 10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoteCost {
    /// Fixed cost per *extra* copy processed, seconds.
    pub per_copy: f64,
    /// Comparison cost per byte of each extra copy, seconds (≈ 1 / memcmp
    /// bandwidth).
    pub per_byte: f64,
}

impl VoteCost {
    /// A realistic default: ~1 µs bookkeeping per extra copy, ~4 GB/s
    /// comparison bandwidth.
    pub fn realistic() -> Self {
        VoteCost { per_copy: 1.0e-6, per_byte: 0.25e-9 }
    }

    /// Free voting (functional tests).
    pub fn zero() -> Self {
        VoteCost { per_copy: 0.0, per_byte: 0.0 }
    }

    /// Processing cost of a vote over `copies` copies of `len` bytes each:
    /// the `copies − 1` redundant ones are compared against the winner.
    pub fn cost(&self, copies: usize, len: usize) -> f64 {
        let extra = copies.saturating_sub(1) as f64;
        extra * (self.per_copy + len as f64 * self.per_byte)
    }
}

impl Default for VoteCost {
    fn default() -> Self {
        Self::realistic()
    }
}

/// RedMPI operating mode (paper Section 2, "RedMPI").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VotingMode {
    /// Complete messages from every sender replica to every receiver
    /// replica; full byte-wise voting. The mode used in the paper's
    /// experiments.
    #[default]
    AllToAll,
    /// One complete message plus hashes from the other sender replicas;
    /// detects corruption at reduced bandwidth.
    MsgPlusHash,
}

/// The result of comparing the redundant copies of one virtual message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteOutcome {
    /// Index (among the copies) of the winning payload.
    pub winner: usize,
    /// Indices of copies that disagreed with the winner.
    pub dissenters: Vec<usize>,
    /// Whether the winner was backed by a strict majority of copies.
    pub majority: bool,
}

impl VoteOutcome {
    /// Whether all copies agreed.
    pub fn unanimous(&self) -> bool {
        self.dissenters.is_empty()
    }
}

/// FNV-1a 64-bit hash of a payload — the hash RedMPI-style Msg-PlusHash
/// comparison uses on the wire.
pub fn hash_payload(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Votes among full payload copies: the most frequent payload wins (ties
/// broken toward the lowest copy index).
///
/// # Panics
///
/// Panics if `copies` is empty.
pub fn vote_full(copies: &[Bytes]) -> VoteOutcome {
    assert!(!copies.is_empty(), "cannot vote among zero copies");
    // Count occurrences by comparing to each distinct earlier payload.
    let n = copies.len();
    let mut counts = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if copies[i] == copies[j] {
                counts[i] += 1;
            }
        }
    }
    // detlint::allow(R4, reason = "documented contract: callers never vote over an empty copy list")
    let winner = (0..n).max_by_key(|&i| (counts[i], std::cmp::Reverse(i))).expect("non-empty");
    let dissenters: Vec<usize> = (0..n).filter(|&i| copies[i] != copies[winner]).collect();
    VoteOutcome { winner, dissenters, majority: counts[winner] * 2 > n }
}

/// Allocation-free vote outcome for the receive hot path (no dissenter
/// list — the callers there only need the winner and the two flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuickVote {
    /// Index **into the sparse copy slice** of the winning payload.
    pub winner: usize,
    /// Whether all present copies agreed.
    pub unanimous: bool,
    /// Whether the winner was backed by a strict majority of present copies.
    pub majority: bool,
}

/// [`vote_full`] over a sparse copy list (`None` = copy missing because its
/// sender replica died), allocation-free. Present copies participate in
/// index order, so the winner/tie-break behaviour is exactly
/// [`vote_full`]'s run on the dense list of present copies; the returned
/// `winner` indexes `raw` directly.
///
/// The unanimous case (every present copy bitwise-equal) is decided with a
/// single comparison pass; only an actual mismatch — silent data corruption,
/// by construction — pays for per-copy agreement counting.
///
/// # Panics
///
/// Panics if no copy is present.
pub fn vote_present(raw: &[Option<Bytes>]) -> QuickVote {
    // detlint::allow(R4, reason = "documented contract (see # Panics): the receive path only votes when at least one copy arrived")
    let first = raw.iter().position(Option::is_some).expect("cannot vote among zero copies");
    // detlint::allow(R4, reason = "infallible: first is the index of a Some found on the previous line")
    let reference = raw[first].as_ref().expect("present");
    let mut n = 0usize;
    let mut unanimous = true;
    for c in raw.iter().flatten() {
        n += 1;
        if c != reference {
            unanimous = false;
        }
    }
    if unanimous {
        return QuickVote { winner: first, unanimous: true, majority: true };
    }
    // Mismatch: count agreements pairwise, exactly like `vote_full` on the
    // dense present list (most votes wins, ties break to the lowest index).
    let mut winner = first;
    let mut winner_count = 0usize;
    for (i, a) in raw.iter().enumerate() {
        let Some(a) = a else { continue };
        let count = raw.iter().flatten().filter(|b| *b == a).count();
        if count > winner_count {
            winner = i;
            winner_count = count;
        }
    }
    QuickVote { winner, unanimous: false, majority: winner_count * 2 > n }
}

/// Votes among one full payload (`full_idx` within the logical copy list)
/// and hashes for the remaining copies, as received in Msg-PlusHash mode.
/// `hashes[i]` is `None` for the full copy's own slot.
///
/// The full payload wins unless a strict majority of hash copies disagrees
/// with it — in that case the message is flagged (the winner is still the
/// full payload, since no full alternative exists, but `majority` is false
/// and the dissenting set is reported so the caller can escalate).
///
/// # Panics
///
/// Panics if `hashes[full_idx]` is not `None` or lengths are inconsistent.
pub fn vote_hashed(full: &Bytes, full_idx: usize, hashes: &[Option<u64>]) -> VoteOutcome {
    assert!(full_idx < hashes.len(), "full index out of range");
    assert!(hashes[full_idx].is_none(), "full copy must not also have a hash");
    let full_hash = hash_payload(full);
    let mut dissenters = Vec::new();
    let mut agree = 1usize; // the full copy agrees with itself
    for (i, h) in hashes.iter().enumerate() {
        match h {
            None => {}
            Some(h) if *h == full_hash => agree += 1,
            Some(_) => dissenters.push(i),
        }
    }
    VoteOutcome { winner: full_idx, dissenters, majority: agree * 2 > hashes.len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }

    #[test]
    fn vote_cost_scales_with_extra_copies() {
        let vc = VoteCost { per_copy: 1.0, per_byte: 0.5 };
        assert_eq!(vc.cost(1, 100), 0.0, "single copy needs no comparison");
        assert_eq!(vc.cost(2, 100), 1.0 + 50.0);
        assert_eq!(vc.cost(3, 100), 2.0 * 51.0);
        assert_eq!(VoteCost::zero().cost(3, 1000), 0.0);
    }

    #[test]
    fn unanimous_vote() {
        let v = vote_full(&[b(b"x"), b(b"x"), b(b"x")]);
        assert_eq!(v.winner, 0);
        assert!(v.unanimous());
        assert!(v.majority);
    }

    #[test]
    fn majority_votes_out_corruption() {
        let v = vote_full(&[b(b"good"), b(b"BAD!"), b(b"good")]);
        assert_eq!(v.winner, 0);
        assert_eq!(v.dissenters, vec![1]);
        assert!(v.majority);
    }

    #[test]
    fn corrupted_first_copy_loses() {
        let v = vote_full(&[b(b"BAD!"), b(b"good"), b(b"good")]);
        assert_eq!(v.winner, 1);
        assert_eq!(v.dissenters, vec![0]);
        assert!(v.majority);
    }

    #[test]
    fn two_way_mismatch_detected_without_majority() {
        // Dual redundancy: detection but no correction.
        let v = vote_full(&[b(b"a"), b(b"b")]);
        assert_eq!(v.winner, 0, "tie breaks to lowest index");
        assert_eq!(v.dissenters, vec![1]);
        assert!(!v.majority);
    }

    #[test]
    fn single_copy_trivially_wins() {
        let v = vote_full(&[b(b"only")]);
        assert!(v.unanimous());
        assert!(v.majority);
    }

    #[test]
    #[should_panic(expected = "zero copies")]
    fn empty_vote_panics() {
        let _ = vote_full(&[]);
    }

    #[test]
    fn hash_is_stable_and_discriminates() {
        assert_eq!(hash_payload(b"abc"), hash_payload(b"abc"));
        assert_ne!(hash_payload(b"abc"), hash_payload(b"abd"));
        assert_ne!(hash_payload(b""), hash_payload(b"\0"));
    }

    #[test]
    fn hashed_vote_agreement() {
        let payload = b(b"data");
        let h = hash_payload(&payload);
        let v = vote_hashed(&payload, 0, &[None, Some(h), Some(h)]);
        assert!(v.unanimous());
        assert!(v.majority);
    }

    #[test]
    fn hashed_vote_detects_dissent() {
        let payload = b(b"data");
        let h = hash_payload(&payload);
        let v = vote_hashed(&payload, 1, &[Some(h ^ 1), None, Some(h)]);
        assert_eq!(v.winner, 1);
        assert_eq!(v.dissenters, vec![0]);
        assert!(v.majority, "2 of 3 copies agree");
    }

    #[test]
    fn hashed_vote_majority_against_full() {
        let payload = b(b"data");
        let bad = hash_payload(b"other");
        let v = vote_hashed(&payload, 0, &[None, Some(bad), Some(bad)]);
        assert_eq!(v.dissenters, vec![1, 2]);
        assert!(!v.majority);
    }
}
