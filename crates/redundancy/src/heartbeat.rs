//! Virtual-time heartbeat failure detection for replica spheres.
//!
//! The self-healing path (TeaMPI-style detection + FTHP-MPI-style respawn)
//! needs a *deterministic* notion of "this replica is dead" that every
//! surviving rank reaches independently, without extra message traffic on
//! the hot path. This module provides it twice over, and the two views are
//! provably equivalent:
//!
//! * [`DetectorParams`] — the **modeled** detector: replicas emit
//!   heartbeats on a fixed virtual-time grid anchored at the attempt
//!   start; a replica that dies at `d` got its last beat out strictly
//!   before `d`, and is suspected once `timeout` virtual seconds pass with
//!   no further beat. Because the death schedule is sampled up front, the
//!   suspicion time is a *closed form* over `(origin, death)` — a pure
//!   function every rank evaluates identically, which is what keeps the
//!   heal decision collective without any extra communication.
//! * [`FailureDetector`] — the **event-driven** state machine the unit
//!   tests drive beat-by-beat: observe heartbeats, check deadlines, rejoin
//!   respawned replicas, and bump per-sphere liveness epochs. Feeding it
//!   the modeled beat grid reproduces the closed form exactly.
//!
//! Determinism contract: everything here is arithmetic over virtual-time
//! `f64`s that are themselves deterministic (sampled death times, agreed
//! step boundaries). Nothing reads a wall clock, nothing iterates a
//! hash map.

/// When the executor respawns dead replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealPolicy {
    /// Never respawn: a degraded sphere stays at `r − 1` until the job
    /// ends (the source paper's model, and the bit-exact legacy path).
    #[default]
    Never,
    /// Respawn as soon as a suspicion deadline passes an agreed step
    /// boundary.
    OnDegrade,
    /// Respawn only at checkpoint boundaries (the heal replaces the due
    /// checkpoint; the relaunched segment checkpoints at its first
    /// boundary instead).
    AtCheckpoint,
}

/// Heartbeat-grid parameters of the failure detector.
///
/// `timeout` is clamped to at least one `period` at construction: a live
/// replica always gets its next beat out within one period of the last, so
/// with `timeout >= period` a replica can only be suspected **after** its
/// actual death — the detector produces no false suspicions by
/// construction (see `no_false_suspicion_for_live_replicas` in the
/// redundancy test suite).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorParams {
    period: f64,
    timeout: f64,
}

impl DetectorParams {
    /// Builds detector parameters, sanitizing out-of-domain inputs rather
    /// than failing: a non-finite or non-positive `period` falls back to
    /// 1.0 virtual second, and `timeout` is clamped to at least one
    /// period (`NaN` clamps too). An infinite `timeout` is legal and
    /// means "never suspect".
    pub fn new(period: f64, timeout: f64) -> Self {
        let period = if period.is_finite() && period > 0.0 { period } else { 1.0 };
        let timeout = if timeout >= period { timeout } else { period };
        DetectorParams { period, timeout }
    }

    /// The heartbeat period, virtual seconds.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// The suspicion timeout, virtual seconds (≥ the period).
    pub fn timeout(&self) -> f64 {
        self.timeout
    }

    /// The last heartbeat a replica dying at absolute time `death` got out,
    /// on the beat grid `origin + k·period`. A replica does **not** emit
    /// the beat that coincides with its own death (the fail-stop wins), so
    /// this is the largest grid point strictly before `death`; a replica
    /// dying at or before `origin` never beat at all and its join at
    /// `origin` counts as its last sign of life. `INFINITY` (never dies)
    /// maps to `INFINITY` (always beating).
    pub fn last_heartbeat(&self, origin: f64, death: f64) -> f64 {
        if !death.is_finite() {
            return f64::INFINITY;
        }
        let k = ((death - origin) / self.period).ceil() - 1.0;
        if k <= 0.0 {
            origin
        } else {
            origin + k * self.period
        }
    }

    /// The closed-form suspicion time for a replica dying at `death`:
    /// [`last_heartbeat`](Self::last_heartbeat) plus the timeout. Never
    /// earlier than `death` itself (see the type-level invariant), and
    /// `INFINITY` when the replica never dies or the timeout is infinite.
    pub fn suspicion_time(&self, origin: f64, death: f64) -> f64 {
        let last = self.last_heartbeat(origin, death);
        if last.is_finite() {
            last + self.timeout
        } else {
            f64::INFINITY
        }
    }
}

/// The event-driven failure-detector state machine: per-replica heartbeat
/// freshness, per-replica suspicion flags, and per-sphere liveness epochs.
///
/// The epoch of a sphere counts its membership changes: it starts at 0 and
/// is bumped once for every suspicion and once for every rejoin, so a
/// sphere that loses and regains a replica ends two epochs later. Votes
/// taken in different epochs involve different live-copy sets, which is
/// what "per-sphere liveness epochs" buys the healing layer: a vote result
/// is only comparable within one epoch.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    params: DetectorParams,
    /// Sphere index of each physical rank (dense, rank-indexed).
    sphere_of: Vec<usize>,
    /// Last sign of life per physical rank (join time or latest beat).
    last_seen: Vec<f64>,
    /// Whether the rank is currently suspected.
    suspected: Vec<bool>,
    /// Liveness epoch per sphere.
    epochs: Vec<u64>,
}

impl FailureDetector {
    /// A detector over `spheres` (physical-rank membership per sphere, as
    /// the executor's topology lists them) with every rank joining — and
    /// thus last seen — at `origin`.
    pub fn new(params: DetectorParams, spheres: &[Vec<u32>], origin: f64) -> Self {
        let n_ranks =
            spheres.iter().flat_map(|m| m.iter()).map(|&r| r as usize + 1).fold(0usize, usize::max);
        let mut sphere_of = vec![0usize; n_ranks];
        for (s, members) in spheres.iter().enumerate() {
            for &r in members {
                if let Some(slot) = sphere_of.get_mut(r as usize) {
                    *slot = s;
                }
            }
        }
        FailureDetector {
            params,
            sphere_of,
            last_seen: vec![origin; n_ranks],
            suspected: vec![false; n_ranks],
            epochs: vec![0u64; spheres.len()],
        }
    }

    /// The detector parameters.
    pub fn params(&self) -> DetectorParams {
        self.params
    }

    /// Records a heartbeat from `rank` at virtual time `t`. Beats never
    /// move freshness backwards, and a suspected rank's stale beats are
    /// ignored — only an explicit [`rejoin`](Self::rejoin) revives it.
    pub fn observe_heartbeat(&mut self, rank: u32, t: f64) {
        let r = rank as usize;
        if self.suspected.get(r).copied().unwrap_or(true) {
            return;
        }
        if let Some(last) = self.last_seen.get_mut(r) {
            if t > *last {
                *last = t;
            }
        }
    }

    /// Evaluates every deadline at virtual time `now` and returns the
    /// ranks that just became suspected, in rank order. A rank is
    /// suspected once `now >= last_seen + timeout`; a beat arriving
    /// **exactly at** the deadline and observed before the check therefore
    /// keeps the rank alive (freshness moves to the deadline itself).
    /// Each new suspicion bumps its sphere's liveness epoch.
    pub fn check(&mut self, now: f64) -> Vec<u32> {
        let mut newly = Vec::new();
        for r in 0..self.last_seen.len() {
            if self.suspected[r] || now < self.last_seen[r] + self.params.timeout {
                continue;
            }
            self.suspected[r] = true;
            if let Some(e) = self.epochs.get_mut(self.sphere_of[r]) {
                *e += 1;
            }
            newly.push(r as u32);
        }
        newly
    }

    /// Re-admits a respawned replica at virtual time `t`: clears its
    /// suspicion, resets its freshness to `t`, and bumps its sphere's
    /// liveness epoch (the live-copy set changed again).
    pub fn rejoin(&mut self, rank: u32, t: f64) {
        let r = rank as usize;
        let was_suspected = self.suspected.get(r).copied().unwrap_or(false);
        if !was_suspected {
            return;
        }
        self.suspected[r] = false;
        self.last_seen[r] = t;
        if let Some(e) = self.epochs.get_mut(self.sphere_of[r]) {
            *e += 1;
        }
    }

    /// Whether `rank` is currently suspected.
    pub fn is_suspected(&self, rank: u32) -> bool {
        self.suspected.get(rank as usize).copied().unwrap_or(false)
    }

    /// The current liveness epoch of `sphere` (0 = never degraded).
    pub fn epoch(&self, sphere: usize) -> u64 {
        self.epochs.get(sphere).copied().unwrap_or(0)
    }

    /// The absolute time at which `rank` will be suspected if it emits no
    /// further beat (its current freshness plus the timeout).
    pub fn suspicion_deadline(&self, rank: u32) -> f64 {
        self.last_seen.get(rank as usize).map_or(f64::INFINITY, |&l| l + self.params.timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_clamp_timeout_to_period() {
        let p = DetectorParams::new(2.0, 0.5);
        assert_eq!(p.period(), 2.0);
        assert_eq!(p.timeout(), 2.0, "timeout clamps up to one period");
        let p = DetectorParams::new(-1.0, f64::NAN);
        assert_eq!(p.period(), 1.0);
        assert_eq!(p.timeout(), 1.0);
        let p = DetectorParams::new(1.0, f64::INFINITY);
        assert_eq!(p.timeout(), f64::INFINITY, "infinite timeout = never suspect");
    }

    #[test]
    fn last_heartbeat_is_strictly_before_death() {
        let p = DetectorParams::new(1.0, 2.0);
        // Mid-period death: last beat at the grid point below.
        assert_eq!(p.last_heartbeat(0.0, 2.5), 2.0);
        // Death exactly on a beat: that beat never got out.
        assert_eq!(p.last_heartbeat(0.0, 3.0), 2.0);
        // Death before the first beat: the join is the last sign of life.
        assert_eq!(p.last_heartbeat(0.0, 0.25), 0.0);
        // Non-zero origin shifts the grid.
        assert_eq!(p.last_heartbeat(10.0, 12.5), 12.0);
        // Immortal replica.
        assert_eq!(p.last_heartbeat(0.0, f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn suspicion_never_precedes_death() {
        let p = DetectorParams::new(0.5, 0.75);
        for i in 0..1000 {
            let death = 0.013 * f64::from(i);
            let s = p.suspicion_time(0.0, death);
            assert!(s >= death, "suspicion {s} before death {death}");
        }
        assert_eq!(p.suspicion_time(0.0, f64::INFINITY), f64::INFINITY);
    }
}
