//! Failure-detector state machine: suspicion deadlines, epochs and the
//! closed-form heartbeat schedule the self-healing executor relies on.

use redcr_red::{DetectorParams, FailureDetector, HealPolicy};

fn spheres() -> Vec<Vec<u32>> {
    vec![vec![0, 1, 2], vec![3, 4, 5]]
}

#[test]
fn heartbeat_exactly_at_deadline_keeps_replica_alive() {
    // timeout = 2·period: a beat landing exactly on the suspicion deadline
    // refreshes the replica before check() runs at that instant only if it
    // is observed first — the detector is driven in (observe, check) order
    // per virtual tick, so an on-time beat always wins.
    let params = DetectorParams::new(1.0, 2.0);
    let mut d = FailureDetector::new(params, &spheres(), 0.0);
    for k in 1..=10u32 {
        let t = f64::from(k);
        for r in 0..6 {
            d.observe_heartbeat(r, t);
        }
        assert!(d.check(t + 2.0 - 1e-9).is_empty(), "tick {k}: false suspicion");
    }
    // The deadline itself is inclusive: with no further beats, a check at
    // last_seen + timeout suspects.
    let suspects = d.check(12.0);
    assert_eq!(suspects.len(), 6, "all replicas pass their deadline together");
}

#[test]
fn double_kill_inside_one_period_bumps_epoch_once_per_replica() {
    let params = DetectorParams::new(1.0, 1.0);
    let mut d = FailureDetector::new(params, &spheres(), 0.0);
    // Replicas 0 and 1 (same sphere) both go silent before the first beat:
    // one check sweeps both into suspicion, and the sphere's liveness epoch
    // advances once per suspected member.
    for r in [2, 3, 4, 5] {
        d.observe_heartbeat(r, 1.0);
    }
    let mut suspects = d.check(1.0);
    suspects.sort_unstable();
    assert_eq!(suspects, vec![0, 1]);
    assert!(d.is_suspected(0) && d.is_suspected(1));
    assert_eq!(d.epoch(0), 2, "two deaths in sphere 0 = two epoch bumps");
    assert_eq!(d.epoch(1), 0, "sphere 1 untouched");
    // A second check at the same instant is idempotent: no re-suspicion.
    assert!(d.check(1.0).is_empty());
    assert_eq!(d.epoch(0), 2);
}

#[test]
fn slow_but_alive_replica_is_never_falsely_suspected() {
    // The executor clamps timeout >= period, so a replica that beats every
    // period — even right at the boundary — can never be suspected while
    // alive. Drive one replica at exactly period cadence and everyone else
    // twice as fast; nobody must be suspected.
    let params = DetectorParams::new(2.0, 2.0);
    let mut d = FailureDetector::new(params, &spheres(), 0.0);
    let mut t = 0.0;
    for _ in 0..50 {
        t += 1.0;
        for r in 1..6 {
            d.observe_heartbeat(r, t);
        }
        if (t as u64).is_multiple_of(2) {
            // The slow replica only beats on even ticks: gap = period.
            d.observe_heartbeat(0, t);
        }
        assert!(d.check(t).is_empty(), "t={t}: live replica suspected");
    }
}

#[test]
fn rejoin_clears_suspicion_and_advances_epoch() {
    let params = DetectorParams::new(1.0, 1.0);
    let mut d = FailureDetector::new(params, &spheres(), 0.0);
    assert_eq!(d.check(1.0).len(), 6);
    assert_eq!(d.epoch(0), 3);
    d.rejoin(1, 5.0);
    assert!(!d.is_suspected(1));
    assert!(d.is_suspected(0) && d.is_suspected(2));
    assert_eq!(d.epoch(0), 4, "rejoin is its own liveness transition");
    // The rejoined replica is fresh from t = 5: it survives until 6…
    assert!(!d.check(5.9).contains(&1));
    // …and is re-suspected at its new deadline, bumping the epoch again.
    assert!(d.check(6.0).contains(&1));
    assert_eq!(d.epoch(0), 5);
    // Rejoining a replica that was never suspected is a no-op.
    let before = d.epoch(1);
    d.rejoin(4, 7.0);
    d.rejoin(4, 7.5);
    assert_eq!(d.epoch(1), before + 1, "second rejoin of a live replica is ignored");
}

#[test]
fn closed_form_schedule_matches_stepped_detector() {
    // The executor never steps a detector: it computes each replica's
    // suspicion time in closed form from its death time. Cross-check that
    // shortcut against an explicitly stepped detector for a grid of death
    // times and parameter choices.
    for (period, timeout) in [(1.0, 1.0), (0.5, 1.25), (2.0, 3.0)] {
        let params = DetectorParams::new(period, timeout);
        for death_steps in 1..40u32 {
            let death = f64::from(death_steps) * 0.37;
            let predicted = params.suspicion_time(0.0, death);
            // Step a fresh single-replica detector on the heartbeat grid:
            // the replica beats at every multiple of `period` strictly
            // before `death`, and the detector first suspects it at the
            // first check instant >= its deadline.
            let mut d = FailureDetector::new(params, &[vec![0]], 0.0);
            let mut k = 1u32;
            while f64::from(k) * period < death {
                d.observe_heartbeat(0, f64::from(k) * period);
                k += 1;
            }
            // Scan on a fine grid; the first suspicious instant must agree
            // with the closed form to within the grid resolution.
            let mut stepped = f64::INFINITY;
            let mut t = 0.0;
            while t < death + 4.0 * (period + timeout) {
                if !d.check(t).is_empty() {
                    stepped = t;
                    break;
                }
                t += 0.01;
            }
            assert!(
                (stepped - predicted).abs() < 0.011,
                "period={period} timeout={timeout} death={death}: \
                 stepped {stepped} vs closed-form {predicted}"
            );
        }
    }
}

#[test]
fn params_sanitize_degenerate_inputs() {
    // Non-positive or non-finite periods fall back to 1 s; timeouts clamp
    // up to the period (the no-false-suspicion guarantee).
    for bad in [0.0, -3.0, f64::NAN] {
        let p = DetectorParams::new(bad, 0.1);
        assert_eq!(p.period(), 1.0);
        assert!(p.timeout() >= p.period());
    }
    let p = DetectorParams::new(2.0, 0.5);
    assert_eq!(p.timeout(), 2.0);
    // An infinite timeout is allowed: suspicion never fires.
    let p = DetectorParams::new(1.0, f64::INFINITY);
    assert_eq!(p.suspicion_time(0.0, 5.0), f64::INFINITY);
    // HealPolicy's default is the legacy no-heal path.
    assert_eq!(HealPolicy::default(), HealPolicy::Never);
}
