//! Integration tests for the replication layer: transparency, message
//! amplification, partial redundancy, voting, wildcard protocol.

use bytes::Bytes;
use redcr_mpi::collectives::ReduceOp;
use redcr_mpi::{Communicator, CostModel, Rank, RankSelector, Tag, TagSelector};
use redcr_red::{ReplicatedWorld, VotingMode};

fn tag(v: u64) -> Tag {
    Tag::new(v)
}

/// A small deterministic program used across redundancy degrees: ring
/// exchange plus an allreduce. Returns a per-rank value that must be
/// identical under any degree (transparency).
fn ring_program(comm: &impl Communicator) -> redcr_mpi::Result<f64> {
    let me = comm.rank();
    let n = comm.size();
    let next = me.offset(1, n);
    let prev = me.offset(-1, n);
    comm.send_f64s(next, tag(1), &[me.index() as f64 * 2.0])?;
    let (vals, status) = comm.recv_f64s(prev.into(), tag(1).into())?;
    assert_eq!(status.source, prev);
    let sum = comm.allreduce_f64(&[vals[0]], ReduceOp::Sum)?;
    Ok(vals[0] * 1000.0 + sum[0])
}

#[test]
fn transparency_same_answer_at_every_degree() {
    let mut answers: Vec<Vec<f64>> = Vec::new();
    for degree in [1.0, 1.5, 2.0, 2.5, 3.0] {
        let report = ReplicatedWorld::builder(6, degree)
            .unwrap()
            .cost_model(CostModel::zero())
            .run(|comm| ring_program(comm))
            .unwrap();
        // Every replica of every virtual rank must agree.
        for v in 0..6 {
            let r: Vec<f64> = report
                .replica_results(v)
                .iter()
                .map(|res| *res.as_ref().expect("replica ok"))
                .collect();
            for x in &r[1..] {
                assert_eq!(*x, r[0], "replica divergence at degree {degree} rank {v}");
            }
        }
        let primaries: Vec<f64> =
            (0..6).map(|v| *report.primary_result(v).as_ref().unwrap()).collect();
        answers.push(primaries);
    }
    for a in &answers[1..] {
        assert_eq!(a, &answers[0], "application answer changed with redundancy degree");
    }
}

#[test]
fn dual_redundancy_quadruples_messages() {
    // Paper: "up to four times the number of messages" at 2x (all-to-all
    // mode): every virtual p2p message becomes 2 senders x 2 receivers.
    let count_for = |degree: f64| {
        let report = ReplicatedWorld::builder(4, degree)
            .unwrap()
            .cost_model(CostModel::zero())
            .run(|comm| {
                // One virtual message per rank, no collectives.
                let next = comm.rank().offset(1, comm.size());
                let prev = comm.rank().offset(-1, comm.size());
                comm.send(next, tag(7), b"payload")?;
                comm.recv(prev.into(), tag(7).into())?;
                Ok(())
            })
            .unwrap();
        report.physical_messages
    };
    let m1 = count_for(1.0);
    let m2 = count_for(2.0);
    let m3 = count_for(3.0);
    assert_eq!(m1, 4, "4 virtual messages at 1x");
    assert_eq!(m2, 4 * 4, "4x amplification at 2x redundancy");
    assert_eq!(m3, 4 * 9, "9x amplification at 3x redundancy");
}

#[test]
fn partial_redundancy_message_counts_follow_figure_1b() {
    // Figure 1(b): A (2 replicas) sends to B (1 replica): 2 physical
    // messages. B (1) sends to A (2): 2 physical messages.
    let report = ReplicatedWorld::builder(2, 1.5)
        .unwrap()
        .cost_model(CostModel::zero())
        .run(|comm| {
            if comm.rank().index() == 0 {
                // Rank 0 is replicated (even rank); sends to singleton 1.
                comm.send(Rank::new(1), tag(1), b"x")?;
                comm.recv(Rank::new(1).into(), tag(2).into())?;
            } else {
                comm.recv(Rank::new(0).into(), tag(1).into())?;
                comm.send(Rank::new(0), tag(2), b"y")?;
            }
            Ok(())
        })
        .unwrap();
    // A->B: 2 replicas of A send 1 message each to B's single replica = 2.
    // B->A: B's single replica sends to both replicas of A = 2.
    assert_eq!(report.physical_messages, 4);
    assert_eq!(report.n_physical, 3);
}

#[test]
fn collectives_work_under_partial_redundancy() {
    for degree in [1.25, 1.75, 2.25, 2.75] {
        let report = ReplicatedWorld::builder(8, degree)
            .unwrap()
            .cost_model(CostModel::zero())
            .run(|comm| {
                let me = comm.rank().index() as f64;
                let sum = comm.allreduce_f64(&[me], ReduceOp::Sum)?;
                assert_eq!(sum[0], 28.0);
                let parts = comm.allgather(Bytes::from(vec![comm.rank().index() as u8]))?;
                assert_eq!(parts.len(), 8);
                for (i, p) in parts.iter().enumerate() {
                    assert_eq!(p[0] as usize, i);
                }
                comm.barrier()?;
                Ok(())
            })
            .unwrap();
        report.into_primary_results().unwrap();
    }
}

#[test]
fn wildcard_receive_consistent_across_replicas() {
    // Ranks 1..4 send to rank 0 with distinct tags; rank 0 receives three
    // wildcard messages. All replicas of rank 0 must observe the SAME
    // senders in the SAME order (the envelope-forwarding protocol).
    let report = ReplicatedWorld::builder(4, 2.0)
        .unwrap()
        .cost_model(CostModel::zero())
        .run(|comm| {
            if comm.rank().index() == 0 {
                let mut order = Vec::new();
                for _ in 0..3 {
                    let (bytes, status) = comm.recv(RankSelector::Any, TagSelector::Any)?;
                    order.push((status.source.index(), status.tag.value(), bytes.to_vec()));
                }
                Ok(order)
            } else {
                comm.send(
                    Rank::new(0),
                    tag(comm.rank().as_u32() as u64 * 10),
                    &[comm.rank().as_u32() as u8],
                )?;
                Ok(Vec::new())
            }
        })
        .unwrap();
    let replica_views: Vec<_> =
        report.replica_results(0).iter().map(|r| r.as_ref().unwrap().clone()).collect();
    assert_eq!(replica_views.len(), 2);
    assert_eq!(replica_views[0], replica_views[1], "replicas saw different wildcard orders");
    // All three messages arrived, each consistent (source, tag, payload).
    let mut sources: Vec<usize> = replica_views[0].iter().map(|(s, _, _)| *s).collect();
    sources.sort_unstable();
    assert_eq!(sources, vec![1, 2, 3]);
    for (src, t, payload) in &replica_views[0] {
        assert_eq!(*t, *src as u64 * 10);
        assert_eq!(payload, &vec![*src as u8]);
    }
    assert!(report.stats.wildcard_protocols > 0);
}

#[test]
fn msg_plus_hash_reduces_bytes() {
    let run = |mode: VotingMode| {
        ReplicatedWorld::builder(2, 3.0)
            .unwrap()
            .voting_mode(mode)
            .cost_model(CostModel::zero())
            .run(|comm| {
                if comm.rank().index() == 0 {
                    comm.send(Rank::new(1), tag(1), &[7u8; 4096])?;
                } else {
                    let (bytes, _) = comm.recv(Rank::new(0).into(), tag(1).into())?;
                    assert_eq!(bytes.len(), 4096);
                    assert!(bytes.iter().all(|b| *b == 7));
                }
                Ok(())
            })
            .unwrap()
    };
    let full = run(VotingMode::AllToAll);
    let hashed = run(VotingMode::MsgPlusHash);
    // Same number of physical messages, far fewer bytes.
    assert_eq!(full.physical_messages, hashed.physical_messages);
    assert!(
        (hashed.physical_bytes as f64) < 0.5 * full.physical_bytes as f64,
        "hashed {} vs full {}",
        hashed.physical_bytes,
        full.physical_bytes
    );
    assert!(hashed.stats.hash_messages_sent > 0);
    assert_eq!(full.stats.hash_messages_sent, 0);
}

#[test]
fn nonblocking_requests_under_redundancy() {
    let report = ReplicatedWorld::builder(3, 2.0)
        .unwrap()
        .cost_model(CostModel::zero())
        .run(|comm| {
            if comm.rank().index() == 0 {
                let r1 = comm.irecv(Rank::new(1).into(), tag(1).into())?;
                let r2 = comm.irecv(Rank::new(2).into(), tag(2).into())?;
                let done = comm.waitall([r1, r2])?;
                let a = done[0].as_ref().unwrap().0[0];
                let b = done[1].as_ref().unwrap().0[0];
                Ok(a + b)
            } else {
                let t = tag(comm.rank().as_u32() as u64);
                let req =
                    comm.isend(Rank::new(0), t, Bytes::from(vec![comm.rank().as_u32() as u8]))?;
                comm.wait(req)?;
                Ok(0)
            }
        })
        .unwrap();
    assert_eq!(*report.primary_result(0).as_ref().unwrap(), 3);
}

#[test]
fn replication_overhead_visible_in_virtual_time() {
    // With a non-zero per-message cost, higher redundancy means more
    // communication time — the paper's Eq. 1 / Table 5 effect.
    let cost = CostModel { latency: 1e-5, byte_time: 1e-9, msg_overhead: 1e-5 };
    let time_for = |degree: f64| {
        ReplicatedWorld::builder(8, degree)
            .unwrap()
            .cost_model(cost)
            .run(|comm| {
                for _ in 0..20 {
                    comm.compute(1e-4)?;
                    let next = comm.rank().offset(1, comm.size());
                    let prev = comm.rank().offset(-1, comm.size());
                    comm.send_f64s(next, tag(3), &[1.0; 64])?;
                    comm.recv_f64s(prev.into(), tag(3).into())?;
                }
                Ok(())
            })
            .unwrap()
            .max_virtual_time
    };
    let t1 = time_for(1.0);
    let t15 = time_for(1.5);
    let t2 = time_for(2.0);
    let t3 = time_for(3.0);
    assert!(t1 < t15, "t1={t1} t15={t15}");
    assert!(t15 < t2, "t15={t15} t2={t2}");
    assert!(t2 < t3, "t2={t2} t3={t3}");
}

#[test]
fn stats_amplification_matches_mode() {
    let report = ReplicatedWorld::builder(4, 2.0)
        .unwrap()
        .cost_model(CostModel::zero())
        .run(|comm| {
            let next = comm.rank().offset(1, comm.size());
            let prev = comm.rank().offset(-1, comm.size());
            comm.send(next, tag(9), b"m")?;
            comm.recv(prev.into(), tag(9).into())?;
            Ok(())
        })
        .unwrap();
    // Each replica's send fans out to 2 physical receivers: amplification 2
    // per replica; with 2 sending replicas the wire sees 4x total.
    assert!((report.stats.send_amplification() - 2.0).abs() < 1e-9);
    assert_eq!(report.stats.votes, report.stats.virtual_recvs);
    assert_eq!(report.stats.mismatches_detected, 0);
}

#[test]
fn degree_one_is_passthrough() {
    let report = ReplicatedWorld::builder(4, 1.0)
        .unwrap()
        .cost_model(CostModel::zero())
        .run(|comm| {
            let next = comm.rank().offset(1, comm.size());
            let prev = comm.rank().offset(-1, comm.size());
            comm.send(next, tag(9), b"m")?;
            comm.recv(prev.into(), tag(9).into())?;
            Ok(())
        })
        .unwrap();
    assert_eq!(report.n_physical, 4);
    assert_eq!(report.physical_messages, 4);
    assert!((report.stats.send_amplification() - 1.0).abs() < 1e-9);
}

#[test]
fn abort_horizon_propagates_through_replication() {
    let report = ReplicatedWorld::builder(2, 2.0)
        .unwrap()
        .cost_model(CostModel::zero())
        .abort_horizon(1.0)
        .run(|comm| -> redcr_mpi::Result<()> {
            loop {
                comm.compute(0.3)?;
                comm.barrier()?;
            }
        })
        .unwrap();
    assert!(report.aborted);
    for r in &report.results {
        assert!(r.is_err());
    }
    assert!(report.max_virtual_time < 2.0);
}

#[test]
fn triple_redundancy_corrects_injected_sdc() {
    // One faulty replica (index 1) corrupts ~30% of its outgoing copies.
    // With three copies per message the receivers vote the corruption out:
    // the application answer is identical to the clean run.
    let run = |corrupt: bool| {
        let mut builder = ReplicatedWorld::builder(4, 3.0).unwrap().cost_model(CostModel::zero());
        if corrupt {
            builder = builder.corruption(redcr_red::CorruptionModel::new(0.3, 99).only_replica(1));
        }
        builder
            .run(|comm| {
                let mut acc = comm.rank().index() as f64;
                for round in 0..10u64 {
                    let next = comm.rank().offset(1, comm.size());
                    let prev = comm.rank().offset(-1, comm.size());
                    comm.send_f64s(next, tag(round), &[acc; 32])?;
                    let (vals, _) = comm.recv_f64s(prev.into(), tag(round).into())?;
                    acc += vals[0] * 0.5;
                }
                Ok(acc.to_bits())
            })
            .unwrap()
    };
    let clean = run(false);
    let stormy = run(true);
    assert!(stormy.stats.mismatches_detected > 0, "corruption must be observed");
    assert_eq!(
        stormy.stats.corrections, stormy.stats.mismatches_detected,
        "every mismatch is correctable at 3x"
    );
    for v in 0..4 {
        assert_eq!(
            clean.primary_result(v).as_ref().unwrap(),
            stormy.primary_result(v).as_ref().unwrap(),
            "voting must hide the corruption from the application"
        );
    }
}

#[test]
fn dual_redundancy_detects_but_cannot_always_correct() {
    let report = ReplicatedWorld::builder(2, 2.0)
        .unwrap()
        .cost_model(CostModel::zero())
        .corruption(redcr_red::CorruptionModel::new(0.5, 7).only_replica(1))
        .run(|comm| {
            for round in 0..20u64 {
                let peer = comm.rank().offset(1, comm.size());
                comm.send(peer, tag(round), &[round as u8; 16])?;
                comm.recv(peer.into(), tag(round).into())?;
            }
            Ok(())
        })
        .unwrap();
    assert!(report.stats.mismatches_detected > 0);
    // With only two copies a mismatch has no majority: detection without
    // correction (the paper: triple redundancy is needed to vote out).
    assert!(report.stats.corrections < report.stats.mismatches_detected);
}
