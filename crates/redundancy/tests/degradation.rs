//! Live-degradation tests: replicas fail-stop mid-run and the surviving
//! replicas keep the job going (3 → 2 → 1 voting), the sphere aborts only
//! when its *last* replica dies, and SDC voting still behaves sensibly on
//! degraded spheres.

use redcr_mpi::{Communicator, CostModel, MpiError, Rank, RankSelector, Tag, TagSelector};
use redcr_red::{CorruptionModel, ReplicatedWorld, VoteCost};

fn tag(v: u64) -> Tag {
    Tag::new(v)
}

/// A deterministic stepped exchange: each step computes for one virtual
/// second, sends to the next virtual rank, and folds in the value received
/// from the previous one. Step `k` happens at virtual time `k + 1`.
fn stepped_ring(comm: &impl Communicator, steps: u64) -> redcr_mpi::Result<f64> {
    let mut acc = comm.rank().index() as f64 + 1.0;
    for step in 0..steps {
        comm.compute(1.0)?;
        let next = comm.rank().offset(1, comm.size());
        let prev = comm.rank().offset(-1, comm.size());
        comm.send_f64s(next, tag(100 + step), &[acc])?;
        let (vals, _) = comm.recv_f64s(prev.into(), tag(100 + step).into())?;
        acc = acc * 0.5 + vals[0];
    }
    Ok(acc)
}

#[test]
fn dead_shadow_replica_is_masked_live() {
    // 2 virtual ranks at 2x: v0 = {phys 0, 2}, v1 = {phys 1, 3}. Kill
    // v0's shadow (phys 2) at t = 2.5 — mid-run, between steps 2 and 3.
    let no_deaths = ReplicatedWorld::builder(2, 2.0)
        .unwrap()
        .cost_model(CostModel::zero())
        .vote_cost(VoteCost::zero())
        .run(|comm| stepped_ring(comm, 5))
        .unwrap();
    let mut deaths = vec![f64::INFINITY; 4];
    deaths[2] = 2.5;
    let degraded = ReplicatedWorld::builder(2, 2.0)
        .unwrap()
        .cost_model(CostModel::zero())
        .vote_cost(VoteCost::zero())
        .death_times(deaths)
        .run(|comm| stepped_ring(comm, 5))
        .unwrap();

    assert!(!degraded.aborted, "one dead replica of a 2x sphere must be masked");
    assert_eq!(degraded.dead_ranks, vec![2]);
    assert!(matches!(degraded.results[2], Err(MpiError::Dead { .. })));
    // Every survivor finishes with the same value as the failure-free run.
    for phys in [0usize, 1, 3] {
        assert_eq!(
            degraded.results[phys].as_ref().unwrap(),
            no_deaths.results[phys].as_ref().unwrap(),
            "survivor {phys} diverged from the failure-free run"
        );
    }
    // Degradation was actually exercised on both paths.
    assert!(degraded.stats.missing_copies > 0, "receives should have noted missing copies");
    assert!(degraded.stats.dead_peer_sends > 0, "sends should have skipped the dead replica");
    assert_eq!(no_deaths.stats.missing_copies, 0);
    assert_eq!(no_deaths.stats.dead_peer_sends, 0);
}

#[test]
fn triple_sphere_degrades_to_two_then_completes() {
    // 2 virtual ranks at 3x: v0 = {0, 2, 3}, v1 = {1, 4, 5}. Kill one
    // replica of each sphere at different times; both spheres still have
    // survivors, so the run completes and survivors agree.
    let mut deaths = vec![f64::INFINITY; 6];
    deaths[3] = 1.5; // v0 replica 2
    deaths[4] = 3.5; // v1 replica 1
    let report = ReplicatedWorld::builder(2, 3.0)
        .unwrap()
        .cost_model(CostModel::zero())
        .vote_cost(VoteCost::zero())
        .death_times(deaths)
        .run(|comm| stepped_ring(comm, 5))
        .unwrap();
    assert!(!report.aborted);
    assert_eq!(report.dead_ranks, vec![3, 4]);
    for v in 0..2u32 {
        let live: Vec<f64> =
            report.replica_results(v).iter().filter_map(|r| r.as_ref().ok().copied()).collect();
        assert!(live.len() >= 2, "virtual rank {v} should keep two live replicas");
        for x in &live[1..] {
            assert_eq!(*x, live[0], "survivors of virtual rank {v} diverged");
        }
    }
}

#[test]
fn job_aborts_only_when_last_replica_of_sphere_dies() {
    // Kill BOTH replicas of v0: phys 0 at t=0.5 (before its first send)
    // and phys 2 at t=1.5 (after one step). v1 survives step 0 on the
    // single remaining copy, then finds the sphere dead at step 1.
    let mut deaths = vec![f64::INFINITY; 4];
    deaths[0] = 0.5;
    deaths[2] = 1.5;
    let report = ReplicatedWorld::builder(2, 2.0)
        .unwrap()
        .cost_model(CostModel::zero())
        .vote_cost(VoteCost::zero())
        .death_times(deaths)
        .run(|comm| stepped_ring(comm, 5))
        .unwrap();
    assert!(report.aborted, "death of a sphere's last replica must abort the job");
    // Rank 0 certainly crossed its death time; rank 2 may be pre-empted by
    // the abort (a peer's clock can pass 2's death time — and declare the
    // sphere dead — while 2's own clock is still behind it).
    assert!(report.dead_ranks.contains(&0));
    let sphere_dead_seen = report.results.iter().any(|r| {
        matches!(r, Err(MpiError::SphereDead { virtual_rank, .. }) if virtual_rank.index() == 0)
    });
    assert!(sphere_dead_seen, "some survivor should have reported SphereDead for rank 0");
}

#[test]
fn wildcard_leader_failover_after_leader_death() {
    // v0 = {phys 0, 2} receives with ANY_SOURCE; its leader (phys 0) dies
    // before the receive. The shadow must take over leadership, resolve
    // the wildcard itself, and still produce the right payload.
    let mut deaths = vec![f64::INFINITY; 4];
    deaths[0] = 0.5;
    let report = ReplicatedWorld::builder(2, 2.0)
        .unwrap()
        .cost_model(CostModel::zero())
        .vote_cost(VoteCost::zero())
        .death_times(deaths)
        .run(|comm| {
            comm.compute(1.0)?;
            if comm.rank().index() == 0 {
                let (bytes, status) = comm.recv(RankSelector::Any, TagSelector::Any)?;
                assert_eq!(status.source, Rank::new(1));
                assert_eq!(status.tag.value(), 42);
                Ok(bytes.to_vec())
            } else {
                comm.send(Rank::new(0), tag(42), b"failover")?;
                Ok(Vec::new())
            }
        })
        .unwrap();
    assert!(!report.aborted);
    assert_eq!(report.dead_ranks, vec![0]);
    // phys 2 is v0's shadow replica: it took over and got the payload.
    assert_eq!(report.results[2].as_ref().unwrap(), b"failover");
}

#[test]
fn triple_redundancy_votes_out_corruption() {
    // Baseline SDC behaviour (no deaths): replica 0 of every sphere
    // corrupts each outgoing copy; the other two copies outvote it.
    let report = ReplicatedWorld::builder(2, 3.0)
        .unwrap()
        .cost_model(CostModel::zero())
        .vote_cost(VoteCost::zero())
        .corruption(CorruptionModel::new(1.0, 9).only_replica(0))
        .run(|comm| stepped_ring(comm, 3))
        .unwrap();
    assert!(!report.aborted);
    assert!(report.stats.mismatches_detected > 0, "corruption should be seen");
    assert_eq!(
        report.stats.corrections, report.stats.mismatches_detected,
        "with three copies every mismatch is outvoted"
    );
    // The corrupted copies never won a vote: all replicas agree on the
    // clean value.
    for v in 0..2u32 {
        let vals: Vec<f64> =
            report.replica_results(v).iter().map(|r| *r.as_ref().unwrap()).collect();
        for x in &vals[1..] {
            assert_eq!(*x, vals[0]);
        }
    }
}

#[test]
fn degraded_dual_survivors_detect_but_cannot_correct() {
    // 3x sphere degraded to two survivors, one of which corrupts: the
    // receive detects the mismatch (it is NOT silently accepted) but a
    // 1-vs-1 vote cannot correct it — the documented dual-redundancy
    // limit, now reached *live* through degradation.
    let mut deaths = vec![f64::INFINITY; 6];
    deaths[3] = 0.5; // v0 replica 2 dies before ever sending
    let report = ReplicatedWorld::builder(2, 3.0)
        .unwrap()
        .cost_model(CostModel::zero())
        .vote_cost(VoteCost::zero())
        .corruption(CorruptionModel::new(1.0, 9).only_replica(0))
        .death_times(deaths)
        .run(|comm| stepped_ring(comm, 3))
        .unwrap();
    assert!(!report.aborted, "the degraded sphere still has survivors");
    assert_eq!(report.dead_ranks, vec![3]);
    assert!(report.stats.missing_copies > 0);
    assert!(
        report.stats.mismatches_detected > 0,
        "corruption on a degraded sphere must still be detected"
    );
    assert!(
        report.stats.corrections < report.stats.mismatches_detected,
        "two-copy votes cannot correct every mismatch"
    );
}
