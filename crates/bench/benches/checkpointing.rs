//! Checkpoint-stack benchmarks and ablations: codec throughput, RLE
//! compression, incremental deltas, and the bookmark-vs-Chandy-Lamport
//! quiesce cost (DESIGN.md ablation 3).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use redcr_ckpt::coordinator::{CheckpointCoordinator, CoordinationProtocol};
use redcr_ckpt::incremental::IncrementalEngine;
use redcr_ckpt::storage::{MemoryStorage, StableStorage};
use redcr_ckpt::{compress, from_bytes, to_bytes, CountingComm};
use redcr_mpi::{Communicator, CostModel, World};

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint/codec");
    let state: Vec<f64> = (0..100_000).map(|i| i as f64 * 0.5).collect();
    let bytes = to_bytes(&state).unwrap();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("serialize_800kB", |b| b.iter(|| to_bytes(&state).unwrap()));
    g.bench_function("deserialize_800kB", |b| b.iter(|| from_bytes::<Vec<f64>>(&bytes).unwrap()));
    g.finish();
}

fn bench_compress(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint/compress");
    let mut zeroish = vec![0u8; 1 << 20];
    for i in (0..zeroish.len()).step_by(4096) {
        zeroish[i] = i as u8;
    }
    g.throughput(Throughput::Bytes(zeroish.len() as u64));
    g.bench_function("rle_sparse_1MiB", |b| b.iter(|| compress::compress(&zeroish)));
    let packed = compress::compress(&zeroish);
    g.bench_function("rle_decompress", |b| b.iter(|| compress::decompress(&packed).unwrap()));
    g.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint/incremental");
    g.bench_function("delta_1MiB_1pct_dirty", |b| {
        let mut engine = IncrementalEngine::new();
        let mut image = vec![7u8; 1 << 20];
        engine.checkpoint(&image);
        let mut toggle = 0u8;
        b.iter(|| {
            toggle = toggle.wrapping_add(1);
            for i in (0..image.len()).step_by(100 * 4096) {
                image[i] = toggle;
            }
            engine.checkpoint(&image)
        });
    });
    g.finish();
}

fn quiesce_run(protocol: CoordinationProtocol, ranks: usize) {
    let storage: Arc<dyn StableStorage> = Arc::new(MemoryStorage::new());
    let coordinator = CheckpointCoordinator::new(storage).protocol(protocol);
    World::builder(ranks)
        .cost_model(CostModel::zero())
        .run(move |base| {
            let comm = CountingComm::new(base);
            // Some in-flight traffic so the protocols have work to do.
            let peer = comm.rank().offset(1, comm.size());
            for i in 0..4u64 {
                comm.send(peer, redcr_mpi::Tag::new(i), &[0u8; 64])?;
            }
            for seq in 0..3u64 {
                coordinator
                    .checkpoint(&comm, seq, &vec![comm.rank().index() as u64; 128])
                    .map_err(redcr_mpi::MpiError::from)?;
            }
            // Drain what we sent.
            let prev = comm.rank().offset(-1, comm.size());
            for i in 0..4u64 {
                comm.recv(prev.into(), redcr_mpi::Tag::new(i).into())?;
            }
            Ok(())
        })
        .unwrap();
}

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint/coordination_ablation");
    g.sample_size(10);
    for &ranks in &[8usize, 32] {
        g.bench_with_input(BenchmarkId::new("bookmark", ranks), &ranks, |b, &r| {
            b.iter(|| quiesce_run(CoordinationProtocol::Bookmark, r));
        });
        g.bench_with_input(BenchmarkId::new("chandy_lamport", ranks), &ranks, |b, &r| {
            b.iter(|| quiesce_run(CoordinationProtocol::ChandyLamport, r));
        });
        g.bench_with_input(BenchmarkId::new("app_quiesced", ranks), &ranks, |b, &r| {
            b.iter(|| quiesce_run(CoordinationProtocol::AppQuiesced, r));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_codec, bench_compress, bench_incremental, bench_protocols);
criterion_main!(benches);
