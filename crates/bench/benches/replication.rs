//! Replication-layer benchmarks and ablations: message amplification per
//! degree, and the All-to-all vs Msg-PlusHash bandwidth trade
//! (DESIGN.md ablation 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use redcr_apps::cg::{CgConfig, CgSolver};
use redcr_mpi::{Communicator, CostModel};
use redcr_red::{ReplicatedWorld, VoteCost, VotingMode};

fn cg_run(degree: f64, mode: VotingMode) {
    let solver = CgSolver::new(CgConfig::small(256));
    ReplicatedWorld::builder(8, degree)
        .unwrap()
        .voting_mode(mode)
        .vote_cost(VoteCost::zero())
        .cost_model(CostModel::zero())
        .run(move |comm| {
            let mut state = solver.init_state(comm)?;
            solver.run(comm, &mut state, 5)?;
            Ok(())
        })
        .unwrap();
}

fn bench_degrees(c: &mut Criterion) {
    let mut g = c.benchmark_group("replication/cg_by_degree");
    g.sample_size(10);
    for &degree in &[1.0, 1.5, 2.0, 3.0] {
        g.bench_with_input(BenchmarkId::from_parameter(degree), &degree, |b, &d| {
            b.iter(|| cg_run(d, VotingMode::AllToAll));
        });
    }
    g.finish();
}

fn bench_voting_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("replication/voting_mode_ablation");
    g.sample_size(10);
    g.bench_function("all_to_all_3x", |b| b.iter(|| cg_run(3.0, VotingMode::AllToAll)));
    g.bench_function("msg_plus_hash_3x", |b| b.iter(|| cg_run(3.0, VotingMode::MsgPlusHash)));
    g.finish();
}

fn bench_wildcard_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("replication/wildcard_protocol");
    g.sample_size(10);
    g.bench_function("any_source_2x", |b| {
        b.iter(|| {
            ReplicatedWorld::builder(4, 2.0)
                .unwrap()
                .cost_model(CostModel::zero())
                .vote_cost(VoteCost::zero())
                .run(|comm| {
                    if comm.rank().index() == 0 {
                        for _ in 0..30 {
                            comm.recv(redcr_mpi::RankSelector::Any, redcr_mpi::TagSelector::Any)?;
                        }
                    } else {
                        for i in 0..10u64 {
                            comm.send(redcr_mpi::Rank::new(0), redcr_mpi::Tag::new(i), b"m")?;
                        }
                    }
                    Ok(())
                })
                .unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_degrees, bench_voting_modes, bench_wildcard_protocol);
criterion_main!(benches);
