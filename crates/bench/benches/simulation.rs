//! Cluster-simulator benchmarks: single-run and Monte-Carlo throughput,
//! and the failure-source cost comparison (per-process sphere sampling vs
//! the aggregated Poisson shortcut).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use redcr_cluster::combined::simulate_combined;
use redcr_cluster::failure_source::{PoissonSource, SphereSource};
use redcr_cluster::job::{FailureExposure, JobConfig};
use redcr_cluster::simulate::simulate_job;
use redcr_cluster::sweep::monte_carlo;
use redcr_fault::ReplicaGroups;
use redcr_model::combined::CombinedConfig;
use redcr_model::units;

fn cfg(n: u64) -> CombinedConfig {
    CombinedConfig::builder()
        .virtual_processes(n)
        .base_time_hours(128.0)
        .node_mtbf_hours(units::hours_from_years(5.0))
        .comm_fraction(0.2)
        .checkpoint_cost_hours(units::hours_from_mins(10.0))
        .restart_cost_hours(units::hours_from_mins(30.0))
        .build()
        .unwrap()
}

fn bench_single_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation/single_run");
    for &n in &[1_000u64, 100_000] {
        g.bench_with_input(BenchmarkId::new("combined_2x", n), &n, |b, &n| {
            let config = cfg(n).with_degree(2.0);
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                simulate_combined(&config, FailureExposure::AllTime, seed).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation/monte_carlo");
    g.sample_size(10);
    let config = cfg(10_000).with_degree(2.0);
    g.bench_function("64_runs_8_threads", |b| {
        b.iter(|| {
            monte_carlo(64, 8, |seed| simulate_combined(&config, FailureExposure::AllTime, seed))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_failure_sources(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation/failure_source");
    let job = JobConfig {
        work: 128.0,
        checkpoint_cost: 0.2,
        checkpoint_interval: 2.0,
        restart_cost: 0.5,
        exposure: FailureExposure::AllTime,
        max_attempts: 1_000_000,
    };
    g.bench_function("poisson_aggregate", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let mut src = PoissonSource::new(50.0, seed);
            simulate_job(&job, &mut src).unwrap()
        })
    });
    g.bench_function("sphere_per_process_2x_1k", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            let groups = ReplicaGroups::uniform(1_000, 2);
            let mut src = SphereSource::new(groups, 50_000.0, seed);
            simulate_job(&job, &mut src).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_single_runs, bench_monte_carlo, bench_failure_sources);
criterion_main!(benches);
