//! Analytic-model benchmarks and ablations: evaluation cost, optimizer
//! search, exact-vs-linear reliability (DESIGN.md ablation 4) and
//! Daly-vs-Young-vs-numeric checkpoint intervals.

use criterion::{criterion_group, criterion_main, Criterion};

use redcr_model::checkpointing::{daly_interval, optimal_interval_numeric, young_interval};
use redcr_model::combined::{CombinedConfig, IntervalPolicy};
use redcr_model::optimizer::{optimal_redundancy, RGrid};
use redcr_model::reliability::Approximation;
use redcr_model::units;

fn cfg() -> CombinedConfig {
    CombinedConfig::builder()
        .virtual_processes(100_000)
        .base_time_hours(128.0)
        .node_mtbf_hours(units::hours_from_years(5.0))
        .comm_fraction(0.2)
        .checkpoint_cost_hours(units::hours_from_mins(10.0))
        .restart_cost_hours(units::hours_from_mins(30.0))
        .build()
        .unwrap()
}

fn bench_evaluate(c: &mut Criterion) {
    let mut g = c.benchmark_group("model/evaluate");
    let base = cfg();
    g.bench_function("combined_single", |b| b.iter(|| base.with_degree(2.0).evaluate().unwrap()));
    g.bench_function("optimal_redundancy_9pt", |b| {
        b.iter(|| optimal_redundancy(&base, &RGrid::quarter_steps()).unwrap())
    });
    g.finish();
}

fn bench_approximation_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("model/approximation_ablation");
    let base = cfg();
    for (name, approx) in
        [("linear_eq3", Approximation::Linear), ("exact_exponential", Approximation::Exact)]
    {
        let mut cfg = base.clone();
        cfg.approximation = approx;
        g.bench_function(name, move |b| {
            b.iter(|| cfg.with_degree(2.0).evaluate().unwrap());
        });
    }
    g.finish();
}

fn bench_interval_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("model/interval_ablation");
    let (ckpt, theta) = (0.1f64, 50.0f64);
    g.bench_function("daly_eq15", |b| b.iter(|| daly_interval(ckpt, theta).unwrap()));
    g.bench_function("young_first_order", |b| b.iter(|| young_interval(ckpt, theta).unwrap()));
    g.bench_function("numeric_golden_section", |b| {
        b.iter(|| optimal_interval_numeric(ckpt, theta).unwrap())
    });
    // End-to-end difference: the resulting total times.
    let base = cfg();
    for (name, policy) in [
        ("total_time_daly", IntervalPolicy::Daly),
        ("total_time_young", IntervalPolicy::Young),
        ("total_time_numeric", IntervalPolicy::Optimal),
    ] {
        let mut cfg = base.clone();
        cfg.interval_policy = policy;
        g.bench_function(name, move |b| {
            b.iter(|| cfg.with_degree(2.0).evaluate().unwrap().total_time);
        });
    }
    g.finish();
}

fn bench_crossover(c: &mut Criterion) {
    let mut g = c.benchmark_group("model/crossover_search");
    g.sample_size(10);
    let base = cfg();
    g.bench_function("crossover_1x_2x", |b| {
        b.iter(|| redcr_model::optimizer::crossover(&base, 1.0, 2.0, 100, 10_000_000).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_evaluate,
    bench_approximation_ablation,
    bench_interval_ablation,
    bench_crossover
);
criterion_main!(benches);
