//! Microbenchmarks of the message-passing runtime (wall time of the
//! simulator itself, not virtual time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bytes::Bytes;
use redcr_mpi::collectives::ReduceOp;
use redcr_mpi::{Communicator, CostModel, Rank, Tag, World};

fn bench_p2p(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime/p2p");
    g.sample_size(10);
    for &msgs in &[100u64, 1000] {
        g.bench_with_input(BenchmarkId::new("ping_pong", msgs), &msgs, |b, &msgs| {
            b.iter(|| {
                World::builder(2)
                    .cost_model(CostModel::zero())
                    .run(|comm| {
                        let peer = comm.rank().offset(1, 2);
                        for i in 0..msgs {
                            if comm.rank().index() == 0 {
                                comm.send(peer, Tag::new(i), b"x")?;
                                comm.recv(peer.into(), Tag::new(i).into())?;
                            } else {
                                comm.recv(peer.into(), Tag::new(i).into())?;
                                comm.send(peer, Tag::new(i), b"x")?;
                            }
                        }
                        Ok(())
                    })
                    .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime/collectives");
    g.sample_size(10);
    for &ranks in &[8usize, 32] {
        g.bench_with_input(BenchmarkId::new("allreduce", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                World::builder(ranks)
                    .cost_model(CostModel::zero())
                    .run(|comm| {
                        for _ in 0..20 {
                            comm.allreduce_f64(&[1.0; 16], ReduceOp::Sum)?;
                        }
                        Ok(())
                    })
                    .unwrap()
            });
        });
        g.bench_with_input(BenchmarkId::new("barrier", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                World::builder(ranks)
                    .cost_model(CostModel::zero())
                    .run(|comm| {
                        for _ in 0..20 {
                            comm.barrier()?;
                        }
                        Ok(())
                    })
                    .unwrap()
            });
        });
        g.bench_with_input(BenchmarkId::new("allgather_4k", ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                World::builder(ranks)
                    .cost_model(CostModel::zero())
                    .run(|comm| {
                        let data = Bytes::from(vec![comm.rank().as_u32() as u8; 4096]);
                        for _ in 0..5 {
                            comm.allgather(data.clone())?;
                        }
                        Ok(())
                    })
                    .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_spawn(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime/world_spawn");
    g.sample_size(10);
    for &ranks in &[16usize, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                World::builder(ranks)
                    .cost_model(CostModel::zero())
                    .run(|comm| Ok(comm.rank() == Rank::new(0)))
                    .unwrap()
            });
        });
    }
    g.finish();
}

/// DESIGN.md ablation 1: latency-only vs latency+bandwidth cost models.
/// The functional behaviour is identical; the bench records the simulator
/// overhead of the fuller model, and the test suite checks the *virtual*
/// times diverge only when payloads are large.
fn bench_cost_model_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime/cost_model_ablation");
    g.sample_size(10);
    let latency_only = CostModel { latency: 1.5e-6, byte_time: 0.0, msg_overhead: 0.5e-6 };
    let full = CostModel::infiniband_qdr();
    for (name, model) in [("latency_only", latency_only), ("latency_bandwidth", full)] {
        g.bench_function(name, move |b| {
            b.iter(|| {
                World::builder(8)
                    .cost_model(model)
                    .run(|comm| {
                        for i in 0..10u64 {
                            let next = comm.rank().offset(1, comm.size());
                            let prev = comm.rank().offset(-1, comm.size());
                            comm.send(next, Tag::new(i), &[0u8; 65536])?;
                            comm.recv(prev.into(), Tag::new(i).into())?;
                        }
                        Ok(comm.now())
                    })
                    .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_p2p, bench_collectives, bench_spawn, bench_cost_model_ablation);
criterion_main!(benches);
