//! One-off backend comparison for the `cg_r2_big` scenario.
//!
//! Runs the full-preset `cg_r2_big` configuration (512 virtual ranks at
//! r = 2 → 1024 physical rank tasks, 8 CG iterations, failure-free)
//! once under whatever executor backend is active and prints the wall
//! time. Run it twice to compare backends:
//!
//! ```sh
//! cargo run --release -p redcr-bench --example cg_big_backend
//! REDCR_EXEC=threads cargo run --release -p redcr-bench --example cg_big_backend
//! ```
//!
//! The threads run spawns 1024 OS threads per world segment — the very
//! cost the M:N scheduler exists to avoid — so expect it to be slow (or,
//! on thread-limited hosts, to fail to spawn). That number is recorded
//! as the `cg_r2_big` baseline note in `BENCH_runtime.json`.

// Bench-domain example: it times the simulator from outside, so the
// wall clock is the point (same sanction as crates/bench/src/runtime.rs).
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::time::Instant;

use redcr_apps::cg::CgConfig;
use redcr_core::apps::CgApp;
use redcr_core::{ExecutorConfig, ResilientExecutor};

fn main() {
    let backend = std::env::var("REDCR_EXEC").unwrap_or_else(|_| "coro".into());
    let cfg = ExecutorConfig::new(512, 2.0)
        .node_mtbf(1e12)
        .checkpoint_interval(10.0)
        .checkpoint_cost(0.5)
        .restart_cost(2.0)
        .seed(2012);
    let app = CgApp::new(CgConfig::small(2048), 8);
    let t0 = Instant::now();
    let report = ResilientExecutor::new(cfg).run(&app).expect("cg_r2_big run");
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "cg_r2_big backend={backend} wall_s={wall:.6} virtual_s={:.3} phys_msgs={}",
        report.total_virtual_time, report.physical_messages
    );
}
